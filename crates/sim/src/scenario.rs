//! Scenario building and rendering.
//!
//! A *scenario* is one HyperEar session: a phone held in-direction near a
//! speaker, an initial stationary hold (the SFO calibration window),
//! several slides at the first stature and — for the 3D protocol — a
//! stature change followed by more slides. [`ScenarioBuilder::render`]
//! produces a [`Recording`] containing exactly what the phone would hand
//! an app: stereo 16-bit-quantized audio and raw IMU traces, plus the
//! ground truth needed to score the pipeline.

use crate::environment::Environment;
use crate::imu::{sample_imu, ImuModel, ImuTrace};
use crate::mic::{add_noise_and_quantize, apply_mic_response_with, render_clean_channel};
use crate::motion::{MotionBuilder, MotionProfile, PhoneMotion};
use crate::phone::PhoneModel;
use crate::rng::SimRng;
use crate::room::{free_field, PropagationPath};
use crate::speaker::SpeakerModel;
use crate::volunteer::Volunteer;
use crate::SimError;
use hyperear_dsp::plan::{DspScratch, PlanCache};
use hyperear_dsp::SPEED_OF_SOUND;
use hyperear_geom::{MicArray, Vec2, Vec3};
use hyperear_util::pool::Pool;

/// Reusable FFT state for repeated rendering.
///
/// Holds the plan cache and scratch arena the renderer's spectral steps
/// (currently microphone-response shaping) execute against. Harnesses
/// that render many scenarios (figure reproductions, benchmarks) should
/// hold one context per worker and call [`ScenarioBuilder::render_with`]
/// so FFT setup work is paid once.
#[derive(Debug, Clone, Default)]
pub struct RenderContext {
    plans: PlanCache,
    scratch: DspScratch,
}

impl RenderContext {
    /// An empty context; state accumulates across renders.
    #[must_use]
    pub fn new() -> Self {
        RenderContext::default()
    }
}

/// A two-channel audio recording at a nominal sample rate.
///
/// Channel 0 ("left") is Mic1, channel 1 ("right") is Mic2; Mic2 sits
/// `mic_separation` metres further along the phone's y-axis.
#[derive(Debug, Clone, PartialEq)]
pub struct StereoRecording {
    /// Nominal sample rate, hertz (the rate the app *believes* it gets;
    /// the actual ADC clock may be offset by the phone's ppm error).
    pub sample_rate: f64,
    /// Mic1 samples.
    pub left: Vec<f64>,
    /// Mic2 samples.
    pub right: Vec<f64>,
}

/// An N-channel audio recording at a nominal sample rate: one channel
/// per microphone of a [`MicArray`], in array index order.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiRecording {
    /// Nominal sample rate, hertz.
    pub sample_rate: f64,
    /// Per-microphone sample streams, array index order.
    pub channels: Vec<Vec<f64>>,
}

/// A rendered N-microphone session (see
/// [`ScenarioBuilder::render_array`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayRecording {
    /// The phone that recorded the session.
    pub phone: PhoneModel,
    /// The microphone array geometry, device frame.
    pub array: MicArray,
    /// The beacon source configuration.
    pub speaker: SpeakerModel,
    /// The acoustic environment.
    pub environment: Environment,
    /// Multi-channel audio as captured (noise + quantization included).
    pub audio: MultiRecording,
    /// Raw IMU traces.
    pub imu: ImuTrace,
    /// Ground truth for scoring.
    pub truth: GroundTruth,
}

/// A concurrent co-speaker: its own beacon source sharing the air with
/// the primary speaker, placed broadside of the slide line at its own
/// range. Multi-beacon scenes give each co-speaker a distinct chirp
/// signature (see [`SpeakerModel::with_signature`]) so the pipeline's
/// template bank can tell the sources apart.
#[derive(Debug, Clone, PartialEq)]
pub struct CoSpeaker {
    /// The co-speaker's beacon source configuration.
    pub speaker: SpeakerModel,
    /// Horizontal distance from the slide line to this co-speaker,
    /// metres.
    pub range: f64,
}

/// Everything the simulator knows that the pipeline must *estimate*.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruth {
    /// Speaker position, world frame.
    pub speaker_position: Vec3,
    /// Co-speaker positions, world frame, in configuration order (empty
    /// for single-beacon scenes).
    pub co_speaker_positions: Vec<Vec3>,
    /// The full true phone motion (slide windows, true distances, sway).
    pub motion: PhoneMotion,
    /// Horizontal (floor-map) perpendicular distance from the slide line
    /// to the speaker — the quantity Figs. 14–19 score against.
    pub ground_distance: f64,
    /// Slant distance from the upper slide line to the speaker (the `L1`
    /// of Section VI-B).
    pub slant_distance_upper: f64,
    /// Slant distance from the lower slide line to the speaker (`L2`),
    /// equal to `slant_distance_upper` for single-stature scenarios.
    pub slant_distance_lower: f64,
    /// True stature change between slide planes (0 for 2D scenarios).
    pub stature_drop: f64,
}

/// A rendered HyperEar session.
#[derive(Debug, Clone, PartialEq)]
pub struct Recording {
    /// The phone that recorded the session.
    pub phone: PhoneModel,
    /// The beacon source configuration.
    pub speaker: SpeakerModel,
    /// The acoustic environment.
    pub environment: Environment,
    /// Stereo audio as captured (noise + quantization included).
    pub audio: StereoRecording,
    /// Raw IMU traces.
    pub imu: ImuTrace,
    /// Ground truth for scoring.
    pub truth: GroundTruth,
}

/// Builds and renders HyperEar sessions.
///
/// # Example
///
/// ```
/// use hyperear_sim::scenario::ScenarioBuilder;
/// use hyperear_sim::phone::PhoneModel;
///
/// # fn main() -> Result<(), hyperear_sim::SimError> {
/// let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
///     .speaker_range(5.0)
///     .slides(2)
///     .seed(42)
///     .render()?;
/// assert_eq!(rec.audio.left.len(), rec.audio.right.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    phone: PhoneModel,
    speaker: SpeakerModel,
    environment: Environment,
    profile: MotionProfile,
    tremor_accel_std: f64,
    phone_stature: f64,
    speaker_stature: Option<f64>,
    speaker_range: f64,
    slides: usize,
    slides_low: usize,
    stature_drop: f64,
    slide_distance: f64,
    slide_duration: f64,
    hold_duration: f64,
    direct_path_attenuation_db: f64,
    co_speakers: Vec<CoSpeaker>,
    seed: u64,
}

impl ScenarioBuilder {
    /// Creates a builder with the paper's defaults: anechoic-quiet
    /// environment, ruler motion, 55 cm / 0.8 s slides, 5 m range, phone
    /// and speaker on the same plane (2D setup).
    #[must_use]
    pub fn new(phone: PhoneModel) -> Self {
        ScenarioBuilder {
            phone,
            speaker: SpeakerModel::new(),
            environment: Environment::room_quiet(),
            profile: MotionProfile::ruler(),
            tremor_accel_std: 0.0,
            phone_stature: 1.3,
            speaker_stature: None,
            speaker_range: 5.0,
            slides: 1,
            slides_low: 0,
            stature_drop: 0.4,
            slide_distance: 0.55,
            slide_duration: 0.8,
            hold_duration: 1.2,
            direct_path_attenuation_db: 0.0,
            co_speakers: Vec::new(),
            seed: 0,
        }
    }

    /// Sets the beacon source model.
    #[must_use]
    pub fn speaker_model(mut self, speaker: SpeakerModel) -> Self {
        self.speaker = speaker;
        self
    }

    /// Sets the acoustic environment.
    #[must_use]
    pub fn environment(mut self, environment: Environment) -> Self {
        self.environment = environment;
        self
    }

    /// Sets the motion perturbation profile (ruler or hand).
    #[must_use]
    pub fn motion_profile(mut self, profile: MotionProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Configures motion and tremor from a volunteer, holding the phone at
    /// that volunteer's natural height.
    #[must_use]
    pub fn volunteer(mut self, v: &Volunteer) -> Self {
        self.profile = v.profile;
        self.tremor_accel_std = v.tremor_accel_std;
        self.phone_stature = v.upper_slide_height();
        self
    }

    /// Sets the horizontal (floor-map) distance from the slide line to the
    /// speaker.
    #[must_use]
    pub fn speaker_range(mut self, metres: f64) -> Self {
        self.speaker_range = metres;
        self
    }

    /// Sets the speaker's height above the floor. Defaults to the phone
    /// stature (same-plane 2D setup).
    #[must_use]
    pub fn speaker_stature(mut self, metres: f64) -> Self {
        self.speaker_stature = Some(metres);
        self
    }

    /// Sets the phone's (upper) slide-plane height.
    #[must_use]
    pub fn phone_stature(mut self, metres: f64) -> Self {
        self.phone_stature = metres;
        self
    }

    /// Number of slides at the upper stature.
    #[must_use]
    pub fn slides(mut self, n: usize) -> Self {
        self.slides = n;
        self
    }

    /// Number of slides at the lower stature (0 = single-stature 2D
    /// session).
    #[must_use]
    pub fn slides_low(mut self, n: usize) -> Self {
        self.slides_low = n;
        self
    }

    /// Stature change between the two slide planes, metres.
    #[must_use]
    pub fn stature_drop(mut self, metres: f64) -> Self {
        self.stature_drop = metres;
        self
    }

    /// Commanded slide distance, metres.
    #[must_use]
    pub fn slide_distance(mut self, metres: f64) -> Self {
        self.slide_distance = metres;
        self
    }

    /// Commanded slide duration, seconds.
    #[must_use]
    pub fn slide_duration(mut self, seconds: f64) -> Self {
        self.slide_duration = seconds;
        self
    }

    /// Initial stationary hold (SFO calibration window), seconds.
    #[must_use]
    pub fn hold_duration(mut self, seconds: f64) -> Self {
        self.hold_duration = seconds;
        self
    }

    /// Attenuates the direct (line-of-sight) path by the given amount in
    /// dB while leaving reflections untouched — an obstruction between
    /// user and speaker (a shelf, a person, a wall edge). 0 dB = clear
    /// LoS; ≥20 dB approaches full NLoS, where the matched filter locks
    /// onto a reflection. The paper assumes LoS and defers NLoS to future
    /// work; this knob enables that study.
    #[must_use]
    pub fn direct_path_attenuation_db(mut self, db: f64) -> Self {
        self.direct_path_attenuation_db = db;
        self
    }

    /// Adds a concurrent co-speaker at its own broadside range: a second
    /// beacon source sharing the air with the primary speaker, for
    /// multi-beacon scenes. Call repeatedly for K > 2 beacons; each
    /// co-speaker gets its own emission phase (an independent RNG fork,
    /// so single-speaker seeds render bit-identically). Pair with
    /// [`SpeakerModel::with_signature`] so the sources are separable.
    #[must_use]
    pub fn co_speaker(mut self, speaker: SpeakerModel, range_m: f64) -> Self {
        self.co_speakers.push(CoSpeaker {
            speaker,
            range: range_m,
        });
        self
    }

    /// Seed for every stochastic element of the render.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Renders the session.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for inconsistent
    /// configuration (e.g. speaker outside the room, zero slides) and
    /// propagates rendering errors.
    pub fn render(&self) -> Result<Recording, SimError> {
        self.render_with(&mut RenderContext::new())
    }

    /// Renders this scenario at each of `seeds` across a work-stealing
    /// pool, one [`RenderContext`] (FFT plans + scratch) pinned per pool
    /// participant. Output slot `i` always holds seed `i`'s recording —
    /// bit-identical to rendering the seeds sequentially, regardless of
    /// thread count or steal order, because a render depends only on the
    /// builder and the seed, never on what a context rendered before.
    ///
    /// This is the sweep entry point: figure reproductions and
    /// benchmarks that render hundreds of seeded sessions go through
    /// here rather than looping over [`ScenarioBuilder::render`].
    pub fn render_seeds(&self, seeds: &[u64], pool: &Pool) -> Vec<Result<Recording, SimError>> {
        pool.parallel_map_with(seeds.len(), RenderContext::new, |ctx, i| {
            self.clone().seed(seeds[i]).render_with(ctx)
        })
    }

    /// Renders the session, reusing the FFT plans and scratch buffers in
    /// `ctx`. Identical output to [`ScenarioBuilder::render`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ScenarioBuilder::render`].
    pub fn render_with(&self, ctx: &mut RenderContext) -> Result<Recording, SimError> {
        let mut rng = SimRng::seed_from(self.seed);
        let mut motion_rng = rng.fork("motion");
        let mut imu_rng = rng.fork("imu");
        let mut noise_rng_l = rng.fork("noise-left");
        let mut noise_rng_r = rng.fork("noise-right");
        let mut phase_rng = rng.fork("phase");
        // Co-speaker phase forks come after the stereo five, so
        // single-speaker scenes are untouched by this feature existing.
        let mut co_phase_rngs: Vec<SimRng> = (0..self.co_speakers.len())
            .map(|k| rng.fork(&format!("phase-co{k}")))
            .collect();
        let scene = self.prepare(ctx, &mut motion_rng, &mut phase_rng, &mut co_phase_rngs)?;
        let fs_nominal = self.phone.audio_sample_rate;
        let clean_left = scene.clean_channel(&|t| scene.motion.mic1_position(t))?;
        let clean_right = scene.clean_channel(&|t| scene.motion.mic2_position(t))?;
        let left = add_noise_and_quantize(
            &clean_left,
            self.environment.noise,
            self.environment.snr_db,
            fs_nominal,
            &mut noise_rng_l,
        )?;
        let right = add_noise_and_quantize(
            &clean_right,
            self.environment.noise,
            self.environment.snr_db,
            fs_nominal,
            &mut noise_rng_r,
        )?;
        let imu_model = ImuModel::phone_grade().with_tremor(self.tremor_accel_std);
        let imu = sample_imu(
            &scene.motion,
            &imu_model,
            self.phone.imu_sample_rate,
            &mut imu_rng,
        )?;
        let truth = self.ground_truth(scene.speaker_position, scene.co_positions, scene.motion);
        Ok(Recording {
            phone: self.phone.clone(),
            speaker: self.speaker.clone(),
            environment: self.environment.clone(),
            audio: StereoRecording {
                sample_rate: fs_nominal,
                left,
                right,
            },
            imu,
            truth,
        })
    }

    /// Renders the session captured by an N-microphone [`MicArray`]
    /// instead of the phone's stereo pair.
    ///
    /// The array's primary pair must match the phone: mic 0 at the
    /// device origin, mic 1 at `(0, mic_separation)` on device +y (the
    /// slide axis). Channels 0 and 1 are then **bit-identical** to the
    /// `left`/`right` of [`ScenarioBuilder::render`] at the same seed —
    /// same mic trajectories, same noise streams — so the two-mic
    /// compatibility contract extends through the simulator. Extra
    /// microphones ride rigidly at their device-frame offsets (device
    /// +x points toward the speaker side) with independent noise.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] for an array that fails
    /// [`MicArray::validate`] or whose primary pair disagrees with the
    /// phone, plus the conditions of [`ScenarioBuilder::render`].
    pub fn render_array(&self, array: &MicArray) -> Result<ArrayRecording, SimError> {
        self.render_array_with(array, &mut RenderContext::new())
    }

    /// [`ScenarioBuilder::render_array`] against a reusable
    /// [`RenderContext`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ScenarioBuilder::render_array`].
    pub fn render_array_with(
        &self,
        array: &MicArray,
        ctx: &mut RenderContext,
    ) -> Result<ArrayRecording, SimError> {
        array
            .validate()
            .map_err(|e| SimError::invalid("array", e.to_string()))?;
        let p0 = array.position(0).expect("validated array has mic 0");
        let p1 = array.position(1).expect("validated array has mic 1");
        if p0.x != 0.0
            || p0.y != 0.0
            || p1.x != 0.0
            || (p1.y - self.phone.mic_separation).abs() > 1e-9
        {
            return Err(SimError::invalid(
                "array",
                format!(
                    "primary pair must sit at (0, 0) and (0, {}) to match the phone's \
                     mic separation, got ({}, {}) and ({}, {})",
                    self.phone.mic_separation, p0.x, p0.y, p1.x, p1.y
                ),
            ));
        }
        let mut rng = SimRng::seed_from(self.seed);
        let mut motion_rng = rng.fork("motion");
        let mut imu_rng = rng.fork("imu");
        let mut noise_rng_l = rng.fork("noise-left");
        let mut noise_rng_r = rng.fork("noise-right");
        let mut phase_rng = rng.fork("phase");
        // Co-speaker phase forks come after the stereo five — the same
        // order as the stereo path, so a multi-beacon array render's
        // channels 0/1 still match the stereo render bit for bit.
        let mut co_phase_rngs: Vec<SimRng> = (0..self.co_speakers.len())
            .map(|k| rng.fork(&format!("phase-co{k}")))
            .collect();
        // Extra-channel noise forks come last, so the earlier streams —
        // and with them channels 0/1 — match the stereo render bit for
        // bit.
        let mut extra_rngs: Vec<SimRng> = (2..array.len())
            .map(|k| rng.fork(&format!("noise-ch{k}")))
            .collect();
        let scene = self.prepare(ctx, &mut motion_rng, &mut phase_rng, &mut co_phase_rngs)?;
        let fs_nominal = self.phone.audio_sample_rate;
        let mut channels = Vec::with_capacity(array.len());
        for k in 0..array.len() {
            let clean = match k {
                0 => scene.clean_channel(&|t| scene.motion.mic1_position(t))?,
                1 => scene.clean_channel(&|t| scene.motion.mic2_position(t))?,
                _ => {
                    let offset = array.position(k).expect("validated index");
                    scene.clean_channel(&|t| scene.motion.device_position(t, offset))?
                }
            };
            let noise_rng = match k {
                0 => &mut noise_rng_l,
                1 => &mut noise_rng_r,
                _ => &mut extra_rngs[k - 2],
            };
            channels.push(add_noise_and_quantize(
                &clean,
                self.environment.noise,
                self.environment.snr_db,
                fs_nominal,
                noise_rng,
            )?);
        }
        let imu_model = ImuModel::phone_grade().with_tremor(self.tremor_accel_std);
        let imu = sample_imu(
            &scene.motion,
            &imu_model,
            self.phone.imu_sample_rate,
            &mut imu_rng,
        )?;
        let truth = self.ground_truth(scene.speaker_position, scene.co_positions, scene.motion);
        Ok(ArrayRecording {
            phone: self.phone.clone(),
            array: *array,
            speaker: self.speaker.clone(),
            environment: self.environment.clone(),
            audio: MultiRecording {
                sample_rate: fs_nominal,
                channels,
            },
            imu,
            truth,
        })
    }

    /// Validates the builder and renders everything a channel render
    /// needs — geometry, motion, propagation paths, the mic-shaped
    /// beacon and its emission schedule. Shared by the stereo and array
    /// paths so both produce identical scenes from identical RNG forks.
    fn prepare(
        &self,
        ctx: &mut RenderContext,
        motion_rng: &mut SimRng,
        phase_rng: &mut SimRng,
        co_phase_rngs: &mut [SimRng],
    ) -> Result<PreparedScene, SimError> {
        self.phone.validate()?;
        self.speaker.validate(self.phone.audio_sample_rate)?;
        self.environment.validate()?;
        if !(0.2..=30.0).contains(&self.speaker_range) {
            return Err(SimError::invalid(
                "speaker_range",
                format!("must be within [0.2, 30] m, got {}", self.speaker_range),
            ));
        }
        debug_assert_eq!(co_phase_rngs.len(), self.co_speakers.len());
        for (k, co) in self.co_speakers.iter().enumerate() {
            co.speaker.validate(self.phone.audio_sample_rate)?;
            if !(0.2..=30.0).contains(&co.range) {
                return Err(SimError::invalid(
                    "co_speakers",
                    format!(
                        "co-speaker {k} range must be within [0.2, 30] m, got {}",
                        co.range
                    ),
                ));
            }
        }

        // ---- Geometry: place the slide line and the speaker. -----------
        // The slide axis is world +x. Place the assembly so everything
        // fits inside the room (or near the origin in free field).
        let (line_start, speaker_y_origin) = match &self.environment.room {
            Some(room) => {
                let x0 = (room.size.x / 2.0 - 2.0).max(0.5);
                (Vec3::new(x0, 2.0, self.phone_stature), 2.0)
            }
            None => (Vec3::new(0.0, 0.0, self.phone_stature), 0.0),
        };
        let speaker_stature = self.speaker_stature.unwrap_or(self.phone_stature);
        // In-direction placement: speaker broadside of the mic pair at the
        // slide's midpoint.
        let speaker_position = Vec3::new(
            line_start.x + self.slide_distance / 2.0 + self.phone.mic_separation / 2.0,
            speaker_y_origin + self.speaker_range,
            speaker_stature,
        );
        if let Some(room) = &self.environment.room {
            room.validate_point(speaker_position, "speaker_position")?;
            room.validate_point(line_start, "phone start")?;
        }
        // Co-speakers sit broadside of the slide line like the primary,
        // each at its own range and stature.
        let co_positions: Vec<Vec3> = self
            .co_speakers
            .iter()
            .map(|co| {
                Vec3::new(
                    speaker_position.x,
                    speaker_y_origin + co.range,
                    speaker_stature,
                )
            })
            .collect();
        if let Some(room) = &self.environment.room {
            for p in &co_positions {
                room.validate_point(*p, "co_speaker position")?;
            }
        }

        // ---- Motion. ----------------------------------------------------
        let motion =
            MotionBuilder::new(line_start, Vec2::new(1.0, 0.0), self.phone.mic_separation)?
                .profile(self.profile)
                .hold_duration(self.hold_duration)
                .slide_distance(self.slide_distance)
                .slide_duration(self.slide_duration)
                .build(self.slides, self.stature_drop, self.slides_low, motion_rng)?;

        // ---- Acoustics. --------------------------------------------------
        if !(self.direct_path_attenuation_db >= 0.0 && self.direct_path_attenuation_db.is_finite())
        {
            return Err(SimError::invalid(
                "direct_path_attenuation_db",
                format!(
                    "must be non-negative, got {}",
                    self.direct_path_attenuation_db
                ),
            ));
        }
        // The primary source first (same RNG draw order as ever), then
        // each co-speaker against its own phase fork. The obstruction
        // knob models something between the *user* and the primary
        // speaker, so it attenuates the primary's direct path only.
        let mut sources = Vec::with_capacity(1 + self.co_speakers.len());
        sources.push(self.source_scene(
            &self.speaker,
            speaker_position,
            self.direct_path_attenuation_db,
            motion.total_duration,
            ctx,
            phase_rng,
        )?);
        for ((co, position), rng) in self
            .co_speakers
            .iter()
            .zip(&co_positions)
            .zip(co_phase_rngs.iter_mut())
        {
            sources.push(self.source_scene(
                &co.speaker,
                *position,
                0.0,
                motion.total_duration,
                ctx,
                rng,
            )?);
        }
        let fs_effective = self.phone.effective_sample_rate();
        let out_len = (motion.total_duration * self.phone.audio_sample_rate).ceil() as usize;
        Ok(PreparedScene {
            speaker_position,
            co_positions,
            motion,
            sources,
            fs_effective,
            out_len,
        })
    }

    /// Renders one source's acoustics: its image-source (or free-field)
    /// propagation paths, the mic-shaped beacon waveform, and the
    /// emission schedule drawn from `phase_rng`.
    fn source_scene(
        &self,
        speaker: &SpeakerModel,
        position: Vec3,
        direct_attenuation_db: f64,
        total_duration: f64,
        ctx: &mut RenderContext,
        phase_rng: &mut SimRng,
    ) -> Result<SourceScene, SimError> {
        let mut paths: Vec<PropagationPath> = match &self.environment.room {
            Some(room) => room.image_sources(position)?,
            None => free_field(position),
        };
        if direct_attenuation_db > 0.0 {
            let k = 10f64.powf(-direct_attenuation_db / 20.0);
            for p in &mut paths {
                if p.order == 0 {
                    p.gain *= k;
                }
            }
        }
        let chirp = speaker.reference_chirp(self.phone.audio_sample_rate)?;
        // Pre-distort the beacon by the microphone's frequency response
        // (flat for the audible beacon; droops for near-ultrasonic ones).
        let chirp_samples = apply_mic_response_with(
            chirp.samples(),
            &|f| self.phone.mic_gain_at(f),
            self.phone.audio_sample_rate,
            &mut ctx.plans,
            &mut ctx.scratch,
        )?;
        let phase = phase_rng.uniform_in(0.0, speaker.period);
        let n_beacons = speaker.beacons_within(total_duration) + 1;
        let emissions: Vec<f64> = (0..n_beacons)
            .map(|k| phase + speaker.emission_time(k))
            .filter(|&t| t + speaker.chirp_duration < total_duration)
            .collect();
        if emissions.is_empty() {
            return Err(SimError::invalid(
                "duration",
                "session too short to contain a single beacon",
            ));
        }
        Ok(SourceScene {
            paths,
            chirp_samples,
            emissions,
            amplitude: speaker.amplitude_at_1m,
        })
    }

    /// The ground truth for a prepared scene (consumes the motion).
    fn ground_truth(
        &self,
        speaker_position: Vec3,
        co_speaker_positions: Vec<Vec3>,
        motion: PhoneMotion,
    ) -> GroundTruth {
        let dz_upper = speaker_position.z - self.phone_stature;
        let dz_lower = speaker_position.z - (self.phone_stature - self.stature_drop);
        let ground = self.speaker_range;
        GroundTruth {
            speaker_position,
            co_speaker_positions,
            motion,
            ground_distance: ground,
            slant_distance_upper: (ground * ground + dz_upper * dz_upper).sqrt(),
            slant_distance_lower: if self.slides_low > 0 {
                (ground * ground + dz_lower * dz_lower).sqrt()
            } else {
                (ground * ground + dz_upper * dz_upper).sqrt()
            },
            stature_drop: if self.slides_low > 0 {
                self.stature_drop
            } else {
                0.0
            },
        }
    }
}

/// One source's share of a prepared scene: propagation paths, the
/// mic-shaped beacon waveform, and the emission schedule.
struct SourceScene {
    paths: Vec<PropagationPath>,
    chirp_samples: Vec<f64>,
    emissions: Vec<f64>,
    amplitude: f64,
}

/// Everything a channel render needs, prepared once per scenario and
/// shared by the stereo and array paths. `sources[0]` is the primary
/// speaker; any co-speakers follow in configuration order.
struct PreparedScene {
    speaker_position: Vec3,
    co_positions: Vec<Vec3>,
    motion: PhoneMotion,
    sources: Vec<SourceScene>,
    fs_effective: f64,
    out_len: usize,
}

impl PreparedScene {
    /// Renders one clean (noise-free, unquantized) channel for a
    /// microphone trajectory: every source's contribution summed at the
    /// mic. Single-source scenes take the first render verbatim, so
    /// existing seeds are bit-identical to the pre-co-speaker renderer.
    fn clean_channel(&self, mic: &dyn Fn(f64) -> Vec3) -> Result<Vec<f64>, SimError> {
        let mut out: Option<Vec<f64>> = None;
        for source in &self.sources {
            let contribution = render_clean_channel(
                &source.chirp_samples,
                &source.emissions,
                &source.paths,
                mic,
                self.fs_effective,
                SPEED_OF_SOUND,
                source.amplitude,
                self.out_len,
            )?;
            match &mut out {
                None => out = Some(contribution),
                Some(acc) => {
                    for (a, c) in acc.iter_mut().zip(&contribution) {
                        *a += c;
                    }
                }
            }
        }
        Ok(out.expect("prepared scene always holds the primary source"))
    }
}

/// One point of a Fig. 7 rotation sweep: the phone's roll angle α and the
/// TDoA its microphone pair would measure there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RotationSample {
    /// The roll angle α between the speaker direction and the phone's +y
    /// axis, degrees.
    pub alpha_degrees: f64,
    /// The measured TDoA in milliseconds, quantized to the ADC grid with
    /// detection jitter.
    pub tdoa_ms: f64,
}

/// Simulates rolling the phone through `steps` evenly spaced α angles with
/// the speaker `range` metres away (paper Figs. 6–7).
///
/// TDoAs come from exact near-field geometry, quantized to the sampling
/// grid with sub-sample detection jitter of `jitter_samples` (0.1–0.3 is
/// realistic at the paper's SNRs; 0 gives the clean staircase).
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] for non-positive range/steps or
/// negative jitter.
pub fn rotation_sweep(
    phone: &PhoneModel,
    range: f64,
    steps: usize,
    jitter_samples: f64,
    seed: u64,
) -> Result<Vec<RotationSample>, SimError> {
    phone.validate()?;
    if range <= 0.0 {
        return Err(SimError::invalid("range", "must be positive"));
    }
    if steps < 4 {
        return Err(SimError::invalid("steps", "need at least 4 steps"));
    }
    if !(jitter_samples >= 0.0 && jitter_samples.is_finite()) {
        return Err(SimError::invalid("jitter_samples", "must be non-negative"));
    }
    let mut rng = SimRng::seed_from(seed);
    let speaker = Vec2::new(0.0, range); // fixed in world frame
    let half = phone.mic_separation / 2.0;
    let fs = phone.audio_sample_rate;
    let mut out = Vec::with_capacity(steps);
    for k in 0..steps {
        let alpha = 360.0 * k as f64 / steps as f64;
        // α is the angle between the speaker direction (world +y) and the
        // phone's +y axis: rotate the phone by −α to express its y axis.
        let phone_y = Vec2::new(0.0, 1.0).rotated(-alpha.to_radians());
        let mic1 = phone_y * half;
        let mic2 = phone_y * (-half);
        let dd = speaker.distance(mic1) - speaker.distance(mic2);
        let tdoa_samples = dd / SPEED_OF_SOUND * fs;
        let quantized = (tdoa_samples + rng.gaussian(0.0, jitter_samples)).round();
        out.push(RotationSample {
            alpha_degrees: alpha,
            tdoa_ms: quantized / fs * 1_000.0,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_builder() -> ScenarioBuilder {
        ScenarioBuilder::new(PhoneModel::galaxy_s4())
            .environment(Environment::anechoic())
            .speaker_range(3.0)
            .slides(1)
            .hold_duration(0.8)
            .seed(1)
    }

    #[test]
    fn render_seeds_matches_sequential_rendering() {
        let builder = quick_builder();
        let seeds = [11u64, 12, 13];
        let sequential: Vec<Recording> = seeds
            .iter()
            .map(|&s| builder.clone().seed(s).render().unwrap())
            .collect();
        for threads in [1, 3] {
            let pool = Pool::new(threads);
            let parallel: Vec<Recording> = builder
                .render_seeds(&seeds, &pool)
                .into_iter()
                .map(Result::unwrap)
                .collect();
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn render_produces_consistent_shapes() {
        let rec = quick_builder().render().unwrap();
        assert_eq!(rec.audio.left.len(), rec.audio.right.len());
        let expected_len =
            (rec.truth.motion.total_duration * rec.audio.sample_rate).ceil() as usize;
        assert_eq!(rec.audio.left.len(), expected_len);
        let imu_expected = (rec.truth.motion.total_duration * 100.0).ceil() as usize;
        assert_eq!(rec.imu.len(), imu_expected);
    }

    #[test]
    fn ground_truth_geometry() {
        let rec = quick_builder().render().unwrap();
        assert_eq!(rec.truth.ground_distance, 3.0);
        // Same-plane 2D setup: slant equals ground distance.
        assert!((rec.truth.slant_distance_upper - 3.0).abs() < 1e-12);
        assert_eq!(rec.truth.stature_drop, 0.0);
    }

    #[test]
    fn three_d_setup_has_different_slants() {
        let rec = quick_builder()
            .speaker_stature(0.5)
            .phone_stature(1.3)
            .slides(1)
            .slides_low(1)
            .stature_drop(0.4)
            .render()
            .unwrap();
        assert!(rec.truth.slant_distance_upper > rec.truth.ground_distance);
        assert!(rec.truth.slant_distance_lower < rec.truth.slant_distance_upper);
        assert_eq!(rec.truth.stature_drop, 0.4);
        assert_eq!(rec.truth.motion.stature_changes.len(), 1);
    }

    #[test]
    fn audio_contains_beacons() {
        let rec = quick_builder().render().unwrap();
        let peak = rec.audio.left.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(peak > 0.01, "peak {peak}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = quick_builder().render().unwrap();
        let b = quick_builder().render().unwrap();
        assert_eq!(a.audio.left, b.audio.left);
        assert_eq!(a.imu.accel, b.imu.accel);
        let c = quick_builder().seed(2).render().unwrap();
        assert_ne!(a.audio.left, c.audio.left);
    }

    #[test]
    fn room_containment_is_checked() {
        // 29 m range inside the 13 m-deep meeting room must fail.
        let result = ScenarioBuilder::new(PhoneModel::galaxy_s4())
            .environment(Environment::room_quiet())
            .speaker_range(29.9)
            .render();
        assert!(result.is_err());
    }

    #[test]
    fn range_bounds_are_checked() {
        assert!(quick_builder().speaker_range(0.0).render().is_err());
        assert!(quick_builder().speaker_range(100.0).render().is_err());
    }

    #[test]
    fn rotation_sweep_crosses_zero_at_90_and_270() {
        let sweep = rotation_sweep(&PhoneModel::galaxy_s4(), 5.0, 360, 0.0, 1).unwrap();
        assert_eq!(sweep.len(), 360);
        let at = |deg: usize| sweep[deg].tdoa_ms;
        assert!(at(90).abs() < 0.03, "tdoa at 90° = {}", at(90));
        assert!(at(270).abs() < 0.03, "tdoa at 270° = {}", at(270));
        // Extremes at 0° and 180°, approx ±D/S.
        let extreme = 0.1366 / SPEED_OF_SOUND * 1_000.0;
        assert!((at(0).abs() - extreme).abs() < 0.05, "at 0°: {}", at(0));
        assert!((at(180).abs() - extreme).abs() < 0.05);
        assert!(at(0) * at(180) < 0.0, "opposite signs at 0° and 180°");
    }

    #[test]
    fn rotation_sweep_rejects_bad_parameters() {
        let phone = PhoneModel::galaxy_s4();
        assert!(rotation_sweep(&phone, 0.0, 360, 0.0, 1).is_err());
        assert!(rotation_sweep(&phone, 5.0, 2, 0.0, 1).is_err());
        assert!(rotation_sweep(&phone, 5.0, 360, -1.0, 1).is_err());
    }

    #[test]
    fn obstruction_attenuates_only_the_direct_path() {
        // Render the same room scenario with and without a deep
        // obstruction; the obstructed peak must be far weaker even though
        // reflections are untouched.
        let clear = ScenarioBuilder::new(PhoneModel::galaxy_s4())
            .environment(Environment::room_quiet())
            .speaker_range(3.0)
            .slides(1)
            .seed(61)
            .render()
            .unwrap();
        let blocked = ScenarioBuilder::new(PhoneModel::galaxy_s4())
            .environment(Environment::room_quiet())
            .speaker_range(3.0)
            .slides(1)
            .direct_path_attenuation_db(30.0)
            .seed(61)
            .render()
            .unwrap();
        let peak = |x: &[f64]| x.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let p_clear = peak(&clear.audio.left);
        let p_blocked = peak(&blocked.audio.left);
        // Reflections keep the blocked level well above -30 dB of clear.
        assert!(p_blocked < 0.7 * p_clear, "{p_blocked} vs {p_clear}");
        assert!(p_blocked > 0.02 * p_clear, "{p_blocked} vs {p_clear}");
        // Negative attenuation is rejected.
        assert!(ScenarioBuilder::new(PhoneModel::galaxy_s4())
            .direct_path_attenuation_db(-3.0)
            .slides(1)
            .render()
            .is_err());
    }

    #[test]
    fn co_speaker_adds_a_second_source_without_touching_the_rest() {
        let solo = quick_builder().render().unwrap();
        let duet = quick_builder()
            .co_speaker(SpeakerModel::new().with_signature(1, 2), 4.0)
            .render()
            .unwrap();
        // Motion, IMU and noise draw from forks taken before the
        // co-speaker phase fork, so only the audio gains energy.
        assert_eq!(duet.imu, solo.imu);
        assert_eq!(duet.truth.motion, solo.truth.motion);
        assert_eq!(duet.audio.left.len(), solo.audio.left.len());
        assert_ne!(duet.audio.left, solo.audio.left);
        let energy = |s: &[f64]| s.iter().map(|v| v * v).sum::<f64>();
        assert!(energy(&duet.audio.left) > energy(&solo.audio.left));
        // Ground truth records where the co-speaker sits: broadside like
        // the primary, at its own range (anechoic ⇒ y origin 0).
        assert_eq!(duet.truth.co_speaker_positions.len(), 1);
        let co = duet.truth.co_speaker_positions[0];
        assert_eq!(co.x, duet.truth.speaker_position.x);
        assert!((co.y - 4.0).abs() < 1e-12);
        assert_eq!(co.z, duet.truth.speaker_position.z);
        assert!(solo.truth.co_speaker_positions.is_empty());
    }

    #[test]
    fn co_speaker_renders_are_deterministic_and_seed_sensitive() {
        let build = || {
            quick_builder()
                .co_speaker(SpeakerModel::new().with_signature(1, 3), 2.0)
                .co_speaker(SpeakerModel::new().with_signature(2, 3), 5.0)
        };
        let a = build().render().unwrap();
        let b = build().render().unwrap();
        assert_eq!(a, b);
        let c = build().seed(2).render().unwrap();
        assert_ne!(a.audio.left, c.audio.left);
        assert_eq!(a.truth.co_speaker_positions.len(), 2);
    }

    #[test]
    fn array_channels_still_match_stereo_with_co_speakers() {
        let builder = quick_builder().co_speaker(SpeakerModel::new().with_signature(1, 2), 3.5);
        let stereo = builder.render().unwrap();
        let array = builder
            .render_array(&MicArray::two_mic(PhoneModel::galaxy_s4().mic_separation))
            .unwrap();
        // The co-speaker phase fork sits before the extra-channel noise
        // forks in both paths, so the stereo compatibility contract
        // survives multi-beacon scenes.
        assert_eq!(array.audio.channels[0], stereo.audio.left);
        assert_eq!(array.audio.channels[1], stereo.audio.right);
    }

    #[test]
    fn co_speaker_configuration_is_validated() {
        assert!(quick_builder()
            .co_speaker(SpeakerModel::new(), 0.0)
            .render()
            .is_err());
        let mut bad = SpeakerModel::new();
        bad.chirp_f0 = 0.0;
        assert!(quick_builder().co_speaker(bad, 3.0).render().is_err());
        // Inside a room, a co-speaker must also fit in the room.
        assert!(ScenarioBuilder::new(PhoneModel::galaxy_s4())
            .environment(Environment::room_quiet())
            .speaker_range(3.0)
            .slides(1)
            .co_speaker(SpeakerModel::new(), 29.9)
            .render()
            .is_err());
    }

    #[test]
    fn inaudible_beacon_renders_in_high_band() {
        use crate::speaker::SpeakerModel;
        use hyperear_dsp::spectrum::band_energy_fraction;
        let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
            .environment(Environment::anechoic())
            .speaker_model(SpeakerModel::inaudible())
            .speaker_range(2.0)
            .slides(1)
            .seed(62)
            .render()
            .unwrap();
        // Find an active window and check its band.
        let fs = rec.audio.sample_rate;
        let win = (0.06 * fs) as usize;
        let (mut best, mut best_e) = (0usize, 0.0f64);
        let mut i = 0;
        while i + win < rec.audio.left.len() {
            let e: f64 = rec.audio.left[i..i + win].iter().map(|x| x * x).sum();
            if e > best_e {
                best_e = e;
                best = i;
            }
            i += win / 2;
        }
        let frac = band_energy_fraction(&rec.audio.left[best..best + win], fs, 15_000.0, 20_500.0)
            .unwrap();
        assert!(frac > 0.6, "high-band fraction {frac}");
    }

    #[test]
    fn array_render_first_two_channels_match_stereo_exactly() {
        let stereo = quick_builder().render().unwrap();
        let array = MicArray::triangle(PhoneModel::galaxy_s4().mic_separation);
        let rec = quick_builder().render_array(&array).unwrap();
        assert_eq!(rec.audio.channels.len(), 3);
        assert_eq!(rec.audio.channels[0], stereo.audio.left);
        assert_eq!(rec.audio.channels[1], stereo.audio.right);
        assert_eq!(rec.imu, stereo.imu);
        assert_eq!(rec.truth, stereo.truth);
        // The apex channel is a real third capture, not a copy.
        assert_eq!(rec.audio.channels[2].len(), stereo.audio.left.len());
        assert_ne!(rec.audio.channels[2], rec.audio.channels[0]);
        assert_ne!(rec.audio.channels[2], rec.audio.channels[1]);
    }

    #[test]
    fn array_render_rejects_mismatched_primary_pair() {
        // Triangle sized for the Note3 under an S4 phone: primary
        // baseline disagrees with the phone's mic separation.
        let err = quick_builder()
            .render_array(&MicArray::triangle(0.1512))
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidParameter { .. }), "{err}");
    }

    #[test]
    fn two_mic_array_render_is_the_stereo_render() {
        let stereo = quick_builder().render().unwrap();
        let rec = quick_builder()
            .render_array(&MicArray::two_mic(PhoneModel::galaxy_s4().mic_separation))
            .unwrap();
        assert_eq!(rec.audio.channels.len(), 2);
        assert_eq!(rec.audio.channels[0], stereo.audio.left);
        assert_eq!(rec.audio.channels[1], stereo.audio.right);
    }

    #[test]
    fn volunteer_configures_stature_and_profile() {
        let v = crate::volunteer::roster()[0].clone();
        let rec = quick_builder().volunteer(&v).render().unwrap();
        assert!((rec.truth.motion.origin.z - v.upper_slide_height()).abs() < 1e-12);
    }
}
