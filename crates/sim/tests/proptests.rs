//! Property-based tests of the simulation substrate, on the workspace's
//! own harness (`hyperear_util::prop`).

use hyperear_dsp::spectrum::band_energy_fraction;
use hyperear_geom::Vec3;
use hyperear_sim::motion::{min_jerk_progress, SlidePlan};
use hyperear_sim::noise::{generate, NoiseKind};
use hyperear_sim::rng::SimRng;
use hyperear_sim::room::Room;
use hyperear_util::prop::{self, f64_range, usize_range};
use hyperear_util::{prop_assert, prop_assume};

#[test]
fn rng_streams_are_seed_deterministic() {
    let strat = (usize_range(0, 1 << 20), usize_range(1, 64));
    prop::check("rng_streams_are_seed_deterministic", strat, |&(seed, n)| {
        let mut a = SimRng::seed_from(seed as u64);
        let mut b = SimRng::seed_from(seed as u64);
        let va = a.gaussian_vec(n, 0.0, 1.0);
        let vb = b.gaussian_vec(n, 0.0, 1.0);
        prop_assert!(va == vb, "seed {seed} diverged");
        prop::pass()
    });
}

#[test]
fn rng_forks_differ_from_parent_stream() {
    let strat = usize_range(0, 1 << 20);
    prop::check("rng_forks_differ_from_parent_stream", strat, |&seed| {
        let mut parent = SimRng::seed_from(seed as u64);
        let mut fork = parent.fork("child");
        let p = parent.gaussian_vec(8, 0.0, 1.0);
        let f = fork.gaussian_vec(8, 0.0, 1.0);
        prop_assert!(p != f, "fork reproduced the parent stream");
        prop::pass()
    });
}

#[test]
fn noise_has_requested_length_and_unit_rms() {
    let strat = (usize_range(0, 3), usize_range(256, 4_096));
    prop::check(
        "noise_has_requested_length_and_unit_rms",
        strat,
        |&(k, n)| {
            let kind = [
                NoiseKind::White,
                NoiseKind::Voice,
                NoiseKind::Music,
                NoiseKind::MallBusy,
            ][k];
            let mut rng = SimRng::seed_from(n as u64);
            let x = generate(kind, n, 44_100.0, &mut rng).unwrap();
            prop_assert!(x.len() == n);
            prop_assert!(x.iter().all(|v| v.is_finite()));
            let rms = (x.iter().map(|v| v * v).sum::<f64>() / n as f64).sqrt();
            prop_assert!((rms - 1.0).abs() < 1e-9, "{kind:?} rms {rms}");
            prop::pass()
        },
    );
}

#[test]
fn voice_noise_energy_sits_below_2khz() {
    // Fig. 19's premise for the chatting room: "human voice is normally
    // lower than 2kHz", i.e. mostly outside the 2–6.4 kHz chirp band.
    let strat = (usize_range(0, 1 << 16), usize_range(2_048, 8_192));
    prop::check("voice_noise_energy_sits_below_2khz", strat, |&(seed, n)| {
        let mut rng = SimRng::seed_from(seed as u64);
        let x = generate(NoiseKind::Voice, n, 44_100.0, &mut rng).unwrap();
        let below = band_energy_fraction(&x, 44_100.0, 0.0, 2_000.0).unwrap();
        prop_assert!(below > 0.85, "only {below:.3} of voice energy < 2 kHz");
        // And in particular it barely touches the chirp band itself.
        let in_band = band_energy_fraction(&x, 44_100.0, 2_000.0, 6_400.0).unwrap();
        prop_assert!(in_band < 0.15, "{in_band:.3} of voice energy in-band");
        prop::pass()
    });
}

#[test]
fn image_sources_contain_direct_path_with_bounded_gains() {
    let strat = (
        f64_range(0.5, 16.5),
        f64_range(0.5, 12.5),
        f64_range(0.3, 2.7),
    );
    prop::check(
        "image_sources_contain_direct_path_with_bounded_gains",
        strat,
        |&(x, y, z)| {
            let room = Room::meeting_room();
            let source = Vec3::new(x, y, z);
            let paths = room.image_sources(source).unwrap();
            let direct: Vec<_> = paths.iter().filter(|p| p.order == 0).collect();
            prop_assert!(direct.len() == 1, "{} direct paths", direct.len());
            prop_assert!((direct[0].source - source).norm() < 1e-12);
            prop_assert!((direct[0].gain - 1.0).abs() < 1e-12);
            for p in &paths {
                prop_assert!(p.order <= room.max_order);
                prop_assert!(p.gain > 0.0 && p.gain <= 1.0, "gain {}", p.gain);
            }
            prop::pass()
        },
    );
}

#[test]
fn min_jerk_is_monotone_from_rest_to_rest() {
    let strat = (f64_range(0.0, 1.0), f64_range(0.0, 1.0));
    prop::check(
        "min_jerk_is_monotone_from_rest_to_rest",
        strat,
        |&(t0, t1)| {
            let (lo, hi) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
            let (s_lo, v_lo, _) = min_jerk_progress(lo);
            let (s_hi, _, _) = min_jerk_progress(hi);
            prop_assert!((0.0..=1.0).contains(&s_lo));
            prop_assert!(s_lo <= s_hi + 1e-12, "progress not monotone");
            prop_assert!(v_lo >= -1e-12, "negative velocity {v_lo}");
            let (s0, v0, a0) = min_jerk_progress(0.0);
            let (s1, v1, a1) = min_jerk_progress(1.0);
            prop_assert!(s0.abs() < 1e-12 && v0.abs() < 1e-12 && a0.abs() < 1e-12);
            prop_assert!((s1 - 1.0).abs() < 1e-12 && v1.abs() < 1e-12 && a1.abs() < 1e-12);
            prop::pass()
        },
    );
}

#[test]
fn slide_plan_reaches_its_commanded_distance() {
    let strat = (
        f64_range(-0.8, 0.8),
        f64_range(0.2, 2.0),
        f64_range(0.0, 3.0),
    );
    prop::check(
        "slide_plan_reaches_its_commanded_distance",
        strat,
        |&(distance, duration, t)| {
            prop_assume!(distance.abs() > 1e-6);
            let plan = SlidePlan {
                start_time: 0.5,
                duration,
                distance,
            };
            let (s, _, _) = plan.kinematics(t);
            // Displacement is bracketed by rest and the commanded distance.
            let (lo, hi) = if distance < 0.0 {
                (distance, 0.0)
            } else {
                (0.0, distance)
            };
            prop_assert!(
                s >= lo - 1e-12 && s <= hi + 1e-12,
                "s {s} outside [{lo}, {hi}]"
            );
            let (s_end, v_end, _) = plan.kinematics(plan.end_time() + 1.0);
            prop_assert!((s_end - distance).abs() < 1e-12);
            prop_assert!(v_end.abs() < 1e-12);
            prop::pass()
        },
    );
}
