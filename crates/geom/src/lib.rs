//! # hyperear-geom
//!
//! Geometry for the [HyperEar] reproduction:
//!
//! - [`vec`](mod@vec) — 2D/3D vectors.
//! - [`array`] — the N-microphone array description (device frame,
//!   derived pairwise baselines) every layer consumes.
//! - [`devices`] — the named device-preset table (Galaxy S4 / Note 3 /
//!   synthetic multi-mic arrays); the single home of the mic constants.
//! - [`doa`] — far-field planar direction-of-arrival from pairwise
//!   delays (the 3-mic 2D DOA construction).
//! - [`rotation`] — planar rotations and z-axis (roll) frames, used by the
//!   Speaker Direction Finding component and by the motion simulator.
//! - [`hyperbola`] — the locus `|p−f1| − |p−f2| = Δd` a single TDoA
//!   measurement constrains the speaker to (paper Eq. 1).
//! - [`tdoa_regions`] — how many hyperbolas a given microphone separation
//!   and sampling rate can distinguish (paper Eq. 2) and how wide the
//!   ambiguity regions grow with range (paper Figs. 3–4).
//! - [`triangulate`] — the two-hyperbola intersection of paper Eqs. 5–6
//!   via damped Gauss-Newton, plus a joint multi-slide solver.
//! - [`project`] — the 3D projected-location math of paper Eq. 7.
//!
//! # Example
//!
//! Intersecting the two augmented hyperbolas of one slide:
//!
//! ```
//! use hyperear_geom::triangulate::{SlideGeometry, solve_slide};
//!
//! # fn main() -> Result<(), hyperear_geom::GeomError> {
//! // Ground truth: speaker at (0.05, 5.0) in the slide frame.
//! let truth = hyperear_geom::Vec2::new(0.05, 5.0);
//! let geometry = SlideGeometry::from_ground_truth(0.55, 0.1366, truth);
//! let solution = solve_slide(&geometry)?;
//! assert!((solution.position - truth).norm() < 1e-6);
//! # Ok(())
//! # }
//! ```
//!
//! [HyperEar]: https://doi.org/10.1109/ICDCS.2019.00073

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod devices;
pub mod doa;
mod error;
pub mod hyperbola;
pub mod project;
pub mod rotation;
pub mod tdoa_regions;
pub mod triangulate;
pub mod vec;

pub use array::{MicArray, MicPair, MAX_MICS, MAX_PAIRS};
pub use error::GeomError;
pub use vec::{Vec2, Vec3};
