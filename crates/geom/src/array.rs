//! First-class microphone-array description.
//!
//! HyperEar's paper device is exactly two microphones `mic_separation`
//! apart; everything downstream of the detector used to hard-code that.
//! [`MicArray`] generalizes the device model to N microphones at
//! arbitrary positions in the **device frame** — a 2D frame fixed to
//! the phone body with mic 0 at the origin and +y along the primary mic
//! pair (the phone's long axis, matching the roll-frame convention of
//! [`crate::rotation`]: the far-field primary-pair TDoA is ∝ cos α and
//! vanishes at α = 90°/270°). +x is the in-plane perpendicular, toward
//! the paper's "right side" of the phone. Pairwise baselines, pair axes
//! and midpoints are derived, never stored, so an array can't fall out
//! of sync with itself.
//!
//! The array is a fixed-capacity `Copy` value ([`MAX_MICS`] slots): warm
//! session paths can embed and pass it without ever touching the heap,
//! which keeps the counting-allocator gates honest for N-mic sessions.

use crate::error::GeomError;
use crate::vec::Vec2;
use hyperear_util::json::{FromJson, Json, JsonError, ToJson};

/// Maximum number of microphones an array can describe.
///
/// Eight covers every device class the roadmap names (phones, tablets,
/// smart speakers, small ad-hoc arrays) while keeping [`MicArray`]
/// `Copy` and pair scratch fixed-size.
pub const MAX_MICS: usize = 8;

/// Maximum number of distinct microphone pairs (`MAX_MICS choose 2`).
pub const MAX_PAIRS: usize = MAX_MICS * (MAX_MICS - 1) / 2;

/// Two placements closer than this are considered coincident, metres.
/// An order of magnitude below any plausible mic-capsule spacing, and
/// far above f64 noise at phone scale.
pub const COINCIDENT_EPS: f64 = 1e-6;

/// A set of microphones lying within this perpendicular deviation of a
/// single line is considered collinear, metres.
pub const COLLINEAR_EPS: f64 = 1e-6;

/// One derived microphone pair of an array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicPair {
    /// Index of the first microphone.
    pub i: usize,
    /// Index of the second microphone.
    pub j: usize,
    /// Distance between the two microphones, metres.
    pub baseline: f64,
    /// Unit vector from mic `i` toward mic `j` in the device frame.
    pub axis: Vec2,
    /// Midpoint of the pair in the device frame.
    pub midpoint: Vec2,
}

/// An N-microphone array in the device frame.
///
/// Positions are stored inline (`Copy`, no heap); `len` of the
/// fixed-capacity storage is the microphone count. Construct via the
/// presets ([`MicArray::two_mic`], [`MicArray::triangle`],
/// [`MicArray::rectangle`]) or [`MicArray::from_positions`], then call
/// [`MicArray::validate`] — constructors only enforce structural
/// bounds (2..=[`MAX_MICS`] mics), validation enforces geometry
/// (coincidence, and for DOA use, collinearity via
/// [`MicArray::validate_planar`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicArray {
    positions: [Vec2; MAX_MICS],
    len: usize,
}

impl MicArray {
    /// The paper's two-mic phone: mic 0 at the origin, mic 1 at
    /// `(0, separation)` — the primary pair spans the device +y axis
    /// (the phone's long axis).
    ///
    /// This is the compatibility preset: a config whose array is
    /// `two_mic(d)` runs the exact pre-refactor two-channel pipeline.
    pub fn two_mic(separation: f64) -> MicArray {
        let mut positions = [Vec2::ZERO; MAX_MICS];
        positions[1] = Vec2::new(0.0, separation);
        MicArray { positions, len: 2 }
    }

    /// Equilateral 3-mic triangle with side `separation`: the primary
    /// pair on +y plus an apex mic on the +x side of the midpoint. The
    /// smallest array that supports single-shot planar 2D DOA.
    pub fn triangle(separation: f64) -> MicArray {
        let mut positions = [Vec2::ZERO; MAX_MICS];
        positions[1] = Vec2::new(0.0, separation);
        positions[2] = Vec2::new(separation * 3f64.sqrt() / 2.0, separation / 2.0);
        MicArray { positions, len: 3 }
    }

    /// 4-mic rectangle: primary pair `(0,0)`–`(0,height)` plus the same
    /// pair shifted to `x = width`.
    pub fn rectangle(height: f64, width: f64) -> MicArray {
        let mut positions = [Vec2::ZERO; MAX_MICS];
        positions[1] = Vec2::new(0.0, height);
        positions[2] = Vec2::new(width, height);
        positions[3] = Vec2::new(width, 0.0);
        MicArray { positions, len: 4 }
    }

    /// Builds an array from explicit device-frame positions.
    ///
    /// # Errors
    ///
    /// [`GeomError::InvalidParameter`] if fewer than 2 or more than
    /// [`MAX_MICS`] positions are given, or any coordinate is
    /// non-finite.
    pub fn from_positions(positions: &[Vec2]) -> Result<MicArray, GeomError> {
        if positions.len() < 2 {
            return Err(GeomError::invalid(
                "positions",
                format!(
                    "an array needs at least 2 microphones, got {}",
                    positions.len()
                ),
            ));
        }
        if positions.len() > MAX_MICS {
            return Err(GeomError::invalid(
                "positions",
                format!(
                    "at most {MAX_MICS} microphones supported, got {}",
                    positions.len()
                ),
            ));
        }
        let mut stored = [Vec2::ZERO; MAX_MICS];
        for (k, p) in positions.iter().enumerate() {
            if !(p.x.is_finite() && p.y.is_finite()) {
                return Err(GeomError::invalid(
                    "positions",
                    format!(
                        "microphone {k} has a non-finite coordinate ({}, {})",
                        p.x, p.y
                    ),
                ));
            }
            stored[k] = *p;
        }
        Ok(MicArray {
            positions: stored,
            len: positions.len(),
        })
    }

    /// Number of microphones.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// The microphone positions in the device frame.
    pub fn positions(&self) -> &[Vec2] {
        &self.positions[..self.len]
    }

    /// Position of microphone `k`, or `None` past the end.
    pub fn position(&self, k: usize) -> Option<Vec2> {
        self.positions().get(k).copied()
    }

    /// Number of distinct microphone pairs, `n·(n−1)/2`.
    pub fn pair_count(&self) -> usize {
        self.len * (self.len - 1) / 2
    }

    /// Distance between mics `i` and `j`.
    ///
    /// # Errors
    ///
    /// [`GeomError::InvalidParameter`] if either index is out of range.
    pub fn baseline(&self, i: usize, j: usize) -> Result<f64, GeomError> {
        let pi = self
            .position(i)
            .ok_or_else(|| GeomError::invalid("i", format!("mic index {i} out of range")))?;
        let pj = self
            .position(j)
            .ok_or_else(|| GeomError::invalid("j", format!("mic index {j} out of range")))?;
        Ok(pi.distance(pj))
    }

    /// The derived pair `(i, j)` with baseline, axis, and midpoint.
    ///
    /// # Errors
    ///
    /// [`GeomError::InvalidParameter`] for out-of-range indices,
    /// [`GeomError::CoincidentMics`] if the pair has no usable axis.
    pub fn pair(&self, i: usize, j: usize) -> Result<MicPair, GeomError> {
        let pi = self
            .position(i)
            .ok_or_else(|| GeomError::invalid("i", format!("mic index {i} out of range")))?;
        let pj = self
            .position(j)
            .ok_or_else(|| GeomError::invalid("j", format!("mic index {j} out of range")))?;
        let baseline = pi.distance(pj);
        let axis = (pj - pi).normalized().ok_or(GeomError::CoincidentMics {
            i,
            j,
            distance: baseline,
        })?;
        Ok(MicPair {
            i,
            j,
            baseline,
            axis,
            midpoint: (pi + pj) * 0.5,
        })
    }

    /// Iterates the derived pairs in `(0,1), (0,2), …, (n−2,n−1)` order.
    ///
    /// The iterator skips nothing and allocates nothing; on a validated
    /// array every pair is well-formed, so the per-pair `Result` only
    /// surfaces coincident placements on unvalidated arrays.
    pub fn pairs(&self) -> impl Iterator<Item = Result<MicPair, GeomError>> + '_ {
        (0..self.len).flat_map(move |i| ((i + 1)..self.len).map(move |j| self.pair(i, j)))
    }

    /// Largest pairwise baseline (the array aperture), metres.
    pub fn aperture(&self) -> f64 {
        let mut best = 0.0f64;
        for i in 0..self.len {
            for j in (i + 1)..self.len {
                best = best.max(self.positions[i].distance(self.positions[j]));
            }
        }
        best
    }

    /// Centroid of the microphone positions.
    pub fn centroid(&self) -> Vec2 {
        let mut c = Vec2::ZERO;
        for p in self.positions() {
            c += *p;
        }
        c / self.len as f64
    }

    /// Largest perpendicular deviation of any mic from the line through
    /// the pair realizing the aperture. Zero for 2-mic arrays.
    pub fn max_line_deviation(&self) -> f64 {
        if self.len <= 2 {
            return 0.0;
        }
        // Anchor the line on the widest pair so near-coincident mics
        // can't fake collinearity by defining a noisy axis.
        let (mut ai, mut aj, mut best) = (0usize, 1usize, -1.0f64);
        for i in 0..self.len {
            for j in (i + 1)..self.len {
                let d = self.positions[i].distance(self.positions[j]);
                if d > best {
                    (ai, aj, best) = (i, j, d);
                }
            }
        }
        let origin = self.positions[ai];
        let Some(axis) = (self.positions[aj] - origin).normalized() else {
            return 0.0; // every mic coincides; coincidence check reports it
        };
        let mut dev = 0.0f64;
        for p in self.positions() {
            dev = dev.max(axis.cross(*p - origin).abs());
        }
        dev
    }

    /// Whether every microphone lies on one line (within
    /// [`COLLINEAR_EPS`]). Two-mic arrays are trivially collinear.
    pub fn is_collinear(&self) -> bool {
        self.len <= 2 || self.max_line_deviation() < COLLINEAR_EPS
    }

    /// Validates the array geometry: 2..=[`MAX_MICS`] microphones,
    /// finite coordinates, and no coincident pair.
    ///
    /// Collinearity is *not* rejected here — a straight line of mics is
    /// a legal TDoA array (the two-mic phone is one). Use
    /// [`MicArray::validate_planar`] where a 2D direction estimate is
    /// required.
    ///
    /// # Errors
    ///
    /// [`GeomError::InvalidParameter`] or [`GeomError::CoincidentMics`].
    pub fn validate(&self) -> Result<(), GeomError> {
        if !(2..=MAX_MICS).contains(&self.len) {
            return Err(GeomError::invalid(
                "mics",
                format!(
                    "an array needs 2..={MAX_MICS} microphones, got {}",
                    self.len
                ),
            ));
        }
        for (k, p) in self.positions().iter().enumerate() {
            if !(p.x.is_finite() && p.y.is_finite()) {
                return Err(GeomError::invalid(
                    "positions",
                    format!(
                        "microphone {k} has a non-finite coordinate ({}, {})",
                        p.x, p.y
                    ),
                ));
            }
        }
        for i in 0..self.len {
            for j in (i + 1)..self.len {
                let d = self.positions[i].distance(self.positions[j]);
                if d < COINCIDENT_EPS {
                    return Err(GeomError::CoincidentMics { i, j, distance: d });
                }
            }
        }
        Ok(())
    }

    /// [`MicArray::validate`] plus the planar-DOA observability
    /// requirement: at least 3 microphones spanning two dimensions.
    ///
    /// # Errors
    ///
    /// Everything [`MicArray::validate`] rejects, plus
    /// [`GeomError::CollinearMics`] for collinear (or 2-mic) layouts.
    pub fn validate_planar(&self) -> Result<(), GeomError> {
        self.validate()?;
        if self.is_collinear() {
            return Err(GeomError::CollinearMics {
                mics: self.len,
                deviation: self.max_line_deviation(),
            });
        }
        Ok(())
    }
}

impl ToJson for MicArray {
    fn to_json(&self) -> Json {
        Json::Array(
            self.positions()
                .iter()
                .map(|p| Json::Array(vec![Json::Number(p.x), Json::Number(p.y)]))
                .collect(),
        )
    }
}

impl FromJson for MicArray {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items = v
            .as_array()
            .ok_or_else(|| JsonError::schema("mic array must be a JSON array of [x, y] pairs"))?;
        let mut positions = Vec::with_capacity(items.len());
        for (k, item) in items.iter().enumerate() {
            let pair = item
                .as_array()
                .ok_or_else(|| JsonError::schema(format!("mic {k} must be an [x, y] pair")))?;
            if pair.len() != 2 {
                return Err(JsonError::schema(format!(
                    "mic {k} must have exactly 2 coordinates, got {}",
                    pair.len()
                )));
            }
            let x = pair[0]
                .as_f64()
                .ok_or_else(|| JsonError::schema(format!("mic {k} x must be a number")))?;
            let y = pair[1]
                .as_f64()
                .ok_or_else(|| JsonError::schema(format!("mic {k} y must be a number")))?;
            positions.push(Vec2::new(x, y));
        }
        MicArray::from_positions(&positions)
            .map_err(|e| JsonError::schema(format!("invalid mic array: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_mic_matches_paper_conventions() {
        let a = MicArray::two_mic(0.1366);
        a.validate().unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a.pair_count(), 1);
        let p = a.pair(0, 1).unwrap();
        assert!((p.baseline - 0.1366).abs() < 1e-15);
        assert_eq!(p.axis, Vec2::new(0.0, 1.0));
        assert!(a.is_collinear());
        assert!(matches!(
            a.validate_planar(),
            Err(GeomError::CollinearMics { mics: 2, .. })
        ));
    }

    #[test]
    fn triangle_spans_two_dimensions() {
        let a = MicArray::triangle(0.15);
        a.validate_planar().unwrap();
        assert_eq!(a.pair_count(), 3);
        for p in a.pairs() {
            let p = p.unwrap();
            assert!(
                (p.baseline - 0.15).abs() < 1e-12,
                "equilateral: {}",
                p.baseline
            );
        }
        assert!((a.aperture() - 0.15).abs() < 1e-12);
        assert!(!a.is_collinear());
    }

    #[test]
    fn rectangle_pairs_and_centroid() {
        let a = MicArray::rectangle(0.2, 0.1);
        a.validate_planar().unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(a.pair_count(), 6);
        assert_eq!(a.pairs().count(), 6);
        let c = a.centroid();
        assert!((c.x - 0.05).abs() < 1e-15 && (c.y - 0.1).abs() < 1e-15);
        assert!((a.aperture() - (0.2f64 * 0.2 + 0.1 * 0.1).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn coincident_and_collinear_are_typed() {
        let coincident =
            MicArray::from_positions(&[Vec2::ZERO, Vec2::new(1e-9, 0.0), Vec2::new(0.1, 0.0)])
                .unwrap();
        assert!(matches!(
            coincident.validate(),
            Err(GeomError::CoincidentMics { i: 0, j: 1, .. })
        ));

        let line =
            MicArray::from_positions(&[Vec2::ZERO, Vec2::new(0.05, 0.05), Vec2::new(0.1, 0.1)])
                .unwrap();
        line.validate().unwrap();
        assert!(matches!(
            line.validate_planar(),
            Err(GeomError::CollinearMics { mics: 3, .. })
        ));
    }

    #[test]
    fn construction_bounds_are_typed() {
        assert!(MicArray::from_positions(&[Vec2::ZERO]).is_err());
        let many = vec![Vec2::ZERO; MAX_MICS + 1];
        assert!(MicArray::from_positions(&many).is_err());
        assert!(MicArray::from_positions(&[Vec2::ZERO, Vec2::new(f64::NAN, 0.0)]).is_err());
    }

    #[test]
    fn json_round_trip() {
        let a = MicArray::triangle(0.1366);
        let j = a.to_json();
        let back = MicArray::from_json(&j).unwrap();
        assert_eq!(back, a);
        assert!(MicArray::from_json(&Json::Number(1.0)).is_err());
        assert!(MicArray::from_json(&Json::Array(vec![Json::Number(1.0)])).is_err());
    }
}
