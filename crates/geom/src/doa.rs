//! Far-field planar direction-of-arrival from pairwise delays.
//!
//! For a source far beyond the array aperture, the wavefront is a
//! plane: the distance from the source to mic `i` is `R − u·p_i` where
//! `u` is the unit direction from the array toward the source in the
//! device frame. Two mics then measure
//!
//! ```text
//! c·τ_ij = d_i − d_j = u·(p_j − p_i),     τ_ij = t_i − t_j
//! ```
//!
//! — one linear constraint on `u` per pair. Three non-collinear mics
//! give (at least) two independent constraints, which is exactly the
//! 3-microphone 2D DOA construction of Kovalyov et al. (PAPERS.md); the
//! solver below takes every pair and solves the 2×2 normal equations,
//! so redundant pairs of 4+-mic arrays average their noise down for
//! free.
//!
//! Everything here is fixed-size arithmetic on `Copy` values — no heap,
//! so the session hot path can call it under the counting-allocator
//! gates.

use crate::array::{MicArray, MAX_PAIRS};
use crate::error::GeomError;
use crate::vec::Vec2;

/// Relative conditioning floor for the 2×2 normal equations: below
/// this, the pair axes do not span the plane (collinear array).
const RANK_EPS: f64 = 1e-9;

/// A planar direction estimate in the device frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoaEstimate {
    /// Unit direction from the array toward the source.
    pub direction: Vec2,
    /// Bearing `atan2(direction.y, direction.x)`, radians in (−π, π].
    pub bearing: f64,
    /// RMS residual of the pairwise constraints at the solution,
    /// metres. Small residual ⇒ the delays were consistent with *some*
    /// far-field plane wave; large residual flags multipath or a
    /// near-field source.
    pub residual: f64,
    /// Number of pairwise delays that constrained the estimate.
    pub pairs_used: usize,
}

/// Solves the far-field planar DOA from per-pair delays.
///
/// `pair_delays[k]` is `t_i − t_j` (seconds, arrival at mic `i` minus
/// arrival at mic `j`) for the `k`-th pair in [`MicArray::pairs`] order
/// (`(0,1), (0,2), …`). Delays must cover every pair of the array.
///
/// # Errors
///
/// - [`GeomError::InvalidParameter`] for a non-positive speed of sound,
///   non-finite delays, or a delay count that doesn't match the array.
/// - Whatever [`MicArray::validate_planar`] rejects — in particular
///   [`GeomError::CollinearMics`] for arrays that cannot observe a 2D
///   direction.
/// - [`GeomError::Degenerate`] if the normal equations lose rank
///   numerically despite a planar-valid array.
pub fn planar_doa(
    array: &MicArray,
    pair_delays: &[f64],
    speed_of_sound: f64,
) -> Result<DoaEstimate, GeomError> {
    array.validate_planar()?;
    if !(speed_of_sound > 0.0 && speed_of_sound.is_finite()) {
        return Err(GeomError::invalid(
            "speed_of_sound",
            format!("must be positive and finite, got {speed_of_sound}"),
        ));
    }
    if pair_delays.len() != array.pair_count() {
        return Err(GeomError::invalid(
            "pair_delays",
            format!(
                "expected one delay per pair ({}), got {}",
                array.pair_count(),
                pair_delays.len()
            ),
        ));
    }
    // Accumulate the normal equations AᵀA·u = Aᵀb with rows
    // a_k = p_j − p_i and b_k = c·τ_ij, in fixed storage.
    let mut rows = [(Vec2::ZERO, 0.0f64); MAX_PAIRS];
    let mut n_rows = 0usize;
    let (mut axx, mut axy, mut ayy) = (0.0f64, 0.0f64, 0.0f64);
    let (mut bx, mut by) = (0.0f64, 0.0f64);
    for (k, pair) in array.pairs().enumerate() {
        let pair = pair?;
        let tau = pair_delays[k];
        if !tau.is_finite() {
            return Err(GeomError::invalid(
                "pair_delays",
                format!(
                    "delay for pair ({}, {}) is not finite: {tau}",
                    pair.i, pair.j
                ),
            ));
        }
        let a = pair.axis * pair.baseline; // p_j − p_i
        let b = speed_of_sound * tau;
        rows[n_rows] = (a, b);
        n_rows += 1;
        axx += a.x * a.x;
        axy += a.x * a.y;
        ayy += a.y * a.y;
        bx += a.x * b;
        by += a.y * b;
    }
    let det = axx * ayy - axy * axy;
    let scale = (axx + ayy).max(f64::MIN_POSITIVE);
    if det <= RANK_EPS * scale * scale {
        return Err(GeomError::Degenerate {
            what: format!("planar DOA normal equations are rank-deficient (det {det:.3e})"),
        });
    }
    let u = Vec2::new((ayy * bx - axy * by) / det, (axx * by - axy * bx) / det);
    let direction = u.normalized().ok_or_else(|| GeomError::Degenerate {
        what: "pairwise delays are all zero; direction is unobservable".into(),
    })?;
    let mut ss = 0.0f64;
    for &(a, b) in &rows[..n_rows] {
        let r = direction.dot(a) - b;
        ss += r * r;
    }
    Ok(DoaEstimate {
        direction,
        bearing: direction.angle(),
        residual: (ss / n_rows as f64).sqrt(),
        pairs_used: n_rows,
    })
}

/// Exact far-field pair delays a plane wave from `bearing` (radians,
/// device frame) would produce on `array` — `t_i − t_j` per pair in
/// [`MicArray::pairs`] order, written into `out`.
///
/// The forward model of [`planar_doa`]; property tests and simulators
/// use it to generate consistent ground-truth delays.
///
/// # Errors
///
/// [`GeomError::InvalidParameter`] if `out` is shorter than the pair
/// count or the speed of sound is invalid; pair errors propagate.
pub fn far_field_pair_delays(
    array: &MicArray,
    bearing: f64,
    speed_of_sound: f64,
    out: &mut [f64],
) -> Result<usize, GeomError> {
    if !(speed_of_sound > 0.0 && speed_of_sound.is_finite()) {
        return Err(GeomError::invalid(
            "speed_of_sound",
            format!("must be positive and finite, got {speed_of_sound}"),
        ));
    }
    if out.len() < array.pair_count() {
        return Err(GeomError::invalid(
            "out",
            format!(
                "needs one slot per pair ({}), got {}",
                array.pair_count(),
                out.len()
            ),
        ));
    }
    let u = Vec2::from_angle(bearing);
    let mut n = 0usize;
    for pair in array.pairs() {
        let pair = pair?;
        // c·(t_i − t_j) = u·(p_j − p_i)
        out[n] = u.dot(pair.axis * pair.baseline) / speed_of_sound;
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recover(array: &MicArray, bearing: f64) -> DoaEstimate {
        let mut delays = [0.0; MAX_PAIRS];
        let n = far_field_pair_delays(array, bearing, 343.0, &mut delays).unwrap();
        planar_doa(array, &delays[..n], 343.0).unwrap()
    }

    #[test]
    fn triangle_recovers_exact_bearings() {
        let a = MicArray::triangle(0.1366);
        for deg in [-170, -90, -31, 0, 17, 45, 90, 135, 179] {
            let bearing = (deg as f64).to_radians();
            let est = recover(&a, bearing);
            let err = (est.bearing - bearing).abs().min(
                (est.bearing - bearing + std::f64::consts::TAU)
                    .abs()
                    .min((est.bearing - bearing - std::f64::consts::TAU).abs()),
            );
            assert!(err < 1e-9, "bearing {deg}°: err {err}");
            assert!(est.residual < 1e-12);
            assert_eq!(est.pairs_used, 3);
        }
    }

    #[test]
    fn rectangle_uses_all_six_pairs() {
        let a = MicArray::rectangle(0.2, 0.08);
        let est = recover(&a, 1.1);
        assert_eq!(est.pairs_used, 6);
        assert!((est.bearing - 1.1).abs() < 1e-9);
    }

    #[test]
    fn collinear_array_is_rejected_typed() {
        let a = MicArray::two_mic(0.1366);
        let err = planar_doa(&a, &[0.0], 343.0).unwrap_err();
        assert!(matches!(err, GeomError::CollinearMics { .. }), "{err}");
    }

    #[test]
    fn bad_inputs_are_typed_errors() {
        let a = MicArray::triangle(0.1366);
        assert!(planar_doa(&a, &[0.0; 3], 0.0).is_err());
        assert!(planar_doa(&a, &[0.0; 2], 343.0).is_err());
        assert!(planar_doa(&a, &[f64::NAN, 0.0, 0.0], 343.0).is_err());
        let mut out = [0.0; 1];
        assert!(far_field_pair_delays(&a, 0.3, 343.0, &mut out).is_err());
    }

    #[test]
    fn all_zero_delays_are_degenerate_not_a_panic() {
        let a = MicArray::triangle(0.1366);
        let err = planar_doa(&a, &[0.0; 3], 343.0).unwrap_err();
        assert!(matches!(err, GeomError::Degenerate { .. }), "{err}");
    }

    #[test]
    fn noisy_delays_still_land_near_truth() {
        let a = MicArray::triangle(0.1366);
        let bearing = 0.7f64;
        let mut delays = [0.0; MAX_PAIRS];
        let n = far_field_pair_delays(&a, bearing, 343.0, &mut delays).unwrap();
        // ±2 µs of delay noise ≈ 0.7 mm path error on a 13.66 cm side.
        let noise = [2e-6, -1.5e-6, 1e-6];
        for k in 0..n {
            delays[k] += noise[k];
        }
        let est = planar_doa(&a, &delays[..n], 343.0).unwrap();
        assert!((est.bearing - bearing).abs() < 0.05, "{}", est.bearing);
        assert!(est.residual > 0.0);
    }
}
