//! Planar rotations and the phone's roll frame.
//!
//! Speaker Direction Finding rolls the phone around its z-axis; the angle
//! `α ∈ [0°, 360°)` between the speaker direction and the phone's +y axis
//! determines the measured TDoA (paper Fig. 6–7). This module provides the
//! angle conventions used throughout: wrapping, the left/right side rule,
//! and far-field TDoA prediction for a rolling phone.

use crate::{GeomError, Vec2};

/// Wraps an angle in degrees to `[0, 360)`.
///
/// # Example
///
/// ```
/// use hyperear_geom::rotation::wrap_degrees;
/// assert_eq!(wrap_degrees(-90.0), 270.0);
/// assert_eq!(wrap_degrees(720.5), 0.5);
/// ```
#[must_use]
pub fn wrap_degrees(angle: f64) -> f64 {
    let a = angle % 360.0;
    if a < 0.0 {
        a + 360.0
    } else {
        a
    }
}

/// Wraps an angle in radians to `(-π, π]`.
#[must_use]
pub fn wrap_radians(angle: f64) -> f64 {
    let tau = std::f64::consts::TAU;
    let mut a = angle % tau;
    if a <= -std::f64::consts::PI {
        a += tau;
    } else if a > std::f64::consts::PI {
        a -= tau;
    }
    a
}

/// Which side of the phone the speaker is on, per the paper's convention:
/// "the speaker is considered on the right-side of the phone when
/// α ∈ [0°, 180°) and on the left-side when α ∈ [180°, 360°)".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// α ∈ [0°, 180°): speaker toward the phone's +x axis.
    Right,
    /// α ∈ [180°, 360°): speaker toward the phone's -x axis.
    Left,
}

impl Side {
    /// Classifies an α angle (degrees, any range) into a side.
    #[must_use]
    pub fn from_alpha_degrees(alpha: f64) -> Side {
        if wrap_degrees(alpha) < 180.0 {
            Side::Right
        } else {
            Side::Left
        }
    }
}

impl hyperear_util::ToJson for Side {
    fn to_json(&self) -> hyperear_util::Json {
        hyperear_util::Json::String(
            match self {
                Side::Right => "right",
                Side::Left => "left",
            }
            .to_string(),
        )
    }
}

impl hyperear_util::FromJson for Side {
    fn from_json(json: &hyperear_util::Json) -> Result<Self, hyperear_util::JsonError> {
        match json.as_str() {
            Some("right") => Ok(Side::Right),
            Some("left") => Ok(Side::Left),
            other => Err(hyperear_util::JsonError::schema(format!(
                "side must be \"right\" or \"left\", got {other:?}"
            ))),
        }
    }
}

/// The phone's roll orientation around its z-axis.
///
/// `alpha_degrees` is the angle between the direction of the speaker and
/// the positive y-axis of the phone (the paper's α).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RollFrame {
    alpha_degrees: f64,
}

impl RollFrame {
    /// Creates a roll frame from α in degrees (wrapped to `[0, 360)`).
    #[must_use]
    pub fn from_alpha_degrees(alpha: f64) -> Self {
        RollFrame {
            alpha_degrees: wrap_degrees(alpha),
        }
    }

    /// The α angle in degrees, in `[0, 360)`.
    #[must_use]
    pub fn alpha_degrees(&self) -> f64 {
        self.alpha_degrees
    }

    /// The side of the phone the speaker is on.
    #[must_use]
    pub fn side(&self) -> Side {
        Side::from_alpha_degrees(self.alpha_degrees)
    }

    /// Whether this frame is an in-direction position: α = 90° or 270°
    /// within `tolerance_degrees`, meaning the speaker lies on the phone's
    /// x-axis and the inter-mic TDoA is zero.
    #[must_use]
    pub fn is_in_direction(&self, tolerance_degrees: f64) -> bool {
        let d90 = (self.alpha_degrees - 90.0).abs();
        let d270 = (self.alpha_degrees - 270.0).abs();
        d90 <= tolerance_degrees || d270 <= tolerance_degrees
    }

    /// Far-field prediction of the inter-microphone distance difference
    /// `d1 − d2` for a phone whose two microphones sit on its y-axis,
    /// separated by `mic_separation` metres, with the speaker at angle α.
    ///
    /// At α = 0° the speaker is along +y (endfire): the difference is
    /// maximal at `−D`; at α = 90°/270° (broadside) it is zero. The sign
    /// convention matches paper Fig. 7: the curve starts negative at
    /// α = 0°, crosses zero at 90°, peaks at 180°, and returns.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidParameter`] for a non-positive
    /// separation.
    pub fn far_field_distance_difference(&self, mic_separation: f64) -> Result<f64, GeomError> {
        if mic_separation <= 0.0 {
            return Err(GeomError::invalid(
                "mic_separation",
                format!("must be positive, got {mic_separation}"),
            ));
        }
        let alpha_rad = self.alpha_degrees.to_radians();
        // Mic1 at +D/2 on y, Mic2 at −D/2; speaker direction makes angle α
        // with +y. d1 − d2 ≈ −D·cos(α).
        Ok(-mic_separation * alpha_rad.cos())
    }

    /// The unit direction of the speaker in phone coordinates.
    ///
    /// α is measured from the phone's +y axis toward +x, so
    /// `direction = (sin α, cos α)`.
    #[must_use]
    pub fn speaker_direction(&self) -> Vec2 {
        let a = self.alpha_degrees.to_radians();
        Vec2::new(a.sin(), a.cos())
    }
}

/// Exact (near-field) distance difference `d1 − d2` for two microphones at
/// `mic1`/`mic2` and a speaker at `speaker`.
#[must_use]
pub fn distance_difference(speaker: Vec2, mic1: Vec2, mic2: Vec2) -> f64 {
    speaker.distance(mic1) - speaker.distance(mic2)
}

/// Checked variant of [`distance_difference`]: rejects coincident
/// microphone placements (for which every speaker position measures an
/// identically zero difference, so the pair carries no information).
///
/// # Errors
///
/// [`GeomError::CoincidentMics`] if `mic1` and `mic2` are closer than
/// [`crate::array::COINCIDENT_EPS`].
pub fn checked_distance_difference(
    speaker: Vec2,
    mic1: Vec2,
    mic2: Vec2,
) -> Result<f64, GeomError> {
    let d = mic1.distance(mic2);
    if d < crate::array::COINCIDENT_EPS {
        return Err(GeomError::CoincidentMics {
            i: 0,
            j: 1,
            distance: d,
        });
    }
    Ok(distance_difference(speaker, mic1, mic2))
}

/// Exact distance difference `d_i − d_j` for pair `(i, j)` of a
/// microphone array, with the array geometry validated first — the
/// array-aware entry point of the roll-frame module.
///
/// When `planar` is set the array must additionally span two dimensions
/// (the requirement of the planar DOA front-end), so collinear layouts
/// are rejected with a typed error rather than silently producing a
/// direction-ambiguous measurement.
///
/// # Errors
///
/// Everything [`crate::array::MicArray::validate`] rejects
/// ([`GeomError::CoincidentMics`] included); with `planar`,
/// [`GeomError::CollinearMics`] as well; and
/// [`GeomError::InvalidParameter`] for out-of-range indices.
pub fn pair_distance_difference(
    speaker: Vec2,
    array: &crate::array::MicArray,
    i: usize,
    j: usize,
    planar: bool,
) -> Result<f64, GeomError> {
    if planar {
        array.validate_planar()?;
    } else {
        array.validate()?;
    }
    let pair = array.pair(i, j)?;
    let half = pair.axis * (pair.baseline / 2.0);
    Ok(distance_difference(
        speaker,
        pair.midpoint - half,
        pair.midpoint + half,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_degrees_cases() {
        assert_eq!(wrap_degrees(0.0), 0.0);
        assert_eq!(wrap_degrees(359.9), 359.9);
        assert_eq!(wrap_degrees(360.0), 0.0);
        assert_eq!(wrap_degrees(-1.0), 359.0);
        assert_eq!(wrap_degrees(725.0), 5.0);
    }

    #[test]
    fn wrap_radians_cases() {
        use std::f64::consts::PI;
        assert!((wrap_radians(PI + 0.1) - (-PI + 0.1)).abs() < 1e-12);
        assert!((wrap_radians(-PI - 0.1) - (PI - 0.1)).abs() < 1e-12);
        assert_eq!(wrap_radians(0.3), 0.3);
    }

    #[test]
    fn side_rule_matches_paper() {
        assert_eq!(Side::from_alpha_degrees(0.0), Side::Right);
        assert_eq!(Side::from_alpha_degrees(90.0), Side::Right);
        assert_eq!(Side::from_alpha_degrees(179.9), Side::Right);
        assert_eq!(Side::from_alpha_degrees(180.0), Side::Left);
        assert_eq!(Side::from_alpha_degrees(270.0), Side::Left);
        assert_eq!(Side::from_alpha_degrees(-90.0), Side::Left);
    }

    #[test]
    fn in_direction_at_90_and_270() {
        assert!(RollFrame::from_alpha_degrees(90.0).is_in_direction(0.5));
        assert!(RollFrame::from_alpha_degrees(270.0).is_in_direction(0.5));
        assert!(RollFrame::from_alpha_degrees(92.0).is_in_direction(3.0));
        assert!(!RollFrame::from_alpha_degrees(80.0).is_in_direction(3.0));
        assert!(!RollFrame::from_alpha_degrees(0.0).is_in_direction(3.0));
    }

    #[test]
    fn far_field_tdoa_shape_matches_fig7() {
        // Zero at 90 and 270, extremes at 0 and 180, odd-symmetric halves.
        let d = 0.1366;
        let at = |alpha: f64| {
            RollFrame::from_alpha_degrees(alpha)
                .far_field_distance_difference(d)
                .unwrap()
        };
        assert!(at(90.0).abs() < 1e-12);
        assert!(at(270.0).abs() < 1e-12);
        assert!((at(0.0) + d).abs() < 1e-12);
        assert!((at(180.0) - d).abs() < 1e-12);
        // Monotonically increasing on (0, 180).
        let mut prev = at(0.0);
        for k in 1..=18 {
            let v = at(k as f64 * 10.0);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn far_field_agrees_with_exact_at_long_range() {
        let d = 0.14;
        let mic1 = Vec2::new(0.0, d / 2.0);
        let mic2 = Vec2::new(0.0, -d / 2.0);
        for alpha in [10.0, 45.0, 120.0, 200.0, 300.0] {
            let frame = RollFrame::from_alpha_degrees(alpha);
            let dir = frame.speaker_direction();
            let speaker = dir * 50.0; // 50 m away: far field
            let exact = distance_difference(speaker, mic1, mic2);
            let approx = frame.far_field_distance_difference(d).unwrap();
            assert!(
                (exact - approx).abs() < 1e-4,
                "alpha {alpha}: {exact} vs {approx}"
            );
        }
    }

    #[test]
    fn speaker_direction_conventions() {
        let up = RollFrame::from_alpha_degrees(0.0).speaker_direction();
        assert!((up - Vec2::new(0.0, 1.0)).norm() < 1e-12);
        let right = RollFrame::from_alpha_degrees(90.0).speaker_direction();
        assert!((right - Vec2::new(1.0, 0.0)).norm() < 1e-12);
        let left = RollFrame::from_alpha_degrees(270.0).speaker_direction();
        assert!((left - Vec2::new(-1.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn invalid_separation_rejected() {
        assert!(RollFrame::from_alpha_degrees(0.0)
            .far_field_distance_difference(0.0)
            .is_err());
        assert!(RollFrame::from_alpha_degrees(0.0)
            .far_field_distance_difference(-1.0)
            .is_err());
    }

    #[test]
    fn degenerate_placements_are_typed() {
        use crate::array::MicArray;
        let m = Vec2::new(0.0, 0.07);
        let err = checked_distance_difference(Vec2::new(1.0, 1.0), m, m).unwrap_err();
        assert!(matches!(err, GeomError::CoincidentMics { .. }), "{err}");

        let line =
            MicArray::from_positions(&[Vec2::ZERO, Vec2::new(0.07, 0.0), Vec2::new(0.14, 0.0)])
                .unwrap();
        // Non-planar use accepts a straight line...
        // Speaker above mic 0: mic 0 is nearer, so d_0 − d_2 < 0.
        let dd = pair_distance_difference(Vec2::new(0.0, 5.0), &line, 0, 2, false).unwrap();
        assert!(dd < 0.0);
        // ...planar use rejects it typed.
        let err = pair_distance_difference(Vec2::new(0.0, 5.0), &line, 0, 2, true).unwrap_err();
        assert!(
            matches!(err, GeomError::CollinearMics { mics: 3, .. }),
            "{err}"
        );

        // Matches the unchecked value when well-formed.
        let tri = MicArray::triangle(0.14);
        let speaker = Vec2::new(0.3, 2.0);
        let via_pair = pair_distance_difference(speaker, &tri, 0, 1, true).unwrap();
        let direct =
            distance_difference(speaker, tri.position(0).unwrap(), tri.position(1).unwrap());
        assert!((via_pair - direct).abs() < 1e-15);
    }

    #[test]
    fn distance_difference_signs() {
        let mic1 = Vec2::new(0.0, 0.07);
        let mic2 = Vec2::new(0.0, -0.07);
        // Speaker closer to mic1 ⇒ negative difference.
        let dd = distance_difference(Vec2::new(0.0, 5.0), mic1, mic2);
        assert!(dd < 0.0);
        // Symmetric speaker ⇒ zero.
        let dd = distance_difference(Vec2::new(5.0, 0.0), mic1, mic2);
        assert!(dd.abs() < 1e-12);
    }
}
