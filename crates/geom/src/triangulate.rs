//! Two-hyperbola triangulation of the augmented-TDoA slide geometry.
//!
//! Paper Section VI-A: a slide of length `D′` turns each microphone into a
//! synthetic two-element array along the slide axis. In the slide frame —
//! origin at the midpoint of Mic1's two positions, x-axis along the slide —
//! the speaker `(x, y)` satisfies
//!
//! ```text
//! √((x−D′/2)² + y²) − √((x+D′/2)² + y²) = Δd₁          (Eq. 5)
//! √((x−D−D′/2)² + y²) − √((x−D+D′/2)² + y²) = Δd₂      (Eq. 6)
//! ```
//!
//! where `D` is the Mic1→Mic2 offset along the slide axis and
//! `Δdᵢ = Δt′ᵢ·S` are the per-microphone augmented TDoAs. The intersection
//! is found by damped Gauss-Newton seeded with the far-field closed form;
//! the quantity HyperEar ultimately wants is `L = y`, the perpendicular
//! distance from the slide line to the speaker.

use crate::hyperbola::HalfHyperbola;
use crate::{GeomError, Vec2};

/// The measurements of one slide, expressed in the slide frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlideGeometry {
    /// Sliding distance `D′` between positions p1 and p2, in metres.
    pub d_prime: f64,
    /// Offset of Mic2 from Mic1 along the slide axis (the inter-microphone
    /// distance `D` on the phone), in metres. Negative for backward
    /// slides, where the slide frame's x-axis (the motion direction)
    /// points opposite to the phone's y-axis and Mic2 trails Mic1.
    pub mic_offset: f64,
    /// Augmented distance difference at Mic1: `(t2 − t1 − nT)·S`, in
    /// metres (`d(p2) − d(p1)` for Mic1).
    pub delta_d1: f64,
    /// Augmented distance difference at Mic2, in metres.
    pub delta_d2: f64,
}

impl SlideGeometry {
    /// Builds a geometry from measurements.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidParameter`] for non-positive `d_prime`
    /// or `mic_offset`, or non-finite measurements.
    pub fn new(
        d_prime: f64,
        mic_offset: f64,
        delta_d1: f64,
        delta_d2: f64,
    ) -> Result<Self, GeomError> {
        if !(d_prime > 0.0 && d_prime.is_finite()) {
            return Err(GeomError::invalid(
                "d_prime",
                format!("slide distance must be positive, got {d_prime}"),
            ));
        }
        if !(mic_offset != 0.0 && mic_offset.is_finite()) {
            return Err(GeomError::invalid(
                "mic_offset",
                format!("mic offset must be non-zero and finite, got {mic_offset}"),
            ));
        }
        if !delta_d1.is_finite() || !delta_d2.is_finite() {
            return Err(GeomError::invalid(
                "delta_d",
                "distance differences must be finite",
            ));
        }
        Ok(SlideGeometry {
            d_prime,
            mic_offset,
            delta_d1,
            delta_d2,
        })
    }

    /// Builds the exact measurements a noiseless slide would produce for a
    /// speaker at `speaker` (slide-frame coordinates).
    ///
    /// Mostly for tests and simulators: the forward model of Eqs. 5–6.
    #[must_use]
    pub fn from_ground_truth(d_prime: f64, mic_offset: f64, speaker: Vec2) -> Self {
        let m1_p1 = Vec2::new(-d_prime / 2.0, 0.0);
        let m1_p2 = Vec2::new(d_prime / 2.0, 0.0);
        let m2_p1 = Vec2::new(mic_offset - d_prime / 2.0, 0.0);
        let m2_p2 = Vec2::new(mic_offset + d_prime / 2.0, 0.0);
        SlideGeometry {
            d_prime,
            mic_offset,
            delta_d1: speaker.distance(m1_p2) - speaker.distance(m1_p1),
            delta_d2: speaker.distance(m2_p2) - speaker.distance(m2_p1),
        }
    }

    /// Mic1's pre- and post-slide positions in the slide frame.
    #[must_use]
    pub fn mic1_positions(&self) -> (Vec2, Vec2) {
        (
            Vec2::new(-self.d_prime / 2.0, 0.0),
            Vec2::new(self.d_prime / 2.0, 0.0),
        )
    }

    /// Mic2's pre- and post-slide positions in the slide frame.
    #[must_use]
    pub fn mic2_positions(&self) -> (Vec2, Vec2) {
        (
            Vec2::new(self.mic_offset - self.d_prime / 2.0, 0.0),
            Vec2::new(self.mic_offset + self.d_prime / 2.0, 0.0),
        )
    }

    /// The two half-hyperbolas of Eqs. 5 and 6, with measurements clamped
    /// into the feasible band `|Δd| ≤ D′` (noise can push a measurement
    /// slightly past the physical limit; clamping keeps the locus defined).
    ///
    /// # Errors
    ///
    /// Propagates [`GeomError::Degenerate`] from degenerate foci (cannot
    /// happen for validated geometries).
    pub fn hyperbolas(&self) -> Result<(HalfHyperbola, HalfHyperbola), GeomError> {
        let clamp = |dd: f64| {
            let lim = 0.999_999 * self.d_prime;
            dd.clamp(-lim, lim)
        };
        let (m1a, m1b) = self.mic1_positions();
        let (m2a, m2b) = self.mic2_positions();
        // residual convention: |p − f1| − |p − f2| = Δd with Δd = d(p2) − d(p1)
        // means f1 = p2-position, f2 = p1-position.
        let h1 = HalfHyperbola::new(m1b, m1a, clamp(self.delta_d1))?;
        let h2 = HalfHyperbola::new(m2b, m2a, clamp(self.delta_d2))?;
        Ok((h1, h2))
    }

    /// Closed-form far-field initial guess for the speaker position.
    ///
    /// In the far field `Δd₁ ≈ −D′·x/R` and `Δd₂ ≈ −D′·(x−D)/R`, giving
    /// `R ≈ D·D′/(Δd₂ − Δd₁)` and `x ≈ −Δd₁·R/D′`. Falls back to a
    /// broadside guess when the difference of differences is too small to
    /// invert (speaker effectively at infinity).
    #[must_use]
    pub fn far_field_guess(&self) -> Vec2 {
        let diff = self.delta_d2 - self.delta_d1;
        let r = if diff.abs() > 1e-9 {
            (self.mic_offset * self.d_prime / diff).abs()
        } else {
            100.0 // effectively at infinity; pick a large broadside range
        };
        let r = r.clamp(0.05, 200.0);
        let x = (-self.delta_d1 * r / self.d_prime).clamp(-r, r);
        let y = (r * r - x * x).max(1e-6).sqrt();
        Vec2::new(x, y)
    }
}

/// The result of a triangulation solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlideSolution {
    /// Estimated speaker position in the slide frame. `position.y` is the
    /// paper's `L`, the perpendicular distance to the slide line.
    pub position: Vec2,
    /// Gauss-Newton iterations used.
    pub iterations: usize,
    /// Final residual norm in metres.
    pub residual: f64,
}

impl SlideSolution {
    /// The perpendicular distance `L` from the slide line to the speaker.
    #[must_use]
    pub fn range(&self) -> f64 {
        self.position.y
    }
}

/// Solves one slide's two-hyperbola intersection (paper Eqs. 5–6).
///
/// Damped Gauss-Newton seeded by [`SlideGeometry::far_field_guess`]. The
/// solution is constrained to the upper half-plane (`y > 0`): the speaker's
/// side is resolved earlier by Speaker Direction Finding, so the mirror
/// ambiguity is already broken.
///
/// # Errors
///
/// Returns [`GeomError::NoConvergence`] if the residual fails to drop
/// below tolerance, and propagates construction errors from infeasible
/// geometry.
pub fn solve_slide(geometry: &SlideGeometry) -> Result<SlideSolution, GeomError> {
    solve_joint(std::slice::from_ref(geometry))
}

/// Jointly solves several slides for a single speaker position.
///
/// Every slide contributes two residuals; the normal equations of the
/// stacked Jacobian are solved each step. Slides must share a slide frame
/// (the 5-slide aggregation protocol re-slides along the same line).
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] for an empty slice, otherwise
/// as [`solve_slide`].
pub fn solve_joint(geometries: &[SlideGeometry]) -> Result<SlideSolution, GeomError> {
    solve_joint_with(geometries, &mut Vec::new())
}

/// Allocation-free form of [`solve_joint`]: the per-slide hyperbola pairs
/// live in a caller-owned buffer that is cleared and reused. Results are
/// identical to [`solve_joint`].
///
/// # Errors
///
/// Same conditions as [`solve_joint`].
pub fn solve_joint_with(
    geometries: &[SlideGeometry],
    hyperbolas: &mut Vec<(HalfHyperbola, HalfHyperbola)>,
) -> Result<SlideSolution, GeomError> {
    if geometries.is_empty() {
        return Err(GeomError::invalid("geometries", "need at least one slide"));
    }
    hyperbolas.clear();
    for g in geometries {
        hyperbolas.push(g.hyperbolas()?);
    }

    // Initial guess: average of per-slide far-field guesses.
    let mut p = geometries
        .iter()
        .fold(Vec2::ZERO, |acc, g| acc + g.far_field_guess())
        / geometries.len() as f64;
    if p.y <= 0.0 {
        p.y = 1.0;
    }

    let tol = 1e-10;
    let max_iter = 200;
    let mut lambda = 1e-6;
    let mut residual_norm = f64::INFINITY;

    for iter in 0..max_iter {
        // Stack residuals and normal equations.
        let (mut jtj00, mut jtj01, mut jtj11) = (0.0, 0.0, 0.0);
        let (mut jtr0, mut jtr1) = (0.0, 0.0);
        let mut sum_r2 = 0.0;
        for (h1, h2) in hyperbolas.iter() {
            for h in [h1, h2] {
                let r = h.residual(p);
                sum_r2 += r * r;
                let g = match h.residual_gradient(p) {
                    Some(g) => g,
                    None => Vec2::new(1e-6, 1e-6),
                };
                jtj00 += g.x * g.x;
                jtj01 += g.x * g.y;
                jtj11 += g.y * g.y;
                jtr0 += g.x * r;
                jtr1 += g.y * r;
            }
        }
        residual_norm = sum_r2.sqrt();
        if residual_norm < tol {
            return Ok(SlideSolution {
                position: p,
                iterations: iter,
                residual: residual_norm,
            });
        }
        // Levenberg damping on the normal equations.
        let a00 = jtj00 + lambda;
        let a11 = jtj11 + lambda;
        let det = a00 * a11 - jtj01 * jtj01;
        if det.abs() < 1e-300 {
            lambda = (lambda * 10.0).max(1e-6);
            continue;
        }
        let dx = (-jtr0 * a11 + jtr1 * jtj01) / det;
        let dy = (jtr0 * jtj01 - jtr1 * a00) / det;
        let mut candidate = p + Vec2::new(dx, dy);
        // Keep the iterate in the resolved half-plane and off the axis.
        if candidate.y < 1e-4 {
            candidate.y = 1e-4;
        }
        // Accept/reject with adaptive damping.
        let cand_r2: f64 = hyperbolas
            .iter()
            .flat_map(|(h1, h2)| [h1.residual(candidate), h2.residual(candidate)])
            .map(|r| r * r)
            .sum();
        if cand_r2 < sum_r2 {
            p = candidate;
            lambda = (lambda * 0.3).max(1e-12);
        } else {
            lambda = (lambda * 10.0).min(1e6);
            if lambda >= 1e6 {
                // Damping saturated: accept the best point found so far if
                // the residual is already small in physical terms (< 0.1 mm
                // per measurement), else report failure below.
                if residual_norm < 1e-4 * (2 * geometries.len()) as f64 {
                    return Ok(SlideSolution {
                        position: p,
                        iterations: iter,
                        residual: residual_norm,
                    });
                }
            }
        }
    }
    // Converged "well enough" is still useful: noisy measurements have no
    // exact intersection, so a small stationary residual is the expected
    // outcome, not an error.
    if residual_norm.is_finite() && residual_norm < 0.05 * (2 * geometries.len()) as f64 {
        return Ok(SlideSolution {
            position: p,
            iterations: max_iter,
            residual: residual_norm,
        });
    }
    Err(GeomError::NoConvergence {
        iterations: max_iter,
        residual: residual_norm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const S4_D: f64 = 0.1366;

    #[test]
    fn recovers_exact_ground_truth() {
        for speaker in [
            Vec2::new(0.05, 5.0),
            Vec2::new(-0.4, 3.0),
            Vec2::new(1.0, 7.0),
            Vec2::new(0.0, 1.0),
            Vec2::new(2.0, 2.0),
        ] {
            let g = SlideGeometry::from_ground_truth(0.55, S4_D, speaker);
            let sol = solve_slide(&g).unwrap();
            assert!(
                (sol.position - speaker).norm() < 1e-6,
                "speaker {speaker:?} got {:?}",
                sol.position
            );
        }
    }

    #[test]
    fn range_accessor_is_y() {
        let speaker = Vec2::new(0.1, 4.2);
        let g = SlideGeometry::from_ground_truth(0.5, S4_D, speaker);
        let sol = solve_slide(&g).unwrap();
        assert!((sol.range() - 4.2).abs() < 1e-6);
    }

    #[test]
    fn far_field_guess_is_close_at_range() {
        let speaker = Vec2::new(0.2, 6.0);
        let g = SlideGeometry::from_ground_truth(0.55, S4_D, speaker);
        let guess = g.far_field_guess();
        assert!(
            (guess - speaker).norm() < 0.5,
            "guess {guess:?} vs {speaker:?}"
        );
    }

    #[test]
    fn joint_solve_averages_noise() {
        // Perturb each slide's measurements; the joint solution should be
        // closer to the truth than the worst single-slide solution.
        let speaker = Vec2::new(0.1, 5.0);
        let noise = [1e-4, -8e-5, 5e-5, -3e-5, 7e-5];
        let slides: Vec<SlideGeometry> = noise
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let mut g = SlideGeometry::from_ground_truth(0.55, S4_D, speaker);
                g.delta_d1 += n;
                g.delta_d2 -= noise[(i + 2) % noise.len()];
                g
            })
            .collect();
        let joint = solve_joint(&slides).unwrap();
        let worst = slides
            .iter()
            .map(|g| (solve_slide(g).unwrap().position - speaker).norm())
            .fold(0.0f64, f64::max);
        let joint_err = (joint.position - speaker).norm();
        assert!(joint_err <= worst + 1e-9, "joint {joint_err} worst {worst}");
    }

    #[test]
    fn noisy_measurements_still_converge() {
        let speaker = Vec2::new(0.0, 7.0);
        let mut g = SlideGeometry::from_ground_truth(0.55, S4_D, speaker);
        g.delta_d1 += 2e-4; // ~0.2 mm measurement error
        g.delta_d2 -= 2e-4;
        let sol = solve_slide(&g).unwrap();
        // Error grows with range but must stay bounded.
        assert!(
            (sol.position - speaker).norm() < 2.0,
            "err {}",
            (sol.position - speaker).norm()
        );
        assert!(sol.residual < 1e-3);
    }

    #[test]
    fn longer_slides_reduce_noise_sensitivity() {
        // The Fig. 14 effect, in its geometric core: identical measurement
        // noise hurts short slides more.
        let speaker = Vec2::new(0.0, 5.0);
        let noise = 1e-4;
        let err_for = |d_prime: f64| {
            let mut g = SlideGeometry::from_ground_truth(d_prime, S4_D, speaker);
            g.delta_d1 += noise;
            g.delta_d2 -= noise;
            (solve_slide(&g).unwrap().position - speaker).norm()
        };
        let short = err_for(0.15);
        let long = err_for(0.55);
        assert!(long < short, "short {short} long {long}");
    }

    #[test]
    fn infeasible_measurements_are_clamped_not_fatal() {
        // Noise pushes Δd slightly past D′; the solver clamps and proceeds.
        let g = SlideGeometry::new(0.5, S4_D, 0.5001, 0.48).unwrap();
        let (h1, _) = g.hyperbolas().unwrap();
        assert!(h1.delta_d().abs() < 0.5);
    }

    #[test]
    fn negative_mic_offset_solves_backward_slides() {
        // A backward slide expressed in its motion frame: Mic2 trails.
        for speaker in [Vec2::new(0.1, 4.0), Vec2::new(-0.5, 6.0)] {
            let g = SlideGeometry::from_ground_truth(0.55, -S4_D, speaker);
            let sol = solve_slide(&g).unwrap();
            assert!(
                (sol.position - speaker).norm() < 1e-6,
                "speaker {speaker:?} got {:?}",
                sol.position
            );
        }
    }

    #[test]
    fn invalid_geometry_rejected() {
        assert!(SlideGeometry::new(0.0, S4_D, 0.0, 0.0).is_err());
        assert!(SlideGeometry::new(0.5, 0.0, 0.0, 0.0).is_err());
        assert!(SlideGeometry::new(0.5, S4_D, f64::NAN, 0.0).is_err());
        assert!(SlideGeometry::new(0.5, S4_D, 0.0, f64::INFINITY).is_err());
        assert!(solve_joint(&[]).is_err());
    }

    #[test]
    fn mic_positions_layout() {
        let g = SlideGeometry::from_ground_truth(0.6, 0.14, Vec2::new(0.0, 3.0));
        let (a, b) = g.mic1_positions();
        assert_eq!(a, Vec2::new(-0.3, 0.0));
        assert_eq!(b, Vec2::new(0.3, 0.0));
        let (c, d) = g.mic2_positions();
        assert_eq!(c, Vec2::new(0.14 - 0.3, 0.0));
        assert_eq!(d, Vec2::new(0.14 + 0.3, 0.0));
    }

    #[test]
    fn solution_stays_in_upper_half_plane() {
        let speaker = Vec2::new(0.3, 2.0);
        let g = SlideGeometry::from_ground_truth(0.5, S4_D, speaker);
        let sol = solve_slide(&g).unwrap();
        assert!(sol.position.y > 0.0);
    }

    #[test]
    fn forward_model_signs() {
        // Speaker broadside above the midpoint of mic1's travel: moving
        // toward +x takes mic1 slightly toward the speaker's x, so the
        // difference d(p2) − d(p1) reflects the speaker's x offset sign.
        let g = SlideGeometry::from_ground_truth(0.5, S4_D, Vec2::new(0.0, 5.0));
        assert!(g.delta_d1.abs() < 1e-9);
        // Speaker at +x: p2 is closer, so delta_d1 < 0.
        let g = SlideGeometry::from_ground_truth(0.5, S4_D, Vec2::new(1.0, 5.0));
        assert!(g.delta_d1 < 0.0);
    }
}
