//! Projected Location Estimation (paper Section VI-B, Eq. 7).
//!
//! In 3D the phone and speaker rarely share a horizontal plane, and the
//! speaker's height is unknown. HyperEar slides the phone on two horizontal
//! planes separated by a stature change `H`. Each plane yields a slant
//! distance `Lᵢ` to the speaker; the triangle `(L1, L2, H)` then gives the
//! elevation angle β and the *projected* (floor-map) distance
//! `L* = L1·sin β`, with `β = arccos((H² + L1² − L2²) / (2·H·L1))`.

use crate::{GeomError, Vec2};

/// The two-stature slant-range measurements of the 3D protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectionMeasurement {
    /// Slant distance from the upper slide plane to the speaker, metres.
    pub l1: f64,
    /// Slant distance from the lower slide plane to the speaker, metres.
    pub l2: f64,
    /// Vertical stature change between the planes (positive, metres),
    /// measured by integrating z-axis acceleration during the height
    /// change.
    pub h: f64,
}

/// The result of projected-location estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectedLocation {
    /// Elevation angle β at the upper plane, radians.
    pub beta: f64,
    /// Projected (floor-map) distance `L* = L1·sin β`, metres.
    pub l_star: f64,
    /// Height of the speaker below the upper plane: `L1·cos β`, metres.
    /// Positive means the speaker is below the upper slide plane.
    pub depth: f64,
}

impl ProjectionMeasurement {
    /// Validates and creates a measurement.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidParameter`] for non-positive or
    /// non-finite inputs.
    pub fn new(l1: f64, l2: f64, h: f64) -> Result<Self, GeomError> {
        for (name, v) in [("l1", l1), ("l2", l2), ("h", h)] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(GeomError::invalid(
                    name,
                    format!("must be positive and finite, got {v}"),
                ));
            }
        }
        Ok(ProjectionMeasurement { l1, l2, h })
    }

    /// Solves Eq. 7 for the projected distance.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::Degenerate`] when `(L1, L2, H)` violate the
    /// triangle inequality beyond numeric tolerance — physically impossible
    /// measurements, usually meaning the stature change estimate collapsed.
    pub fn solve(&self) -> Result<ProjectedLocation, GeomError> {
        let cos_beta =
            (self.h * self.h + self.l1 * self.l1 - self.l2 * self.l2) / (2.0 * self.h * self.l1);
        // Allow slight numeric overshoot; reject genuinely impossible sets.
        if cos_beta.abs() > 1.0 + 1e-6 {
            return Err(GeomError::Degenerate {
                what: format!(
                    "measurements (L1={}, L2={}, H={}) violate the triangle inequality (cos β = {cos_beta})",
                    self.l1, self.l2, self.h
                ),
            });
        }
        let cos_beta = cos_beta.clamp(-1.0, 1.0);
        let beta = cos_beta.acos();
        Ok(ProjectedLocation {
            beta,
            l_star: self.l1 * beta.sin(),
            depth: self.l1 * cos_beta,
        })
    }
}

/// The forward model: slant ranges and projected distance for a speaker at
/// horizontal distance `ground_distance` and `depth` metres below the
/// upper slide plane, with stature change `h`.
///
/// Useful for tests and the simulator.
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] for non-positive
/// `ground_distance` or `h`.
pub fn forward_model(
    ground_distance: f64,
    depth: f64,
    h: f64,
) -> Result<ProjectionMeasurement, GeomError> {
    if ground_distance <= 0.0 {
        return Err(GeomError::invalid("ground_distance", "must be positive"));
    }
    if h <= 0.0 {
        return Err(GeomError::invalid("h", "must be positive"));
    }
    let l1 = (ground_distance * ground_distance + depth * depth).sqrt();
    let d2 = depth - h; // speaker depth below the lower plane
    let l2 = (ground_distance * ground_distance + d2 * d2).sqrt();
    ProjectionMeasurement::new(l1, l2, h)
}

/// Combines the projected distance with the speaker's floor-map bearing to
/// produce a 2D floor position relative to the user.
///
/// `bearing` is the unit direction toward the speaker on the floor map
/// (from Speaker Direction Finding); `l_star` the projected distance.
#[must_use]
pub fn floor_position(bearing: Vec2, l_star: f64) -> Vec2 {
    bearing * l_star
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_then_solve_round_trips() {
        for (ground, depth, h) in [
            (5.0, 0.8, 0.4),
            (7.0, 1.0, 0.5),
            (2.0, 0.3, 0.3),
            (1.0, 1.2, 0.6),
        ] {
            let m = forward_model(ground, depth, h).unwrap();
            let sol = m.solve().unwrap();
            assert!(
                (sol.l_star - ground).abs() < 1e-9,
                "ground {ground}: L* {}",
                sol.l_star
            );
            assert!((sol.depth - depth).abs() < 1e-9);
        }
    }

    #[test]
    fn beta_is_right_angle_for_level_speaker() {
        // Speaker exactly on the upper plane: depth → 0, β → 90°.
        let m = forward_model(5.0, 1e-9, 0.5).unwrap();
        let sol = m.solve().unwrap();
        assert!((sol.beta - std::f64::consts::FRAC_PI_2).abs() < 1e-6);
        assert!((sol.l_star - 5.0).abs() < 1e-6);
    }

    #[test]
    fn speaker_above_upper_plane_gives_obtuse_beta() {
        // Negative depth (speaker above the phone's upper plane).
        let m = forward_model(4.0, -0.5, 0.4).unwrap();
        let sol = m.solve().unwrap();
        assert!(sol.beta > std::f64::consts::FRAC_PI_2);
        assert!((sol.l_star - 4.0).abs() < 1e-9);
        assert!((sol.depth + 0.5).abs() < 1e-9);
    }

    #[test]
    fn paper_stature_example() {
        // Speaker at 0.5 m stature, phone slides at ~1.3 m and ~0.9 m: the
        // depths below the planes are 0.8 and 0.4.
        let m = forward_model(7.0, 0.8, 0.4).unwrap();
        let sol = m.solve().unwrap();
        assert!((sol.l_star - 7.0).abs() < 1e-9);
    }

    #[test]
    fn errors_in_h_shift_l_star_mildly_for_far_speakers() {
        // For a far speaker, L* ≈ L1, so even a 10% stature-change error
        // moves the projection only slightly — the robustness PLE relies on.
        let truth = forward_model(7.0, 0.8, 0.4).unwrap();
        let perturbed = ProjectionMeasurement::new(truth.l1, truth.l2, 0.44).unwrap();
        let sol = perturbed.solve().unwrap();
        assert!((sol.l_star - 7.0).abs() < 0.1, "L* {}", sol.l_star);
    }

    #[test]
    fn impossible_triangle_is_degenerate() {
        // L2 larger than L1 + H: no triangle.
        let m = ProjectionMeasurement::new(1.0, 3.0, 0.5).unwrap();
        assert!(matches!(m.solve(), Err(GeomError::Degenerate { .. })));
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(ProjectionMeasurement::new(0.0, 1.0, 0.5).is_err());
        assert!(ProjectionMeasurement::new(1.0, -1.0, 0.5).is_err());
        assert!(ProjectionMeasurement::new(1.0, 1.0, 0.0).is_err());
        assert!(ProjectionMeasurement::new(f64::NAN, 1.0, 0.5).is_err());
        assert!(forward_model(0.0, 0.5, 0.4).is_err());
        assert!(forward_model(5.0, 0.5, 0.0).is_err());
    }

    #[test]
    fn floor_position_scales_bearing() {
        let p = floor_position(Vec2::new(0.6, 0.8), 5.0);
        assert!((p - Vec2::new(3.0, 4.0)).norm() < 1e-12);
    }

    #[test]
    fn slight_numeric_overshoot_is_tolerated() {
        // cos β marginally above 1 from floating point: clamped, not fatal.
        let l1 = 5.0;
        let h = 0.5;
        let l2 = (l1 - h) * (1.0 + 1e-9); // nearly collinear
        let m = ProjectionMeasurement::new(l1, l2, h).unwrap();
        let sol = m.solve().unwrap();
        assert!(sol.beta >= 0.0);
    }
}
