//! TDoA quantization regions.
//!
//! Section II-C of the paper derives the hard limits of naive TDoA
//! localization on a phone: the sampling rate quantizes the measurable
//! distance difference into steps of `S/fs` (≈7.78 mm at 44.1 kHz), the
//! microphone separation bounds the difference to `[−D, D]`, so only
//! `N = ⌊2·D·fs/S⌋` hyperbolas are distinguishable (Eq. 2) — 35 for a
//! Galaxy S4. The space between adjacent hyperbolas is one *ambiguity
//! region*; every point inside is indistinguishable. This module computes
//! region indices, widths, and the density maps of Fig. 4.

use crate::{GeomError, Vec2};

/// Quantized-TDoA geometry for a pair of receivers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TdoaQuantizer {
    mic1: Vec2,
    mic2: Vec2,
    /// Distance-difference resolution `S/fs` in metres.
    resolution: f64,
}

impl TdoaQuantizer {
    /// Creates a quantizer for receivers at `mic1`, `mic2` with sampling
    /// rate `sample_rate` and sound speed `speed_of_sound`.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidParameter`] for non-positive rates or
    /// speeds, and [`GeomError::CoincidentMics`] for coincident
    /// receivers.
    pub fn new(
        mic1: Vec2,
        mic2: Vec2,
        sample_rate: f64,
        speed_of_sound: f64,
    ) -> Result<Self, GeomError> {
        if sample_rate <= 0.0 {
            return Err(GeomError::invalid("sample_rate", "must be positive"));
        }
        if speed_of_sound <= 0.0 {
            return Err(GeomError::invalid("speed_of_sound", "must be positive"));
        }
        let d = mic1.distance(mic2);
        if d < crate::array::COINCIDENT_EPS {
            return Err(GeomError::CoincidentMics {
                i: 0,
                j: 1,
                distance: d,
            });
        }
        Ok(TdoaQuantizer {
            mic1,
            mic2,
            resolution: speed_of_sound / sample_rate,
        })
    }

    /// Creates a quantizer for pair `(i, j)` of a microphone array,
    /// validating the whole array first — so a coincident pair anywhere
    /// in the array (not just the requested one) is rejected typed.
    ///
    /// # Errors
    ///
    /// Everything [`crate::array::MicArray::validate`] rejects, plus the
    /// conditions of [`TdoaQuantizer::new`] and out-of-range indices.
    pub fn for_pair(
        array: &crate::array::MicArray,
        i: usize,
        j: usize,
        sample_rate: f64,
        speed_of_sound: f64,
    ) -> Result<Self, GeomError> {
        array.validate()?;
        let pair = array.pair(i, j)?;
        let half = pair.axis * (pair.baseline / 2.0);
        TdoaQuantizer::new(
            pair.midpoint - half,
            pair.midpoint + half,
            sample_rate,
            speed_of_sound,
        )
    }

    /// The distance-difference resolution `S/fs` in metres.
    #[must_use]
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// The receiver baseline in metres.
    #[must_use]
    pub fn baseline(&self) -> f64 {
        self.mic1.distance(self.mic2)
    }

    /// Number of distinguishable hyperbolas, paper Eq. 2:
    /// `N = ⌊2·D·fs/S⌋ = ⌊2·D / resolution⌋`.
    #[must_use]
    pub fn distinguishable_hyperbolas(&self) -> usize {
        (2.0 * self.baseline() / self.resolution).floor() as usize
    }

    /// The exact distance difference `|p−mic1| − |p−mic2|` at a point.
    #[must_use]
    pub fn distance_difference(&self, p: Vec2) -> f64 {
        p.distance(self.mic1) - p.distance(self.mic2)
    }

    /// The quantized region index of a point: `round(Δd / resolution)`.
    ///
    /// Two points with equal indices cannot be told apart by this receiver
    /// pair.
    #[must_use]
    pub fn region_index(&self, p: Vec2) -> i64 {
        (self.distance_difference(p) / self.resolution).round() as i64
    }

    /// The local width of the ambiguity region containing `p`, measured
    /// perpendicular to the hyperbola through `p`, in metres.
    ///
    /// Equal to `resolution / |∇Δd(p)|`. Grows without bound as the
    /// gradient collapses in the far field — the paper's Fig. 3 effect.
    ///
    /// Returns `None` at a receiver position (gradient undefined) or deep
    /// in the endfire cone where the gradient vanishes.
    #[must_use]
    pub fn region_width(&self, p: Vec2) -> Option<f64> {
        let u1 = (p - self.mic1).normalized()?;
        let u2 = (p - self.mic2).normalized()?;
        let g = (u1 - u2).norm();
        if g < 1e-12 {
            None
        } else {
            Some(self.resolution / g)
        }
    }

    /// Far-field broadside approximation of [`TdoaQuantizer::region_width`]
    /// at range `r`: `resolution · r / D`.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidParameter`] for a non-positive range.
    pub fn broadside_region_width(&self, r: f64) -> Result<f64, GeomError> {
        if r <= 0.0 {
            return Err(GeomError::invalid("r", "range must be positive"));
        }
        Ok(self.resolution * r / self.baseline())
    }

    /// Half-width of the *range* ambiguity of a two-hyperbola intersection
    /// at range `r`, with the second baseline `d_prime`:
    /// `resolution · r² / (2 · D · D′)`.
    ///
    /// This is the dominant error of the naive scheme (paper §II-C: up to
    /// 18.6 cm at 1 m and 266.7 cm at 5 m) and the quantity sliding the
    /// phone attacks by growing `D′` from 13.66 cm to 50–60 cm.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidParameter`] for non-positive `r` or
    /// `d_prime`.
    pub fn range_ambiguity(&self, r: f64, d_prime: f64) -> Result<f64, GeomError> {
        if r <= 0.0 {
            return Err(GeomError::invalid("r", "range must be positive"));
        }
        if d_prime <= 0.0 {
            return Err(GeomError::invalid("d_prime", "baseline must be positive"));
        }
        Ok(self.resolution * r * r / (2.0 * self.baseline() * d_prime))
    }
}

/// A rasterized map of quantized-TDoA region indices over a rectangle —
/// the data behind paper Fig. 4.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMap {
    /// Lower-left corner of the mapped area.
    pub origin: Vec2,
    /// Cell size in metres.
    pub cell: f64,
    /// Number of columns.
    pub cols: usize,
    /// Number of rows.
    pub rows: usize,
    /// Region index per cell, row-major from the origin.
    pub regions: Vec<i64>,
}

impl DensityMap {
    /// Rasterizes region indices on a `cols × rows` grid starting at
    /// `origin` with square cells of `cell` metres.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidParameter`] for zero dimensions or
    /// non-positive cell size.
    pub fn compute(
        quantizer: &TdoaQuantizer,
        origin: Vec2,
        cell: f64,
        cols: usize,
        rows: usize,
    ) -> Result<Self, GeomError> {
        if cols == 0 || rows == 0 {
            return Err(GeomError::invalid("cols/rows", "grid must be non-empty"));
        }
        if cell <= 0.0 {
            return Err(GeomError::invalid("cell", "cell size must be positive"));
        }
        let mut regions = Vec::with_capacity(cols * rows);
        for j in 0..rows {
            for i in 0..cols {
                let p = origin + Vec2::new((i as f64 + 0.5) * cell, (j as f64 + 0.5) * cell);
                regions.push(quantizer.region_index(p));
            }
        }
        Ok(DensityMap {
            origin,
            cell,
            cols,
            rows,
            regions,
        })
    }

    /// Number of distinct region indices present in the map.
    #[must_use]
    pub fn distinct_regions(&self) -> usize {
        let mut seen: Vec<i64> = self.regions.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Number of horizontal cell boundaries where the region index changes
    /// — a proxy for hyperbola density (more crossings = denser curves).
    #[must_use]
    pub fn boundary_crossings(&self) -> usize {
        let mut count = 0;
        for j in 0..self.rows {
            for i in 1..self.cols {
                if self.regions[j * self.cols + i] != self.regions[j * self.cols + i - 1] {
                    count += 1;
                }
            }
        }
        count
    }

    /// Boundary crossings within each vertical strip of the map, left to
    /// right, normalized per row — the "dense centre, sparse sides"
    /// profile of Fig. 4(a).
    #[must_use]
    pub fn crossing_profile(&self, strips: usize) -> Vec<f64> {
        let strips = strips.max(1).min(self.cols);
        let mut counts = vec![0usize; strips];
        for j in 0..self.rows {
            for i in 1..self.cols {
                if self.regions[j * self.cols + i] != self.regions[j * self.cols + i - 1] {
                    let strip = i * strips / self.cols;
                    counts[strip.min(strips - 1)] += 1;
                }
            }
        }
        counts
            .into_iter()
            .map(|c| c as f64 / self.rows as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 44_100.0;
    const S: f64 = 343.0;

    fn s4_quantizer() -> TdoaQuantizer {
        let d = 0.1366;
        TdoaQuantizer::new(Vec2::new(-d / 2.0, 0.0), Vec2::new(d / 2.0, 0.0), FS, S).unwrap()
    }

    #[test]
    fn s4_has_35_hyperbolas_per_paper() {
        // "With a sampling rate of 44.1kHz, this yields only 35 measurable
        // hyperbolas" (Section II-C).
        assert_eq!(s4_quantizer().distinguishable_hyperbolas(), 35);
    }

    #[test]
    fn note3_has_38_hyperbolas() {
        let d = 0.1512;
        let q =
            TdoaQuantizer::new(Vec2::new(-d / 2.0, 0.0), Vec2::new(d / 2.0, 0.0), FS, S).unwrap();
        assert_eq!(q.distinguishable_hyperbolas(), (2.0 * d * FS / S) as usize);
    }

    #[test]
    fn resolution_matches_paper() {
        // "the resolution of distance difference Δd ... is about 7.78mm"
        let q = s4_quantizer();
        assert!((q.resolution() - 0.007778).abs() < 1e-5);
    }

    #[test]
    fn region_index_symmetry() {
        let q = s4_quantizer();
        assert_eq!(q.region_index(Vec2::new(0.0, 3.0)), 0);
        let left = q.region_index(Vec2::new(-2.0, 3.0));
        let right = q.region_index(Vec2::new(2.0, 3.0));
        assert_eq!(left, -right);
        assert!(right > 0);
    }

    #[test]
    fn region_width_grows_with_range() {
        let q = s4_quantizer();
        let w1 = q.region_width(Vec2::new(0.0, 1.0)).unwrap();
        let w5 = q.region_width(Vec2::new(0.0, 5.0)).unwrap();
        assert!(w5 > 4.0 * w1, "w1 {w1} w5 {w5}");
        // Far-field approximation agrees broadside.
        let approx = q.broadside_region_width(5.0).unwrap();
        assert!((w5 - approx).abs() / approx < 0.01, "{w5} vs {approx}");
    }

    #[test]
    fn broadside_width_numbers() {
        // q·r/D at 1 m for the S4: 0.00778·1/0.1366 ≈ 5.7 cm.
        let q = s4_quantizer();
        let w = q.broadside_region_width(1.0).unwrap();
        assert!((0.05..0.07).contains(&w), "width {w}");
    }

    #[test]
    fn range_ambiguity_explodes_quadratically() {
        let q = s4_quantizer();
        let e1 = q.range_ambiguity(1.0, q.baseline()).unwrap();
        let e5 = q.range_ambiguity(5.0, q.baseline()).unwrap();
        assert!((e5 / e1 - 25.0).abs() < 1e-9);
        // Same order as the paper's naive-scheme numbers (18.6 cm @ 1 m,
        // 266.7 cm @ 5 m).
        assert!((0.1..0.5).contains(&e1), "1 m ambiguity {e1}");
        assert!((2.0..13.0).contains(&e5), "5 m ambiguity {e5}");
    }

    #[test]
    fn sliding_shrinks_range_ambiguity() {
        // Growing D′ from the phone width to 55 cm divides the range
        // ambiguity by ~4 — the core HyperEar effect.
        let q = s4_quantizer();
        let naive = q.range_ambiguity(5.0, 0.1366).unwrap();
        let slide = q.range_ambiguity(5.0, 0.55).unwrap();
        assert!((naive / slide - 0.55 / 0.1366).abs() < 1e-9);
    }

    #[test]
    fn region_width_undefined_at_mic() {
        let q = s4_quantizer();
        assert!(q.region_width(Vec2::new(-0.0683, 0.0)).is_none());
    }

    #[test]
    fn region_width_endfire_larger_than_broadside() {
        let q = s4_quantizer();
        let broadside = q.region_width(Vec2::new(0.0, 2.0)).unwrap();
        // 60° off broadside.
        let off = q.region_width(Vec2::new(2.0 * 0.866, 2.0 * 0.5)).unwrap();
        assert!(off > broadside);
    }

    #[test]
    fn density_map_center_denser_than_sides() {
        // Fig. 4(a): hyperbolas are densest near the perpendicular
        // bisector (centre) and sparser toward the sides.
        let q = s4_quantizer();
        let map = DensityMap::compute(&q, Vec2::new(-0.3, 0.05), 0.002, 300, 120).unwrap();
        let profile = map.crossing_profile(3);
        assert_eq!(profile.len(), 3);
        assert!(
            profile[1] > profile[0] && profile[1] > profile[2],
            "profile {profile:?}"
        );
    }

    #[test]
    fn wider_separation_gives_more_regions() {
        // Fig. 4(b): expanding D → D′ increases hyperbola density.
        let narrow = s4_quantizer();
        let wide = TdoaQuantizer::new(Vec2::new(-0.2, 0.0), Vec2::new(0.2, 0.0), FS, S).unwrap();
        let origin = Vec2::new(-0.3, 0.05);
        let m1 = DensityMap::compute(&narrow, origin, 0.002, 300, 120).unwrap();
        let m2 = DensityMap::compute(&wide, origin, 0.002, 300, 120).unwrap();
        assert!(m2.distinct_regions() > m1.distinct_regions());
        assert!(m2.boundary_crossings() > m1.boundary_crossings());
    }

    #[test]
    fn invalid_parameters_rejected() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(0.1, 0.0);
        assert!(TdoaQuantizer::new(a, b, 0.0, S).is_err());
        assert!(TdoaQuantizer::new(a, b, FS, 0.0).is_err());
        assert!(TdoaQuantizer::new(a, a, FS, S).is_err());
        let q = s4_quantizer();
        assert!(q.broadside_region_width(0.0).is_err());
        assert!(q.range_ambiguity(0.0, 0.5).is_err());
        assert!(q.range_ambiguity(1.0, 0.0).is_err());
        assert!(DensityMap::compute(&q, a, 0.01, 0, 5).is_err());
        assert!(DensityMap::compute(&q, a, 0.0, 5, 5).is_err());
    }

    #[test]
    fn coincident_receivers_are_typed() {
        let a = Vec2::new(0.0, 0.0);
        let err = TdoaQuantizer::new(a, a, FS, S).unwrap_err();
        assert!(
            matches!(err, GeomError::CoincidentMics { i: 0, j: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn for_pair_matches_direct_construction() {
        let arr = crate::array::MicArray::two_mic(0.1366);
        let q = TdoaQuantizer::for_pair(&arr, 0, 1, FS, S).unwrap();
        assert_eq!(q.distinguishable_hyperbolas(), 35);
        assert!((q.baseline() - 0.1366).abs() < 1e-12);
        // A coincident pair anywhere in the array is rejected typed.
        let bad = crate::array::MicArray::from_positions(&[
            Vec2::ZERO,
            Vec2::new(0.1, 0.0),
            Vec2::new(1e-9, 0.0),
        ])
        .unwrap();
        let err = TdoaQuantizer::for_pair(&bad, 0, 1, FS, S).unwrap_err();
        assert!(matches!(err, GeomError::CoincidentMics { .. }), "{err}");
        // Out-of-range pair index.
        assert!(TdoaQuantizer::for_pair(&arr, 0, 5, FS, S).is_err());
    }

    #[test]
    fn density_map_dimensions() {
        let q = s4_quantizer();
        let map = DensityMap::compute(&q, Vec2::new(0.0, 0.1), 0.01, 20, 10).unwrap();
        assert_eq!(map.regions.len(), 200);
        assert_eq!(map.cols, 20);
        assert_eq!(map.rows, 10);
    }
}
