//! Half-hyperbola loci from distance-difference measurements.
//!
//! A TDoA `Δt` between two receivers at `f1`, `f2` constrains the source to
//! the half-hyperbola `|p − f1| − |p − f2| = Δd` with `Δd = Δt·S`
//! (paper Eq. 1). This module represents that locus exactly (no conic
//! canonicalization, the solvers work on the residual directly).

use crate::{GeomError, Vec2};

/// The locus of points whose distance difference to two foci is constant:
/// `|p − f1| − |p − f2| = Δd`.
///
/// `Δd` is signed: positive means the source is farther from `f1`. Unlike a
/// full conic hyperbola, this is one branch only, which is exactly what one
/// TDoA measurement pins down.
///
/// # Example
///
/// ```
/// use hyperear_geom::{Vec2, hyperbola::HalfHyperbola};
///
/// # fn main() -> Result<(), hyperear_geom::GeomError> {
/// let f1 = Vec2::new(-0.07, 0.0);
/// let f2 = Vec2::new(0.07, 0.0);
/// let speaker = Vec2::new(0.5, 3.0);
/// let dd = speaker.distance(f1) - speaker.distance(f2);
/// let h = HalfHyperbola::new(f1, f2, dd)?;
/// assert!(h.residual(speaker).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HalfHyperbola {
    focus1: Vec2,
    focus2: Vec2,
    delta_d: f64,
}

impl HalfHyperbola {
    /// Creates the locus for foci `f1`, `f2` and signed distance
    /// difference `delta_d = |p−f1| − |p−f2|`.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InfeasibleMeasurement`] when `|delta_d|`
    /// exceeds the baseline `|f1 − f2|` (no point can have a distance
    /// difference larger than the focal separation) and
    /// [`GeomError::Degenerate`] for coincident foci.
    pub fn new(focus1: Vec2, focus2: Vec2, delta_d: f64) -> Result<Self, GeomError> {
        let baseline = focus1.distance(focus2);
        if baseline < 1e-12 {
            return Err(GeomError::Degenerate {
                what: "hyperbola foci coincide".into(),
            });
        }
        if delta_d.abs() > baseline {
            return Err(GeomError::InfeasibleMeasurement { delta_d, baseline });
        }
        Ok(HalfHyperbola {
            focus1,
            focus2,
            delta_d,
        })
    }

    /// First focus.
    #[must_use]
    pub fn focus1(&self) -> Vec2 {
        self.focus1
    }

    /// Second focus.
    #[must_use]
    pub fn focus2(&self) -> Vec2 {
        self.focus2
    }

    /// The signed distance difference defining the locus.
    #[must_use]
    pub fn delta_d(&self) -> f64 {
        self.delta_d
    }

    /// The focal separation.
    #[must_use]
    pub fn baseline(&self) -> f64 {
        self.focus1.distance(self.focus2)
    }

    /// Signed residual `(|p−f1| − |p−f2|) − Δd`; zero on the locus.
    #[must_use]
    pub fn residual(&self, p: Vec2) -> f64 {
        p.distance(self.focus1) - p.distance(self.focus2) - self.delta_d
    }

    /// Gradient of [`HalfHyperbola::residual`] with respect to `p`.
    ///
    /// Returns `None` when `p` coincides with a focus (gradient undefined).
    #[must_use]
    pub fn residual_gradient(&self, p: Vec2) -> Option<Vec2> {
        let u1 = (p - self.focus1).normalized()?;
        let u2 = (p - self.focus2).normalized()?;
        Some(u1 - u2)
    }

    /// Samples the locus as a polyline by scanning directions from the
    /// hyperbola centre and root-finding the radius on each ray.
    ///
    /// `max_radius` bounds how far out the branch is traced; `steps`
    /// controls angular resolution. Intended for plotting the
    /// density-of-hyperbolas figures (paper Fig. 4); the localization
    /// solvers never need sampled curves.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidParameter`] for non-positive
    /// `max_radius` or `steps < 2`.
    pub fn sample(&self, max_radius: f64, steps: usize) -> Result<Vec<Vec2>, GeomError> {
        if max_radius <= 0.0 {
            return Err(GeomError::invalid("max_radius", "must be positive"));
        }
        if steps < 2 {
            return Err(GeomError::invalid("steps", "need at least 2 steps"));
        }
        let center = (self.focus1 + self.focus2) * 0.5;
        let mut points = Vec::new();
        for k in 0..steps {
            let theta = k as f64 / steps as f64 * std::f64::consts::TAU;
            let dir = Vec2::from_angle(theta);
            // Residual along the ray center + r·dir, r ∈ (0, max_radius].
            let f = |r: f64| self.residual(center + dir * r);
            let (mut lo, mut hi) = (1e-9, max_radius);
            let (flo, fhi) = (f(lo), f(hi));
            if flo.signum() == fhi.signum() {
                continue; // The ray does not cross this branch.
            }
            let mut flo = flo;
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                let fm = f(mid);
                if fm.signum() == flo.signum() {
                    lo = mid;
                    flo = fm;
                } else {
                    hi = mid;
                }
            }
            points.push(center + dir * (0.5 * (lo + hi)));
        }
        Ok(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn foci() -> (Vec2, Vec2) {
        (Vec2::new(-0.07, 0.0), Vec2::new(0.07, 0.0))
    }

    #[test]
    fn construction_validates_feasibility() {
        let (f1, f2) = foci();
        assert!(HalfHyperbola::new(f1, f2, 0.1).is_ok());
        assert!(matches!(
            HalfHyperbola::new(f1, f2, 0.2),
            Err(GeomError::InfeasibleMeasurement { .. })
        ));
        assert!(matches!(
            HalfHyperbola::new(f1, f1, 0.0),
            Err(GeomError::Degenerate { .. })
        ));
    }

    #[test]
    fn residual_zero_on_generated_points() {
        let (f1, f2) = foci();
        for speaker in [
            Vec2::new(1.0, 2.0),
            Vec2::new(-0.5, 4.0),
            Vec2::new(0.01, 0.3),
            Vec2::new(3.0, -1.0),
        ] {
            let dd = speaker.distance(f1) - speaker.distance(f2);
            let h = HalfHyperbola::new(f1, f2, dd).unwrap();
            assert!(h.residual(speaker).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_difference_is_perpendicular_bisector() {
        let (f1, f2) = foci();
        let h = HalfHyperbola::new(f1, f2, 0.0).unwrap();
        for y in [-3.0, -1.0, 0.5, 2.0] {
            assert!(h.residual(Vec2::new(0.0, y)).abs() < 1e-12);
        }
        assert!(h.residual(Vec2::new(0.5, 1.0)).abs() > 1e-3);
    }

    #[test]
    fn accessors() {
        let (f1, f2) = foci();
        let h = HalfHyperbola::new(f1, f2, 0.05).unwrap();
        assert_eq!(h.focus1(), f1);
        assert_eq!(h.focus2(), f2);
        assert_eq!(h.delta_d(), 0.05);
        assert!((h.baseline() - 0.14).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let (f1, f2) = foci();
        let h = HalfHyperbola::new(f1, f2, 0.05).unwrap();
        let p = Vec2::new(0.8, 1.3);
        let g = h.residual_gradient(p).unwrap();
        let eps = 1e-7;
        let gx = (h.residual(p + Vec2::new(eps, 0.0)) - h.residual(p - Vec2::new(eps, 0.0)))
            / (2.0 * eps);
        let gy = (h.residual(p + Vec2::new(0.0, eps)) - h.residual(p - Vec2::new(0.0, eps)))
            / (2.0 * eps);
        assert!((g.x - gx).abs() < 1e-6);
        assert!((g.y - gy).abs() < 1e-6);
    }

    #[test]
    fn gradient_undefined_at_focus() {
        let (f1, f2) = foci();
        let h = HalfHyperbola::new(f1, f2, 0.0).unwrap();
        assert!(h.residual_gradient(f1).is_none());
    }

    #[test]
    fn sampled_points_lie_on_locus() {
        let (f1, f2) = foci();
        let h = HalfHyperbola::new(f1, f2, 0.08).unwrap();
        let pts = h.sample(5.0, 256).unwrap();
        assert!(pts.len() > 32, "got {} points", pts.len());
        for p in &pts {
            assert!(h.residual(*p).abs() < 1e-6, "residual {}", h.residual(*p));
        }
        // Positive Δd ⇒ farther from f1 ⇒ branch bends toward f2 (x > 0).
        assert!(pts.iter().all(|p| p.x > 0.0));
    }

    #[test]
    fn sample_rejects_bad_parameters() {
        let (f1, f2) = foci();
        let h = HalfHyperbola::new(f1, f2, 0.05).unwrap();
        assert!(h.sample(0.0, 100).is_err());
        assert!(h.sample(1.0, 1).is_err());
    }

    #[test]
    fn sign_convention() {
        let (f1, f2) = foci();
        // Speaker far on the +x side is closer to f2: positive difference.
        let speaker = Vec2::new(5.0, 0.0);
        let dd = speaker.distance(f1) - speaker.distance(f2);
        assert!(dd > 0.0);
        // And |dd| approaches the baseline in the far field along the axis.
        assert!((dd - 0.14).abs() < 1e-3);
    }
}
