//! The named device-preset table.
//!
//! Every mic-separation constant the reproduction uses lives here, once.
//! `hyperear::config`, `hyperear_sim::phone`, and the bench tables all
//! import these presets instead of repeating the `0.1366` / `0.1512`
//! literals, so a measured correction to a device's geometry propagates
//! everywhere from a single edit.

use crate::array::MicArray;

/// One named device: the phone models the paper measures (Table at
/// §VI-A) plus synthetic multi-mic arrays for the generalized pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DevicePreset {
    /// Stable preset identifier (`"galaxy-s4"`, ...).
    pub name: &'static str,
    /// Distance between the primary microphone pair, metres.
    pub mic_separation: f64,
    /// Number of microphones the device exposes.
    pub mic_count: usize,
}

impl DevicePreset {
    /// The microphone array this preset describes, in the device frame.
    ///
    /// Two-mic phones get the canonical primary pair; the synthetic
    /// presets get their triangle / rectangle layouts.
    pub fn array(&self) -> MicArray {
        match self.mic_count {
            3 => MicArray::triangle(self.mic_separation),
            4 => MicArray::rectangle(self.mic_separation, self.mic_separation / 2.0),
            _ => MicArray::two_mic(self.mic_separation),
        }
    }
}

/// Samsung Galaxy S4: top/bottom mics 13.66 cm apart (paper §VI-A).
pub const GALAXY_S4: DevicePreset = DevicePreset {
    name: "galaxy-s4",
    mic_separation: 0.1366,
    mic_count: 2,
};

/// Samsung Galaxy Note 3: top/bottom mics 15.12 cm apart (paper §VI-A).
pub const GALAXY_NOTE3: DevicePreset = DevicePreset {
    name: "galaxy-note3",
    mic_separation: 0.1512,
    mic_count: 2,
};

/// Synthetic 3-mic tablet: an equilateral triangle at S4 aperture, the
/// smallest array that supports single-shot planar 2D DOA.
pub const TABLET_TRIANGLE: DevicePreset = DevicePreset {
    name: "tablet-triangle",
    mic_separation: 0.1366,
    mic_count: 3,
};

/// Synthetic 4-mic smart-speaker rectangle at Note 3 aperture.
pub const SPEAKER_RECT: DevicePreset = DevicePreset {
    name: "speaker-rect",
    mic_separation: 0.1512,
    mic_count: 4,
};

/// Every known preset, for table-driven experiments and lookups.
pub const DEVICE_PRESETS: [DevicePreset; 4] =
    [GALAXY_S4, GALAXY_NOTE3, TABLET_TRIANGLE, SPEAKER_RECT];

/// Looks a preset up by its stable name.
pub fn device_preset(name: &str) -> Option<DevicePreset> {
    DEVICE_PRESETS.iter().copied().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_pinned() {
        assert_eq!(GALAXY_S4.mic_separation, 0.1366);
        assert_eq!(GALAXY_NOTE3.mic_separation, 0.1512);
    }

    #[test]
    fn lookup_by_name_round_trips() {
        for p in DEVICE_PRESETS {
            assert_eq!(device_preset(p.name), Some(p));
        }
        assert_eq!(device_preset("no-such-device"), None);
    }

    #[test]
    fn preset_arrays_validate_and_match_separation() {
        for p in DEVICE_PRESETS {
            let a = p.array();
            a.validate().unwrap();
            assert_eq!(a.len(), p.mic_count);
            assert!((a.baseline(0, 1).unwrap() - p.mic_separation).abs() < 1e-12);
        }
    }
}
