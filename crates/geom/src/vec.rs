//! 2D and 3D vectors.
//!
//! Deliberately minimal: just the operations the localization math and the
//! simulators need, with `f64` components throughout.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2D vector / point.
///
/// # Example
///
/// ```
/// use hyperear_geom::Vec2;
///
/// let a = Vec2::new(3.0, 4.0);
/// assert_eq!(a.norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared norm, avoiding the square root.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (z-component of the 3D cross product).
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Unit vector in the same direction; returns `None` for (near-)zero
    /// vectors.
    #[must_use]
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(self / n)
        }
    }

    /// The polar angle `atan2(y, x)` in radians.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Unit vector at the given polar angle (radians).
    #[inline]
    pub fn from_angle(theta: f64) -> Vec2 {
        Vec2::new(theta.cos(), theta.sin())
    }

    /// Rotates the vector by `theta` radians counter-clockwise.
    #[must_use]
    pub fn rotated(self, theta: f64) -> Vec2 {
        let (s, c) = theta.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// The perpendicular vector (rotated +90°).
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, k: f64) -> Vec2 {
        Vec2::new(self.x * k, self.y * k)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, k: f64) -> Vec2 {
        Vec2::new(self.x / k, self.y / k)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

/// A 3D vector / point.
///
/// Used for room coordinates, speaker/phone placement, and IMU axes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component (height).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Squared norm.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[must_use]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Unit vector in the same direction; `None` for (near-)zero vectors.
    #[must_use]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(self / n)
        }
    }

    /// The horizontal (floor-plane) projection, dropping z.
    #[inline]
    pub fn xy(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Lifts a 2D point to 3D at the given height.
    #[inline]
    pub fn from_xy(v: Vec2, z: f64) -> Vec3 {
        Vec3::new(v.x, v.y, z)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        self.x += rhs.x;
        self.y += rhs.y;
        self.z += rhs.z;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        self.x -= rhs.x;
        self.y -= rhs.y;
        self.z -= rhs.z;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, k: f64) -> Vec3 {
        Vec3::new(self.x / k, self.y / k, self.z / k)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec2_basics() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Vec2::new(1.5, -0.5));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
    }

    #[test]
    fn vec2_norm_and_distance() {
        assert_eq!(Vec2::new(3.0, 4.0).norm(), 5.0);
        assert_eq!(Vec2::new(3.0, 4.0).norm_sqr(), 25.0);
        assert_eq!(Vec2::new(1.0, 1.0).distance(Vec2::new(4.0, 5.0)), 5.0);
    }

    #[test]
    fn vec2_rotation() {
        let x = Vec2::new(1.0, 0.0);
        let r = x.rotated(std::f64::consts::FRAC_PI_2);
        assert!((r.x).abs() < 1e-12);
        assert!((r.y - 1.0).abs() < 1e-12);
        assert_eq!(x.perp(), Vec2::new(0.0, 1.0));
        let back = r.rotated(-std::f64::consts::FRAC_PI_2);
        assert!((back - x).norm() < 1e-12);
    }

    #[test]
    fn vec2_angles() {
        assert!((Vec2::new(0.0, 1.0).angle() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        let u = Vec2::from_angle(0.7);
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!((u.angle() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn vec2_normalized() {
        let n = Vec2::new(0.0, 5.0).normalized().unwrap();
        assert_eq!(n, Vec2::new(0.0, 1.0));
        assert!(Vec2::ZERO.normalized().is_none());
    }

    #[test]
    fn vec2_assign_ops() {
        let mut a = Vec2::new(1.0, 1.0);
        a += Vec2::new(2.0, 3.0);
        assert_eq!(a, Vec2::new(3.0, 4.0));
        a -= Vec2::new(1.0, 1.0);
        assert_eq!(a, Vec2::new(2.0, 3.0));
    }

    #[test]
    fn vec3_basics() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.0, 1.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.0, 4.0));
        assert_eq!(a - b, Vec3::new(2.0, 2.0, 2.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-b, Vec3::new(1.0, 0.0, -1.0));
        assert_eq!(a.dot(b), 2.0);
    }

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 1.0, 0.5);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
        // Right-handedness: x × y = z.
        let z = Vec3::new(1.0, 0.0, 0.0).cross(Vec3::new(0.0, 1.0, 0.0));
        assert_eq!(z, Vec3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn vec3_norm_and_projection() {
        let v = Vec3::new(2.0, 3.0, 6.0);
        assert_eq!(v.norm(), 7.0);
        assert_eq!(v.norm_sqr(), 49.0);
        assert_eq!(v.xy(), Vec2::new(2.0, 3.0));
        assert_eq!(
            Vec3::from_xy(Vec2::new(1.0, 2.0), 5.0),
            Vec3::new(1.0, 2.0, 5.0)
        );
        assert_eq!(Vec3::new(0.0, 0.0, 0.0).distance(v), 7.0);
    }

    #[test]
    fn vec3_normalized() {
        let n = Vec3::new(0.0, 0.0, -4.0).normalized().unwrap();
        assert_eq!(n, Vec3::new(0.0, 0.0, -1.0));
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn vec3_assign_ops() {
        let mut a = Vec3::new(1.0, 1.0, 1.0);
        a += Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(a, Vec3::new(2.0, 3.0, 4.0));
        a -= Vec3::new(2.0, 3.0, 4.0);
        assert_eq!(a, Vec3::ZERO);
    }
}
