use std::fmt;

/// Errors produced by geometric constructions and solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GeomError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint that was violated.
        reason: String,
    },
    /// A measured distance difference exceeded the baseline, so no
    /// hyperbola exists (`|Δd| > |f1 − f2|`).
    InfeasibleMeasurement {
        /// The distance difference that was requested.
        delta_d: f64,
        /// The baseline length between the foci.
        baseline: f64,
    },
    /// An iterative solver failed to converge.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the final iterate.
        residual: f64,
    },
    /// The measurement set does not determine a solution (e.g. degenerate
    /// triangle in projected-location estimation).
    Degenerate {
        /// Description of the degeneracy.
        what: String,
    },
    /// Two microphones of an array occupy (numerically) the same
    /// position, so their pair carries no TDoA information.
    CoincidentMics {
        /// Index of the first microphone of the offending pair.
        i: usize,
        /// Index of the second microphone of the offending pair.
        j: usize,
        /// Distance between the two placements, metres.
        distance: f64,
    },
    /// All microphones of an array lie on one line, so the array cannot
    /// resolve a planar (2D) direction — only a cone angle about the
    /// line.
    CollinearMics {
        /// Number of microphones in the offending array.
        mics: usize,
        /// Largest perpendicular deviation from the best line, metres.
        deviation: f64,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            GeomError::InfeasibleMeasurement { delta_d, baseline } => write!(
                f,
                "distance difference {delta_d} exceeds baseline {baseline}; no hyperbola exists"
            ),
            GeomError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "solver did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            GeomError::Degenerate { what } => write!(f, "degenerate configuration: {what}"),
            GeomError::CoincidentMics { i, j, distance } => write!(
                f,
                "microphones {i} and {j} coincide ({distance:.3e} m apart); the pair carries no TDoA information"
            ),
            GeomError::CollinearMics { mics, deviation } => write!(
                f,
                "all {mics} microphones are collinear (max deviation {deviation:.3e} m); planar direction is unobservable"
            ),
        }
    }
}

impl std::error::Error for GeomError {}

impl GeomError {
    /// Convenience constructor for [`GeomError::InvalidParameter`].
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        GeomError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        assert!(GeomError::invalid("d", "must be positive")
            .to_string()
            .contains("must be positive"));
        assert!(GeomError::InfeasibleMeasurement {
            delta_d: 2.0,
            baseline: 1.0
        }
        .to_string()
        .contains("exceeds baseline"));
        assert!(GeomError::NoConvergence {
            iterations: 50,
            residual: 1e-3
        }
        .to_string()
        .contains("50"));
        assert!(GeomError::Degenerate {
            what: "collinear".into()
        }
        .to_string()
        .contains("collinear"));
        assert!(GeomError::CoincidentMics {
            i: 0,
            j: 2,
            distance: 1e-15
        }
        .to_string()
        .contains("microphones 0 and 2 coincide"));
        assert!(GeomError::CollinearMics {
            mics: 3,
            deviation: 1e-9
        }
        .to_string()
        .contains("collinear"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeomError>();
    }
}
