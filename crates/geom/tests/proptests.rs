//! Property-based tests of the geometric invariants, on the workspace's
//! own harness (`hyperear_util::prop`).

use hyperear_geom::hyperbola::HalfHyperbola;
use hyperear_geom::project::forward_model;
use hyperear_geom::rotation::{wrap_degrees, wrap_radians, RollFrame};
use hyperear_geom::tdoa_regions::TdoaQuantizer;
use hyperear_geom::triangulate::{solve_slide, SlideGeometry};
use hyperear_geom::Vec2;
use hyperear_util::prop::{self, f64_range};
use hyperear_util::{prop_assert, prop_assert_eq, prop_assume};

#[test]
fn hyperbola_contains_its_generator() {
    let strat = (
        f64_range(-5.0, 5.0),
        f64_range(0.2, 8.0),
        f64_range(0.05, 0.5),
    );
    prop::check(
        "hyperbola_contains_its_generator",
        strat,
        |&(sx, sy, half_base)| {
            let f1 = Vec2::new(-half_base, 0.0);
            let f2 = Vec2::new(half_base, 0.0);
            let speaker = Vec2::new(sx, sy);
            let dd = speaker.distance(f1) - speaker.distance(f2);
            let h = HalfHyperbola::new(f1, f2, dd).unwrap();
            prop_assert!(h.residual(speaker).abs() < 1e-10);
            prop::pass()
        },
    );
}

#[test]
fn triangulation_recovers_random_speakers() {
    let strat = (
        f64_range(-1.5, 1.5),
        f64_range(0.5, 9.0),
        f64_range(0.2, 0.7),
        f64_range(0.08, 0.2),
    );
    prop::check(
        "triangulation_recovers_random_speakers",
        strat,
        |&(sx, sy, d_prime, mic_offset)| {
            let speaker = Vec2::new(sx, sy);
            let geometry = SlideGeometry::from_ground_truth(d_prime, mic_offset, speaker);
            let solution = solve_slide(&geometry).unwrap();
            prop_assert!(
                (solution.position - speaker).norm() < 1e-4,
                "speaker {speaker:?} got {:?}",
                solution.position
            );
            prop::pass()
        },
    );
}

#[test]
fn backward_slides_recover_too() {
    let strat = (
        f64_range(-1.0, 1.0),
        f64_range(0.5, 8.0),
        f64_range(0.2, 0.7),
    );
    prop::check(
        "backward_slides_recover_too",
        strat,
        |&(sx, sy, d_prime)| {
            let speaker = Vec2::new(sx, sy);
            let geometry = SlideGeometry::from_ground_truth(d_prime, -0.1366, speaker);
            let solution = solve_slide(&geometry).unwrap();
            prop_assert!((solution.position - speaker).norm() < 1e-4);
            prop::pass()
        },
    );
}

#[test]
fn projection_round_trips() {
    let strat = (
        f64_range(0.5, 9.0),
        f64_range(-1.0, 1.5),
        f64_range(0.2, 0.8),
    );
    prop::check("projection_round_trips", strat, |&(ground, depth, h)| {
        prop_assume!(depth.abs() > 1e-3);
        let m = forward_model(ground, depth, h).unwrap();
        let sol = m.solve().unwrap();
        prop_assert!((sol.l_star - ground).abs() < 1e-6);
        prop_assert!((sol.depth - depth).abs() < 1e-6);
        prop::pass()
    });
}

#[test]
fn wrap_degrees_is_idempotent_and_in_range() {
    prop::check(
        "wrap_degrees_is_idempotent_and_in_range",
        f64_range(-1000.0, 1000.0),
        |&angle| {
            let w = wrap_degrees(angle);
            prop_assert!((0.0..360.0).contains(&w));
            prop_assert!((wrap_degrees(w) - w).abs() < 1e-12);
            // Wrapping preserves the angle modulo 360.
            prop_assert!(((angle - w) / 360.0).fract().abs() < 1e-9);
            prop::pass()
        },
    );
}

#[test]
fn wrap_radians_in_range() {
    prop::check("wrap_radians_in_range", f64_range(-50.0, 50.0), |&angle| {
        let w = wrap_radians(angle);
        prop_assert!(w > -std::f64::consts::PI - 1e-12);
        prop_assert!(w <= std::f64::consts::PI + 1e-12);
        prop::pass()
    });
}

#[test]
fn far_field_tdoa_is_bounded_by_separation() {
    let strat = (f64_range(0.0, 360.0), f64_range(0.05, 0.3));
    prop::check(
        "far_field_tdoa_is_bounded_by_separation",
        strat,
        |&(alpha, d)| {
            let frame = RollFrame::from_alpha_degrees(alpha);
            let dd = frame.far_field_distance_difference(d).unwrap();
            prop_assert!(dd.abs() <= d + 1e-12);
            prop::pass()
        },
    );
}

#[test]
fn region_index_is_antisymmetric() {
    let strat = (f64_range(0.05, 4.0), f64_range(0.2, 6.0));
    prop::check("region_index_is_antisymmetric", strat, |&(x, y)| {
        let q = TdoaQuantizer::new(
            Vec2::new(-0.0683, 0.0),
            Vec2::new(0.0683, 0.0),
            44_100.0,
            343.0,
        )
        .unwrap();
        let left = q.region_index(Vec2::new(-x, y));
        let right = q.region_index(Vec2::new(x, y));
        prop_assert_eq!(left, -right);
        prop::pass()
    });
}

#[test]
fn region_width_never_below_resolution_over_two() {
    let strat = (f64_range(-2.0, 2.0), f64_range(0.3, 6.0));
    prop::check(
        "region_width_never_below_resolution_over_two",
        strat,
        |&(x, y)| {
            let q = TdoaQuantizer::new(
                Vec2::new(-0.0683, 0.0),
                Vec2::new(0.0683, 0.0),
                44_100.0,
                343.0,
            )
            .unwrap();
            if let Some(w) = q.region_width(Vec2::new(x, y)) {
                // |∇Δd| ≤ 2, so the width is at least resolution/2.
                prop_assert!(w >= q.resolution() / 2.0 - 1e-12);
            }
            prop::pass()
        },
    );
}

#[test]
fn solve_handles_noisy_measurements() {
    let strat = (
        f64_range(-0.5, 0.5),
        f64_range(1.0, 8.0),
        f64_range(-2e-4, 2e-4),
        f64_range(-2e-4, 2e-4),
    );
    prop::check(
        "solve_handles_noisy_measurements",
        strat,
        |&(sx, sy, noise1, noise2)| {
            let speaker = Vec2::new(sx, sy);
            let mut g = SlideGeometry::from_ground_truth(0.55, 0.1366, speaker);
            g.delta_d1 += noise1;
            g.delta_d2 += noise2;
            // Must converge (possibly far from truth — that is physics, not a bug).
            let solution = solve_slide(&g).unwrap();
            prop_assert!(solution.position.y > 0.0);
            prop_assert!(solution.residual.is_finite());
            prop::pass()
        },
    );
}
