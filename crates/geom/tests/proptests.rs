//! Property-based tests of the geometric invariants.

use hyperear_geom::hyperbola::HalfHyperbola;
use hyperear_geom::project::forward_model;
use hyperear_geom::rotation::{wrap_degrees, wrap_radians, RollFrame};
use hyperear_geom::tdoa_regions::TdoaQuantizer;
use hyperear_geom::triangulate::{solve_slide, SlideGeometry};
use hyperear_geom::Vec2;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hyperbola_contains_its_generator(
        sx in -5.0f64..5.0,
        sy in 0.2f64..8.0,
        half_base in 0.05f64..0.5,
    ) {
        let f1 = Vec2::new(-half_base, 0.0);
        let f2 = Vec2::new(half_base, 0.0);
        let speaker = Vec2::new(sx, sy);
        let dd = speaker.distance(f1) - speaker.distance(f2);
        let h = HalfHyperbola::new(f1, f2, dd).unwrap();
        prop_assert!(h.residual(speaker).abs() < 1e-10);
    }

    #[test]
    fn triangulation_recovers_random_speakers(
        sx in -1.5f64..1.5,
        sy in 0.5f64..9.0,
        d_prime in 0.2f64..0.7,
        mic_offset in 0.08f64..0.2,
    ) {
        let speaker = Vec2::new(sx, sy);
        let geometry = SlideGeometry::from_ground_truth(d_prime, mic_offset, speaker);
        let solution = solve_slide(&geometry).unwrap();
        prop_assert!(
            (solution.position - speaker).norm() < 1e-4,
            "speaker {:?} got {:?}",
            speaker,
            solution.position
        );
    }

    #[test]
    fn backward_slides_recover_too(
        sx in -1.0f64..1.0,
        sy in 0.5f64..8.0,
        d_prime in 0.2f64..0.7,
    ) {
        let speaker = Vec2::new(sx, sy);
        let geometry = SlideGeometry::from_ground_truth(d_prime, -0.1366, speaker);
        let solution = solve_slide(&geometry).unwrap();
        prop_assert!((solution.position - speaker).norm() < 1e-4);
    }

    #[test]
    fn projection_round_trips(
        ground in 0.5f64..9.0,
        depth in -1.0f64..1.5,
        h in 0.2f64..0.8,
    ) {
        prop_assume!(depth.abs() > 1e-3);
        let m = forward_model(ground, depth, h).unwrap();
        let sol = m.solve().unwrap();
        prop_assert!((sol.l_star - ground).abs() < 1e-6);
        prop_assert!((sol.depth - depth).abs() < 1e-6);
    }

    #[test]
    fn wrap_degrees_is_idempotent_and_in_range(angle in -1000.0f64..1000.0) {
        let w = wrap_degrees(angle);
        prop_assert!((0.0..360.0).contains(&w));
        prop_assert!((wrap_degrees(w) - w).abs() < 1e-12);
        // Wrapping preserves the angle modulo 360.
        prop_assert!(((angle - w) / 360.0).fract().abs() < 1e-9);
    }

    #[test]
    fn wrap_radians_in_range(angle in -50.0f64..50.0) {
        let w = wrap_radians(angle);
        prop_assert!(w > -std::f64::consts::PI - 1e-12);
        prop_assert!(w <= std::f64::consts::PI + 1e-12);
    }

    #[test]
    fn far_field_tdoa_is_bounded_by_separation(alpha in 0.0f64..360.0, d in 0.05f64..0.3) {
        let frame = RollFrame::from_alpha_degrees(alpha);
        let dd = frame.far_field_distance_difference(d).unwrap();
        prop_assert!(dd.abs() <= d + 1e-12);
    }

    #[test]
    fn region_index_is_antisymmetric(x in 0.05f64..4.0, y in 0.2f64..6.0) {
        let q = TdoaQuantizer::new(
            Vec2::new(-0.0683, 0.0),
            Vec2::new(0.0683, 0.0),
            44_100.0,
            343.0,
        )
        .unwrap();
        let left = q.region_index(Vec2::new(-x, y));
        let right = q.region_index(Vec2::new(x, y));
        prop_assert_eq!(left, -right);
    }

    #[test]
    fn region_width_never_below_resolution_over_two(x in -2.0f64..2.0, y in 0.3f64..6.0) {
        let q = TdoaQuantizer::new(
            Vec2::new(-0.0683, 0.0),
            Vec2::new(0.0683, 0.0),
            44_100.0,
            343.0,
        )
        .unwrap();
        if let Some(w) = q.region_width(Vec2::new(x, y)) {
            // |∇Δd| ≤ 2, so the width is at least resolution/2.
            prop_assert!(w >= q.resolution() / 2.0 - 1e-12);
        }
    }

    #[test]
    fn solve_handles_noisy_measurements(
        sx in -0.5f64..0.5,
        sy in 1.0f64..8.0,
        noise1 in -2e-4f64..2e-4,
        noise2 in -2e-4f64..2e-4,
    ) {
        let speaker = Vec2::new(sx, sy);
        let mut g = SlideGeometry::from_ground_truth(0.55, 0.1366, speaker);
        g.delta_d1 += noise1;
        g.delta_d2 += noise2;
        // Must converge (possibly far from truth — that is physics, not a bug).
        let solution = solve_slide(&g).unwrap();
        prop_assert!(solution.position.y > 0.0);
        prop_assert!(solution.residual.is_finite());
    }
}
