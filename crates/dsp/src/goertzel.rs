//! Goertzel single-bin DFT.
//!
//! Cheaper than an FFT when only one frequency matters — e.g. probing
//! whether a recording window contains beacon energy at all before paying
//! for a full matched-filter pass.

use crate::DspError;

/// Power of `signal` at the single frequency `freq_hz`, computed with the
/// Goertzel recurrence.
///
/// Returns the squared magnitude of the DFT bin nearest `freq_hz`,
/// normalized by the signal length so values are comparable across window
/// sizes.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal and
/// [`DspError::InvalidParameter`] if `freq_hz` is outside `[0, fs/2]`.
///
/// # Example
///
/// ```
/// let fs = 8_000.0;
/// let tone: Vec<f64> = (0..800)
///     .map(|i| (2.0 * std::f64::consts::PI * 1_000.0 * i as f64 / fs).sin())
///     .collect();
/// let p = hyperear_dsp::goertzel::goertzel_power(&tone, 1_000.0, fs).unwrap();
/// let q = hyperear_dsp::goertzel::goertzel_power(&tone, 3_000.0, fs).unwrap();
/// assert!(p > 100.0 * q);
/// ```
pub fn goertzel_power(signal: &[f64], freq_hz: f64, sample_rate: f64) -> Result<f64, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput {
            what: "goertzel input",
        });
    }
    if sample_rate <= 0.0 {
        return Err(DspError::invalid("sample_rate", "must be positive"));
    }
    if !(0.0..=sample_rate / 2.0).contains(&freq_hz) {
        return Err(DspError::invalid(
            "freq_hz",
            format!("must be in [0, {}], got {freq_hz}", sample_rate / 2.0),
        ));
    }
    let n = signal.len();
    let k = (0.5 + n as f64 * freq_hz / sample_rate).floor();
    let omega = 2.0 * std::f64::consts::PI * k / n as f64;
    let coeff = 2.0 * omega.cos();
    let (mut s1, mut s2) = (0.0, 0.0);
    for &x in signal {
        let s0 = x + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    let power = s1 * s1 + s2 * s2 - coeff * s1 * s2;
    Ok(power / (n as f64 * n as f64 / 4.0))
}

/// Complex DFT bin of `signal` at the frequency nearest `freq_hz`:
/// `(re, im)`, amplitude-normalized by `n/2` so a unit on-bin tone has
/// magnitude ≈ 1 regardless of window length.
///
/// This is the phase-aware sibling of [`goertzel_power`]
/// (`re² + im²` equals the power it reports): phase-tracking direction
/// finding compares `atan2(im, re)` across channels, where the
/// inter-channel phase difference `Δφ = 2π·f·τ` encodes the pair delay
/// `τ` — the Swadloon construction.
///
/// # Errors
///
/// Same conditions as [`goertzel_power`].
pub fn goertzel_bin(
    signal: &[f64],
    freq_hz: f64,
    sample_rate: f64,
) -> Result<(f64, f64), DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput {
            what: "goertzel input",
        });
    }
    if sample_rate <= 0.0 {
        return Err(DspError::invalid("sample_rate", "must be positive"));
    }
    if !(0.0..=sample_rate / 2.0).contains(&freq_hz) {
        return Err(DspError::invalid(
            "freq_hz",
            format!("must be in [0, {}], got {freq_hz}", sample_rate / 2.0),
        ));
    }
    let n = signal.len();
    let k = (0.5 + n as f64 * freq_hz / sample_rate).floor();
    let omega = 2.0 * std::f64::consts::PI * k / n as f64;
    let coeff = 2.0 * omega.cos();
    let (mut s1, mut s2) = (0.0, 0.0);
    for &x in signal {
        let s0 = x + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    // Standard Goertzel finalization: X[k] = s1 − s2·e^{−jω}.
    let re = s1 - s2 * omega.cos();
    let im = s2 * omega.sin();
    let half_n = n as f64 / 2.0;
    Ok((re / half_n, im / half_n))
}

/// Phase (radians, in `(−π, π]`) of the DFT bin nearest `freq_hz`.
///
/// # Errors
///
/// Same conditions as [`goertzel_power`].
pub fn goertzel_phase(signal: &[f64], freq_hz: f64, sample_rate: f64) -> Result<f64, DspError> {
    let (re, im) = goertzel_bin(signal, freq_hz, sample_rate)?;
    Ok(im.atan2(re))
}

/// Scans a set of probe frequencies and returns the per-frequency powers.
///
/// # Errors
///
/// Same conditions as [`goertzel_power`]; fails on the first invalid probe.
pub fn goertzel_scan(
    signal: &[f64],
    freqs_hz: &[f64],
    sample_rate: f64,
) -> Result<Vec<f64>, DspError> {
    freqs_hz
        .iter()
        .map(|&f| goertzel_power(signal, f, sample_rate))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn detects_matching_tone() {
        let fs = 44_100.0;
        let signal = tone(4_000.0, fs, 4410);
        let on = goertzel_power(&signal, 4_000.0, fs).unwrap();
        let off = goertzel_power(&signal, 9_000.0, fs).unwrap();
        assert!(on > 1000.0 * off, "on {on} off {off}");
    }

    #[test]
    fn amplitude_scaling_is_quadratic() {
        let fs = 8_000.0;
        let s1 = tone(1_000.0, fs, 1600);
        let s2: Vec<f64> = s1.iter().map(|x| 2.0 * x).collect();
        let p1 = goertzel_power(&s1, 1_000.0, fs).unwrap();
        let p2 = goertzel_power(&s2, 1_000.0, fs).unwrap();
        assert!((p2 / p1 - 4.0).abs() < 0.01);
    }

    #[test]
    fn unit_tone_power_is_about_one() {
        // With the n²/4 normalization a unit-amplitude on-bin tone yields ~1.
        let fs = 8_000.0;
        let signal = tone(1_000.0, fs, 1600);
        let p = goertzel_power(&signal, 1_000.0, fs).unwrap();
        assert!((p - 1.0).abs() < 0.05, "power {p}");
    }

    #[test]
    fn scan_orders_results_by_probe() {
        let fs = 8_000.0;
        let signal = tone(1_000.0, fs, 1600);
        let powers = goertzel_scan(&signal, &[500.0, 1_000.0, 2_000.0], fs).unwrap();
        assert_eq!(powers.len(), 3);
        assert!(powers[1] > powers[0]);
        assert!(powers[1] > powers[2]);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(goertzel_power(&[], 100.0, 8_000.0).is_err());
        assert!(goertzel_power(&[1.0], -5.0, 8_000.0).is_err());
        assert!(goertzel_power(&[1.0], 5_000.0, 8_000.0).is_err());
        assert!(goertzel_power(&[1.0], 100.0, 0.0).is_err());
    }

    #[test]
    fn bin_magnitude_matches_power() {
        let fs = 8_000.0;
        let signal = tone(1_000.0, fs, 1600);
        let p = goertzel_power(&signal, 1_000.0, fs).unwrap();
        let (re, im) = goertzel_bin(&signal, 1_000.0, fs).unwrap();
        assert!(
            (re * re + im * im - p).abs() < 1e-9,
            "{} vs {p}",
            re * re + im * im
        );
    }

    #[test]
    fn phase_difference_encodes_delay() {
        // Two copies of a tone offset by a known fractional delay: the
        // bin phase difference must equal 2π·f·τ.
        let fs = 44_100.0;
        let f = 4_000.0;
        let tau = 2.5e-5; // 25 µs ≈ 1.1 samples
        let n = 4410;
        let a: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f * (i as f64 / fs)).sin())
            .collect();
        let b: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f * (i as f64 / fs - tau)).sin())
            .collect();
        let pa = goertzel_phase(&a, f, fs).unwrap();
        let pb = goertzel_phase(&b, f, fs).unwrap();
        let mut dphi = pa - pb;
        while dphi > std::f64::consts::PI {
            dphi -= std::f64::consts::TAU;
        }
        while dphi <= -std::f64::consts::PI {
            dphi += std::f64::consts::TAU;
        }
        let expected = 2.0 * std::f64::consts::PI * f * tau;
        assert!(
            (dphi - expected).abs() < 0.02,
            "dphi {dphi} expected {expected}"
        );
    }

    #[test]
    fn bin_rejects_bad_inputs() {
        assert!(goertzel_bin(&[], 100.0, 8_000.0).is_err());
        assert!(goertzel_bin(&[1.0], 5_000.0, 8_000.0).is_err());
        assert!(goertzel_phase(&[1.0], 100.0, 0.0).is_err());
    }

    #[test]
    fn silence_has_zero_power() {
        let p = goertzel_power(&[0.0; 256], 1_000.0, 8_000.0).unwrap();
        assert_eq!(p, 0.0);
    }
}
