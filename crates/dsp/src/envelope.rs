//! Analytic-signal envelopes (Hilbert transform).
//!
//! The cross-correlation of a band-pass signal rings at its carrier
//! frequency: `R(τ) ≈ env(τ)·cos(2π·f_c·τ)`. For the audible HyperEar
//! beacon (f_c ≈ 4.2 kHz, fractional bandwidth ~1) the main lobe is
//! smooth and direct peak-picking works. For a *near-ultrasonic* beacon
//! (f_c ≈ 17.8 kHz at 44.1 kHz sampling) the carrier period is only
//! ~2.5 samples, and picking correlation maxima hops between carrier
//! cycles — ±1.2 samples ≈ ±9 mm of TDoA error. Envelope detection
//! removes the carrier: take the magnitude of the analytic signal and
//! pick peaks on that.

use crate::fft::{fft, ifft, next_pow2};
use crate::{Complex, DspError};

/// Computes the analytic signal of `x` via the frequency-domain Hilbert
/// construction (negative frequencies zeroed, positive doubled).
///
/// Returns one complex sample per input sample; the imaginary part is the
/// Hilbert transform of the input.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal.
pub fn analytic_signal(x: &[f64]) -> Result<Vec<Complex>, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput {
            what: "analytic_signal input",
        });
    }
    let n = next_pow2(x.len());
    let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::from_real(v)).collect();
    buf.resize(n, Complex::ZERO);
    fft(&mut buf)?;
    // H[0] and H[n/2] stay; positive freqs double; negatives zero.
    for (k, v) in buf.iter_mut().enumerate() {
        if k == 0 || k == n / 2 {
            continue;
        } else if k < n / 2 {
            *v = *v * 2.0;
        } else {
            *v = Complex::ZERO;
        }
    }
    ifft(&mut buf)?;
    buf.truncate(x.len());
    Ok(buf)
}

/// The envelope `|analytic(x)|` of a signal.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal.
///
/// # Example
///
/// ```
/// // The envelope of a windowed tone recovers the window, not the tone.
/// let fs = 8_000.0;
/// let x: Vec<f64> = (0..256)
///     .map(|i| {
///         let t = i as f64 / fs;
///         (2.0 * std::f64::consts::PI * 1_000.0 * t).sin()
///     })
///     .collect();
/// let env = hyperear_dsp::envelope::envelope(&x).unwrap();
/// // Interior envelope is ~1 even where the sine crosses zero.
/// assert!(env[64] > 0.95 && env[65] > 0.95);
/// ```
pub fn envelope(x: &[f64]) -> Result<Vec<f64>, DspError> {
    Ok(analytic_signal(x)?.into_iter().map(Complex::abs).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_of_tone_is_flat() {
        let fs = 8_000.0;
        let x: Vec<f64> = (0..1024)
            .map(|i| (2.0 * std::f64::consts::PI * 1_000.0 * i as f64 / fs).sin())
            .collect();
        let env = envelope(&x).unwrap();
        for &e in &env[64..960] {
            assert!((e - 1.0).abs() < 0.02, "envelope {e}");
        }
    }

    #[test]
    fn envelope_recovers_amplitude_modulation() {
        let fs = 8_000.0;
        let x: Vec<f64> = (0..2048)
            .map(|i| {
                let t = i as f64 / fs;
                let am = 0.6 + 0.4 * (2.0 * std::f64::consts::PI * 20.0 * t).sin();
                am * (2.0 * std::f64::consts::PI * 1_500.0 * t).sin()
            })
            .collect();
        let env = envelope(&x).unwrap();
        for i in (100..1900).step_by(150) {
            let t = i as f64 / fs;
            let truth = 0.6 + 0.4 * (2.0 * std::f64::consts::PI * 20.0 * t).sin();
            assert!(
                (env[i] - truth).abs() < 0.05,
                "at {i}: {} vs {truth}",
                env[i]
            );
        }
    }

    #[test]
    fn analytic_real_part_is_the_input() {
        let x: Vec<f64> = (0..200).map(|i| (i as f64 * 0.21).sin()).collect();
        let z = analytic_signal(&x).unwrap();
        assert_eq!(z.len(), x.len());
        for (a, b) in x.iter().zip(&z) {
            assert!((a - b.re).abs() < 1e-9);
        }
    }

    #[test]
    fn hilbert_of_cos_is_sin() {
        // On an exact FFT grid: H{cos} = sin.
        let n = 256;
        let k = 16.0;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k * i as f64 / n as f64).cos())
            .collect();
        let z = analytic_signal(&x).unwrap();
        for (i, v) in z.iter().enumerate() {
            let expected = (2.0 * std::f64::consts::PI * k * i as f64 / n as f64).sin();
            assert!((v.im - expected).abs() < 1e-9, "at {i}");
        }
    }

    #[test]
    fn envelope_peak_ignores_carrier_phase() {
        // A Hann-windowed high-frequency burst: the raw signal's max
        // depends on carrier alignment, the envelope's does not.
        let fs = 44_100.0;
        let fc = 17_750.0;
        let n = 512;
        let make = |phase: f64| -> Vec<f64> {
            (0..n)
                .map(|i| {
                    let t = i as f64 / fs;
                    let w = crate::window::Window::Hann.value(i, n);
                    w * (2.0 * std::f64::consts::PI * fc * t + phase).sin()
                })
                .collect()
        };
        let argmax = |x: &[f64]| {
            x.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0 as isize
        };
        let e0 = argmax(&envelope(&make(0.0)).unwrap());
        let e1 = argmax(&envelope(&make(1.3)).unwrap());
        assert!((e0 - e1).abs() <= 2, "envelope peaks {e0} vs {e1}");
    }

    #[test]
    fn empty_input_rejected() {
        assert!(envelope(&[]).is_err());
        assert!(analytic_signal(&[]).is_err());
    }
}
