//! # hyperear-dsp
//!
//! Acoustic digital-signal-processing primitives for the [HyperEar]
//! reproduction. The Rust acoustic-DSP ecosystem is thin, so everything the
//! HyperEar pipeline needs is implemented here from scratch:
//!
//! - [`fft`] — iterative radix-2 complex FFT/IFFT and real-signal helpers.
//! - [`plan`] — planned FFT execution: precomputed twiddle/bit-reversal
//!   tables ([`plan::FftPlan`], [`plan::PlanCache`]) and the
//!   [`plan::DspScratch`] buffer arena behind the allocation-free hot
//!   path.
//! - [`window`] — Hann/Hamming/Blackman/rectangular analysis windows.
//! - [`filter`] — windowed-sinc FIR design, RBJ biquads, zero-phase
//!   filtering, and the simple-moving-average filter the paper uses on
//!   inertial signals.
//! - [`correlate`] — FFT-accelerated cross-correlation and the matched
//!   filter used for chirp beacon detection (BeepBeep-style).
//! - [`chirp`] — linear and up-down chirp synthesis (the HyperEar beacon).
//! - [`estimator`] — robust TDoA estimator kernels: floored GCC-PHAT
//!   whitening, sub-band coherence weighting, and MCCI cross-channel
//!   correlation fusion.
//! - [`interpolate`] — parabolic and windowed-sinc sub-sample interpolation
//!   for pushing TDoA resolution below the 44.1 kHz sampling grid.
//! - [`delay`] — integer and fractional signal delays (propagation
//!   rendering in the simulator).
//! - [`envelope`] — analytic-signal (Hilbert) envelopes for carrier-free
//!   peak detection of high-band beacons.
//! - [`resample`] — arbitrary-ratio resampling used to model and to correct
//!   sampling-frequency offset (SFO).
//! - [`peak`] — threshold-based peak picking over correlation magnitudes.
//! - [`spectrum`] — periodograms and band-energy measurements.
//! - [`level`] — RMS / dB / SNR utilities.
//! - [`goertzel`] — single-bin DFT for cheap tone probing.
//! - [`quantize`] — 16-bit ADC quantization and PCM byte codecs.
//! - [`stft`] — short-time Fourier transform / spectrograms.
//! - [`wav`] — minimal RIFF PCM16 file reading and writing.
//!
//! # Example
//!
//! Detecting a chirp embedded in noise with a matched filter:
//!
//! ```
//! use hyperear_dsp::chirp::{Chirp, ChirpShape};
//! use hyperear_dsp::correlate::MatchedFilter;
//!
//! # fn main() -> Result<(), hyperear_dsp::DspError> {
//! let fs = 44_100.0;
//! let chirp = Chirp::new(2_000.0, 6_400.0, 0.04, fs, ChirpShape::UpDown)?;
//! let reference = chirp.samples();
//!
//! // A recording with the chirp placed at sample 1000.
//! let mut recording = vec![0.0f64; 8192];
//! recording[1000..1000 + reference.len()].copy_from_slice(reference);
//!
//! let filter = MatchedFilter::new(reference)?;
//! let output = filter.correlate(&recording)?;
//! let peak = output
//!     .iter()
//!     .enumerate()
//!     .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
//!     .map(|(i, _)| i)
//!     .unwrap();
//! assert_eq!(peak, 1000);
//! # Ok(())
//! # }
//! ```
//!
//! [HyperEar]: https://doi.org/10.1109/ICDCS.2019.00073

// The crate is `forbid(unsafe_code)` in its default build. The opt-in
// `simd` feature needs `core::arch` intrinsics, which are unsafe by
// definition; under that feature the lint drops to `deny` so the one
// runtime-dispatched kernel module in `complex` can scope a targeted
// `allow` — everything else still refuses unsafe.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod chirp;
pub mod complex;
pub mod correlate;
pub mod delay;
pub mod envelope;
mod error;
pub mod estimator;
pub mod fft;
pub mod filter;
pub mod goertzel;
pub mod interpolate;
pub mod level;
pub mod peak;
pub mod plan;
pub mod quantize;
pub mod resample;
pub mod spectrum;
pub mod stft;
pub mod wav;
pub mod window;

pub use complex::Complex;
pub use error::DspError;

/// Speed of sound in air at room temperature, in metres per second.
///
/// The HyperEar paper uses 343 m/s throughout (Section II).
pub const SPEED_OF_SOUND: f64 = 343.0;

/// The audio sampling rate Android exposes on the paper's phones, in hertz.
pub const PHONE_SAMPLE_RATE: f64 = 44_100.0;
