//! Peak picking over correlation outputs.
//!
//! Beacon detection reduces to finding correlation peaks that stand
//! "significantly larger than ... background noise" (Section IV-A), spaced
//! roughly one beacon period apart.

use crate::DspError;

/// A detected peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Sample index of the local maximum.
    pub index: usize,
    /// Value at the maximum.
    pub value: f64,
}

/// Configuration for [`find_peaks`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakConfig {
    /// Absolute threshold a sample must exceed to be a candidate.
    pub threshold: f64,
    /// Minimum distance between accepted peaks, in samples. Among
    /// candidates closer than this, only the largest survives.
    pub min_distance: usize,
}

impl PeakConfig {
    /// Creates a config.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `threshold` is not finite.
    pub fn new(threshold: f64, min_distance: usize) -> Result<Self, DspError> {
        if !threshold.is_finite() {
            return Err(DspError::invalid("threshold", "must be finite"));
        }
        Ok(PeakConfig {
            threshold,
            min_distance,
        })
    }
}

/// Finds local maxima of `signal` above the threshold, enforcing the
/// minimum spacing by greedily keeping the largest peaks first.
///
/// Returns peaks sorted by index.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal.
pub fn find_peaks(signal: &[f64], config: &PeakConfig) -> Result<Vec<Peak>, DspError> {
    let mut scratch = Vec::new();
    let mut out = Vec::new();
    find_peaks_into(signal, config, &mut scratch, &mut out)?;
    Ok(out)
}

/// Allocation-free form of [`find_peaks`]: candidate storage and the
/// result live in caller-owned buffers that are cleared and reused, so a
/// warm detection loop performs no heap allocation. Output in `out` is
/// identical to [`find_peaks`].
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal.
pub fn find_peaks_into(
    signal: &[f64],
    config: &PeakConfig,
    scratch: &mut Vec<Peak>,
    out: &mut Vec<Peak>,
) -> Result<(), DspError> {
    out.clear();
    if signal.is_empty() {
        return Err(DspError::EmptyInput {
            what: "find_peaks input",
        });
    }
    // Collect strict local maxima (plateau-tolerant: first sample of a
    // plateau wins).
    for i in 0..signal.len() {
        let v = signal[i];
        if v < config.threshold {
            continue;
        }
        let left_ok = i == 0 || signal[i - 1] < v;
        let right_ok = i + 1 == signal.len() || signal[i + 1] <= v;
        if left_ok && right_ok {
            out.push(Peak { index: i, value: v });
        }
    }
    if config.min_distance <= 1 || out.len() <= 1 {
        return Ok(());
    }
    // Greedy non-maximum suppression: biggest first. The sort key breaks
    // value ties by ascending index, which is exactly the order a stable
    // by-value sort of the index-ordered candidates would produce — so
    // the in-place unstable sort keeps results identical.
    scratch.clear();
    scratch.extend_from_slice(out);
    scratch.sort_unstable_by(|a, b| b.value.total_cmp(&a.value).then(a.index.cmp(&b.index)));
    out.clear();
    for cand in scratch.iter() {
        if out
            .iter()
            .all(|t| cand.index.abs_diff(t.index) >= config.min_distance)
        {
            out.push(*cand);
        }
    }
    // Indices are unique, so the unstable sort is order-deterministic.
    out.sort_unstable_by_key(|p| p.index);
    Ok(())
}

/// Estimates the noise floor of a correlation output as
/// `k · median(|signal|)`.
///
/// For Gaussian noise, `median(|x|) ≈ 0.6745·σ`, so `k = 1/0.6745` recovers
/// σ; detection thresholds are then set at a multiple of the floor.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal.
pub fn noise_floor(signal: &[f64]) -> Result<f64, DspError> {
    let mut mags = Vec::new();
    noise_floor_with(signal, &mut mags)
}

/// Allocation-free form of [`noise_floor`]: the magnitude work array is
/// a caller-owned buffer that is cleared and reused.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal.
pub fn noise_floor_with(signal: &[f64], mags: &mut Vec<f64>) -> Result<f64, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput {
            what: "noise_floor input",
        });
    }
    mags.clear();
    mags.extend(signal.iter().map(|x| x.abs()));
    let mid = mags.len() / 2;
    mags.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
    Ok(mags[mid] / 0.6745)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_isolated_peaks() {
        let mut signal = vec![0.0; 100];
        signal[10] = 5.0;
        signal[50] = 3.0;
        signal[90] = 4.0;
        let cfg = PeakConfig::new(1.0, 5).unwrap();
        let peaks = find_peaks(&signal, &cfg).unwrap();
        let idx: Vec<usize> = peaks.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![10, 50, 90]);
    }

    #[test]
    fn threshold_filters_small_peaks() {
        let mut signal = vec![0.0; 50];
        signal[10] = 5.0;
        signal[30] = 0.5;
        let cfg = PeakConfig::new(1.0, 1).unwrap();
        let peaks = find_peaks(&signal, &cfg).unwrap();
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 10);
        assert_eq!(peaks[0].value, 5.0);
    }

    #[test]
    fn min_distance_keeps_largest() {
        let mut signal = vec![0.0; 50];
        signal[10] = 3.0;
        signal[12] = 5.0; // bigger neighbour within min_distance
        signal[40] = 2.0;
        let cfg = PeakConfig::new(1.0, 8).unwrap();
        let peaks = find_peaks(&signal, &cfg).unwrap();
        let idx: Vec<usize> = peaks.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![12, 40]);
    }

    #[test]
    fn plateau_counts_once() {
        let mut signal = vec![0.0; 20];
        signal[5] = 2.0;
        signal[6] = 2.0;
        let cfg = PeakConfig::new(1.0, 1).unwrap();
        let peaks = find_peaks(&signal, &cfg).unwrap();
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 5);
    }

    #[test]
    fn boundary_peaks_are_found() {
        let signal = vec![5.0, 1.0, 0.0, 1.0, 6.0];
        let cfg = PeakConfig::new(2.0, 1).unwrap();
        let peaks = find_peaks(&signal, &cfg).unwrap();
        let idx: Vec<usize> = peaks.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![0, 4]);
    }

    #[test]
    fn periodic_peaks_are_all_found() {
        // Simulates beacon correlation: peaks every 50 samples.
        let mut signal = vec![0.0; 500];
        for k in 0..10 {
            signal[k * 50 + 5] = 10.0 + k as f64;
        }
        let cfg = PeakConfig::new(5.0, 30).unwrap();
        let peaks = find_peaks(&signal, &cfg).unwrap();
        assert_eq!(peaks.len(), 10);
        for (k, p) in peaks.iter().enumerate() {
            assert_eq!(p.index, k * 50 + 5);
        }
    }

    #[test]
    fn noise_floor_estimates_sigma() {
        // Deterministic approximately-Gaussian noise via CLT of a LCG.
        let mut state = 123456789u64;
        let mut rand = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            2.0 * ((state >> 11) as f64 / (1u64 << 53) as f64) - 1.0
        };
        let noise: Vec<f64> = (0..10_000)
            .map(|_| (0..12).map(|_| rand()).sum::<f64>() / 2.0) // σ ≈ 1
            .collect();
        let floor = noise_floor(&noise).unwrap();
        assert!((0.8..1.2).contains(&floor), "floor {floor}");
    }

    #[test]
    fn noise_floor_is_robust_to_outliers() {
        let mut signal = vec![0.1; 1000];
        signal[500] = 100.0; // a beacon spike should barely move the median
        let floor = noise_floor(&signal).unwrap();
        assert!(floor < 0.2);
    }

    #[test]
    fn empty_inputs_rejected() {
        let cfg = PeakConfig::new(1.0, 1).unwrap();
        assert!(find_peaks(&[], &cfg).is_err());
        assert!(noise_floor(&[]).is_err());
        assert!(PeakConfig::new(f64::NAN, 1).is_err());
        let (mut s, mut o) = (Vec::new(), Vec::new());
        assert!(find_peaks_into(&[], &cfg, &mut s, &mut o).is_err());
        assert!(noise_floor_with(&[], &mut Vec::new()).is_err());
    }

    #[test]
    fn into_variants_match_allocating_forms() {
        // A dense signal with value ties so the tie-breaking sort key is
        // actually exercised against the stable-sort reference order.
        let mut signal = vec![0.0; 400];
        for k in 0..8 {
            signal[k * 50 + 3] = 4.0; // equal-valued peaks
            signal[k * 50 + 20] = 2.0 + k as f64;
        }
        for min_distance in [1usize, 5, 30, 60] {
            let cfg = PeakConfig::new(1.0, min_distance).unwrap();
            let reference = find_peaks(&signal, &cfg).unwrap();
            let (mut scratch, mut out) = (Vec::new(), Vec::new());
            // Run twice through the same buffers: results must not depend
            // on stale contents.
            for _ in 0..2 {
                find_peaks_into(&signal, &cfg, &mut scratch, &mut out).unwrap();
                assert_eq!(out, reference, "min_distance {min_distance}");
            }
        }
        let mut mags = Vec::new();
        assert_eq!(
            noise_floor(&signal).unwrap(),
            noise_floor_with(&signal, &mut mags).unwrap()
        );
    }
}
