//! Peak picking over correlation outputs.
//!
//! Beacon detection reduces to finding correlation peaks that stand
//! "significantly larger than ... background noise" (Section IV-A), spaced
//! roughly one beacon period apart.

use crate::DspError;

/// A detected peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Sample index of the local maximum.
    pub index: usize,
    /// Value at the maximum.
    pub value: f64,
}

/// Configuration for [`find_peaks`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakConfig {
    /// Absolute threshold a sample must exceed to be a candidate.
    pub threshold: f64,
    /// Minimum distance between accepted peaks, in samples. Among
    /// candidates closer than this, only the largest survives.
    pub min_distance: usize,
}

impl PeakConfig {
    /// Creates a config.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `threshold` is not finite.
    pub fn new(threshold: f64, min_distance: usize) -> Result<Self, DspError> {
        if !threshold.is_finite() {
            return Err(DspError::invalid("threshold", "must be finite"));
        }
        Ok(PeakConfig {
            threshold,
            min_distance,
        })
    }
}

/// Finds local maxima of `signal` above the threshold, enforcing the
/// minimum spacing by greedily keeping the largest peaks first.
///
/// Returns peaks sorted by index.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal.
pub fn find_peaks(signal: &[f64], config: &PeakConfig) -> Result<Vec<Peak>, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput {
            what: "find_peaks input",
        });
    }
    // Collect strict local maxima (plateau-tolerant: first sample of a
    // plateau wins).
    let mut candidates: Vec<Peak> = Vec::new();
    for i in 0..signal.len() {
        let v = signal[i];
        if v < config.threshold {
            continue;
        }
        let left_ok = i == 0 || signal[i - 1] < v;
        let right_ok = i + 1 == signal.len() || signal[i + 1] <= v;
        if left_ok && right_ok {
            candidates.push(Peak { index: i, value: v });
        }
    }
    if config.min_distance <= 1 || candidates.len() <= 1 {
        return Ok(candidates);
    }
    // Greedy non-maximum suppression: biggest first.
    let mut by_value = candidates.clone();
    by_value.sort_by(|a, b| b.value.total_cmp(&a.value));
    let mut taken: Vec<Peak> = Vec::new();
    for cand in by_value {
        if taken
            .iter()
            .all(|t| cand.index.abs_diff(t.index) >= config.min_distance)
        {
            taken.push(cand);
        }
    }
    taken.sort_by_key(|p| p.index);
    Ok(taken)
}

/// Estimates the noise floor of a correlation output as
/// `k · median(|signal|)`.
///
/// For Gaussian noise, `median(|x|) ≈ 0.6745·σ`, so `k = 1/0.6745` recovers
/// σ; detection thresholds are then set at a multiple of the floor.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal.
pub fn noise_floor(signal: &[f64]) -> Result<f64, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput {
            what: "noise_floor input",
        });
    }
    let mut mags: Vec<f64> = signal.iter().map(|x| x.abs()).collect();
    let mid = mags.len() / 2;
    mags.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
    Ok(mags[mid] / 0.6745)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_isolated_peaks() {
        let mut signal = vec![0.0; 100];
        signal[10] = 5.0;
        signal[50] = 3.0;
        signal[90] = 4.0;
        let cfg = PeakConfig::new(1.0, 5).unwrap();
        let peaks = find_peaks(&signal, &cfg).unwrap();
        let idx: Vec<usize> = peaks.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![10, 50, 90]);
    }

    #[test]
    fn threshold_filters_small_peaks() {
        let mut signal = vec![0.0; 50];
        signal[10] = 5.0;
        signal[30] = 0.5;
        let cfg = PeakConfig::new(1.0, 1).unwrap();
        let peaks = find_peaks(&signal, &cfg).unwrap();
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 10);
        assert_eq!(peaks[0].value, 5.0);
    }

    #[test]
    fn min_distance_keeps_largest() {
        let mut signal = vec![0.0; 50];
        signal[10] = 3.0;
        signal[12] = 5.0; // bigger neighbour within min_distance
        signal[40] = 2.0;
        let cfg = PeakConfig::new(1.0, 8).unwrap();
        let peaks = find_peaks(&signal, &cfg).unwrap();
        let idx: Vec<usize> = peaks.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![12, 40]);
    }

    #[test]
    fn plateau_counts_once() {
        let mut signal = vec![0.0; 20];
        signal[5] = 2.0;
        signal[6] = 2.0;
        let cfg = PeakConfig::new(1.0, 1).unwrap();
        let peaks = find_peaks(&signal, &cfg).unwrap();
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 5);
    }

    #[test]
    fn boundary_peaks_are_found() {
        let signal = vec![5.0, 1.0, 0.0, 1.0, 6.0];
        let cfg = PeakConfig::new(2.0, 1).unwrap();
        let peaks = find_peaks(&signal, &cfg).unwrap();
        let idx: Vec<usize> = peaks.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![0, 4]);
    }

    #[test]
    fn periodic_peaks_are_all_found() {
        // Simulates beacon correlation: peaks every 50 samples.
        let mut signal = vec![0.0; 500];
        for k in 0..10 {
            signal[k * 50 + 5] = 10.0 + k as f64;
        }
        let cfg = PeakConfig::new(5.0, 30).unwrap();
        let peaks = find_peaks(&signal, &cfg).unwrap();
        assert_eq!(peaks.len(), 10);
        for (k, p) in peaks.iter().enumerate() {
            assert_eq!(p.index, k * 50 + 5);
        }
    }

    #[test]
    fn noise_floor_estimates_sigma() {
        // Deterministic approximately-Gaussian noise via CLT of a LCG.
        let mut state = 123456789u64;
        let mut rand = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            2.0 * ((state >> 11) as f64 / (1u64 << 53) as f64) - 1.0
        };
        let noise: Vec<f64> = (0..10_000)
            .map(|_| (0..12).map(|_| rand()).sum::<f64>() / 2.0) // σ ≈ 1
            .collect();
        let floor = noise_floor(&noise).unwrap();
        assert!((0.8..1.2).contains(&floor), "floor {floor}");
    }

    #[test]
    fn noise_floor_is_robust_to_outliers() {
        let mut signal = vec![0.1; 1000];
        signal[500] = 100.0; // a beacon spike should barely move the median
        let floor = noise_floor(&signal).unwrap();
        assert!(floor < 0.2);
    }

    #[test]
    fn empty_inputs_rejected() {
        let cfg = PeakConfig::new(1.0, 1).unwrap();
        assert!(find_peaks(&[], &cfg).is_err());
        assert!(noise_floor(&[]).is_err());
        assert!(PeakConfig::new(f64::NAN, 1).is_err());
    }
}
