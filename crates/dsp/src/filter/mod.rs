//! Digital filters.
//!
//! Three families cover everything HyperEar needs:
//!
//! - [`fir`] — windowed-sinc FIR design and zero-phase filtering; the
//!   band-pass stage of Acoustic Signal Preprocessing uses these to isolate
//!   the 2–6.4 kHz chirp band from ambient noise (Section III, "ASP").
//! - [`biquad`] — RBJ biquad sections for cheap streaming filters, used by
//!   the simulator to shape microphone frequency responses and noise
//!   spectra.
//! - [`sma`] — the simple-moving-average low-pass the paper applies to the
//!   100 Hz inertial signals (n = 4, ≈15 Hz cut-off; Section V-A-1).

pub mod biquad;
pub mod fir;
pub mod sma;

pub use biquad::{Biquad, BiquadKind};
pub use fir::{FirFilter, ZeroPhaseFir, ZeroPhaseFir32};
pub use sma::MovingAverage;
