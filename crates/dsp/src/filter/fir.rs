//! Windowed-sinc FIR filter design and application.
//!
//! The band-pass used by HyperEar's Acoustic Signal Preprocessing is a
//! linear-phase windowed-sinc design. Linear phase matters: the matched
//! filter's peak position must not be skewed by the front-end filter, and a
//! symmetric FIR delays every frequency by exactly `(taps-1)/2` samples,
//! which [`FirFilter::filter_zero_phase`] compensates.

use crate::correlate::{ChunkFeed, OverlapSave, OverlapSave32};
use crate::fft::try_next_pow2;
use crate::plan::DspScratch;
use crate::window::Window;
use crate::DspError;

/// A finite-impulse-response filter with precomputed taps.
///
/// # Example
///
/// ```
/// use hyperear_dsp::filter::FirFilter;
/// use hyperear_dsp::window::Window;
///
/// # fn main() -> Result<(), hyperear_dsp::DspError> {
/// // 2–6.4 kHz band-pass at 44.1 kHz — the HyperEar chirp band.
/// let bp = FirFilter::band_pass(2_000.0, 6_400.0, 44_100.0, 101, Window::Hamming)?;
/// let signal = vec![0.0; 512];
/// let filtered = bp.filter_zero_phase(&signal)?;
/// assert_eq!(filtered.len(), signal.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FirFilter {
    taps: Vec<f64>,
}

impl FirFilter {
    /// Creates a filter from explicit taps.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if `taps` is empty.
    pub fn from_taps(taps: Vec<f64>) -> Result<Self, DspError> {
        if taps.is_empty() {
            return Err(DspError::EmptyInput { what: "FIR taps" });
        }
        Ok(FirFilter { taps })
    }

    /// Designs a low-pass filter with the given cut-off frequency.
    ///
    /// `num_taps` should be odd for an exactly linear-phase type-I design;
    /// even values are bumped up by one.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `cutoff_hz` is not in
    /// `(0, fs/2)` or `num_taps == 0`.
    pub fn low_pass(
        cutoff_hz: f64,
        sample_rate: f64,
        num_taps: usize,
        window: Window,
    ) -> Result<Self, DspError> {
        validate_freq("cutoff_hz", cutoff_hz, sample_rate)?;
        let n = odd_taps(num_taps)?;
        let fc = cutoff_hz / sample_rate;
        let mid = (n - 1) as f64 / 2.0;
        let mut taps: Vec<f64> = (0..n)
            .map(|i| {
                let x = i as f64 - mid;
                2.0 * fc * sinc(2.0 * fc * x) * window.value(i, n)
            })
            .collect();
        // Normalize DC gain to exactly 1.
        let sum: f64 = taps.iter().sum();
        for t in &mut taps {
            *t /= sum;
        }
        Ok(FirFilter { taps })
    }

    /// Designs a high-pass filter via spectral inversion of a low-pass.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FirFilter::low_pass`].
    pub fn high_pass(
        cutoff_hz: f64,
        sample_rate: f64,
        num_taps: usize,
        window: Window,
    ) -> Result<Self, DspError> {
        let lp = FirFilter::low_pass(cutoff_hz, sample_rate, num_taps, window)?;
        let n = lp.taps.len();
        let mid = (n - 1) / 2;
        let mut taps: Vec<f64> = lp.taps.iter().map(|t| -t).collect();
        taps[mid] += 1.0;
        Ok(FirFilter { taps })
    }

    /// Designs a band-pass filter passing `[low_hz, high_hz]`.
    ///
    /// Built as the difference of two low-pass designs, yielding a
    /// linear-phase filter with unity gain at the band centre.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if the band edges are not
    /// ordered or lie outside `(0, fs/2)`.
    pub fn band_pass(
        low_hz: f64,
        high_hz: f64,
        sample_rate: f64,
        num_taps: usize,
        window: Window,
    ) -> Result<Self, DspError> {
        validate_freq("low_hz", low_hz, sample_rate)?;
        validate_freq("high_hz", high_hz, sample_rate)?;
        if low_hz >= high_hz {
            return Err(DspError::invalid(
                "low_hz/high_hz",
                format!("band edges must satisfy low < high, got {low_hz} >= {high_hz}"),
            ));
        }
        let n = odd_taps(num_taps)?;
        let f1 = low_hz / sample_rate;
        let f2 = high_hz / sample_rate;
        let mid = (n - 1) as f64 / 2.0;
        let taps: Vec<f64> = (0..n)
            .map(|i| {
                let x = i as f64 - mid;
                (2.0 * f2 * sinc(2.0 * f2 * x) - 2.0 * f1 * sinc(2.0 * f1 * x)) * window.value(i, n)
            })
            .collect();
        FirFilter::from_taps(taps)
    }

    /// The filter taps.
    #[must_use]
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// The group delay of this (symmetric) filter, in samples.
    #[must_use]
    pub fn group_delay(&self) -> f64 {
        (self.taps.len() - 1) as f64 / 2.0
    }

    /// Causal convolution of `signal` with the filter, same-length output.
    ///
    /// The output is delayed by [`FirFilter::group_delay`] samples relative
    /// to the input; use [`FirFilter::filter_zero_phase`] when timing must
    /// be preserved.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if `signal` is empty.
    pub fn filter(&self, signal: &[f64]) -> Result<Vec<f64>, DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput { what: "FIR input" });
        }
        let mut out = vec![0.0; signal.len()];
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (k, &t) in self.taps.iter().enumerate() {
                if let Some(j) = i.checked_sub(k) {
                    acc += t * signal[j];
                }
            }
            *o = acc;
        }
        Ok(out)
    }

    /// Zero-phase filtering: convolves and shifts back by the group delay.
    ///
    /// For a symmetric (linear-phase) filter this leaves event timing
    /// unchanged, which is what the matched-filter front end requires.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if `signal` is empty.
    pub fn filter_zero_phase(&self, signal: &[f64]) -> Result<Vec<f64>, DspError> {
        let mut out = Vec::new();
        self.filter_zero_phase_into(signal, &mut out)?;
        Ok(out)
    }

    /// Allocation-free form of [`FirFilter::filter_zero_phase`]: writes
    /// the same-length output into a caller-owned buffer that is cleared
    /// and reused, so a warm filtering loop performs no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if `signal` is empty.
    pub fn filter_zero_phase_into(
        &self,
        signal: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput { what: "FIR input" });
        }
        let delay = (self.taps.len() - 1) / 2;
        let t_len = self.taps.len();
        let n = signal.len();
        out.clear();
        out.resize(n, 0.0);
        // out[i] = sum_k taps[k] * signal[i + delay - k]
        //
        // Interior outputs — those whose every tap lands in bounds
        // (`t_len - 1 - delay <= i < n - delay`) — are computed four at a
        // time: one lane per output, each lane still accumulating over
        // `k` in the original ascending order, so results stay
        // bit-identical to the historical per-sample loop while the
        // boundary checks vanish and the k-loop body vectorizes. Edge
        // outputs keep the checked scalar path.
        let lo = (t_len - 1 - delay).min(n);
        let hi = n.saturating_sub(delay).max(lo);
        for (i, o) in out[..lo].iter_mut().enumerate() {
            *o = self.zero_phase_edge_sample(signal, i, delay);
        }
        let mut blocks = out[lo..hi].chunks_exact_mut(4);
        let mut i0 = lo;
        for block in &mut blocks {
            let mut acc = [0.0f64; 4];
            for (k, &t) in self.taps.iter().enumerate() {
                let s = &signal[i0 + delay - k..i0 + delay - k + 4];
                for (a, &x) in acc.iter_mut().zip(s) {
                    *a += t * x;
                }
            }
            block.copy_from_slice(&acc);
            i0 += 4;
        }
        for o in blocks.into_remainder() {
            let mut acc = 0.0;
            for (k, &t) in self.taps.iter().enumerate() {
                acc += t * signal[i0 + delay - k];
            }
            *o = acc;
            i0 += 1;
        }
        for (off, o) in out[hi..].iter_mut().enumerate() {
            *o = self.zero_phase_edge_sample(signal, hi + off, delay);
        }
        Ok(())
    }

    /// One boundary output of the zero-phase convolution, with the full
    /// per-tap bounds checks of the historical loop.
    fn zero_phase_edge_sample(&self, signal: &[f64], i: usize, delay: usize) -> f64 {
        let n = signal.len();
        let mut acc = 0.0;
        for (k, &t) in self.taps.iter().enumerate() {
            let idx = i as isize + delay as isize - k as isize;
            if idx >= 0 && (idx as usize) < n {
                acc += t * signal[idx as usize];
            }
        }
        acc
    }

    /// Magnitude of the filter's frequency response at `freq_hz`.
    ///
    /// Evaluated directly from the taps; useful for verifying designs.
    #[must_use]
    pub fn response_at(&self, freq_hz: f64, sample_rate: f64) -> f64 {
        let omega = 2.0 * std::f64::consts::PI * freq_hz / sample_rate;
        let (mut re, mut im) = (0.0, 0.0);
        for (k, &t) in self.taps.iter().enumerate() {
            re += t * (omega * k as f64).cos();
            im -= t * (omega * k as f64).sin();
        }
        re.hypot(im)
    }
}

/// FFT-accelerated zero-phase FIR application via overlap-save blocks.
///
/// [`FirFilter::filter_zero_phase_into`] is O(N·taps) per call; for the
/// 127-tap band-pass over a multi-second capture that direct sum dominates
/// beacon detection. This engine runs the same zero-phase convolution as
/// blocked half-spectrum multiplications — O(N log B) with a peak FFT size
/// of [`ZeroPhaseFir::block_len`], independent of signal length.
///
/// Internally the zero-phase output `out[i] = Σ_k taps[k]·x[i + delay − k]`
/// is rewritten as a cross-correlation with the *reversed* taps at a lead
/// of `taps − 1 − delay` samples, which holds for odd and even tap counts
/// alike, and handed to the overlap-save correlator.
///
/// # Accuracy
///
/// Output is bit-close, not bit-identical, to
/// [`FirFilter::filter_zero_phase`]: identical sums evaluated in a
/// different floating-point order (pinned at `≤ 1e-9 · (1 + max|direct|)`
/// per sample by tests).
///
/// The hot method takes `&self`; per-call state lives in the caller's
/// [`DspScratch`].
#[derive(Debug, Clone)]
pub struct ZeroPhaseFir {
    core: OverlapSave,
    lead: usize,
}

impl ZeroPhaseFir {
    /// Builds the FFT engine for `filter`, with blocks of
    /// `next_pow2(4 × taps)` samples.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if the block length
    /// overflows `usize` (never for realistic tap counts).
    pub fn new(filter: &FirFilter) -> Result<Self, DspError> {
        let taps = filter.taps();
        let reversed: Vec<f64> = taps.iter().rev().copied().collect();
        let delay = (taps.len() - 1) / 2;
        let block = try_next_pow2(taps.len().saturating_mul(4))?;
        Ok(ZeroPhaseFir {
            core: OverlapSave::new(&reversed, block)?,
            lead: taps.len() - 1 - delay,
        })
    }

    /// The FFT block length — the peak transform size of every call,
    /// independent of signal length.
    #[must_use]
    pub fn block_len(&self) -> usize {
        self.core.block_len()
    }

    /// Zero-phase filtering into a caller-owned buffer (cleared and
    /// reused); same output convention as
    /// [`FirFilter::filter_zero_phase_into`]. Steady-state calls at warm
    /// sizes do not allocate.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if `signal` is empty.
    pub fn filter_into(
        &self,
        signal: &[f64],
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput { what: "FIR input" });
        }
        self.core.run(signal, self.lead, signal.len(), scratch, out)
    }

    /// Creates an online ingestion feed for this filter (see
    /// [`ChunkFeed`]).
    #[must_use]
    pub fn chunk_feed(&self) -> ChunkFeed {
        // The reversed-taps template length, recovered from the engine's
        // block geometry (step = block - template + 1).
        let template_len = self.core.block_len() - self.core.step() + 1;
        ChunkFeed::new(self.lead, self.core.block_len(), template_len)
    }

    /// Pushes `chunk` (any length, empty included) into `feed`, appending
    /// every filtered sample whose FFT block completed to `out`. After
    /// [`ZeroPhaseFir::finish_chunks_into`], the concatenated output is
    /// bit-identical to [`ZeroPhaseFir::filter_into`] over the
    /// concatenated chunks, independent of the chunking.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `feed` was created by a
    /// different engine or has already been finished.
    pub fn push_chunk_into(
        &self,
        feed: &mut ChunkFeed,
        chunk: &[f64],
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        self.core.feed_push(feed, self.lead, chunk, scratch, out)
    }

    /// Flushes `feed`, appending the remaining filtered samples to `out`
    /// (one output sample per pushed sample in total). The feed is then
    /// finished; call [`ChunkFeed::reset`] to reuse it.
    ///
    /// # Errors
    ///
    /// Mirrors [`ZeroPhaseFir::filter_into`]: [`DspError::EmptyInput`]
    /// when nothing was pushed, [`DspError::InvalidParameter`] when the
    /// feed belongs to a different engine or was already finished.
    pub fn finish_chunks_into(
        &self,
        feed: &mut ChunkFeed,
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        if !feed.is_finished() && feed.pushed() == 0 {
            return Err(DspError::EmptyInput { what: "FIR input" });
        }
        self.core.feed_finish(feed, self.lead, scratch, out)
    }
}

/// Single-precision FFT-accelerated zero-phase FIR — the f32 analogue of
/// [`ZeroPhaseFir`], built on the split-plane overlap-save engine.
///
/// Taps are designed in f64 (via [`FirFilter`]) and rounded once to f32
/// at engine construction, so design accuracy does not depend on the
/// execution precision. Used by the opt-in `Precision::F32` pipeline; no
/// bit-identity contract against the f64 path (see DESIGN.md §11).
#[derive(Debug, Clone)]
pub struct ZeroPhaseFir32 {
    core: OverlapSave32,
    lead: usize,
}

impl ZeroPhaseFir32 {
    /// Builds the single-precision FFT engine for `filter`, with blocks
    /// of `next_pow2(4 × taps)` samples.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ZeroPhaseFir::new`].
    pub fn new(filter: &FirFilter) -> Result<Self, DspError> {
        let taps = filter.taps();
        let reversed: Vec<f32> = taps.iter().rev().map(|&t| t as f32).collect();
        let delay = (taps.len() - 1) / 2;
        let block = try_next_pow2(taps.len().saturating_mul(4))?;
        Ok(ZeroPhaseFir32 {
            core: OverlapSave32::new(&reversed, block)?,
            lead: taps.len() - 1 - delay,
        })
    }

    /// The FFT block length — the peak transform size of every call.
    #[must_use]
    pub fn block_len(&self) -> usize {
        self.core.block_len()
    }

    /// Zero-phase filtering into a caller-owned buffer (cleared and
    /// reused); f32 analogue of [`ZeroPhaseFir::filter_into`].
    /// Steady-state calls at warm sizes do not allocate.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if `signal` is empty.
    pub fn filter_into(
        &self,
        signal: &[f32],
        scratch: &mut DspScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput { what: "FIR input" });
        }
        self.core.run(signal, self.lead, signal.len(), scratch, out)
    }

    /// Creates an online ingestion feed for this engine (see
    /// [`ChunkFeed`]).
    #[must_use]
    pub fn chunk_feed(&self) -> ChunkFeed<f32> {
        let template_len = self.core.block_len() - self.core.step() + 1;
        ChunkFeed::new(self.lead, self.core.block_len(), template_len)
    }

    /// Pushes `chunk` into `feed`, appending every filtered sample whose
    /// FFT block completed to `out` (f32 analogue of
    /// [`ZeroPhaseFir::push_chunk_into`]).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `feed` was created by a
    /// different engine or has already been finished.
    pub fn push_chunk_into(
        &self,
        feed: &mut ChunkFeed<f32>,
        chunk: &[f32],
        scratch: &mut DspScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), DspError> {
        self.core.feed_push(feed, self.lead, chunk, scratch, out)
    }

    /// Flushes `feed`, appending the remaining filtered samples to `out`
    /// (f32 analogue of [`ZeroPhaseFir::finish_chunks_into`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ZeroPhaseFir::finish_chunks_into`].
    pub fn finish_chunks_into(
        &self,
        feed: &mut ChunkFeed<f32>,
        scratch: &mut DspScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), DspError> {
        if !feed.is_finished() && feed.pushed() == 0 {
            return Err(DspError::EmptyInput { what: "FIR input" });
        }
        self.core.feed_finish(feed, self.lead, scratch, out)
    }
}

fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-12 {
        1.0
    } else {
        let px = std::f64::consts::PI * x;
        px.sin() / px
    }
}

fn odd_taps(num_taps: usize) -> Result<usize, DspError> {
    if num_taps == 0 {
        return Err(DspError::invalid("num_taps", "must be positive"));
    }
    Ok(if num_taps.is_multiple_of(2) {
        num_taps + 1
    } else {
        num_taps
    })
}

fn validate_freq(name: &'static str, f: f64, fs: f64) -> Result<(), DspError> {
    if fs <= 0.0 {
        return Err(DspError::invalid("sample_rate", "must be positive"));
    }
    if !(f > 0.0 && f < fs / 2.0) {
        return Err(DspError::invalid(
            name,
            format!("must be in (0, {}), got {f}", fs / 2.0),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    fn rms(x: &[f64]) -> f64 {
        (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
    }

    #[test]
    fn low_pass_passes_low_and_rejects_high() {
        let fs = 44_100.0;
        let lp = FirFilter::low_pass(2_000.0, fs, 101, Window::Hamming).unwrap();
        let low = lp.filter_zero_phase(&tone(500.0, fs, 4096)).unwrap();
        let high = lp.filter_zero_phase(&tone(10_000.0, fs, 4096)).unwrap();
        // Compare interior RMS to avoid edge effects.
        assert!(rms(&low[500..3500]) > 0.6);
        assert!(rms(&high[500..3500]) < 0.02);
    }

    #[test]
    fn band_pass_isolates_chirp_band() {
        let fs = 44_100.0;
        let bp = FirFilter::band_pass(2_000.0, 6_400.0, fs, 127, Window::Hamming).unwrap();
        let inband = bp.filter_zero_phase(&tone(4_000.0, fs, 4096)).unwrap();
        let voice = bp.filter_zero_phase(&tone(800.0, fs, 4096)).unwrap();
        let hiss = bp.filter_zero_phase(&tone(12_000.0, fs, 4096)).unwrap();
        assert!(rms(&inband[500..3500]) > 0.6, "in-band should pass");
        assert!(
            rms(&voice[500..3500]) < 0.03,
            "voice band should be rejected"
        );
        assert!(rms(&hiss[500..3500]) < 0.03, "high band should be rejected");
    }

    #[test]
    fn high_pass_complements_low_pass() {
        let fs = 44_100.0;
        let hp = FirFilter::high_pass(2_000.0, fs, 101, Window::Hamming).unwrap();
        let low = hp.filter_zero_phase(&tone(300.0, fs, 4096)).unwrap();
        let high = hp.filter_zero_phase(&tone(8_000.0, fs, 4096)).unwrap();
        assert!(rms(&low[500..3500]) < 0.03);
        assert!(rms(&high[500..3500]) > 0.6);
    }

    #[test]
    fn zero_phase_preserves_pulse_position() {
        let fs = 44_100.0;
        let lp = FirFilter::low_pass(5_000.0, fs, 61, Window::Hamming).unwrap();
        let mut signal = vec![0.0; 1024];
        signal[400] = 1.0;
        let out = lp.filter_zero_phase(&signal).unwrap();
        let peak = out
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, 400);
    }

    #[test]
    fn causal_filter_delays_by_group_delay() {
        let fs = 44_100.0;
        let lp = FirFilter::low_pass(5_000.0, fs, 61, Window::Hamming).unwrap();
        let mut signal = vec![0.0; 1024];
        signal[400] = 1.0;
        let out = lp.filter(&signal).unwrap();
        let peak = out
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, 400 + 30);
        assert_eq!(lp.group_delay(), 30.0);
    }

    #[test]
    fn dc_gain_of_low_pass_is_unity() {
        let lp = FirFilter::low_pass(1_000.0, 44_100.0, 81, Window::Hamming).unwrap();
        let sum: f64 = lp.taps().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((lp.response_at(0.0, 44_100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn response_at_band_center_is_near_unity() {
        let bp = FirFilter::band_pass(2_000.0, 6_400.0, 44_100.0, 127, Window::Hamming).unwrap();
        let g = bp.response_at(4_200.0, 44_100.0);
        assert!((g - 1.0).abs() < 0.05, "band-center gain was {g}");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(FirFilter::low_pass(0.0, 44_100.0, 11, Window::Hann).is_err());
        assert!(FirFilter::low_pass(30_000.0, 44_100.0, 11, Window::Hann).is_err());
        assert!(FirFilter::low_pass(100.0, 44_100.0, 0, Window::Hann).is_err());
        assert!(FirFilter::band_pass(5_000.0, 2_000.0, 44_100.0, 11, Window::Hann).is_err());
        assert!(FirFilter::low_pass(100.0, -1.0, 11, Window::Hann).is_err());
        assert!(FirFilter::from_taps(vec![]).is_err());
    }

    #[test]
    fn even_tap_requests_are_bumped_to_odd() {
        let lp = FirFilter::low_pass(1_000.0, 44_100.0, 10, Window::Hann).unwrap();
        assert_eq!(lp.taps().len() % 2, 1);
    }

    #[test]
    fn empty_signal_is_rejected() {
        let lp = FirFilter::low_pass(1_000.0, 44_100.0, 11, Window::Hann).unwrap();
        assert!(lp.filter(&[]).is_err());
        assert!(lp.filter_zero_phase(&[]).is_err());
        assert!(lp.filter_zero_phase_into(&[], &mut Vec::new()).is_err());
    }

    fn assert_bit_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        let scale = 1.0 + b.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= 1e-9 * scale, "sample {i}: {x} vs {y}");
        }
    }

    #[test]
    fn fft_zero_phase_matches_direct_odd_taps() {
        let fs = 44_100.0;
        let bp = FirFilter::band_pass(2_000.0, 6_400.0, fs, 127, Window::Hamming).unwrap();
        let signal: Vec<f64> = (0..3000)
            .map(|i| (i as f64 * 0.13).sin() + 0.4 * (i as f64 * 0.031).cos())
            .collect();
        let direct = bp.filter_zero_phase(&signal).unwrap();
        let engine = ZeroPhaseFir::new(&bp).unwrap();
        assert_eq!(engine.block_len(), 512); // next_pow2(4 * 127)
        let mut scratch = DspScratch::new();
        let mut out = Vec::new();
        engine.filter_into(&signal, &mut scratch, &mut out).unwrap();
        assert_bit_close(&out, &direct);
    }

    #[test]
    fn fft_zero_phase_matches_direct_even_taps() {
        // from_taps allows even (asymmetric) tap counts; the lead
        // computation must stay aligned with the direct path's
        // (taps - 1) / 2 delay convention.
        let fir = FirFilter::from_taps(vec![0.25, -0.5, 1.0, -0.5, 0.25, 0.1]).unwrap();
        let signal: Vec<f64> = (0..200).map(|i| (i as f64 * 0.7).sin()).collect();
        let direct = fir.filter_zero_phase(&signal).unwrap();
        let engine = ZeroPhaseFir::new(&fir).unwrap();
        let mut scratch = DspScratch::new();
        let mut out = Vec::new();
        engine.filter_into(&signal, &mut scratch, &mut out).unwrap();
        assert_bit_close(&out, &direct);
    }

    #[test]
    fn fft_zero_phase_handles_short_signals_and_rejects_empty() {
        let lp = FirFilter::low_pass(5_000.0, 44_100.0, 61, Window::Hamming).unwrap();
        let engine = ZeroPhaseFir::new(&lp).unwrap();
        let mut scratch = DspScratch::new();
        let mut out = Vec::new();
        // Shorter than the taps, shorter than one block.
        let signal = [1.0, -1.0, 0.5];
        engine.filter_into(&signal, &mut scratch, &mut out).unwrap();
        assert_bit_close(&out, &lp.filter_zero_phase(&signal).unwrap());
        assert!(engine.filter_into(&[], &mut scratch, &mut out).is_err());
    }

    #[test]
    fn chunked_fir_is_bit_identical_to_one_shot() {
        let fs = 44_100.0;
        let bp = FirFilter::band_pass(2_000.0, 6_400.0, fs, 127, Window::Hamming).unwrap();
        let engine = ZeroPhaseFir::new(&bp).unwrap();
        let signal: Vec<f64> = (0..2345)
            .map(|i| (i as f64 * 0.13).sin() + 0.4 * (i as f64 * 0.031).cos())
            .collect();
        let mut scratch = DspScratch::new();
        let mut reference = Vec::new();
        engine
            .filter_into(&signal, &mut scratch, &mut reference)
            .unwrap();
        for chunk_len in [1usize, 5, 127, 512, signal.len()] {
            let mut feed = engine.chunk_feed();
            let mut out = Vec::new();
            for chunk in signal.chunks(chunk_len) {
                engine
                    .push_chunk_into(&mut feed, chunk, &mut scratch, &mut out)
                    .unwrap();
            }
            engine
                .finish_chunks_into(&mut feed, &mut scratch, &mut out)
                .unwrap();
            assert_eq!(out, reference, "chunk_len {chunk_len}");
            // Reset gives a clean second stream on the same feed.
            feed.reset();
            let mut again = Vec::new();
            engine
                .push_chunk_into(&mut feed, &signal, &mut scratch, &mut again)
                .unwrap();
            engine
                .finish_chunks_into(&mut feed, &mut scratch, &mut again)
                .unwrap();
            assert_eq!(again, reference);
        }
    }

    #[test]
    fn chunked_fir_rejects_empty_stream_and_foreign_feeds() {
        let lp = FirFilter::low_pass(5_000.0, 44_100.0, 61, Window::Hamming).unwrap();
        let engine = ZeroPhaseFir::new(&lp).unwrap();
        let mut scratch = DspScratch::new();
        let mut out = Vec::new();
        let mut feed = engine.chunk_feed();
        assert!(matches!(
            engine.finish_chunks_into(&mut feed, &mut scratch, &mut out),
            Err(DspError::EmptyInput { .. })
        ));
        let other = FirFilter::low_pass(5_000.0, 44_100.0, 31, Window::Hamming).unwrap();
        let mut foreign = ZeroPhaseFir::new(&other).unwrap().chunk_feed();
        assert!(engine
            .push_chunk_into(&mut foreign, &[1.0], &mut scratch, &mut out)
            .is_err());
    }

    #[test]
    fn blocked_zero_phase_is_bit_identical_to_naive_loop() {
        // The interior/edge split with 4-wide output blocks must
        // reproduce the historical per-sample checked loop to the last
        // ulp, for odd and even tap counts and for signals shorter than
        // the filter.
        let naive = |taps: &[f64], signal: &[f64]| -> Vec<f64> {
            let delay = (taps.len() - 1) / 2;
            let n = signal.len();
            (0..n)
                .map(|i| {
                    let mut acc = 0.0;
                    for (k, &t) in taps.iter().enumerate() {
                        let idx = i as isize + delay as isize - k as isize;
                        if idx >= 0 && (idx as usize) < n {
                            acc += t * signal[idx as usize];
                        }
                    }
                    acc
                })
                .collect()
        };
        let designs = [
            FirFilter::band_pass(2_000.0, 6_400.0, 44_100.0, 127, Window::Hamming).unwrap(),
            FirFilter::low_pass(5_000.0, 44_100.0, 61, Window::Hann).unwrap(),
            FirFilter::from_taps(vec![0.25, -0.5, 1.0, -0.5, 0.25, 0.1]).unwrap(),
            FirFilter::from_taps(vec![1.0]).unwrap(),
        ];
        for fir in &designs {
            for &len in &[1usize, 3, 60, 61, 62, 200, 1023] {
                let signal: Vec<f64> = (0..len)
                    .map(|i| (i as f64 * 0.13).sin() + 0.4 * (i as f64 * 0.031).cos())
                    .collect();
                let mut out = Vec::new();
                fir.filter_zero_phase_into(&signal, &mut out).unwrap();
                assert_eq!(
                    out,
                    naive(fir.taps(), &signal),
                    "taps {} len {len}",
                    fir.taps().len()
                );
            }
        }
    }

    #[test]
    fn f32_zero_phase_tracks_f64_engine() {
        let fs = 44_100.0;
        let bp = FirFilter::band_pass(2_000.0, 6_400.0, fs, 127, Window::Hamming).unwrap();
        let signal: Vec<f64> = (0..3000)
            .map(|i| (i as f64 * 0.13).sin() + 0.4 * (i as f64 * 0.031).cos())
            .collect();
        let direct = bp.filter_zero_phase(&signal).unwrap();
        let engine = ZeroPhaseFir32::new(&bp).unwrap();
        assert_eq!(engine.block_len(), 512);
        let signal32: Vec<f32> = signal.iter().map(|&x| x as f32).collect();
        let mut scratch = DspScratch::new();
        let mut out = Vec::new();
        engine
            .filter_into(&signal32, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out.len(), direct.len());
        let scale = 1.0 + direct.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (i, (&x, &y)) in out.iter().zip(&direct).enumerate() {
            assert!(
                (x as f64 - y).abs() < 1e-4 * scale,
                "sample {i}: {x} vs {y}"
            );
        }
        assert!(engine.filter_into(&[], &mut scratch, &mut out).is_err());
    }

    #[test]
    fn f32_chunked_fir_is_bit_identical_to_f32_one_shot() {
        let bp = FirFilter::band_pass(2_000.0, 6_400.0, 44_100.0, 127, Window::Hamming).unwrap();
        let engine = ZeroPhaseFir32::new(&bp).unwrap();
        let signal32: Vec<f32> = (0..2345)
            .map(|i| ((i as f64 * 0.13).sin() + 0.4 * (i as f64 * 0.031).cos()) as f32)
            .collect();
        let mut scratch = DspScratch::new();
        let mut reference = Vec::new();
        engine
            .filter_into(&signal32, &mut scratch, &mut reference)
            .unwrap();
        for chunk_len in [1usize, 127, 512, signal32.len()] {
            let mut feed = engine.chunk_feed();
            let mut out = Vec::new();
            for chunk in signal32.chunks(chunk_len) {
                engine
                    .push_chunk_into(&mut feed, chunk, &mut scratch, &mut out)
                    .unwrap();
            }
            engine
                .finish_chunks_into(&mut feed, &mut scratch, &mut out)
                .unwrap();
            assert_eq!(out, reference, "chunk_len {chunk_len}");
        }
        // Empty stream and foreign feeds are rejected like the f64 engine.
        let mut fresh = engine.chunk_feed();
        let mut out = Vec::new();
        assert!(matches!(
            engine.finish_chunks_into(&mut fresh, &mut scratch, &mut out),
            Err(DspError::EmptyInput { .. })
        ));
        let other = FirFilter::low_pass(5_000.0, 44_100.0, 31, Window::Hamming).unwrap();
        let mut foreign = ZeroPhaseFir32::new(&other).unwrap().chunk_feed();
        assert!(engine
            .push_chunk_into(&mut foreign, &[1.0], &mut scratch, &mut out)
            .is_err());
    }

    #[test]
    fn zero_phase_into_matches_allocating_form() {
        let fs = 44_100.0;
        let bp = FirFilter::band_pass(2_000.0, 6_400.0, fs, 127, Window::Hamming).unwrap();
        let signal = tone(4_000.0, fs, 2048);
        let reference = bp.filter_zero_phase(&signal).unwrap();
        let mut out = vec![9.0; 10]; // stale contents must be irrelevant
        for _ in 0..2 {
            bp.filter_zero_phase_into(&signal, &mut out).unwrap();
            assert_eq!(out, reference);
        }
    }
}
