//! Second-order (biquad) IIR filter sections.
//!
//! Coefficients follow the Audio-EQ-Cookbook (RBJ) formulas. The simulator
//! uses cascaded biquads to shape microphone frequency responses and to
//! colour noise (voice-band hum, mall broadband noise).

use crate::DspError;

/// The biquad response families supported by [`Biquad::design`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BiquadKind {
    /// Low-pass with -12 dB/octave rolloff above the corner.
    LowPass,
    /// High-pass with -12 dB/octave rolloff below the corner.
    HighPass,
    /// Band-pass with 0 dB peak gain at the centre frequency.
    BandPass,
    /// Band-reject (notch) at the centre frequency.
    Notch,
}

/// A single direct-form-I biquad section with persistent state.
///
/// # Example
///
/// ```
/// use hyperear_dsp::filter::{Biquad, BiquadKind};
///
/// # fn main() -> Result<(), hyperear_dsp::DspError> {
/// let mut lp = Biquad::design(BiquadKind::LowPass, 1_000.0, 44_100.0, 0.707)?;
/// let out = lp.process_block(&[1.0, 0.0, 0.0, 0.0]);
/// assert_eq!(out.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Biquad {
    // Normalized coefficients (a0 == 1).
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
    // State: previous inputs and outputs.
    x1: f64,
    x2: f64,
    y1: f64,
    y2: f64,
}

impl Biquad {
    /// Designs a biquad of the given `kind`.
    ///
    /// `freq_hz` is the corner/centre frequency, `q` the resonance quality
    /// factor (0.707 for a Butterworth-like response).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `freq_hz` is not in
    /// `(0, fs/2)` or `q` is not positive.
    pub fn design(
        kind: BiquadKind,
        freq_hz: f64,
        sample_rate: f64,
        q: f64,
    ) -> Result<Self, DspError> {
        if sample_rate <= 0.0 {
            return Err(DspError::invalid("sample_rate", "must be positive"));
        }
        if !(freq_hz > 0.0 && freq_hz < sample_rate / 2.0) {
            return Err(DspError::invalid(
                "freq_hz",
                format!("must be in (0, {}), got {freq_hz}", sample_rate / 2.0),
            ));
        }
        if q <= 0.0 {
            return Err(DspError::invalid("q", "must be positive"));
        }
        let omega = 2.0 * std::f64::consts::PI * freq_hz / sample_rate;
        let (sin_w, cos_w) = omega.sin_cos();
        let alpha = sin_w / (2.0 * q);
        let a0 = 1.0 + alpha;

        let (b0, b1, b2, a1, a2) = match kind {
            BiquadKind::LowPass => {
                let b1 = 1.0 - cos_w;
                (b1 / 2.0, b1, b1 / 2.0, -2.0 * cos_w, 1.0 - alpha)
            }
            BiquadKind::HighPass => {
                let b1 = -(1.0 + cos_w);
                (
                    (1.0 + cos_w) / 2.0,
                    b1,
                    (1.0 + cos_w) / 2.0,
                    -2.0 * cos_w,
                    1.0 - alpha,
                )
            }
            BiquadKind::BandPass => (alpha, 0.0, -alpha, -2.0 * cos_w, 1.0 - alpha),
            BiquadKind::Notch => (1.0, -2.0 * cos_w, 1.0, -2.0 * cos_w, 1.0 - alpha),
        };
        Ok(Biquad {
            b0: b0 / a0,
            b1: b1 / a0,
            b2: b2 / a0,
            a1: a1 / a0,
            a2: a2 / a0,
            x1: 0.0,
            x2: 0.0,
            y1: 0.0,
            y2: 0.0,
        })
    }

    /// Processes one sample, updating the filter state.
    #[inline]
    pub fn process(&mut self, x: f64) -> f64 {
        let y = self.b0 * x + self.b1 * self.x1 + self.b2 * self.x2
            - self.a1 * self.y1
            - self.a2 * self.y2;
        self.x2 = self.x1;
        self.x1 = x;
        self.y2 = self.y1;
        self.y1 = y;
        y
    }

    /// Processes a block of samples, returning a new vector.
    pub fn process_block(&mut self, signal: &[f64]) -> Vec<f64> {
        signal.iter().map(|&x| self.process(x)).collect()
    }

    /// Resets the filter state to zero without changing coefficients.
    pub fn reset(&mut self) {
        self.x1 = 0.0;
        self.x2 = 0.0;
        self.y1 = 0.0;
        self.y2 = 0.0;
    }

    /// Magnitude response at `freq_hz`.
    #[must_use]
    pub fn response_at(&self, freq_hz: f64, sample_rate: f64) -> f64 {
        use crate::Complex;
        let omega = 2.0 * std::f64::consts::PI * freq_hz / sample_rate;
        let z1 = Complex::from_angle(-omega);
        let z2 = z1 * z1;
        let num = Complex::from_real(self.b0) + z1 * self.b1 + z2 * self.b2;
        let den = Complex::ONE + z1 * self.a1 + z2 * self.a2;
        (num / den).abs()
    }
}

/// A cascade of biquad sections applied in sequence.
///
/// Cascading second-order sections is the numerically robust way to build
/// higher-order IIR responses.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BiquadCascade {
    sections: Vec<Biquad>,
}

impl BiquadCascade {
    /// Creates a cascade from individual sections.
    #[must_use]
    pub fn new(sections: Vec<Biquad>) -> Self {
        BiquadCascade { sections }
    }

    /// Processes one sample through every section in order.
    pub fn process(&mut self, x: f64) -> f64 {
        self.sections.iter_mut().fold(x, |acc, s| s.process(acc))
    }

    /// Processes a block of samples.
    pub fn process_block(&mut self, signal: &[f64]) -> Vec<f64> {
        signal.iter().map(|&x| self.process(x)).collect()
    }

    /// Resets all section states.
    pub fn reset(&mut self) {
        for s in &mut self.sections {
            s.reset();
        }
    }

    /// Magnitude response of the whole cascade at `freq_hz`.
    #[must_use]
    pub fn response_at(&self, freq_hz: f64, sample_rate: f64) -> f64 {
        self.sections
            .iter()
            .map(|s| s.response_at(freq_hz, sample_rate))
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    fn rms(x: &[f64]) -> f64 {
        (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
    }

    #[test]
    fn low_pass_attenuates_high_frequencies() {
        let fs = 44_100.0;
        let mut lp = Biquad::design(BiquadKind::LowPass, 1_000.0, fs, 0.707).unwrap();
        let low = lp.process_block(&tone(100.0, fs, 8192));
        lp.reset();
        let high = lp.process_block(&tone(10_000.0, fs, 8192));
        assert!(rms(&low[2000..]) > 0.6);
        assert!(rms(&high[2000..]) < 0.05);
    }

    #[test]
    fn high_pass_attenuates_low_frequencies() {
        let fs = 44_100.0;
        let mut hp = Biquad::design(BiquadKind::HighPass, 2_000.0, fs, 0.707).unwrap();
        let low = hp.process_block(&tone(100.0, fs, 8192));
        hp.reset();
        let high = hp.process_block(&tone(10_000.0, fs, 8192));
        assert!(rms(&low[2000..]) < 0.05);
        assert!(rms(&high[2000..]) > 0.6);
    }

    #[test]
    fn band_pass_peaks_at_center() {
        let fs = 44_100.0;
        let bp = Biquad::design(BiquadKind::BandPass, 4_000.0, fs, 1.0).unwrap();
        let center = bp.response_at(4_000.0, fs);
        assert!((center - 1.0).abs() < 1e-9);
        assert!(bp.response_at(500.0, fs) < 0.3);
        assert!(bp.response_at(16_000.0, fs) < 0.3);
    }

    #[test]
    fn notch_nulls_center_frequency() {
        let fs = 44_100.0;
        let notch = Biquad::design(BiquadKind::Notch, 4_000.0, fs, 5.0).unwrap();
        assert!(notch.response_at(4_000.0, fs) < 1e-9);
        assert!(notch.response_at(400.0, fs) > 0.9);
    }

    #[test]
    fn reset_restores_initial_state() {
        let fs = 44_100.0;
        let mut lp = Biquad::design(BiquadKind::LowPass, 1_000.0, fs, 0.707).unwrap();
        let first = lp.process_block(&tone(500.0, fs, 64));
        lp.reset();
        let second = lp.process_block(&tone(500.0, fs, 64));
        assert_eq!(first, second);
    }

    #[test]
    fn cascade_multiplies_responses() {
        let fs = 44_100.0;
        let s1 = Biquad::design(BiquadKind::LowPass, 3_000.0, fs, 0.707).unwrap();
        let s2 = Biquad::design(BiquadKind::HighPass, 300.0, fs, 0.707).unwrap();
        let expected = s1.response_at(1_000.0, fs) * s2.response_at(1_000.0, fs);
        let cascade = BiquadCascade::new(vec![s1, s2]);
        assert!((cascade.response_at(1_000.0, fs) - expected).abs() < 1e-12);
    }

    #[test]
    fn cascade_processes_in_order() {
        let fs = 44_100.0;
        let lp = Biquad::design(BiquadKind::LowPass, 2_000.0, fs, 0.707).unwrap();
        let mut cascade = BiquadCascade::new(vec![lp.clone(), lp]);
        let out = cascade.process_block(&tone(8_000.0, fs, 8192));
        // Double low-pass should attenuate more than a single one.
        assert!(rms(&out[2000..]) < 0.02);
        cascade.reset();
    }

    #[test]
    fn invalid_designs_are_rejected() {
        assert!(Biquad::design(BiquadKind::LowPass, 0.0, 44_100.0, 0.7).is_err());
        assert!(Biquad::design(BiquadKind::LowPass, 30_000.0, 44_100.0, 0.7).is_err());
        assert!(Biquad::design(BiquadKind::LowPass, 100.0, 44_100.0, 0.0).is_err());
        assert!(Biquad::design(BiquadKind::LowPass, 100.0, 0.0, 0.7).is_err());
    }

    #[test]
    fn default_cascade_is_passthrough() {
        let mut c = BiquadCascade::default();
        assert_eq!(c.process(1.25), 1.25);
    }
}
