//! Simple moving average (SMA) filter.
//!
//! HyperEar removes high-frequency noise from the 100 Hz accelerometer and
//! gyroscope streams with "the unweighted mean of the previous n samples",
//! choosing n = 4 "to achieve a -3 dB cut-off frequency at 15 Hz"
//! (Section V-A-1). This module implements exactly that filter plus the
//! cut-off analysis used to justify the choice.

use crate::DspError;

/// An unweighted moving-average low-pass filter over the previous `n` samples.
///
/// # Example
///
/// ```
/// use hyperear_dsp::filter::MovingAverage;
///
/// # fn main() -> Result<(), hyperear_dsp::DspError> {
/// let sma = MovingAverage::new(4)?;
/// let smoothed = sma.filter(&[0.0, 4.0, 0.0, 4.0, 0.0, 4.0])?;
/// assert_eq!(smoothed[5], 2.0); // mean of the last 4 samples
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MovingAverage {
    n: usize,
}

impl MovingAverage {
    /// The window length the HyperEar paper uses for inertial smoothing.
    pub const PAPER_WINDOW: usize = 4;

    /// Creates a moving-average filter over `n` samples.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `n` is zero.
    pub fn new(n: usize) -> Result<Self, DspError> {
        if n == 0 {
            return Err(DspError::invalid("n", "window length must be positive"));
        }
        Ok(MovingAverage { n })
    }

    /// The window length.
    #[must_use]
    pub fn window(&self) -> usize {
        self.n
    }

    /// Filters `signal`, producing a same-length output.
    ///
    /// The first `n - 1` outputs average the partial window that is
    /// available, so no startup samples are lost (matching how a streaming
    /// implementation on the phone would warm up).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if `signal` is empty.
    pub fn filter(&self, signal: &[f64]) -> Result<Vec<f64>, DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput { what: "SMA input" });
        }
        let mut out = Vec::with_capacity(signal.len());
        let mut acc = 0.0;
        for i in 0..signal.len() {
            acc += signal[i];
            if i >= self.n {
                acc -= signal[i - self.n];
            }
            let count = (i + 1).min(self.n) as f64;
            out.push(acc / count);
        }
        Ok(out)
    }

    /// The -3 dB cut-off frequency of this filter at the given sampling
    /// rate, in hertz.
    ///
    /// Found by bisection on the moving-average magnitude response
    /// `|sin(πfN/fs) / (N·sin(πf/fs))|`. For n = 4 at 100 Hz this is
    /// ≈ 11–15 Hz, matching the paper's stated design point.
    #[must_use]
    pub fn cutoff_hz(&self, sample_rate: f64) -> f64 {
        let target = std::f64::consts::FRAC_1_SQRT_2;
        let mag = |f: f64| -> f64 {
            let x = std::f64::consts::PI * f / sample_rate;
            if x.abs() < 1e-12 {
                return 1.0;
            }
            ((self.n as f64 * x).sin() / (self.n as f64 * x.sin())).abs()
        };
        let (mut lo, mut hi) = (0.0, sample_rate / (2.0 * self.n as f64));
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if mag(mid) > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_is_unchanged() {
        let sma = MovingAverage::new(4).unwrap();
        let out = sma.filter(&[3.0; 10]).unwrap();
        assert!(out.iter().all(|&v| (v - 3.0).abs() < 1e-12));
    }

    #[test]
    fn warmup_uses_partial_window() {
        let sma = MovingAverage::new(4).unwrap();
        let out = sma.filter(&[4.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        assert_eq!(out[0], 4.0);
        assert_eq!(out[1], 2.0);
        assert!((out[2] - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(out[3], 1.0);
        assert_eq!(out[4], 0.0);
    }

    #[test]
    fn steady_state_matches_manual_mean() {
        let sma = MovingAverage::new(3).unwrap();
        let signal = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let out = sma.filter(&signal).unwrap();
        assert!((out[5] - 5.0).abs() < 1e-12); // (4+5+6)/3
        assert!((out[3] - 3.0).abs() < 1e-12); // (2+3+4)/3
    }

    #[test]
    fn smooths_alternating_noise() {
        let sma = MovingAverage::new(4).unwrap();
        let noisy: Vec<f64> = (0..100)
            .map(|i| 1.0 + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let out = sma.filter(&noisy).unwrap();
        for &v in &out[4..] {
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_design_point_cutoff() {
        // n = 4 at 100 Hz: the paper quotes ~15 Hz; the exact -3 dB point of
        // a 4-tap boxcar at 100 Hz is ≈11.4 Hz. Accept the ballpark.
        let sma = MovingAverage::new(MovingAverage::PAPER_WINDOW).unwrap();
        let fc = sma.cutoff_hz(100.0);
        assert!((10.0..16.0).contains(&fc), "cutoff was {fc}");
    }

    #[test]
    fn longer_window_means_lower_cutoff() {
        let c4 = MovingAverage::new(4).unwrap().cutoff_hz(100.0);
        let c8 = MovingAverage::new(8).unwrap().cutoff_hz(100.0);
        assert!(c8 < c4);
    }

    #[test]
    fn zero_window_is_rejected() {
        assert!(MovingAverage::new(0).is_err());
    }

    #[test]
    fn empty_signal_is_rejected() {
        let sma = MovingAverage::new(4).unwrap();
        assert!(sma.filter(&[]).is_err());
    }

    #[test]
    fn window_accessor() {
        assert_eq!(MovingAverage::new(7).unwrap().window(), 7);
    }
}
