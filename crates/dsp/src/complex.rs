//! A minimal complex-number type for the FFT and spectral helpers, plus
//! the crate's shared lane-aware slice kernels.
//!
//! Only the operations the crate needs are implemented; this is not a
//! general-purpose complex-arithmetic library.
//!
//! # Lane kernels
//!
//! The free functions at the bottom of this module ([`conj_mul_in_place`],
//! [`scale_in_place`], [`conj_mul_planes`], [`mul_assign_real`], [`axpy`],
//! [`dot_seq`]) are the single home for the elementwise multiply /
//! multiply-accumulate loops that used to be written ad hoc in
//! `correlate`, `estimator`, and `spectrum`. They are written over
//! `chunks_exact` blocks so the autovectorizer emits 2/4/8-wide SIMD on
//! stable Rust, and — because every kernel is elementwise with no
//! cross-lane reduction reassociation — each one is **bit-identical** to
//! its scalar loop. With the default-off `simd` cargo feature on x86_64,
//! the two hottest kernels additionally dispatch at runtime to AVX
//! `core::arch` intrinsics that perform the exact same IEEE operations
//! per element (multiplies and adds only, never fused), so the feature
//! gate changes throughput, never results.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use hyperear_dsp::Complex;
///
/// let i = Complex::new(0.0, 1.0);
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates the unit phasor `e^{iθ}` for the angle `theta` in radians.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Returns the complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Returns the modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Returns the squared modulus `|z|²`, avoiding the square root.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

// ---------------------------------------------------------------------
// Shared lane-aware slice kernels.
// ---------------------------------------------------------------------

/// Lane width the chunked kernels are written around: four `f64`
/// complexes (one cache line) per block, which the autovectorizer maps
/// onto 2×128-bit, 2×256-bit or 1×512-bit vectors as the target allows.
pub const LANES: usize = 4;

/// Multiplies `acc[i] *= by[i].conj()` elementwise — the spectral
/// correlation kernel shared by `xcorr_into`, `MatchedFilter`,
/// `OverlapSave` and the zero-phase FIR engine (which passes reversed
/// taps so that correlation doubles as convolution).
///
/// Elementwise with no cross-lane reduction, so the chunked layout and
/// the `simd`-feature AVX path are bit-identical to the scalar loop.
///
/// # Panics
///
/// Panics if the slices differ in length (internal kernel contract; all
/// call sites pass same-length spectra).
pub fn conj_mul_in_place(acc: &mut [Complex], by: &[Complex]) {
    assert_eq!(acc.len(), by.len(), "conj_mul_in_place length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if x86::avx_available() {
        // SAFETY: AVX support was just verified at runtime.
        #[allow(unsafe_code)]
        unsafe {
            x86::conj_mul_in_place_avx(acc, by)
        };
        return;
    }
    conj_mul_scalar(acc, by);
}

#[inline]
fn conj_mul_scalar(acc: &mut [Complex], by: &[Complex]) {
    let mut a = acc.chunks_exact_mut(LANES);
    let mut b = by.chunks_exact(LANES);
    for (av, bv) in (&mut a).zip(&mut b) {
        for k in 0..LANES {
            let (x, y) = (av[k], bv[k]);
            av[k] = Complex::new(x.re * y.re + x.im * y.im, x.im * y.re - x.re * y.im);
        }
    }
    for (x, &y) in a.into_remainder().iter_mut().zip(b.remainder()) {
        *x = Complex::new(x.re * y.re + x.im * y.im, x.im * y.re - x.re * y.im);
    }
}

/// Scales every element by the real factor `k` — the inverse-FFT
/// normalization and template-energy normalization kernel. Elementwise,
/// hence bit-identical to the scalar loop at any lane width.
pub fn scale_in_place(data: &mut [Complex], k: f64) {
    let mut it = data.chunks_exact_mut(LANES);
    for block in &mut it {
        for v in block {
            *v = v.scale(k);
        }
    }
    for v in it.into_remainder() {
        *v = v.scale(k);
    }
}

/// `acc[i] *= by[i].conj()` over split re/im planes — the f32 spectral
/// correlation kernel of the reduced-precision pipeline. Split planes
/// keep every operand contiguous, so the scalar body autovectorizes to
/// full-width 8-lane f32 SIMD without any shuffles; the `simd` feature
/// swaps in the equivalent AVX intrinsics. Both are bit-identical to
/// the scalar loop (elementwise multiplies and adds only).
///
/// # Panics
///
/// Panics if the four planes differ in length.
pub fn conj_mul_planes(ar: &mut [f32], ai: &mut [f32], br: &[f32], bi: &[f32]) {
    let n = ar.len();
    assert!(
        ai.len() == n && br.len() == n && bi.len() == n,
        "conj_mul_planes length mismatch"
    );
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if x86::avx_available() {
        // SAFETY: AVX support was just verified at runtime.
        #[allow(unsafe_code)]
        unsafe {
            x86::conj_mul_planes_avx(ar, ai, br, bi)
        };
        return;
    }
    for k in 0..n {
        let (xr, xi) = (ar[k], ai[k]);
        ar[k] = xr * br[k] + xi * bi[k];
        ai[k] = xi * br[k] - xr * bi[k];
    }
}

/// Scales both planes by `k` — the f32 inverse-FFT normalization kernel.
pub fn scale_planes(re: &mut [f32], im: &mut [f32], k: f32) {
    for v in re.iter_mut() {
        *v *= k;
    }
    for v in im.iter_mut() {
        *v *= k;
    }
}

/// Multiplies `out[i] *= by[i]` elementwise — the window-application
/// kernel (`Window::apply` over cached coefficients, STFT framing).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_assign_real(out: &mut [f64], by: &[f64]) {
    assert_eq!(out.len(), by.len(), "mul_assign_real length mismatch");
    for (o, &b) in out.iter_mut().zip(by) {
        *o *= b;
    }
}

/// `out[i] += k * src[i]` elementwise — the MCCI shift-and-average
/// fusion kernel. No cross-lane accumulation (each output element has
/// exactly one term), so vector lanes are bit-identical to the scalar
/// loop.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(out: &mut [f64], k: f64, src: &[f64]) {
    assert_eq!(out.len(), src.len(), "axpy length mismatch");
    for (o, &s) in out.iter_mut().zip(src) {
        *o += k * s;
    }
}

/// Strictly sequential dot product — the MCCI pairwise-lag MAC kernel.
///
/// Deliberately **not** lane-parallel: splitting the accumulator would
/// reassociate the reduction and move results away from the historical
/// scalar order that the conformance pins freeze. Lag scans get their
/// data parallelism across lags (independent outputs), never inside one
/// accumulation.
#[must_use]
pub fn dot_seq(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// AVX implementations of the two hottest kernels, compiled only under
/// the default-off `simd` cargo feature on x86_64 and selected at
/// runtime via `is_x86_feature_detected!`. Each performs exactly the
/// scalar loop's IEEE multiplies and adds per element (no FMA), so
/// results are bit-identical with the feature on or off.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod x86 {
    use super::Complex;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// Whether the running CPU supports AVX (cached by std's detection
    /// machinery).
    #[inline]
    pub fn avx_available() -> bool {
        std::is_x86_feature_detected!("avx")
    }

    /// `acc[i] *= by[i].conj()` over interleaved f64 complexes, two per
    /// 256-bit vector.
    ///
    /// Per element the math is `re = ar·br + ai·bi`, `im = ai·br − ar·bi`
    /// — computed as `t1 ∓ (−t2)` via `addsub`, which is IEEE-identical
    /// to the scalar add/sub.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX is available.
    #[target_feature(enable = "avx")]
    pub unsafe fn conj_mul_in_place_avx(acc: &mut [Complex], by: &[Complex]) {
        debug_assert_eq!(acc.len(), by.len());
        let n = acc.len();
        let pairs = n / 2;
        let a_ptr = acc.as_mut_ptr().cast::<f64>();
        let b_ptr = by.as_ptr().cast::<f64>();
        let sign = _mm256_set1_pd(-0.0);
        for p in 0..pairs {
            let a = _mm256_loadu_pd(a_ptr.add(2 * p * 2));
            let b = _mm256_loadu_pd(b_ptr.add(2 * p * 2));
            // [br, br, br', br'] and [bi, bi, bi', bi'].
            let b_re = _mm256_movedup_pd(b);
            let b_im = _mm256_permute_pd(b, 0b1111);
            // t1 = [ar·br, ai·br, …], t2 = [ai·bi, ar·bi, …].
            let t1 = _mm256_mul_pd(a, b_re);
            let a_sw = _mm256_permute_pd(a, 0b0101);
            let t2 = _mm256_mul_pd(a_sw, b_im);
            // even: t1 + t2 (re), odd: t1 − t2 (im) via addsub(t1, −t2).
            let out = _mm256_addsub_pd(t1, _mm256_xor_pd(t2, sign));
            _mm256_storeu_pd(a_ptr.add(2 * p * 2), out);
        }
        for k in 2 * pairs..n {
            let (x, y) = (acc[k], by[k]);
            acc[k] = Complex::new(x.re * y.re + x.im * y.im, x.im * y.re - x.re * y.im);
        }
    }

    /// `acc[i] *= by[i].conj()` over split f32 planes, eight lanes per
    /// 256-bit vector; plain `mul`/`add`/`sub` only, so bit-identical to
    /// the scalar plane loop.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX is available.
    #[target_feature(enable = "avx")]
    pub unsafe fn conj_mul_planes_avx(ar: &mut [f32], ai: &mut [f32], br: &[f32], bi: &[f32]) {
        let n = ar.len();
        let blocks = n / 8;
        for v in 0..blocks {
            let o = v * 8;
            let xr = _mm256_loadu_ps(ar.as_ptr().add(o));
            let xi = _mm256_loadu_ps(ai.as_ptr().add(o));
            let yr = _mm256_loadu_ps(br.as_ptr().add(o));
            let yi = _mm256_loadu_ps(bi.as_ptr().add(o));
            let re = _mm256_add_ps(_mm256_mul_ps(xr, yr), _mm256_mul_ps(xi, yi));
            let im = _mm256_sub_ps(_mm256_mul_ps(xi, yr), _mm256_mul_ps(xr, yi));
            _mm256_storeu_ps(ar.as_mut_ptr().add(o), re);
            _mm256_storeu_ps(ai.as_mut_ptr().add(o), im);
        }
        for k in 8 * blocks..n {
            let (xr, xi) = (ar[k], ai[k]);
            ar[k] = xr * br[k] + xi * bi[k];
            ai[k] = xi * br[k] - xr * bi[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(3.0, -4.0);
        assert_eq!(a + Complex::ZERO, a);
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(a - a, Complex::ZERO);
        assert_eq!(-a, Complex::new(-3.0, 4.0));
    }

    #[test]
    fn modulus_and_conjugate() {
        let a = Complex::new(3.0, -4.0);
        assert!((a.abs() - 5.0).abs() < EPS);
        assert!((a.norm_sqr() - 25.0).abs() < EPS);
        assert_eq!(a.conj(), Complex::new(3.0, 4.0));
        // z * conj(z) = |z|^2
        let p = a * a.conj();
        assert!((p.re - 25.0).abs() < EPS);
        assert!(p.im.abs() < EPS);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.25, 4.0);
        let q = (a * b) / b;
        assert!((q.re - a.re).abs() < EPS);
        assert!((q.im - a.im).abs() < EPS);
    }

    #[test]
    fn phasor_has_unit_modulus() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex::from_angle(theta);
            assert!((z.abs() - 1.0).abs() < EPS);
            assert!((z.arg() - theta.sin().atan2(theta.cos())).abs() < EPS);
        }
    }

    #[test]
    fn scalar_operations() {
        let a = Complex::new(2.0, -6.0);
        assert_eq!(a * 0.5, Complex::new(1.0, -3.0));
        assert_eq!(a / 2.0, Complex::new(1.0, -3.0));
        assert_eq!(Complex::from(7.0), Complex::new(7.0, 0.0));
    }

    fn seq(n: usize, k: f64) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64 * k).sin(), (i as f64 * (k + 0.1)).cos()))
            .collect()
    }

    #[test]
    fn conj_mul_in_place_is_bit_identical_to_scalar() {
        // Odd length exercises the chunk remainder (and the AVX tail).
        for n in [0usize, 1, 3, 4, 7, 8, 64, 129] {
            let a = seq(n, 0.3);
            let b = seq(n, 0.7);
            let reference: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x * y.conj()).collect();
            let mut acc = a.clone();
            conj_mul_in_place(&mut acc, &b);
            assert_eq!(acc, reference, "n = {n}");
        }
    }

    #[test]
    fn scale_in_place_matches_elementwise_scale() {
        let a = seq(37, 0.9);
        let reference: Vec<Complex> = a.iter().map(|z| z.scale(0.125)).collect();
        let mut out = a;
        scale_in_place(&mut out, 0.125);
        assert_eq!(out, reference);
    }

    #[test]
    fn conj_mul_planes_matches_interleaved_kernel() {
        for n in [0usize, 1, 5, 8, 9, 64, 130] {
            let a = seq(n, 0.3);
            let b = seq(n, 0.7);
            let (mut ar, mut ai): (Vec<f32>, Vec<f32>) =
                a.iter().map(|z| (z.re as f32, z.im as f32)).unzip();
            let (br, bi): (Vec<f32>, Vec<f32>) =
                b.iter().map(|z| (z.re as f32, z.im as f32)).unzip();
            // Scalar reference computed element by element in f32.
            let reference: Vec<(f32, f32)> = (0..n)
                .map(|k| {
                    let (xr, xi) = (a[k].re as f32, a[k].im as f32);
                    let (yr, yi) = (b[k].re as f32, b[k].im as f32);
                    (xr * yr + xi * yi, xi * yr - xr * yi)
                })
                .collect();
            conj_mul_planes(&mut ar, &mut ai, &br, &bi);
            for k in 0..n {
                assert_eq!((ar[k], ai[k]), reference[k], "n = {n}, k = {k}");
            }
        }
    }

    #[test]
    fn real_kernels_match_scalar_loops() {
        let a: Vec<f64> = (0..97).map(|i| (i as f64 * 0.11).sin()).collect();
        let b: Vec<f64> = (0..97).map(|i| (i as f64 * 0.23).cos()).collect();
        let mut m = a.clone();
        mul_assign_real(&mut m, &b);
        let mut x = a.clone();
        axpy(&mut x, 0.375, &b);
        let mut dot = 0.0;
        for i in 0..a.len() {
            assert_eq!(m[i], a[i] * b[i]);
            assert_eq!(x[i], a[i] + 0.375 * b[i]);
            dot += a[i] * b[i];
        }
        assert_eq!(dot_seq(&a, &b), dot);
        scale_planes(&mut [1.0f32, 2.0], &mut [3.0f32], 0.5);
    }
}
