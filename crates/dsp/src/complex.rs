//! A minimal complex-number type for the FFT and spectral helpers.
//!
//! Only the operations the crate needs are implemented; this is not a
//! general-purpose complex-arithmetic library.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use hyperear_dsp::Complex;
///
/// let i = Complex::new(0.0, 1.0);
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates the unit phasor `e^{iθ}` for the angle `theta` in radians.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Returns the complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Returns the modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Returns the squared modulus `|z|²`, avoiding the square root.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(3.0, -4.0);
        assert_eq!(a + Complex::ZERO, a);
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(a - a, Complex::ZERO);
        assert_eq!(-a, Complex::new(-3.0, 4.0));
    }

    #[test]
    fn modulus_and_conjugate() {
        let a = Complex::new(3.0, -4.0);
        assert!((a.abs() - 5.0).abs() < EPS);
        assert!((a.norm_sqr() - 25.0).abs() < EPS);
        assert_eq!(a.conj(), Complex::new(3.0, 4.0));
        // z * conj(z) = |z|^2
        let p = a * a.conj();
        assert!((p.re - 25.0).abs() < EPS);
        assert!(p.im.abs() < EPS);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.25, 4.0);
        let q = (a * b) / b;
        assert!((q.re - a.re).abs() < EPS);
        assert!((q.im - a.im).abs() < EPS);
    }

    #[test]
    fn phasor_has_unit_modulus() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex::from_angle(theta);
            assert!((z.abs() - 1.0).abs() < EPS);
            assert!((z.arg() - theta.sin().atan2(theta.cos())).abs() < EPS);
        }
    }

    #[test]
    fn scalar_operations() {
        let a = Complex::new(2.0, -6.0);
        assert_eq!(a * 0.5, Complex::new(1.0, -3.0));
        assert_eq!(a / 2.0, Complex::new(1.0, -3.0));
        assert_eq!(Complex::from(7.0), Complex::new(7.0, 0.0));
    }
}
