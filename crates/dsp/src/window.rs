//! Analysis window functions.
//!
//! Windows are used when designing FIR filters ([`crate::filter::fir`]),
//! building fractional-delay kernels ([`crate::delay`]) and estimating
//! spectra ([`crate::spectrum`]).

use crate::DspError;

/// The supported window shapes.
///
/// # Example
///
/// ```
/// use hyperear_dsp::window::Window;
///
/// let w = Window::Hann.coefficients(8).unwrap();
/// assert_eq!(w.len(), 8);
/// assert!(w[0] < 1e-12); // Hann tapers to zero at the edges
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Window {
    /// All-ones window (no tapering).
    Rectangular,
    /// Raised-cosine window with zero endpoints; good general default.
    #[default]
    Hann,
    /// Raised-cosine on a pedestal; slightly better close-in sidelobes.
    Hamming,
    /// Three-term cosine window with very low sidelobes.
    Blackman,
}

impl Window {
    /// Evaluates the window at position `i` of an `n`-point window.
    ///
    /// Uses the symmetric (filter-design) convention with denominator
    /// `n - 1`, so the first and last coefficients are the window's
    /// endpoint values.
    #[must_use]
    pub fn value(self, i: usize, n: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        let x = i as f64 / (n - 1) as f64;
        let tau = 2.0 * std::f64::consts::PI;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 - 0.5 * (tau * x).cos(),
            Window::Hamming => 0.54 - 0.46 * (tau * x).cos(),
            Window::Blackman => 0.42 - 0.5 * (tau * x).cos() + 0.08 * (2.0 * tau * x).cos(),
        }
    }

    /// Returns the `n` coefficients of this window.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `n` is zero.
    pub fn coefficients(self, n: usize) -> Result<Vec<f64>, DspError> {
        if n == 0 {
            return Err(DspError::invalid("n", "window length must be positive"));
        }
        Ok((0..n).map(|i| self.value(i, n)).collect())
    }

    /// Multiplies `signal` by this window in place.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if the signal is empty.
    pub fn apply(self, signal: &mut [f64]) -> Result<(), DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput {
                what: "window apply",
            });
        }
        let n = signal.len();
        for (i, s) in signal.iter_mut().enumerate() {
            *s *= self.value(i, n);
        }
        Ok(())
    }

    /// Multiplies `signal` by precomputed window coefficients in place.
    ///
    /// Equivalent to [`Window::apply`] when `coeffs` came from
    /// [`Window::coefficients`] with `n == signal.len()`, but routes the
    /// multiply through the shared lane-aware kernel so repeated
    /// applications (STFT frames, batched periodograms) skip the per-sample
    /// trigonometry and autovectorize. Bit-identical to the uncached path.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty signal and
    /// [`DspError::InvalidParameter`] on a length mismatch.
    pub fn apply_coefficients(coeffs: &[f64], signal: &mut [f64]) -> Result<(), DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput {
                what: "window apply",
            });
        }
        if coeffs.len() != signal.len() {
            return Err(DspError::invalid(
                "coeffs",
                format!(
                    "window has {} coefficients but signal has {} samples",
                    coeffs.len(),
                    signal.len()
                ),
            ));
        }
        crate::complex::mul_assign_real(signal, coeffs);
        Ok(())
    }

    /// The coherent gain of the window: the mean of its coefficients.
    ///
    /// Needed to correct amplitude estimates taken from windowed spectra.
    #[must_use]
    pub fn coherent_gain(self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        (0..n).map(|i| self.value(i, n)).sum::<f64>() / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        let w = Window::Rectangular.coefficients(5).unwrap();
        assert!(w.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn windows_are_symmetric() {
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let c = w.coefficients(33).unwrap();
            for i in 0..c.len() {
                assert!((c[i] - c[c.len() - 1 - i]).abs() < 1e-12, "{w:?} at {i}");
            }
        }
    }

    #[test]
    fn peaks_at_center() {
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let c = w.coefficients(33).unwrap();
            let max = c.iter().cloned().fold(f64::MIN, f64::max);
            assert!((c[16] - max).abs() < 1e-12, "{w:?}");
            assert!((max - 1.0).abs() < 1e-9, "{w:?} peak should be ~1");
        }
    }

    #[test]
    fn hann_endpoints_are_zero() {
        let c = Window::Hann.coefficients(17).unwrap();
        assert!(c[0].abs() < 1e-12);
        assert!(c[16].abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints_are_pedestal() {
        let c = Window::Hamming.coefficients(17).unwrap();
        assert!((c[0] - 0.08).abs() < 1e-9);
    }

    #[test]
    fn apply_matches_coefficients() {
        let mut signal = vec![2.0; 16];
        Window::Hann.apply(&mut signal).unwrap();
        let c = Window::Hann.coefficients(16).unwrap();
        for (s, w) in signal.iter().zip(&c) {
            assert!((s - 2.0 * w).abs() < 1e-12);
        }
    }

    #[test]
    fn cached_apply_is_bit_identical_to_uncached() {
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            for n in [1usize, 2, 7, 64, 255] {
                let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 0.2).collect();
                let mut direct = signal.clone();
                w.apply(&mut direct).unwrap();
                let coeffs = w.coefficients(n).unwrap();
                let mut cached = signal.clone();
                Window::apply_coefficients(&coeffs, &mut cached).unwrap();
                assert_eq!(direct, cached, "{w:?} n={n}");
            }
        }
    }

    #[test]
    fn cached_apply_rejects_mismatch_and_empty() {
        let coeffs = Window::Hann.coefficients(8).unwrap();
        let mut signal = vec![1.0; 7];
        assert!(Window::apply_coefficients(&coeffs, &mut signal).is_err());
        let mut empty: Vec<f64> = vec![];
        assert!(Window::apply_coefficients(&coeffs, &mut empty).is_err());
    }

    #[test]
    fn zero_length_is_error() {
        assert!(Window::Hann.coefficients(0).is_err());
        let mut empty: Vec<f64> = vec![];
        assert!(Window::Hann.apply(&mut empty).is_err());
    }

    #[test]
    fn single_point_window_is_one() {
        assert_eq!(Window::Blackman.value(0, 1), 1.0);
    }

    #[test]
    fn coherent_gain_sanity() {
        // Hann coherent gain tends to 0.5 for long windows.
        let g = Window::Hann.coherent_gain(4096);
        assert!((g - 0.5).abs() < 1e-3);
        assert_eq!(Window::Rectangular.coherent_gain(100), 1.0);
        assert_eq!(Window::Hann.coherent_gain(0), 0.0);
    }
}
