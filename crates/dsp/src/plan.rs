//! Planned FFT execution: precomputed twiddle/bit-reversal tables and a
//! reusable scratch arena for the session hot path.
//!
//! Every figure reproduction runs hundreds of simulated sessions, and each
//! session's matched filtering re-derives the same FFT setup (twiddle
//! factors, bit-reversal permutation) and re-allocates the same working
//! buffers on every call. A [`FftPlan`] hoists the per-size setup out of
//! the transform, a [`PlanCache`] memoizes plans across sizes, and a
//! [`DspScratch`] arena lends out reusable buffers so the planned variants
//! of `fft`/`rfft`/`xcorr`/`stft`/`power_spectrum` never allocate once
//! warm. The one-shot functions elsewhere in the crate remain as thin
//! wrappers over this module.
//!
//! The planned transforms are **bit-identical** to the historical one-shot
//! implementations: the twiddle tables are generated with the exact
//! recurrence (`w *= wlen`) the former inline loop used, so cached and
//! fresh executions produce the same floating-point results to the last
//! ulp. The equivalence property tests in `tests/proptests.rs` pin this.
//!
//! # Example
//!
//! ```
//! use hyperear_dsp::plan::{DspScratch, FftPlan};
//! use hyperear_dsp::Complex;
//!
//! # fn main() -> Result<(), hyperear_dsp::DspError> {
//! let plan = FftPlan::new(8)?;
//! let mut data: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
//! let original = data.clone();
//! plan.fft(&mut data)?;
//! plan.ifft(&mut data)?;
//! for (a, b) in data.iter().zip(&original) {
//!     assert!((a.re - b.re).abs() < 1e-12);
//! }
//! # let _ = DspScratch::new();
//! # Ok(())
//! # }
//! ```

use crate::{Complex, DspError};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

thread_local! {
    /// The execution context behind the crate's one-shot wrappers.
    static THREAD_CTX: RefCell<(PlanCache, DspScratch)> =
        RefCell::new((PlanCache::new(), DspScratch::new()));
}

/// Runs `f` against the thread-local plan cache and scratch arena.
///
/// This is the context the crate's one-shot conveniences (`fft`, `rfft`,
/// `xcorr`, `stft`, `power_spectrum`) execute in, so repeated one-shot
/// calls on a thread reuse plans and buffers much like FFTW's "wisdom".
/// Hot paths should still hold their own [`PlanCache`]/[`DspScratch`] —
/// explicit state is faster to reach and testable — but callers with a
/// transform off the hot path can borrow this one.
///
/// # Panics
///
/// Panics if `f` re-enters `with_thread_ctx` (directly or by calling a
/// one-shot wrapper): the context is a `RefCell`, not a reentrant lock.
pub fn with_thread_ctx<T>(f: impl FnOnce(&mut PlanCache, &mut DspScratch) -> T) -> T {
    THREAD_CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        let (plans, scratch) = &mut *ctx;
        f(plans, scratch)
    })
}

/// A precomputed execution plan for one FFT size.
///
/// Holds the bit-reversal permutation and the per-stage twiddle factors
/// for both transform directions, so [`FftPlan::fft`] and
/// [`FftPlan::ifft`] run the pure butterfly passes with no trigonometry
/// and no allocation.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversed index of each position (identity entries included).
    bit_rev: Vec<usize>,
    /// Forward twiddles, stages flattened: stage `len` contributes
    /// `len/2` entries, for `len = 2, 4, …, n` — `n − 1` entries total.
    fwd: Vec<Complex>,
    /// Inverse twiddles, same layout.
    inv: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for `n == 0` and
    /// [`DspError::InvalidParameter`] when `n` is not a power of two.
    pub fn new(n: usize) -> Result<Self, DspError> {
        if n == 0 {
            return Err(DspError::EmptyInput { what: "fft input" });
        }
        if !n.is_power_of_two() {
            return Err(DspError::invalid(
                "data.len()",
                format!("FFT length must be a power of two, got {n}"),
            ));
        }
        let bits = n.trailing_zeros();
        let bit_rev = if n == 1 {
            vec![0]
        } else {
            (0..n)
                .map(|i| i.reverse_bits() >> (usize::BITS - bits))
                .collect()
        };
        Ok(FftPlan {
            n,
            bit_rev,
            fwd: twiddle_table(n, -1.0),
            inv: twiddle_table(n, 1.0),
        })
    }

    /// The transform length this plan was built for.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan length is zero (never true for a constructed plan).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward FFT. Allocation-free.
    ///
    /// Identical results to [`crate::fft::fft`].
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `data.len()` does not
    /// match the plan length.
    pub fn fft(&self, data: &mut [Complex]) -> Result<(), DspError> {
        self.check_len(data.len())?;
        self.run(data, &self.fwd);
        Ok(())
    }

    /// In-place inverse FFT, normalized by `1/N`. Allocation-free.
    ///
    /// Identical results to [`crate::fft::ifft`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`FftPlan::fft`].
    pub fn ifft(&self, data: &mut [Complex]) -> Result<(), DspError> {
        self.check_len(data.len())?;
        self.run(data, &self.inv);
        // `z / n` is defined as `z.scale(1.0 / n)`, so the shared lane
        // kernel with the reciprocal precomputed is bit-identical to the
        // historical per-element division.
        crate::complex::scale_in_place(data, 1.0 / data.len() as f64);
        Ok(())
    }

    /// Forward FFT of a real signal zero-padded to the plan length,
    /// written into `out` (cleared and resized; its capacity is reused).
    ///
    /// Identical results to [`crate::fft::rfft`] at `padded_len == n`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty signal and
    /// [`DspError::InvalidParameter`] when the signal exceeds the plan
    /// length.
    pub fn rfft_into(&self, signal: &[f64], out: &mut Vec<Complex>) -> Result<(), DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput { what: "rfft input" });
        }
        if self.n < signal.len() {
            return Err(DspError::invalid(
                "padded_len",
                format!(
                    "padded length {} is smaller than the signal ({})",
                    self.n,
                    signal.len()
                ),
            ));
        }
        out.clear();
        out.extend(signal.iter().map(|&x| Complex::from_real(x)));
        out.resize(self.n, Complex::ZERO);
        self.run(out, &self.fwd);
        Ok(())
    }

    fn check_len(&self, len: usize) -> Result<(), DspError> {
        if len == self.n {
            Ok(())
        } else {
            Err(DspError::invalid(
                "data.len()",
                format!("plan built for length {}, got {len}", self.n),
            ))
        }
    }

    /// The butterfly passes shared by both directions.
    ///
    /// Each stage walks `split_at_mut` halves in lockstep with the stage's
    /// twiddle slice, so the inner loop carries no bounds checks and
    /// presents the autovectorizer three equal-length streams. The
    /// floating-point operations and their order are exactly the
    /// historical indexed loop's, so results stay bit-identical.
    fn run(&self, data: &mut [Complex], twiddles: &[Complex]) {
        let n = self.n;
        if n == 1 {
            return;
        }
        for i in 0..n {
            let j = self.bit_rev[i];
            if j > i {
                data.swap(i, j);
            }
        }
        let mut offset = 0;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stage = &twiddles[offset..offset + half];
            for block in data.chunks_exact_mut(len) {
                let (lo, hi) = block.split_at_mut(half);
                for ((u, v), &w) in lo.iter_mut().zip(hi.iter_mut()).zip(stage) {
                    let a = *u;
                    let b = *v * w;
                    *u = a + b;
                    *v = a - b;
                }
            }
            offset += half;
            len <<= 1;
        }
    }
}

/// A read-only view of the `n/2 + 1` non-redundant bins of a real
/// signal's spectrum.
///
/// A real signal's DFT is conjugate-symmetric (`X[n−k] = conj(X[k])`), so
/// only bins `0..=n/2` carry information. [`RealFftPlan::rfft_half_into`]
/// produces exactly those bins; this view adds the accessors consumers
/// need — DC, Nyquist, and symmetric access to the folded upper half —
/// without materializing the redundant mirror bins.
#[derive(Debug, Clone, Copy)]
pub struct HalfSpectrum<'a> {
    bins: &'a [Complex],
}

impl<'a> HalfSpectrum<'a> {
    /// Wraps a half-spectrum slice of `n/2 + 1` bins.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty slice and
    /// [`DspError::InvalidParameter`] when the bin count does not
    /// correspond to a power-of-two FFT length (`len == 1` maps to
    /// `n == 1`; otherwise `len − 1` must be a power of two).
    pub fn new(bins: &'a [Complex]) -> Result<Self, DspError> {
        if bins.is_empty() {
            return Err(DspError::EmptyInput {
                what: "half spectrum",
            });
        }
        if bins.len() > 1 && !(bins.len() - 1).is_power_of_two() {
            return Err(DspError::invalid(
                "bins.len()",
                format!(
                    "{} bins does not match any power-of-two FFT length",
                    bins.len()
                ),
            ));
        }
        Ok(HalfSpectrum { bins })
    }

    /// The number of stored (non-redundant) bins: `n/2 + 1`.
    #[must_use]
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// The full FFT length `n` this half-spectrum folds.
    #[must_use]
    pub fn fft_len(&self) -> usize {
        if self.bins.len() == 1 {
            1
        } else {
            2 * (self.bins.len() - 1)
        }
    }

    /// The stored bins `0..=n/2`.
    #[must_use]
    pub fn bins(&self) -> &[Complex] {
        self.bins
    }

    /// Full-spectrum bin `k` for any `k < n`, reconstructing folded bins
    /// by conjugate symmetry.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.fft_len()`.
    #[must_use]
    pub fn bin(&self, k: usize) -> Complex {
        let n = self.fft_len();
        assert!(k < n, "bin {k} out of range for FFT length {n}");
        if k < self.bins.len() {
            self.bins[k]
        } else {
            self.bins[n - k].conj()
        }
    }

    /// The DC bin (`k = 0`).
    #[must_use]
    pub fn dc(&self) -> Complex {
        self.bins[0]
    }

    /// The Nyquist bin (`k = n/2`; equals DC for `n == 1`).
    #[must_use]
    pub fn nyquist(&self) -> Complex {
        self.bins[self.bins.len() - 1]
    }
}

/// A precomputed plan for real-input transforms of length `n`.
///
/// Packs the `n` real samples into an `n/2`-point complex FFT (`z[k] =
/// x[2k] + i·x[2k+1]`) and recovers the `n/2 + 1` half-spectrum with a
/// conjugate-symmetric split pass — roughly half the butterflies and half
/// the complex scratch of the equivalent full transform, which matters
/// because every hot HyperEar kernel (matched filter, STFT, periodogram,
/// mic equalization) transforms real audio. See DESIGN.md for the
/// split/merge algebra.
///
/// Unlike [`FftPlan`]'s complex path, the half-spectrum route is **not**
/// bit-identical to the historical full transform — it evaluates the same
/// DFT through a different factorization, so results agree to roughly
/// `1e-12` relative (pinned by the `rfft_half` property test), not to the
/// last ulp.
#[derive(Debug, Clone)]
pub struct RealFftPlan {
    n: usize,
    /// The `n/2`-point complex plan (`None` for the trivial `n == 1`).
    half: Option<FftPlan>,
    /// Split twiddles `e^{-2πik/n}` for `k` in `0..=n/4`; pairs
    /// `(k, n/2−k)` share a twiddle up to conjugation.
    split: Vec<Complex>,
}

impl RealFftPlan {
    /// Builds a real-input plan for transforms of length `n`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FftPlan::new`].
    pub fn new(n: usize) -> Result<Self, DspError> {
        if n == 0 {
            return Err(DspError::EmptyInput { what: "rfft input" });
        }
        if !n.is_power_of_two() {
            return Err(DspError::invalid(
                "n",
                format!("FFT length must be a power of two, got {n}"),
            ));
        }
        let (half, split) = if n == 1 {
            (None, Vec::new())
        } else {
            let angle = -2.0 * std::f64::consts::PI / n as f64;
            let split = (0..=n / 4)
                .map(|k| Complex::from_angle(angle * k as f64))
                .collect();
            (Some(FftPlan::new(n / 2)?), split)
        };
        Ok(RealFftPlan { n, half, split })
    }

    /// The real transform length this plan was built for.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan length is zero (never true for a constructed plan).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The number of half-spectrum bins produced: `n/2 + 1`.
    #[must_use]
    pub fn num_bins(&self) -> usize {
        if self.n == 1 {
            1
        } else {
            self.n / 2 + 1
        }
    }

    /// Forward FFT of a real signal zero-padded to the plan length,
    /// written as the `n/2 + 1` half-spectrum bins into `out` (cleared
    /// and refilled; capacity reused). Allocation-free once `out` has
    /// grown to `num_bins()`.
    ///
    /// Runs one `n/2`-point complex FFT on the even/odd-packed samples
    /// plus an `O(n)` conjugate-symmetric split pass.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty signal and
    /// [`DspError::InvalidParameter`] when the signal exceeds the plan
    /// length.
    pub fn rfft_half_into(&self, signal: &[f64], out: &mut Vec<Complex>) -> Result<(), DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput { what: "rfft input" });
        }
        if self.n < signal.len() {
            return Err(DspError::invalid(
                "signal.len()",
                format!(
                    "plan length {} is smaller than the signal ({})",
                    self.n,
                    signal.len()
                ),
            ));
        }
        out.clear();
        let Some(half_plan) = &self.half else {
            out.push(Complex::from_real(signal[0]));
            return Ok(());
        };
        let h = self.n / 2;
        // Pack even samples into re, odd into im (zero-padded).
        let at = |j: usize| signal.get(j).copied().unwrap_or(0.0);
        out.extend((0..h).map(|k| Complex::new(at(2 * k), at(2 * k + 1))));
        half_plan.fft(out)?;
        // Split: DC and Nyquist come from Z[0] alone; interior pairs
        // (k, h−k) combine Z[k] and conj(Z[h−k]) with one twiddle.
        let z0 = out[0];
        out.push(Complex::from_real(z0.re - z0.im));
        out[0] = Complex::from_real(z0.re + z0.im);
        for k in 1..=h / 2 {
            let a = out[k];
            let b = out[h - k];
            let xe = (a + b.conj()).scale(0.5);
            let xo = (a - b.conj()) * Complex::new(0.0, -0.5);
            let t = self.split[k] * xo;
            out[k] = xe + t;
            out[h - k] = (xe - t).conj();
        }
        Ok(())
    }

    /// Inverse of [`RealFftPlan::rfft_half_into`]: merges the `n/2 + 1`
    /// half-spectrum bins back into the packed form **in place** (the
    /// contents of `half` are consumed as working storage), runs one
    /// `n/2`-point inverse FFT, and writes the `n` real samples into
    /// `out` (cleared and refilled; capacity reused).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `half.len()` is not
    /// `num_bins()`.
    pub fn irfft_half_into(
        &self,
        half: &mut [Complex],
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        if half.len() != self.num_bins() {
            return Err(DspError::invalid(
                "half.len()",
                format!(
                    "plan for length {} expects {} bins, got {}",
                    self.n,
                    self.num_bins(),
                    half.len()
                ),
            ));
        }
        out.clear();
        let Some(half_plan) = &self.half else {
            out.push(half[0].re);
            return Ok(());
        };
        let h = self.n / 2;
        // Merge: fold the Nyquist bin into Z[0], then reverse the split
        // butterflies pairwise. mul_i(c) = i·c.
        let mul_i = |c: Complex| Complex::new(-c.im, c.re);
        let a = half[0];
        let b = half[h];
        let xe = (a + b.conj()).scale(0.5);
        let xo = (a - b.conj()).scale(0.5);
        half[0] = xe + mul_i(xo);
        for k in 1..=h / 2 {
            let a = half[k];
            let b = half[h - k];
            let xe = (a + b.conj()).scale(0.5);
            let t = (a - b.conj()).scale(0.5);
            let xo = self.split[k].conj() * t;
            half[k] = xe + mul_i(xo);
            half[h - k] = xe.conj() + mul_i(xo.conj());
        }
        half_plan.ifft(&mut half[..h])?;
        out.reserve(self.n);
        for z in &half[..h] {
            out.push(z.re);
            out.push(z.im);
        }
        Ok(())
    }
}

/// A precomputed single-precision FFT plan over **split re/im planes**.
///
/// The opt-in f32 pipeline (see `Precision::F32` in the core crate) does
/// not reuse [`FftPlan`] with narrower scalars; it stores the real and
/// imaginary parts in separate `&mut [f32]` planes. Split planes keep
/// every operand stream contiguous and homogeneous, so the plain chunked
/// loops below autovectorize to 8-wide f32 arithmetic on AVX without the
/// shuffles an interleaved complex layout forces — that layout change is
/// where most of the reduced-precision throughput comes from.
///
/// Twiddles are generated by the f64 recurrence of [`FftPlan`] and then
/// rounded once to f32, so table error does not accumulate per stage.
/// The f32 path carries no bit-identity contract; f64 remains the
/// conformance reference (DESIGN.md §11).
#[derive(Debug, Clone)]
pub struct Fft32Plan {
    n: usize,
    bit_rev: Vec<usize>,
    fwd_re: Vec<f32>,
    fwd_im: Vec<f32>,
    inv_re: Vec<f32>,
    inv_im: Vec<f32>,
}

impl Fft32Plan {
    /// Builds a single-precision plan for transforms of length `n`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FftPlan::new`].
    pub fn new(n: usize) -> Result<Self, DspError> {
        if n == 0 {
            return Err(DspError::EmptyInput { what: "fft input" });
        }
        if !n.is_power_of_two() {
            return Err(DspError::invalid(
                "data.len()",
                format!("FFT length must be a power of two, got {n}"),
            ));
        }
        let bits = n.trailing_zeros();
        let bit_rev = if n == 1 {
            vec![0]
        } else {
            (0..n)
                .map(|i| i.reverse_bits() >> (usize::BITS - bits))
                .collect()
        };
        let (fwd_re, fwd_im) = twiddle_planes(n, -1.0);
        let (inv_re, inv_im) = twiddle_planes(n, 1.0);
        Ok(Fft32Plan {
            n,
            bit_rev,
            fwd_re,
            fwd_im,
            inv_re,
            inv_im,
        })
    }

    /// The transform length this plan was built for.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan length is zero (never true for a constructed plan).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward FFT over split planes. Allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if either plane's length
    /// does not match the plan length.
    pub fn fft(&self, re: &mut [f32], im: &mut [f32]) -> Result<(), DspError> {
        self.check_len(re.len(), im.len())?;
        self.run(re, im, &self.fwd_re, &self.fwd_im);
        Ok(())
    }

    /// In-place inverse FFT over split planes, normalized by `1/N`.
    /// Allocation-free.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Fft32Plan::fft`].
    pub fn ifft(&self, re: &mut [f32], im: &mut [f32]) -> Result<(), DspError> {
        self.check_len(re.len(), im.len())?;
        self.run(re, im, &self.inv_re, &self.inv_im);
        crate::complex::scale_planes(re, im, 1.0 / self.n as f32);
        Ok(())
    }

    fn check_len(&self, re_len: usize, im_len: usize) -> Result<(), DspError> {
        if re_len == self.n && im_len == self.n {
            Ok(())
        } else {
            Err(DspError::invalid(
                "re.len()/im.len()",
                format!(
                    "plan built for length {}, got planes of {re_len}/{im_len}",
                    self.n
                ),
            ))
        }
    }

    /// The butterfly passes shared by both directions, on split planes.
    ///
    /// Six equal-length streams (lo/hi × re/im, plus the two twiddle
    /// planes) with no cross-lane data motion: each `k` is independent,
    /// which is exactly the shape the autovectorizer turns into packed
    /// f32 multiply/adds.
    fn run(&self, re: &mut [f32], im: &mut [f32], tw_re: &[f32], tw_im: &[f32]) {
        let n = self.n;
        if n == 1 {
            return;
        }
        for i in 0..n {
            let j = self.bit_rev[i];
            if j > i {
                re.swap(i, j);
                im.swap(i, j);
            }
        }
        let mut offset = 0;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stage_re = &tw_re[offset..offset + half];
            let stage_im = &tw_im[offset..offset + half];
            for (block_re, block_im) in re.chunks_exact_mut(len).zip(im.chunks_exact_mut(len)) {
                let (lr, hr) = block_re.split_at_mut(half);
                let (li, hi) = block_im.split_at_mut(half);
                let lo = lr.iter_mut().zip(li.iter_mut());
                let hi = hr.iter_mut().zip(hi.iter_mut());
                let tw = stage_re.iter().zip(stage_im);
                for (((ar, ai), (br_s, bi_s)), (&wr, &wi)) in lo.zip(hi).zip(tw) {
                    let br = *br_s * wr - *bi_s * wi;
                    let bi = *br_s * wi + *bi_s * wr;
                    let (a_re, a_im) = (*ar, *ai);
                    *ar = a_re + br;
                    *ai = a_im + bi;
                    *br_s = a_re - br;
                    *bi_s = a_im - bi;
                }
            }
            offset += half;
            len <<= 1;
        }
    }
}

/// A precomputed single-precision real-input plan over split planes.
///
/// The f32 analogue of [`RealFftPlan`]: packs `n` real samples into an
/// `n/2`-point [`Fft32Plan`] and recovers the `n/2 + 1` half-spectrum
/// bins — stored as separate `re`/`im` planes — with the same
/// conjugate-symmetric split algebra. This is the transform behind the
/// reduced-precision matched filter and zero-phase FIR engines.
#[derive(Debug, Clone)]
pub struct RealFft32Plan {
    n: usize,
    half: Option<Fft32Plan>,
    split_re: Vec<f32>,
    split_im: Vec<f32>,
}

impl RealFft32Plan {
    /// Builds a single-precision real-input plan for length `n`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FftPlan::new`].
    pub fn new(n: usize) -> Result<Self, DspError> {
        if n == 0 {
            return Err(DspError::EmptyInput { what: "rfft input" });
        }
        if !n.is_power_of_two() {
            return Err(DspError::invalid(
                "n",
                format!("FFT length must be a power of two, got {n}"),
            ));
        }
        let (half, split_re, split_im) = if n == 1 {
            (None, Vec::new(), Vec::new())
        } else {
            let angle = -2.0 * std::f64::consts::PI / n as f64;
            let mut split_re = Vec::with_capacity(n / 4 + 1);
            let mut split_im = Vec::with_capacity(n / 4 + 1);
            for k in 0..=n / 4 {
                let w = Complex::from_angle(angle * k as f64);
                split_re.push(w.re as f32);
                split_im.push(w.im as f32);
            }
            (Some(Fft32Plan::new(n / 2)?), split_re, split_im)
        };
        Ok(RealFft32Plan {
            n,
            half,
            split_re,
            split_im,
        })
    }

    /// The real transform length this plan was built for.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan length is zero (never true for a constructed plan).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The number of half-spectrum bins produced: `n/2 + 1`.
    #[must_use]
    pub fn num_bins(&self) -> usize {
        if self.n == 1 {
            1
        } else {
            self.n / 2 + 1
        }
    }

    /// Forward FFT of a real f32 signal zero-padded to the plan length,
    /// written as `n/2 + 1` half-spectrum bins into the `out_re`/`out_im`
    /// planes (cleared and refilled; capacity reused). Allocation-free
    /// once the planes have grown to `num_bins()`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty signal and
    /// [`DspError::InvalidParameter`] when the signal exceeds the plan
    /// length.
    pub fn rfft_half_into(
        &self,
        signal: &[f32],
        out_re: &mut Vec<f32>,
        out_im: &mut Vec<f32>,
    ) -> Result<(), DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput { what: "rfft input" });
        }
        if self.n < signal.len() {
            return Err(DspError::invalid(
                "signal.len()",
                format!(
                    "plan length {} is smaller than the signal ({})",
                    self.n,
                    signal.len()
                ),
            ));
        }
        out_re.clear();
        out_im.clear();
        let Some(half_plan) = &self.half else {
            out_re.push(signal[0]);
            out_im.push(0.0);
            return Ok(());
        };
        let h = self.n / 2;
        let at = |j: usize| signal.get(j).copied().unwrap_or(0.0);
        out_re.extend((0..h).map(|k| at(2 * k)));
        out_im.extend((0..h).map(|k| at(2 * k + 1)));
        half_plan.fft(out_re, out_im)?;
        let z0r = out_re[0];
        let z0i = out_im[0];
        out_re.push(z0r - z0i);
        out_im.push(0.0);
        out_re[0] = z0r + z0i;
        out_im[0] = 0.0;
        for k in 1..=h / 2 {
            let ar = out_re[k];
            let ai = out_im[k];
            let br = out_re[h - k];
            let bi = out_im[h - k];
            let xe_r = 0.5 * (ar + br);
            let xe_i = 0.5 * (ai - bi);
            let xo_r = 0.5 * (ai + bi);
            let xo_i = -0.5 * (ar - br);
            let wr = self.split_re[k];
            let wi = self.split_im[k];
            let t_r = wr * xo_r - wi * xo_i;
            let t_i = wr * xo_i + wi * xo_r;
            out_re[k] = xe_r + t_r;
            out_im[k] = xe_i + t_i;
            out_re[h - k] = xe_r - t_r;
            out_im[h - k] = -(xe_i - t_i);
        }
        Ok(())
    }

    /// Inverse of [`RealFft32Plan::rfft_half_into`]: merges the
    /// half-spectrum planes back into packed form **in place**, runs one
    /// `n/2`-point inverse FFT, and writes the `n` real samples into
    /// `out` (cleared and refilled; capacity reused).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if either plane's length is
    /// not `num_bins()`.
    pub fn irfft_half_into(
        &self,
        half_re: &mut [f32],
        half_im: &mut [f32],
        out: &mut Vec<f32>,
    ) -> Result<(), DspError> {
        if half_re.len() != self.num_bins() || half_im.len() != self.num_bins() {
            return Err(DspError::invalid(
                "half planes",
                format!(
                    "plan for length {} expects {} bins, got {}/{}",
                    self.n,
                    self.num_bins(),
                    half_re.len(),
                    half_im.len()
                ),
            ));
        }
        out.clear();
        let Some(half_plan) = &self.half else {
            out.push(half_re[0]);
            return Ok(());
        };
        let h = self.n / 2;
        let ar = half_re[0];
        let ai = half_im[0];
        let br = half_re[h];
        let bi = half_im[h];
        let xe_r = 0.5 * (ar + br);
        let xe_i = 0.5 * (ai - bi);
        let xo_r = 0.5 * (ar - br);
        let xo_i = 0.5 * (ai + bi);
        half_re[0] = xe_r - xo_i;
        half_im[0] = xe_i + xo_r;
        for k in 1..=h / 2 {
            let ar = half_re[k];
            let ai = half_im[k];
            let br = half_re[h - k];
            let bi = half_im[h - k];
            let xe_r = 0.5 * (ar + br);
            let xe_i = 0.5 * (ai - bi);
            let t_r = 0.5 * (ar - br);
            let t_i = 0.5 * (ai + bi);
            let wr = self.split_re[k];
            let wi = self.split_im[k];
            // conj(split[k]) * t
            let xo_r = wr * t_r + wi * t_i;
            let xo_i = wr * t_i - wi * t_r;
            half_re[k] = xe_r - xo_i;
            half_im[k] = xe_i + xo_r;
            half_re[h - k] = xe_r + xo_i;
            half_im[h - k] = -xe_i + xo_r;
        }
        half_plan.ifft(&mut half_re[..h], &mut half_im[..h])?;
        out.reserve(self.n);
        for k in 0..h {
            out.push(half_re[k]);
            out.push(half_im[k]);
        }
        Ok(())
    }
}

/// Generates split-plane f32 twiddle tables from the exact f64
/// recurrence, rounding once at the end so table error stays at one ulp
/// per entry instead of accumulating through the recurrence in f32.
fn twiddle_planes(n: usize, sign: f64) -> (Vec<f32>, Vec<f32>) {
    let table = twiddle_table(n, sign);
    let re = table.iter().map(|w| w.re as f32).collect();
    let im = table.iter().map(|w| w.im as f32).collect();
    (re, im)
}

/// Generates the flattened per-stage twiddle table.
///
/// Uses the exact recurrence of the historical inline transform
/// (`w = ONE; w *= wlen` per butterfly) so planned output is bit-identical
/// to the one-shot path.
fn twiddle_table(n: usize, sign: f64) -> Vec<Complex> {
    let mut table = Vec::with_capacity(n.saturating_sub(1));
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(ang);
        let mut w = Complex::ONE;
        for _ in 0..len / 2 {
            table.push(w);
            w *= wlen;
        }
        len <<= 1;
    }
    table
}

/// A memo of [`FftPlan`]s keyed by transform length.
///
/// Sessions touch only a handful of distinct sizes (the padded
/// correlation length, the STFT frame, the spectrum pad), so a linear
/// scan over an ordered small vector beats hashing.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    plans: Vec<Arc<FftPlan>>,
    real_plans: Vec<Arc<RealFftPlan>>,
    real32_plans: Vec<Arc<RealFft32Plan>>,
}

impl PlanCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The plan for length `n`, building and memoizing it on first use.
    ///
    /// The lookup is two-level: the cache's own lock-free vector first,
    /// then the process-wide [shared registry](shared_plan). A plan
    /// another thread already built is therefore reused (`Arc`-cloned),
    /// never rebuilt — twiddle and bit-reversal tables are immutable.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FftPlan::new`].
    pub fn plan(&mut self, n: usize) -> Result<Arc<FftPlan>, DspError> {
        if let Some(p) = self.plans.iter().find(|p| p.len() == n) {
            return Ok(Arc::clone(p));
        }
        let plan = shared_plan(n)?;
        self.plans.push(Arc::clone(&plan));
        Ok(plan)
    }

    /// The real-input plan for length `n`, building and memoizing it on
    /// first use (two-level lookup, like [`PlanCache::plan`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`RealFftPlan::new`].
    pub fn real_plan(&mut self, n: usize) -> Result<Arc<RealFftPlan>, DspError> {
        if let Some(p) = self.real_plans.iter().find(|p| p.len() == n) {
            return Ok(Arc::clone(p));
        }
        let plan = shared_real_plan(n)?;
        self.real_plans.push(Arc::clone(&plan));
        Ok(plan)
    }

    /// The single-precision real-input plan for length `n`, building and
    /// memoizing it on first use (two-level lookup, like
    /// [`PlanCache::plan`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`RealFft32Plan::new`].
    pub fn real_plan32(&mut self, n: usize) -> Result<Arc<RealFft32Plan>, DspError> {
        if let Some(p) = self.real32_plans.iter().find(|p| p.len() == n) {
            return Ok(Arc::clone(p));
        }
        let plan = shared_real_plan32(n)?;
        self.real32_plans.push(Arc::clone(&plan));
        Ok(plan)
    }

    /// The number of distinct complex sizes planned so far.
    #[must_use]
    pub fn size_count(&self) -> usize {
        self.plans.len()
    }

    /// The number of distinct real-input sizes planned so far.
    #[must_use]
    pub fn real_size_count(&self) -> usize {
        self.real_plans.len()
    }

    /// The number of distinct single-precision real-input sizes planned
    /// so far.
    #[must_use]
    pub fn real32_size_count(&self) -> usize {
        self.real32_plans.len()
    }
}

/// The process-wide table of immutable plan tables behind every
/// [`PlanCache`]: twiddle factors, bit-reversal permutations and packed
/// real-FFT split tables are read-only after construction, so parallel
/// workers share one `Arc` per size instead of each rebuilding (and
/// separately storing) identical tables.
struct SharedPlans {
    plans: Vec<Arc<FftPlan>>,
    real_plans: Vec<Arc<RealFftPlan>>,
    real32_plans: Vec<Arc<RealFft32Plan>>,
}

static SHARED_PLANS: OnceLock<Mutex<SharedPlans>> = OnceLock::new();
/// Requests served from an already-built shared table (cross-thread or
/// cross-cache reuse).
static SHARED_HITS: AtomicU64 = AtomicU64::new(0);
/// Requests that had to build a fresh table.
static SHARED_MISSES: AtomicU64 = AtomicU64::new(0);

fn shared_tables() -> &'static Mutex<SharedPlans> {
    SHARED_PLANS.get_or_init(|| {
        Mutex::new(SharedPlans {
            plans: Vec::new(),
            real_plans: Vec::new(),
            real32_plans: Vec::new(),
        })
    })
}

/// The process-shared plan for length `n`, building it on first use.
///
/// Construction happens under the registry lock, so concurrent first
/// requests for one size build its tables exactly once. Plans are built
/// by [`FftPlan::new`] and therefore bit-identical to privately built
/// ones — sharing never changes numerics.
///
/// # Errors
///
/// Same conditions as [`FftPlan::new`].
pub fn shared_plan(n: usize) -> Result<Arc<FftPlan>, DspError> {
    let mut tables = shared_tables()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some(p) = tables.plans.iter().find(|p| p.len() == n) {
        SHARED_HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(Arc::clone(p));
    }
    let plan = Arc::new(FftPlan::new(n)?);
    SHARED_MISSES.fetch_add(1, Ordering::Relaxed);
    tables.plans.push(Arc::clone(&plan));
    Ok(plan)
}

/// The process-shared real-input plan for length `n` (see
/// [`shared_plan`]).
///
/// # Errors
///
/// Same conditions as [`RealFftPlan::new`].
pub fn shared_real_plan(n: usize) -> Result<Arc<RealFftPlan>, DspError> {
    let mut tables = shared_tables()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some(p) = tables.real_plans.iter().find(|p| p.len() == n) {
        SHARED_HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(Arc::clone(p));
    }
    let plan = Arc::new(RealFftPlan::new(n)?);
    SHARED_MISSES.fetch_add(1, Ordering::Relaxed);
    tables.real_plans.push(Arc::clone(&plan));
    Ok(plan)
}

/// The process-shared single-precision real-input plan for length `n`
/// (see [`shared_plan`]).
///
/// # Errors
///
/// Same conditions as [`RealFft32Plan::new`].
pub fn shared_real_plan32(n: usize) -> Result<Arc<RealFft32Plan>, DspError> {
    let mut tables = shared_tables()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some(p) = tables.real32_plans.iter().find(|p| p.len() == n) {
        SHARED_HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(Arc::clone(p));
    }
    let plan = Arc::new(RealFft32Plan::new(n)?);
    SHARED_MISSES.fetch_add(1, Ordering::Relaxed);
    tables.real32_plans.push(Arc::clone(&plan));
    Ok(plan)
}

/// Cumulative count of plan requests served from the shared registry
/// without building anything — the observable proof that parallel
/// workers reuse tables instead of rebuilding them.
#[must_use]
pub fn shared_plan_hits() -> u64 {
    SHARED_HITS.load(Ordering::Relaxed)
}

/// Cumulative count of plan requests that built a fresh table (one per
/// distinct size per process, regardless of thread count).
#[must_use]
pub fn shared_plan_misses() -> u64 {
    SHARED_MISSES.load(Ordering::Relaxed)
}

/// A reusable buffer arena for the planned DSP paths.
///
/// The planned variants of `xcorr`, `stft` and `power_spectrum` borrow
/// their working storage from here instead of allocating. Buffers grow to
/// the high-water mark of the sizes seen and are then reused, so a warm
/// scratch makes the steady-state hot path allocation-free (pinned by the
/// `alloc_steady_state` test).
#[derive(Debug, Clone, Default)]
pub struct DspScratch {
    /// Primary complex workspace (signal spectra, in-place transforms).
    pub c1: Vec<Complex>,
    /// Secondary complex workspace (template spectra, products).
    pub c2: Vec<Complex>,
    /// Real workspace (windowed frames, intermediate magnitudes).
    pub r1: Vec<f64>,
    /// Single-precision half-spectrum workspace, real plane (the f32
    /// pipeline's split layout — see [`RealFft32Plan`]).
    pub f1_re: Vec<f32>,
    /// Single-precision half-spectrum workspace, imaginary plane.
    pub f1_im: Vec<f32>,
    /// Single-precision real workspace (f32 overlap-save block outputs).
    pub r32: Vec<f32>,
    /// Second single-precision half-spectrum pair, real plane. The f32
    /// template-bank fan-out keeps the shared input spectrum in
    /// `f1_re`/`f1_im` and stages each lane's conjugate product here,
    /// because the split-plane inverse transform consumes its input.
    pub f2_re: Vec<f32>,
    /// Second single-precision half-spectrum pair, imaginary plane.
    pub f2_im: Vec<f32>,
}

impl DspScratch {
    /// An empty scratch arena.
    #[must_use]
    pub fn new() -> Self {
        DspScratch::default()
    }

    /// Total capacity currently held, in bytes (diagnostic).
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.c1.capacity() * std::mem::size_of::<Complex>()
            + self.c2.capacity() * std::mem::size_of::<Complex>()
            + self.r1.capacity() * std::mem::size_of::<f64>()
            + (self.f1_re.capacity()
                + self.f1_im.capacity()
                + self.r32.capacity()
                + self.f2_re.capacity()
                + self.f2_im.capacity())
                * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_rejects_invalid_sizes() {
        assert!(matches!(FftPlan::new(0), Err(DspError::EmptyInput { .. })));
        assert!(matches!(
            FftPlan::new(12),
            Err(DspError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn plan_matches_one_shot_fft_bitwise() {
        for &n in &[1usize, 2, 8, 64, 256] {
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let mut planned = data.clone();
            let mut oneshot = data.clone();
            let plan = FftPlan::new(n).unwrap();
            plan.fft(&mut planned).unwrap();
            crate::fft::fft(&mut oneshot).unwrap();
            assert_eq!(planned, oneshot, "forward n={n}");
            plan.ifft(&mut planned).unwrap();
            crate::fft::ifft(&mut oneshot).unwrap();
            assert_eq!(planned, oneshot, "inverse n={n}");
        }
    }

    #[test]
    fn plan_length_is_enforced() {
        let plan = FftPlan::new(8).unwrap();
        let mut wrong = vec![Complex::ZERO; 4];
        assert!(plan.fft(&mut wrong).is_err());
        assert!(plan.ifft(&mut wrong).is_err());
        assert_eq!(plan.len(), 8);
        assert!(!plan.is_empty());
    }

    #[test]
    fn rfft_into_matches_one_shot_and_reuses_capacity() {
        let signal: Vec<f64> = (0..100).map(|i| (i as f64 * 0.21).sin()).collect();
        let plan = FftPlan::new(128).unwrap();
        let mut out = Vec::new();
        plan.rfft_into(&signal, &mut out).unwrap();
        let reference = crate::fft::rfft(&signal, 128).unwrap();
        assert_eq!(out, reference);
        let ptr = out.as_ptr();
        plan.rfft_into(&signal, &mut out).unwrap();
        assert_eq!(ptr, out.as_ptr(), "capacity must be reused");
        assert!(plan.rfft_into(&[], &mut out).is_err());
        assert!(plan.rfft_into(&vec![0.0; 200], &mut out).is_err());
    }

    #[test]
    fn cache_memoizes_per_size() {
        let mut cache = PlanCache::new();
        let a = cache.plan(64).unwrap();
        let b = cache.plan(64).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let _ = cache.plan(128).unwrap();
        assert_eq!(cache.size_count(), 2);
        assert!(cache.plan(10).is_err());
    }

    #[test]
    fn thread_ctx_memoizes_across_calls() {
        // Two separate borrows of the thread context see the same cache:
        // the second call must not grow the size count.
        let count0 = with_thread_ctx(|plans, _| {
            plans.plan(32).unwrap();
            plans.size_count()
        });
        let count1 = with_thread_ctx(|plans, _| {
            plans.plan(32).unwrap();
            plans.size_count()
        });
        assert_eq!(count0, count1);
    }

    #[test]
    fn rfft_half_matches_full_transform() {
        for &n in &[1usize, 2, 4, 8, 64, 256, 1024] {
            let signal: Vec<f64> = (0..n.min(3 * n / 4 + 1))
                .map(|i| (i as f64 * 0.37).sin() + 0.3 * (i as f64 * 0.011).cos())
                .collect();
            let rplan = RealFftPlan::new(n).unwrap();
            let mut half = Vec::new();
            rplan.rfft_half_into(&signal, &mut half).unwrap();
            assert_eq!(half.len(), rplan.num_bins());
            let full = crate::fft::rfft(&signal, n).unwrap();
            for (k, bin) in half.iter().enumerate() {
                let d = *bin - full[k];
                assert!(
                    d.abs() < 1e-9 * (1.0 + full[k].abs()),
                    "n={n} bin {k}: {bin:?} vs {:?}",
                    full[k]
                );
            }
            // Round trip back to the padded signal.
            let mut back = Vec::new();
            rplan.irfft_half_into(&mut half, &mut back).unwrap();
            assert_eq!(back.len(), n);
            for (i, &x) in back.iter().enumerate() {
                let want = signal.get(i).copied().unwrap_or(0.0);
                assert!((x - want).abs() < 1e-10, "n={n} sample {i}: {x} vs {want}");
            }
        }
    }

    #[test]
    fn real_plan_rejects_invalid_sizes_and_inputs() {
        assert!(matches!(
            RealFftPlan::new(0),
            Err(DspError::EmptyInput { .. })
        ));
        assert!(matches!(
            RealFftPlan::new(12),
            Err(DspError::InvalidParameter { .. })
        ));
        let rplan = RealFftPlan::new(8).unwrap();
        assert_eq!(rplan.len(), 8);
        assert!(!rplan.is_empty());
        let mut out = Vec::new();
        assert!(rplan.rfft_half_into(&[], &mut out).is_err());
        assert!(rplan.rfft_half_into(&[0.0; 9], &mut out).is_err());
        let mut wrong = vec![Complex::ZERO; 3];
        assert!(rplan.irfft_half_into(&mut wrong, &mut Vec::new()).is_err());
    }

    #[test]
    fn half_spectrum_view_accessors() {
        let signal: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).sin()).collect();
        let rplan = RealFftPlan::new(16).unwrap();
        let mut half = Vec::new();
        rplan.rfft_half_into(&signal, &mut half).unwrap();
        let view = HalfSpectrum::new(&half).unwrap();
        assert_eq!(view.num_bins(), 9);
        assert_eq!(view.fft_len(), 16);
        assert_eq!(view.dc(), half[0]);
        assert_eq!(view.nyquist(), half[8]);
        let full = crate::fft::rfft(&signal, 16).unwrap();
        for (k, &reference) in full.iter().enumerate() {
            let d = view.bin(k) - reference;
            assert!(d.abs() < 1e-9, "bin {k}");
        }
        assert_eq!(HalfSpectrum::new(&half[..1]).unwrap().fft_len(), 1);
        assert!(HalfSpectrum::new(&[]).is_err());
        assert!(HalfSpectrum::new(&half[..4]).is_err()); // 3 not a pow2
    }

    #[test]
    fn cache_memoizes_real_plans() {
        let mut cache = PlanCache::new();
        let a = cache.real_plan(64).unwrap();
        let b = cache.real_plan(64).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.real_size_count(), 1);
        assert!(cache.real_plan(10).is_err());
    }

    #[test]
    fn scratch_reports_capacity() {
        let mut scratch = DspScratch::new();
        assert_eq!(scratch.capacity_bytes(), 0);
        scratch.c1.reserve(16);
        assert!(scratch.capacity_bytes() >= 16 * std::mem::size_of::<Complex>());
        scratch.f1_re.reserve(8);
        scratch.r32.reserve(8);
        assert!(scratch.capacity_bytes() >= 16 * std::mem::size_of::<Complex>() + 64);
    }

    #[test]
    fn fft32_tracks_f64_plan_and_round_trips() {
        for &n in &[1usize, 2, 8, 64, 512] {
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let mut re: Vec<f32> = data.iter().map(|z| z.re as f32).collect();
            let mut im: Vec<f32> = data.iter().map(|z| z.im as f32).collect();
            let plan32 = Fft32Plan::new(n).unwrap();
            assert_eq!(plan32.len(), n);
            assert!(!plan32.is_empty());
            plan32.fft(&mut re, &mut im).unwrap();
            let mut reference = data.clone();
            FftPlan::new(n).unwrap().fft(&mut reference).unwrap();
            let scale = 1.0 + reference.iter().map(|z| z.abs()).fold(0.0, f64::max);
            for k in 0..n {
                assert!(
                    (re[k] as f64 - reference[k].re).abs() < 1e-4 * scale
                        && (im[k] as f64 - reference[k].im).abs() < 1e-4 * scale,
                    "n={n} bin {k}: ({}, {}) vs {:?}",
                    re[k],
                    im[k],
                    reference[k]
                );
            }
            plan32.ifft(&mut re, &mut im).unwrap();
            for k in 0..n {
                assert!(
                    (re[k] as f64 - data[k].re).abs() < 1e-5
                        && (im[k] as f64 - data[k].im).abs() < 1e-5,
                    "n={n} round trip sample {k}"
                );
            }
        }
        assert!(matches!(
            Fft32Plan::new(0),
            Err(DspError::EmptyInput { .. })
        ));
        assert!(Fft32Plan::new(12).is_err());
        let plan = Fft32Plan::new(8).unwrap();
        assert!(plan.fft(&mut [0.0; 4], &mut [0.0; 8]).is_err());
        assert!(plan.ifft(&mut [0.0; 8], &mut [0.0; 4]).is_err());
    }

    #[test]
    fn rfft32_half_tracks_f64_half_spectrum_and_round_trips() {
        for &n in &[1usize, 2, 4, 8, 64, 256, 1024] {
            let signal: Vec<f64> = (0..n.min(3 * n / 4 + 1))
                .map(|i| (i as f64 * 0.37).sin() + 0.3 * (i as f64 * 0.011).cos())
                .collect();
            let signal32: Vec<f32> = signal.iter().map(|&x| x as f32).collect();
            let rplan32 = RealFft32Plan::new(n).unwrap();
            assert_eq!(rplan32.len(), n);
            assert!(!rplan32.is_empty());
            let mut half_re = Vec::new();
            let mut half_im = Vec::new();
            rplan32
                .rfft_half_into(&signal32, &mut half_re, &mut half_im)
                .unwrap();
            assert_eq!(half_re.len(), rplan32.num_bins());
            assert_eq!(half_im.len(), rplan32.num_bins());
            let rplan = RealFftPlan::new(n).unwrap();
            let mut reference = Vec::new();
            rplan.rfft_half_into(&signal, &mut reference).unwrap();
            let scale = 1.0 + reference.iter().map(|z| z.abs()).fold(0.0, f64::max);
            for (k, bin) in reference.iter().enumerate() {
                assert!(
                    (half_re[k] as f64 - bin.re).abs() < 1e-4 * scale
                        && (half_im[k] as f64 - bin.im).abs() < 1e-4 * scale,
                    "n={n} bin {k}: ({}, {}) vs {bin:?}",
                    half_re[k],
                    half_im[k]
                );
            }
            let mut back = Vec::new();
            rplan32
                .irfft_half_into(&mut half_re, &mut half_im, &mut back)
                .unwrap();
            assert_eq!(back.len(), n);
            for (i, &x) in back.iter().enumerate() {
                let want = signal.get(i).copied().unwrap_or(0.0);
                assert!(
                    (x as f64 - want).abs() < 1e-5,
                    "n={n} sample {i}: {x} vs {want}"
                );
            }
        }
        assert!(matches!(
            RealFft32Plan::new(0),
            Err(DspError::EmptyInput { .. })
        ));
        assert!(RealFft32Plan::new(12).is_err());
        let rplan32 = RealFft32Plan::new(8).unwrap();
        let mut re = Vec::new();
        let mut im = Vec::new();
        assert!(rplan32.rfft_half_into(&[], &mut re, &mut im).is_err());
        assert!(rplan32.rfft_half_into(&[0.0; 9], &mut re, &mut im).is_err());
        assert!(rplan32
            .irfft_half_into(&mut [0.0; 3], &mut [0.0; 3], &mut Vec::new())
            .is_err());
    }

    #[test]
    fn cache_memoizes_real32_plans_through_shared_registry() {
        let mut cache = PlanCache::new();
        let a = cache.real_plan32(64).unwrap();
        let b = cache.real_plan32(64).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.real32_size_count(), 1);
        assert!(cache.real_plan32(10).is_err());
        // A second, fresh cache must receive the same shared allocation.
        let mut other = PlanCache::new();
        let c = other.real_plan32(64).unwrap();
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn caches_share_immutable_tables_across_threads() {
        // Deliberately unusual sizes so parallel sibling tests (which
        // share the process-wide registry) cannot interfere with the
        // identity assertions.
        let n = 1 << 13;
        let from_threads: Vec<(Arc<FftPlan>, Arc<RealFftPlan>)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let mut cache = PlanCache::new();
                        (cache.plan(n).unwrap(), cache.real_plan(n).unwrap())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (p, rp) in &from_threads[1..] {
            assert!(
                Arc::ptr_eq(p, &from_threads[0].0),
                "complex tables must be one shared allocation"
            );
            assert!(
                Arc::ptr_eq(rp, &from_threads[0].1),
                "real tables must be one shared allocation"
            );
        }
        // The hit counter observes the reuse: of the 8 requests above at
        // most 2 built tables, so at least 6 were shared-table hits.
        let before = shared_plan_hits();
        let mut cache = PlanCache::new();
        let again = cache.plan(n).unwrap();
        assert!(Arc::ptr_eq(&again, &from_threads[0].0));
        assert!(
            shared_plan_hits() > before,
            "a fresh cache's first request for a known size must count as a shared hit"
        );
        assert!(
            shared_plan_misses() >= 2,
            "both table kinds were built once"
        );
        // A second request from the *same* cache is served locally: the
        // shared counter must not move.
        let local_before = shared_plan_hits();
        let _ = cache.plan(n).unwrap();
        assert_eq!(
            shared_plan_hits(),
            local_before,
            "local fast path must not touch the registry"
        );
    }
}
