//! Planned FFT execution: precomputed twiddle/bit-reversal tables and a
//! reusable scratch arena for the session hot path.
//!
//! Every figure reproduction runs hundreds of simulated sessions, and each
//! session's matched filtering re-derives the same FFT setup (twiddle
//! factors, bit-reversal permutation) and re-allocates the same working
//! buffers on every call. A [`FftPlan`] hoists the per-size setup out of
//! the transform, a [`PlanCache`] memoizes plans across sizes, and a
//! [`DspScratch`] arena lends out reusable buffers so the planned variants
//! of `fft`/`rfft`/`xcorr`/`stft`/`power_spectrum` never allocate once
//! warm. The one-shot functions elsewhere in the crate remain as thin
//! wrappers over this module.
//!
//! The planned transforms are **bit-identical** to the historical one-shot
//! implementations: the twiddle tables are generated with the exact
//! recurrence (`w *= wlen`) the former inline loop used, so cached and
//! fresh executions produce the same floating-point results to the last
//! ulp. The equivalence property tests in `tests/proptests.rs` pin this.
//!
//! # Example
//!
//! ```
//! use hyperear_dsp::plan::{DspScratch, FftPlan};
//! use hyperear_dsp::Complex;
//!
//! # fn main() -> Result<(), hyperear_dsp::DspError> {
//! let plan = FftPlan::new(8)?;
//! let mut data: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
//! let original = data.clone();
//! plan.fft(&mut data)?;
//! plan.ifft(&mut data)?;
//! for (a, b) in data.iter().zip(&original) {
//!     assert!((a.re - b.re).abs() < 1e-12);
//! }
//! # let _ = DspScratch::new();
//! # Ok(())
//! # }
//! ```

use crate::{Complex, DspError};
use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    /// The execution context behind the crate's one-shot wrappers.
    static THREAD_CTX: RefCell<(PlanCache, DspScratch)> =
        RefCell::new((PlanCache::new(), DspScratch::new()));
}

/// Runs `f` against the thread-local plan cache and scratch arena.
///
/// This is the context the crate's one-shot conveniences (`fft`, `rfft`,
/// `xcorr`, `stft`, `power_spectrum`) execute in, so repeated one-shot
/// calls on a thread reuse plans and buffers much like FFTW's "wisdom".
/// Hot paths should still hold their own [`PlanCache`]/[`DspScratch`] —
/// explicit state is faster to reach and testable — but callers with a
/// transform off the hot path can borrow this one.
///
/// # Panics
///
/// Panics if `f` re-enters `with_thread_ctx` (directly or by calling a
/// one-shot wrapper): the context is a `RefCell`, not a reentrant lock.
pub fn with_thread_ctx<T>(f: impl FnOnce(&mut PlanCache, &mut DspScratch) -> T) -> T {
    THREAD_CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        let (plans, scratch) = &mut *ctx;
        f(plans, scratch)
    })
}

/// A precomputed execution plan for one FFT size.
///
/// Holds the bit-reversal permutation and the per-stage twiddle factors
/// for both transform directions, so [`FftPlan::fft`] and
/// [`FftPlan::ifft`] run the pure butterfly passes with no trigonometry
/// and no allocation.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversed index of each position (identity entries included).
    bit_rev: Vec<usize>,
    /// Forward twiddles, stages flattened: stage `len` contributes
    /// `len/2` entries, for `len = 2, 4, …, n` — `n − 1` entries total.
    fwd: Vec<Complex>,
    /// Inverse twiddles, same layout.
    inv: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for `n == 0` and
    /// [`DspError::InvalidParameter`] when `n` is not a power of two.
    pub fn new(n: usize) -> Result<Self, DspError> {
        if n == 0 {
            return Err(DspError::EmptyInput { what: "fft input" });
        }
        if !n.is_power_of_two() {
            return Err(DspError::invalid(
                "data.len()",
                format!("FFT length must be a power of two, got {n}"),
            ));
        }
        let bits = n.trailing_zeros();
        let bit_rev = if n == 1 {
            vec![0]
        } else {
            (0..n)
                .map(|i| i.reverse_bits() >> (usize::BITS - bits))
                .collect()
        };
        Ok(FftPlan {
            n,
            bit_rev,
            fwd: twiddle_table(n, -1.0),
            inv: twiddle_table(n, 1.0),
        })
    }

    /// The transform length this plan was built for.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan length is zero (never true for a constructed plan).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward FFT. Allocation-free.
    ///
    /// Identical results to [`crate::fft::fft`].
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `data.len()` does not
    /// match the plan length.
    pub fn fft(&self, data: &mut [Complex]) -> Result<(), DspError> {
        self.check_len(data.len())?;
        self.run(data, &self.fwd);
        Ok(())
    }

    /// In-place inverse FFT, normalized by `1/N`. Allocation-free.
    ///
    /// Identical results to [`crate::fft::ifft`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`FftPlan::fft`].
    pub fn ifft(&self, data: &mut [Complex]) -> Result<(), DspError> {
        self.check_len(data.len())?;
        self.run(data, &self.inv);
        let n = data.len() as f64;
        for v in data.iter_mut() {
            *v = *v / n;
        }
        Ok(())
    }

    /// Forward FFT of a real signal zero-padded to the plan length,
    /// written into `out` (cleared and resized; its capacity is reused).
    ///
    /// Identical results to [`crate::fft::rfft`] at `padded_len == n`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty signal and
    /// [`DspError::InvalidParameter`] when the signal exceeds the plan
    /// length.
    pub fn rfft_into(&self, signal: &[f64], out: &mut Vec<Complex>) -> Result<(), DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput { what: "rfft input" });
        }
        if self.n < signal.len() {
            return Err(DspError::invalid(
                "padded_len",
                format!(
                    "padded length {} is smaller than the signal ({})",
                    self.n,
                    signal.len()
                ),
            ));
        }
        out.clear();
        out.extend(signal.iter().map(|&x| Complex::from_real(x)));
        out.resize(self.n, Complex::ZERO);
        self.run(out, &self.fwd);
        Ok(())
    }

    fn check_len(&self, len: usize) -> Result<(), DspError> {
        if len == self.n {
            Ok(())
        } else {
            Err(DspError::invalid(
                "data.len()",
                format!("plan built for length {}, got {len}", self.n),
            ))
        }
    }

    /// The butterfly passes shared by both directions.
    fn run(&self, data: &mut [Complex], twiddles: &[Complex]) {
        let n = self.n;
        if n == 1 {
            return;
        }
        for i in 0..n {
            let j = self.bit_rev[i];
            if j > i {
                data.swap(i, j);
            }
        }
        let mut offset = 0;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stage = &twiddles[offset..offset + half];
            for start in (0..n).step_by(len) {
                for (k, &w) in stage.iter().enumerate() {
                    let u = data[start + k];
                    let v = data[start + k + half] * w;
                    data[start + k] = u + v;
                    data[start + k + half] = u - v;
                }
            }
            offset += half;
            len <<= 1;
        }
    }
}

/// Generates the flattened per-stage twiddle table.
///
/// Uses the exact recurrence of the historical inline transform
/// (`w = ONE; w *= wlen` per butterfly) so planned output is bit-identical
/// to the one-shot path.
fn twiddle_table(n: usize, sign: f64) -> Vec<Complex> {
    let mut table = Vec::with_capacity(n.saturating_sub(1));
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(ang);
        let mut w = Complex::ONE;
        for _ in 0..len / 2 {
            table.push(w);
            w *= wlen;
        }
        len <<= 1;
    }
    table
}

/// A memo of [`FftPlan`]s keyed by transform length.
///
/// Sessions touch only a handful of distinct sizes (the padded
/// correlation length, the STFT frame, the spectrum pad), so a linear
/// scan over an ordered small vector beats hashing.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    plans: Vec<Arc<FftPlan>>,
}

impl PlanCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The plan for length `n`, building and memoizing it on first use.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FftPlan::new`].
    pub fn plan(&mut self, n: usize) -> Result<Arc<FftPlan>, DspError> {
        if let Some(p) = self.plans.iter().find(|p| p.len() == n) {
            return Ok(Arc::clone(p));
        }
        let plan = Arc::new(FftPlan::new(n)?);
        self.plans.push(Arc::clone(&plan));
        Ok(plan)
    }

    /// The number of distinct sizes planned so far.
    #[must_use]
    pub fn size_count(&self) -> usize {
        self.plans.len()
    }
}

/// A reusable buffer arena for the planned DSP paths.
///
/// The planned variants of `xcorr`, `stft` and `power_spectrum` borrow
/// their working storage from here instead of allocating. Buffers grow to
/// the high-water mark of the sizes seen and are then reused, so a warm
/// scratch makes the steady-state hot path allocation-free (pinned by the
/// `alloc_steady_state` test).
#[derive(Debug, Clone, Default)]
pub struct DspScratch {
    /// Primary complex workspace (signal spectra, in-place transforms).
    pub c1: Vec<Complex>,
    /// Secondary complex workspace (template spectra, products).
    pub c2: Vec<Complex>,
    /// Real workspace (windowed frames, intermediate magnitudes).
    pub r1: Vec<f64>,
}

impl DspScratch {
    /// An empty scratch arena.
    #[must_use]
    pub fn new() -> Self {
        DspScratch::default()
    }

    /// Total capacity currently held, in bytes (diagnostic).
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.c1.capacity() * std::mem::size_of::<Complex>()
            + self.c2.capacity() * std::mem::size_of::<Complex>()
            + self.r1.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_rejects_invalid_sizes() {
        assert!(matches!(FftPlan::new(0), Err(DspError::EmptyInput { .. })));
        assert!(matches!(
            FftPlan::new(12),
            Err(DspError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn plan_matches_one_shot_fft_bitwise() {
        for &n in &[1usize, 2, 8, 64, 256] {
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let mut planned = data.clone();
            let mut oneshot = data.clone();
            let plan = FftPlan::new(n).unwrap();
            plan.fft(&mut planned).unwrap();
            crate::fft::fft(&mut oneshot).unwrap();
            assert_eq!(planned, oneshot, "forward n={n}");
            plan.ifft(&mut planned).unwrap();
            crate::fft::ifft(&mut oneshot).unwrap();
            assert_eq!(planned, oneshot, "inverse n={n}");
        }
    }

    #[test]
    fn plan_length_is_enforced() {
        let plan = FftPlan::new(8).unwrap();
        let mut wrong = vec![Complex::ZERO; 4];
        assert!(plan.fft(&mut wrong).is_err());
        assert!(plan.ifft(&mut wrong).is_err());
        assert_eq!(plan.len(), 8);
        assert!(!plan.is_empty());
    }

    #[test]
    fn rfft_into_matches_one_shot_and_reuses_capacity() {
        let signal: Vec<f64> = (0..100).map(|i| (i as f64 * 0.21).sin()).collect();
        let plan = FftPlan::new(128).unwrap();
        let mut out = Vec::new();
        plan.rfft_into(&signal, &mut out).unwrap();
        let reference = crate::fft::rfft(&signal, 128).unwrap();
        assert_eq!(out, reference);
        let ptr = out.as_ptr();
        plan.rfft_into(&signal, &mut out).unwrap();
        assert_eq!(ptr, out.as_ptr(), "capacity must be reused");
        assert!(plan.rfft_into(&[], &mut out).is_err());
        assert!(plan.rfft_into(&vec![0.0; 200], &mut out).is_err());
    }

    #[test]
    fn cache_memoizes_per_size() {
        let mut cache = PlanCache::new();
        let a = cache.plan(64).unwrap();
        let b = cache.plan(64).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let _ = cache.plan(128).unwrap();
        assert_eq!(cache.size_count(), 2);
        assert!(cache.plan(10).is_err());
    }

    #[test]
    fn thread_ctx_memoizes_across_calls() {
        // Two separate borrows of the thread context see the same cache:
        // the second call must not grow the size count.
        let count0 = with_thread_ctx(|plans, _| {
            plans.plan(32).unwrap();
            plans.size_count()
        });
        let count1 = with_thread_ctx(|plans, _| {
            plans.plan(32).unwrap();
            plans.size_count()
        });
        assert_eq!(count0, count1);
    }

    #[test]
    fn scratch_reports_capacity() {
        let mut scratch = DspScratch::new();
        assert_eq!(scratch.capacity_bytes(), 0);
        scratch.c1.reserve(16);
        assert!(scratch.capacity_bytes() >= 16 * std::mem::size_of::<Complex>());
    }
}
