//! Planned FFT execution: precomputed twiddle/bit-reversal tables and a
//! reusable scratch arena for the session hot path.
//!
//! Every figure reproduction runs hundreds of simulated sessions, and each
//! session's matched filtering re-derives the same FFT setup (twiddle
//! factors, bit-reversal permutation) and re-allocates the same working
//! buffers on every call. A [`FftPlan`] hoists the per-size setup out of
//! the transform, a [`PlanCache`] memoizes plans across sizes, and a
//! [`DspScratch`] arena lends out reusable buffers so the planned variants
//! of `fft`/`rfft`/`xcorr`/`stft`/`power_spectrum` never allocate once
//! warm. The one-shot functions elsewhere in the crate remain as thin
//! wrappers over this module.
//!
//! The planned transforms are **bit-identical** to the historical one-shot
//! implementations: the twiddle tables are generated with the exact
//! recurrence (`w *= wlen`) the former inline loop used, so cached and
//! fresh executions produce the same floating-point results to the last
//! ulp. The equivalence property tests in `tests/proptests.rs` pin this.
//!
//! # Example
//!
//! ```
//! use hyperear_dsp::plan::{DspScratch, FftPlan};
//! use hyperear_dsp::Complex;
//!
//! # fn main() -> Result<(), hyperear_dsp::DspError> {
//! let plan = FftPlan::new(8)?;
//! let mut data: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
//! let original = data.clone();
//! plan.fft(&mut data)?;
//! plan.ifft(&mut data)?;
//! for (a, b) in data.iter().zip(&original) {
//!     assert!((a.re - b.re).abs() < 1e-12);
//! }
//! # let _ = DspScratch::new();
//! # Ok(())
//! # }
//! ```

use crate::{Complex, DspError};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

thread_local! {
    /// The execution context behind the crate's one-shot wrappers.
    static THREAD_CTX: RefCell<(PlanCache, DspScratch)> =
        RefCell::new((PlanCache::new(), DspScratch::new()));
}

/// Runs `f` against the thread-local plan cache and scratch arena.
///
/// This is the context the crate's one-shot conveniences (`fft`, `rfft`,
/// `xcorr`, `stft`, `power_spectrum`) execute in, so repeated one-shot
/// calls on a thread reuse plans and buffers much like FFTW's "wisdom".
/// Hot paths should still hold their own [`PlanCache`]/[`DspScratch`] —
/// explicit state is faster to reach and testable — but callers with a
/// transform off the hot path can borrow this one.
///
/// # Panics
///
/// Panics if `f` re-enters `with_thread_ctx` (directly or by calling a
/// one-shot wrapper): the context is a `RefCell`, not a reentrant lock.
pub fn with_thread_ctx<T>(f: impl FnOnce(&mut PlanCache, &mut DspScratch) -> T) -> T {
    THREAD_CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        let (plans, scratch) = &mut *ctx;
        f(plans, scratch)
    })
}

/// A precomputed execution plan for one FFT size.
///
/// Holds the bit-reversal permutation and the per-stage twiddle factors
/// for both transform directions, so [`FftPlan::fft`] and
/// [`FftPlan::ifft`] run the pure butterfly passes with no trigonometry
/// and no allocation.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversed index of each position (identity entries included).
    bit_rev: Vec<usize>,
    /// Forward twiddles, stages flattened: stage `len` contributes
    /// `len/2` entries, for `len = 2, 4, …, n` — `n − 1` entries total.
    fwd: Vec<Complex>,
    /// Inverse twiddles, same layout.
    inv: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for `n == 0` and
    /// [`DspError::InvalidParameter`] when `n` is not a power of two.
    pub fn new(n: usize) -> Result<Self, DspError> {
        if n == 0 {
            return Err(DspError::EmptyInput { what: "fft input" });
        }
        if !n.is_power_of_two() {
            return Err(DspError::invalid(
                "data.len()",
                format!("FFT length must be a power of two, got {n}"),
            ));
        }
        let bits = n.trailing_zeros();
        let bit_rev = if n == 1 {
            vec![0]
        } else {
            (0..n)
                .map(|i| i.reverse_bits() >> (usize::BITS - bits))
                .collect()
        };
        Ok(FftPlan {
            n,
            bit_rev,
            fwd: twiddle_table(n, -1.0),
            inv: twiddle_table(n, 1.0),
        })
    }

    /// The transform length this plan was built for.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan length is zero (never true for a constructed plan).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward FFT. Allocation-free.
    ///
    /// Identical results to [`crate::fft::fft`].
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `data.len()` does not
    /// match the plan length.
    pub fn fft(&self, data: &mut [Complex]) -> Result<(), DspError> {
        self.check_len(data.len())?;
        self.run(data, &self.fwd);
        Ok(())
    }

    /// In-place inverse FFT, normalized by `1/N`. Allocation-free.
    ///
    /// Identical results to [`crate::fft::ifft`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`FftPlan::fft`].
    pub fn ifft(&self, data: &mut [Complex]) -> Result<(), DspError> {
        self.check_len(data.len())?;
        self.run(data, &self.inv);
        let n = data.len() as f64;
        for v in data.iter_mut() {
            *v = *v / n;
        }
        Ok(())
    }

    /// Forward FFT of a real signal zero-padded to the plan length,
    /// written into `out` (cleared and resized; its capacity is reused).
    ///
    /// Identical results to [`crate::fft::rfft`] at `padded_len == n`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty signal and
    /// [`DspError::InvalidParameter`] when the signal exceeds the plan
    /// length.
    pub fn rfft_into(&self, signal: &[f64], out: &mut Vec<Complex>) -> Result<(), DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput { what: "rfft input" });
        }
        if self.n < signal.len() {
            return Err(DspError::invalid(
                "padded_len",
                format!(
                    "padded length {} is smaller than the signal ({})",
                    self.n,
                    signal.len()
                ),
            ));
        }
        out.clear();
        out.extend(signal.iter().map(|&x| Complex::from_real(x)));
        out.resize(self.n, Complex::ZERO);
        self.run(out, &self.fwd);
        Ok(())
    }

    fn check_len(&self, len: usize) -> Result<(), DspError> {
        if len == self.n {
            Ok(())
        } else {
            Err(DspError::invalid(
                "data.len()",
                format!("plan built for length {}, got {len}", self.n),
            ))
        }
    }

    /// The butterfly passes shared by both directions.
    fn run(&self, data: &mut [Complex], twiddles: &[Complex]) {
        let n = self.n;
        if n == 1 {
            return;
        }
        for i in 0..n {
            let j = self.bit_rev[i];
            if j > i {
                data.swap(i, j);
            }
        }
        let mut offset = 0;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stage = &twiddles[offset..offset + half];
            for start in (0..n).step_by(len) {
                for (k, &w) in stage.iter().enumerate() {
                    let u = data[start + k];
                    let v = data[start + k + half] * w;
                    data[start + k] = u + v;
                    data[start + k + half] = u - v;
                }
            }
            offset += half;
            len <<= 1;
        }
    }
}

/// A read-only view of the `n/2 + 1` non-redundant bins of a real
/// signal's spectrum.
///
/// A real signal's DFT is conjugate-symmetric (`X[n−k] = conj(X[k])`), so
/// only bins `0..=n/2` carry information. [`RealFftPlan::rfft_half_into`]
/// produces exactly those bins; this view adds the accessors consumers
/// need — DC, Nyquist, and symmetric access to the folded upper half —
/// without materializing the redundant mirror bins.
#[derive(Debug, Clone, Copy)]
pub struct HalfSpectrum<'a> {
    bins: &'a [Complex],
}

impl<'a> HalfSpectrum<'a> {
    /// Wraps a half-spectrum slice of `n/2 + 1` bins.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty slice and
    /// [`DspError::InvalidParameter`] when the bin count does not
    /// correspond to a power-of-two FFT length (`len == 1` maps to
    /// `n == 1`; otherwise `len − 1` must be a power of two).
    pub fn new(bins: &'a [Complex]) -> Result<Self, DspError> {
        if bins.is_empty() {
            return Err(DspError::EmptyInput {
                what: "half spectrum",
            });
        }
        if bins.len() > 1 && !(bins.len() - 1).is_power_of_two() {
            return Err(DspError::invalid(
                "bins.len()",
                format!(
                    "{} bins does not match any power-of-two FFT length",
                    bins.len()
                ),
            ));
        }
        Ok(HalfSpectrum { bins })
    }

    /// The number of stored (non-redundant) bins: `n/2 + 1`.
    #[must_use]
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// The full FFT length `n` this half-spectrum folds.
    #[must_use]
    pub fn fft_len(&self) -> usize {
        if self.bins.len() == 1 {
            1
        } else {
            2 * (self.bins.len() - 1)
        }
    }

    /// The stored bins `0..=n/2`.
    #[must_use]
    pub fn bins(&self) -> &[Complex] {
        self.bins
    }

    /// Full-spectrum bin `k` for any `k < n`, reconstructing folded bins
    /// by conjugate symmetry.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.fft_len()`.
    #[must_use]
    pub fn bin(&self, k: usize) -> Complex {
        let n = self.fft_len();
        assert!(k < n, "bin {k} out of range for FFT length {n}");
        if k < self.bins.len() {
            self.bins[k]
        } else {
            self.bins[n - k].conj()
        }
    }

    /// The DC bin (`k = 0`).
    #[must_use]
    pub fn dc(&self) -> Complex {
        self.bins[0]
    }

    /// The Nyquist bin (`k = n/2`; equals DC for `n == 1`).
    #[must_use]
    pub fn nyquist(&self) -> Complex {
        self.bins[self.bins.len() - 1]
    }
}

/// A precomputed plan for real-input transforms of length `n`.
///
/// Packs the `n` real samples into an `n/2`-point complex FFT (`z[k] =
/// x[2k] + i·x[2k+1]`) and recovers the `n/2 + 1` half-spectrum with a
/// conjugate-symmetric split pass — roughly half the butterflies and half
/// the complex scratch of the equivalent full transform, which matters
/// because every hot HyperEar kernel (matched filter, STFT, periodogram,
/// mic equalization) transforms real audio. See DESIGN.md for the
/// split/merge algebra.
///
/// Unlike [`FftPlan`]'s complex path, the half-spectrum route is **not**
/// bit-identical to the historical full transform — it evaluates the same
/// DFT through a different factorization, so results agree to roughly
/// `1e-12` relative (pinned by the `rfft_half` property test), not to the
/// last ulp.
#[derive(Debug, Clone)]
pub struct RealFftPlan {
    n: usize,
    /// The `n/2`-point complex plan (`None` for the trivial `n == 1`).
    half: Option<FftPlan>,
    /// Split twiddles `e^{-2πik/n}` for `k` in `0..=n/4`; pairs
    /// `(k, n/2−k)` share a twiddle up to conjugation.
    split: Vec<Complex>,
}

impl RealFftPlan {
    /// Builds a real-input plan for transforms of length `n`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FftPlan::new`].
    pub fn new(n: usize) -> Result<Self, DspError> {
        if n == 0 {
            return Err(DspError::EmptyInput { what: "rfft input" });
        }
        if !n.is_power_of_two() {
            return Err(DspError::invalid(
                "n",
                format!("FFT length must be a power of two, got {n}"),
            ));
        }
        let (half, split) = if n == 1 {
            (None, Vec::new())
        } else {
            let angle = -2.0 * std::f64::consts::PI / n as f64;
            let split = (0..=n / 4)
                .map(|k| Complex::from_angle(angle * k as f64))
                .collect();
            (Some(FftPlan::new(n / 2)?), split)
        };
        Ok(RealFftPlan { n, half, split })
    }

    /// The real transform length this plan was built for.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan length is zero (never true for a constructed plan).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The number of half-spectrum bins produced: `n/2 + 1`.
    #[must_use]
    pub fn num_bins(&self) -> usize {
        if self.n == 1 {
            1
        } else {
            self.n / 2 + 1
        }
    }

    /// Forward FFT of a real signal zero-padded to the plan length,
    /// written as the `n/2 + 1` half-spectrum bins into `out` (cleared
    /// and refilled; capacity reused). Allocation-free once `out` has
    /// grown to `num_bins()`.
    ///
    /// Runs one `n/2`-point complex FFT on the even/odd-packed samples
    /// plus an `O(n)` conjugate-symmetric split pass.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty signal and
    /// [`DspError::InvalidParameter`] when the signal exceeds the plan
    /// length.
    pub fn rfft_half_into(&self, signal: &[f64], out: &mut Vec<Complex>) -> Result<(), DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput { what: "rfft input" });
        }
        if self.n < signal.len() {
            return Err(DspError::invalid(
                "signal.len()",
                format!(
                    "plan length {} is smaller than the signal ({})",
                    self.n,
                    signal.len()
                ),
            ));
        }
        out.clear();
        let Some(half_plan) = &self.half else {
            out.push(Complex::from_real(signal[0]));
            return Ok(());
        };
        let h = self.n / 2;
        // Pack even samples into re, odd into im (zero-padded).
        let at = |j: usize| signal.get(j).copied().unwrap_or(0.0);
        out.extend((0..h).map(|k| Complex::new(at(2 * k), at(2 * k + 1))));
        half_plan.fft(out)?;
        // Split: DC and Nyquist come from Z[0] alone; interior pairs
        // (k, h−k) combine Z[k] and conj(Z[h−k]) with one twiddle.
        let z0 = out[0];
        out.push(Complex::from_real(z0.re - z0.im));
        out[0] = Complex::from_real(z0.re + z0.im);
        for k in 1..=h / 2 {
            let a = out[k];
            let b = out[h - k];
            let xe = (a + b.conj()).scale(0.5);
            let xo = (a - b.conj()) * Complex::new(0.0, -0.5);
            let t = self.split[k] * xo;
            out[k] = xe + t;
            out[h - k] = (xe - t).conj();
        }
        Ok(())
    }

    /// Inverse of [`RealFftPlan::rfft_half_into`]: merges the `n/2 + 1`
    /// half-spectrum bins back into the packed form **in place** (the
    /// contents of `half` are consumed as working storage), runs one
    /// `n/2`-point inverse FFT, and writes the `n` real samples into
    /// `out` (cleared and refilled; capacity reused).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `half.len()` is not
    /// `num_bins()`.
    pub fn irfft_half_into(
        &self,
        half: &mut [Complex],
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        if half.len() != self.num_bins() {
            return Err(DspError::invalid(
                "half.len()",
                format!(
                    "plan for length {} expects {} bins, got {}",
                    self.n,
                    self.num_bins(),
                    half.len()
                ),
            ));
        }
        out.clear();
        let Some(half_plan) = &self.half else {
            out.push(half[0].re);
            return Ok(());
        };
        let h = self.n / 2;
        // Merge: fold the Nyquist bin into Z[0], then reverse the split
        // butterflies pairwise. mul_i(c) = i·c.
        let mul_i = |c: Complex| Complex::new(-c.im, c.re);
        let a = half[0];
        let b = half[h];
        let xe = (a + b.conj()).scale(0.5);
        let xo = (a - b.conj()).scale(0.5);
        half[0] = xe + mul_i(xo);
        for k in 1..=h / 2 {
            let a = half[k];
            let b = half[h - k];
            let xe = (a + b.conj()).scale(0.5);
            let t = (a - b.conj()).scale(0.5);
            let xo = self.split[k].conj() * t;
            half[k] = xe + mul_i(xo);
            half[h - k] = xe.conj() + mul_i(xo.conj());
        }
        half_plan.ifft(&mut half[..h])?;
        out.reserve(self.n);
        for z in &half[..h] {
            out.push(z.re);
            out.push(z.im);
        }
        Ok(())
    }
}

/// Generates the flattened per-stage twiddle table.
///
/// Uses the exact recurrence of the historical inline transform
/// (`w = ONE; w *= wlen` per butterfly) so planned output is bit-identical
/// to the one-shot path.
fn twiddle_table(n: usize, sign: f64) -> Vec<Complex> {
    let mut table = Vec::with_capacity(n.saturating_sub(1));
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(ang);
        let mut w = Complex::ONE;
        for _ in 0..len / 2 {
            table.push(w);
            w *= wlen;
        }
        len <<= 1;
    }
    table
}

/// A memo of [`FftPlan`]s keyed by transform length.
///
/// Sessions touch only a handful of distinct sizes (the padded
/// correlation length, the STFT frame, the spectrum pad), so a linear
/// scan over an ordered small vector beats hashing.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    plans: Vec<Arc<FftPlan>>,
    real_plans: Vec<Arc<RealFftPlan>>,
}

impl PlanCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The plan for length `n`, building and memoizing it on first use.
    ///
    /// The lookup is two-level: the cache's own lock-free vector first,
    /// then the process-wide [shared registry](shared_plan). A plan
    /// another thread already built is therefore reused (`Arc`-cloned),
    /// never rebuilt — twiddle and bit-reversal tables are immutable.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FftPlan::new`].
    pub fn plan(&mut self, n: usize) -> Result<Arc<FftPlan>, DspError> {
        if let Some(p) = self.plans.iter().find(|p| p.len() == n) {
            return Ok(Arc::clone(p));
        }
        let plan = shared_plan(n)?;
        self.plans.push(Arc::clone(&plan));
        Ok(plan)
    }

    /// The real-input plan for length `n`, building and memoizing it on
    /// first use (two-level lookup, like [`PlanCache::plan`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`RealFftPlan::new`].
    pub fn real_plan(&mut self, n: usize) -> Result<Arc<RealFftPlan>, DspError> {
        if let Some(p) = self.real_plans.iter().find(|p| p.len() == n) {
            return Ok(Arc::clone(p));
        }
        let plan = shared_real_plan(n)?;
        self.real_plans.push(Arc::clone(&plan));
        Ok(plan)
    }

    /// The number of distinct complex sizes planned so far.
    #[must_use]
    pub fn size_count(&self) -> usize {
        self.plans.len()
    }

    /// The number of distinct real-input sizes planned so far.
    #[must_use]
    pub fn real_size_count(&self) -> usize {
        self.real_plans.len()
    }
}

/// The process-wide table of immutable plan tables behind every
/// [`PlanCache`]: twiddle factors, bit-reversal permutations and packed
/// real-FFT split tables are read-only after construction, so parallel
/// workers share one `Arc` per size instead of each rebuilding (and
/// separately storing) identical tables.
struct SharedPlans {
    plans: Vec<Arc<FftPlan>>,
    real_plans: Vec<Arc<RealFftPlan>>,
}

static SHARED_PLANS: OnceLock<Mutex<SharedPlans>> = OnceLock::new();
/// Requests served from an already-built shared table (cross-thread or
/// cross-cache reuse).
static SHARED_HITS: AtomicU64 = AtomicU64::new(0);
/// Requests that had to build a fresh table.
static SHARED_MISSES: AtomicU64 = AtomicU64::new(0);

fn shared_tables() -> &'static Mutex<SharedPlans> {
    SHARED_PLANS.get_or_init(|| {
        Mutex::new(SharedPlans {
            plans: Vec::new(),
            real_plans: Vec::new(),
        })
    })
}

/// The process-shared plan for length `n`, building it on first use.
///
/// Construction happens under the registry lock, so concurrent first
/// requests for one size build its tables exactly once. Plans are built
/// by [`FftPlan::new`] and therefore bit-identical to privately built
/// ones — sharing never changes numerics.
///
/// # Errors
///
/// Same conditions as [`FftPlan::new`].
pub fn shared_plan(n: usize) -> Result<Arc<FftPlan>, DspError> {
    let mut tables = shared_tables()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some(p) = tables.plans.iter().find(|p| p.len() == n) {
        SHARED_HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(Arc::clone(p));
    }
    let plan = Arc::new(FftPlan::new(n)?);
    SHARED_MISSES.fetch_add(1, Ordering::Relaxed);
    tables.plans.push(Arc::clone(&plan));
    Ok(plan)
}

/// The process-shared real-input plan for length `n` (see
/// [`shared_plan`]).
///
/// # Errors
///
/// Same conditions as [`RealFftPlan::new`].
pub fn shared_real_plan(n: usize) -> Result<Arc<RealFftPlan>, DspError> {
    let mut tables = shared_tables()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some(p) = tables.real_plans.iter().find(|p| p.len() == n) {
        SHARED_HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(Arc::clone(p));
    }
    let plan = Arc::new(RealFftPlan::new(n)?);
    SHARED_MISSES.fetch_add(1, Ordering::Relaxed);
    tables.real_plans.push(Arc::clone(&plan));
    Ok(plan)
}

/// Cumulative count of plan requests served from the shared registry
/// without building anything — the observable proof that parallel
/// workers reuse tables instead of rebuilding them.
#[must_use]
pub fn shared_plan_hits() -> u64 {
    SHARED_HITS.load(Ordering::Relaxed)
}

/// Cumulative count of plan requests that built a fresh table (one per
/// distinct size per process, regardless of thread count).
#[must_use]
pub fn shared_plan_misses() -> u64 {
    SHARED_MISSES.load(Ordering::Relaxed)
}

/// A reusable buffer arena for the planned DSP paths.
///
/// The planned variants of `xcorr`, `stft` and `power_spectrum` borrow
/// their working storage from here instead of allocating. Buffers grow to
/// the high-water mark of the sizes seen and are then reused, so a warm
/// scratch makes the steady-state hot path allocation-free (pinned by the
/// `alloc_steady_state` test).
#[derive(Debug, Clone, Default)]
pub struct DspScratch {
    /// Primary complex workspace (signal spectra, in-place transforms).
    pub c1: Vec<Complex>,
    /// Secondary complex workspace (template spectra, products).
    pub c2: Vec<Complex>,
    /// Real workspace (windowed frames, intermediate magnitudes).
    pub r1: Vec<f64>,
}

impl DspScratch {
    /// An empty scratch arena.
    #[must_use]
    pub fn new() -> Self {
        DspScratch::default()
    }

    /// Total capacity currently held, in bytes (diagnostic).
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.c1.capacity() * std::mem::size_of::<Complex>()
            + self.c2.capacity() * std::mem::size_of::<Complex>()
            + self.r1.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_rejects_invalid_sizes() {
        assert!(matches!(FftPlan::new(0), Err(DspError::EmptyInput { .. })));
        assert!(matches!(
            FftPlan::new(12),
            Err(DspError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn plan_matches_one_shot_fft_bitwise() {
        for &n in &[1usize, 2, 8, 64, 256] {
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let mut planned = data.clone();
            let mut oneshot = data.clone();
            let plan = FftPlan::new(n).unwrap();
            plan.fft(&mut planned).unwrap();
            crate::fft::fft(&mut oneshot).unwrap();
            assert_eq!(planned, oneshot, "forward n={n}");
            plan.ifft(&mut planned).unwrap();
            crate::fft::ifft(&mut oneshot).unwrap();
            assert_eq!(planned, oneshot, "inverse n={n}");
        }
    }

    #[test]
    fn plan_length_is_enforced() {
        let plan = FftPlan::new(8).unwrap();
        let mut wrong = vec![Complex::ZERO; 4];
        assert!(plan.fft(&mut wrong).is_err());
        assert!(plan.ifft(&mut wrong).is_err());
        assert_eq!(plan.len(), 8);
        assert!(!plan.is_empty());
    }

    #[test]
    fn rfft_into_matches_one_shot_and_reuses_capacity() {
        let signal: Vec<f64> = (0..100).map(|i| (i as f64 * 0.21).sin()).collect();
        let plan = FftPlan::new(128).unwrap();
        let mut out = Vec::new();
        plan.rfft_into(&signal, &mut out).unwrap();
        let reference = crate::fft::rfft(&signal, 128).unwrap();
        assert_eq!(out, reference);
        let ptr = out.as_ptr();
        plan.rfft_into(&signal, &mut out).unwrap();
        assert_eq!(ptr, out.as_ptr(), "capacity must be reused");
        assert!(plan.rfft_into(&[], &mut out).is_err());
        assert!(plan.rfft_into(&vec![0.0; 200], &mut out).is_err());
    }

    #[test]
    fn cache_memoizes_per_size() {
        let mut cache = PlanCache::new();
        let a = cache.plan(64).unwrap();
        let b = cache.plan(64).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let _ = cache.plan(128).unwrap();
        assert_eq!(cache.size_count(), 2);
        assert!(cache.plan(10).is_err());
    }

    #[test]
    fn thread_ctx_memoizes_across_calls() {
        // Two separate borrows of the thread context see the same cache:
        // the second call must not grow the size count.
        let count0 = with_thread_ctx(|plans, _| {
            plans.plan(32).unwrap();
            plans.size_count()
        });
        let count1 = with_thread_ctx(|plans, _| {
            plans.plan(32).unwrap();
            plans.size_count()
        });
        assert_eq!(count0, count1);
    }

    #[test]
    fn rfft_half_matches_full_transform() {
        for &n in &[1usize, 2, 4, 8, 64, 256, 1024] {
            let signal: Vec<f64> = (0..n.min(3 * n / 4 + 1))
                .map(|i| (i as f64 * 0.37).sin() + 0.3 * (i as f64 * 0.011).cos())
                .collect();
            let rplan = RealFftPlan::new(n).unwrap();
            let mut half = Vec::new();
            rplan.rfft_half_into(&signal, &mut half).unwrap();
            assert_eq!(half.len(), rplan.num_bins());
            let full = crate::fft::rfft(&signal, n).unwrap();
            for (k, bin) in half.iter().enumerate() {
                let d = *bin - full[k];
                assert!(
                    d.abs() < 1e-9 * (1.0 + full[k].abs()),
                    "n={n} bin {k}: {bin:?} vs {:?}",
                    full[k]
                );
            }
            // Round trip back to the padded signal.
            let mut back = Vec::new();
            rplan.irfft_half_into(&mut half, &mut back).unwrap();
            assert_eq!(back.len(), n);
            for (i, &x) in back.iter().enumerate() {
                let want = signal.get(i).copied().unwrap_or(0.0);
                assert!((x - want).abs() < 1e-10, "n={n} sample {i}: {x} vs {want}");
            }
        }
    }

    #[test]
    fn real_plan_rejects_invalid_sizes_and_inputs() {
        assert!(matches!(
            RealFftPlan::new(0),
            Err(DspError::EmptyInput { .. })
        ));
        assert!(matches!(
            RealFftPlan::new(12),
            Err(DspError::InvalidParameter { .. })
        ));
        let rplan = RealFftPlan::new(8).unwrap();
        assert_eq!(rplan.len(), 8);
        assert!(!rplan.is_empty());
        let mut out = Vec::new();
        assert!(rplan.rfft_half_into(&[], &mut out).is_err());
        assert!(rplan.rfft_half_into(&[0.0; 9], &mut out).is_err());
        let mut wrong = vec![Complex::ZERO; 3];
        assert!(rplan.irfft_half_into(&mut wrong, &mut Vec::new()).is_err());
    }

    #[test]
    fn half_spectrum_view_accessors() {
        let signal: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).sin()).collect();
        let rplan = RealFftPlan::new(16).unwrap();
        let mut half = Vec::new();
        rplan.rfft_half_into(&signal, &mut half).unwrap();
        let view = HalfSpectrum::new(&half).unwrap();
        assert_eq!(view.num_bins(), 9);
        assert_eq!(view.fft_len(), 16);
        assert_eq!(view.dc(), half[0]);
        assert_eq!(view.nyquist(), half[8]);
        let full = crate::fft::rfft(&signal, 16).unwrap();
        for (k, &reference) in full.iter().enumerate() {
            let d = view.bin(k) - reference;
            assert!(d.abs() < 1e-9, "bin {k}");
        }
        assert_eq!(HalfSpectrum::new(&half[..1]).unwrap().fft_len(), 1);
        assert!(HalfSpectrum::new(&[]).is_err());
        assert!(HalfSpectrum::new(&half[..4]).is_err()); // 3 not a pow2
    }

    #[test]
    fn cache_memoizes_real_plans() {
        let mut cache = PlanCache::new();
        let a = cache.real_plan(64).unwrap();
        let b = cache.real_plan(64).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.real_size_count(), 1);
        assert!(cache.real_plan(10).is_err());
    }

    #[test]
    fn scratch_reports_capacity() {
        let mut scratch = DspScratch::new();
        assert_eq!(scratch.capacity_bytes(), 0);
        scratch.c1.reserve(16);
        assert!(scratch.capacity_bytes() >= 16 * std::mem::size_of::<Complex>());
    }

    #[test]
    fn caches_share_immutable_tables_across_threads() {
        // Deliberately unusual sizes so parallel sibling tests (which
        // share the process-wide registry) cannot interfere with the
        // identity assertions.
        let n = 1 << 13;
        let from_threads: Vec<(Arc<FftPlan>, Arc<RealFftPlan>)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let mut cache = PlanCache::new();
                        (cache.plan(n).unwrap(), cache.real_plan(n).unwrap())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (p, rp) in &from_threads[1..] {
            assert!(
                Arc::ptr_eq(p, &from_threads[0].0),
                "complex tables must be one shared allocation"
            );
            assert!(
                Arc::ptr_eq(rp, &from_threads[0].1),
                "real tables must be one shared allocation"
            );
        }
        // The hit counter observes the reuse: of the 8 requests above at
        // most 2 built tables, so at least 6 were shared-table hits.
        let before = shared_plan_hits();
        let mut cache = PlanCache::new();
        let again = cache.plan(n).unwrap();
        assert!(Arc::ptr_eq(&again, &from_threads[0].0));
        assert!(
            shared_plan_hits() > before,
            "a fresh cache's first request for a known size must count as a shared hit"
        );
        assert!(
            shared_plan_misses() >= 2,
            "both table kinds were built once"
        );
        // A second request from the *same* cache is served locally: the
        // shared counter must not move.
        let local_before = shared_plan_hits();
        let _ = cache.plan(n).unwrap();
        assert_eq!(
            shared_plan_hits(),
            local_before,
            "local fast path must not touch the registry"
        );
    }
}
