//! Minimal WAV (RIFF PCM16) reading and writing.
//!
//! Lets simulated recordings round-trip through the exact file format a
//! phone app would log, and lets real captured WAVs be fed into the
//! pipeline. Only the variant that matters here is supported: linear PCM,
//! 16-bit, 1 or 2 channels. Byte handling is std-only — a small cursor
//! over `&[u8]` for reading and a `Vec<u8>` for writing.

use crate::quantize::{dequantize_i16, quantize_i16};
use crate::DspError;

/// An in-memory PCM16 WAV file.
#[derive(Debug, Clone, PartialEq)]
pub struct WavFile {
    /// Sample rate, hertz.
    pub sample_rate: u32,
    /// Channels, each the same length (1 = mono, 2 = stereo, ...).
    pub channels: Vec<Vec<f64>>,
}

/// A bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn tag(&mut self) -> Option<[u8; 4]> {
        self.take(4).map(|s| [s[0], s[1], s[2], s[3]])
    }

    fn u16_le(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32_le(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }
}

impl WavFile {
    /// Creates a mono file.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for empty samples and
    /// [`DspError::InvalidParameter`] for a zero sample rate.
    pub fn mono(samples: Vec<f64>, sample_rate: u32) -> Result<Self, DspError> {
        Self::validate(&[&samples], sample_rate)?;
        Ok(WavFile {
            sample_rate,
            channels: vec![samples],
        })
    }

    /// Creates a stereo file.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] for unequal channels, plus
    /// the conditions of [`WavFile::mono`].
    pub fn stereo(left: Vec<f64>, right: Vec<f64>, sample_rate: u32) -> Result<Self, DspError> {
        if left.len() != right.len() {
            return Err(DspError::LengthMismatch {
                left: left.len(),
                right: right.len(),
                what: "stereo wav channels",
            });
        }
        Self::validate(&[&left, &right], sample_rate)?;
        Ok(WavFile {
            sample_rate,
            channels: vec![left, right],
        })
    }

    fn validate(channels: &[&Vec<f64>], sample_rate: u32) -> Result<(), DspError> {
        if sample_rate == 0 {
            return Err(DspError::invalid("sample_rate", "must be positive"));
        }
        if channels.iter().any(|c| c.is_empty()) {
            return Err(DspError::EmptyInput {
                what: "wav samples",
            });
        }
        Ok(())
    }

    /// Frames per channel.
    #[must_use]
    pub fn len(&self) -> usize {
        self.channels.first().map_or(0, Vec::len)
    }

    /// Whether the file holds no frames.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes to RIFF PCM16 bytes.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let num_channels = self.channels.len() as u16;
        let frames = self.len();
        let quantized: Vec<Vec<i16>> = self.channels.iter().map(|c| quantize_i16(c)).collect();
        let data_len = (frames * self.channels.len() * 2) as u32;
        let mut buf = Vec::with_capacity(44 + data_len as usize);
        buf.extend_from_slice(b"RIFF");
        buf.extend_from_slice(&(36 + data_len).to_le_bytes());
        buf.extend_from_slice(b"WAVE");
        buf.extend_from_slice(b"fmt ");
        buf.extend_from_slice(&16u32.to_le_bytes()); // PCM fmt chunk size
        buf.extend_from_slice(&1u16.to_le_bytes()); // PCM
        buf.extend_from_slice(&num_channels.to_le_bytes());
        buf.extend_from_slice(&self.sample_rate.to_le_bytes());
        // Byte rate, block align, bits per sample.
        buf.extend_from_slice(&(self.sample_rate * u32::from(num_channels) * 2).to_le_bytes());
        buf.extend_from_slice(&(num_channels * 2).to_le_bytes());
        buf.extend_from_slice(&16u16.to_le_bytes());
        buf.extend_from_slice(b"data");
        buf.extend_from_slice(&data_len.to_le_bytes());
        for frame in 0..frames {
            for channel in &quantized {
                buf.extend_from_slice(&channel[frame].to_le_bytes());
            }
        }
        buf
    }

    /// Parses RIFF PCM16 bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] for malformed headers,
    /// non-PCM16 content, or unsupported channel counts.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DspError> {
        let bad = |reason: &str| DspError::invalid("wav", reason.to_string());
        let mut cur = Cursor::new(bytes);
        if cur.remaining() < 12 {
            return Err(bad("file shorter than a RIFF header"));
        }
        if cur.tag().as_ref() != Some(b"RIFF") {
            return Err(bad("missing RIFF magic"));
        }
        let _riff_len = cur.u32_le();
        if cur.tag().as_ref() != Some(b"WAVE") {
            return Err(bad("missing WAVE magic"));
        }
        let mut sample_rate = 0u32;
        let mut num_channels = 0u16;
        let mut data: Option<&[u8]> = None;
        while cur.remaining() >= 8 {
            let tag = cur.tag().ok_or_else(|| bad("truncated chunk header"))?;
            let chunk_len = cur.u32_le().ok_or_else(|| bad("truncated chunk header"))? as usize;
            let chunk_bytes = cur.take(chunk_len).ok_or_else(|| bad("truncated chunk"))?;
            match &tag {
                b"fmt " => {
                    let mut fmt = Cursor::new(chunk_bytes);
                    if fmt.remaining() < 16 {
                        return Err(bad("fmt chunk too short"));
                    }
                    let format = fmt.u16_le().unwrap_or(0);
                    num_channels = fmt.u16_le().unwrap_or(0);
                    sample_rate = fmt.u32_le().unwrap_or(0);
                    let _byte_rate = fmt.u32_le();
                    let _block_align = fmt.u16_le();
                    let bits = fmt.u16_le().unwrap_or(0);
                    if format != 1 || bits != 16 {
                        return Err(bad("only 16-bit linear PCM is supported"));
                    }
                }
                b"data" => data = Some(chunk_bytes),
                _ => {} // skip ancillary chunks (LIST, fact, ...)
            }
            // Chunks are word-aligned.
            if chunk_len % 2 == 1 && cur.remaining() > 0 {
                let _ = cur.take(1);
            }
        }
        let data = data.ok_or_else(|| bad("missing data chunk"))?;
        if sample_rate == 0 || num_channels == 0 {
            return Err(bad("missing fmt chunk"));
        }
        if num_channels > 8 {
            return Err(bad("more than 8 channels"));
        }
        let frame_bytes = usize::from(num_channels) * 2;
        let frames = data.len() / frame_bytes;
        if frames == 0 {
            return Err(bad("empty data chunk"));
        }
        let mut channels: Vec<Vec<i16>> = (0..num_channels)
            .map(|_| Vec::with_capacity(frames))
            .collect();
        let mut samples = Cursor::new(data);
        for _ in 0..frames {
            for channel in &mut channels {
                let v = samples
                    .u16_le()
                    .ok_or_else(|| bad("truncated data chunk"))?;
                channel.push(v as i16);
            }
        }
        Ok(WavFile {
            sample_rate,
            channels: channels.iter().map(|c| dequantize_i16(c)).collect(),
        })
    }

    /// Writes the file to disk.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the filesystem wrapped as
    /// [`DspError::InvalidParameter`] (the crate has no I/O error type;
    /// the message carries the OS detail).
    pub fn save(&self, path: &std::path::Path) -> Result<(), DspError> {
        std::fs::write(path, self.to_bytes())
            .map_err(|e| DspError::invalid("path", format!("cannot write wav: {e}")))
    }

    /// Reads a file from disk.
    ///
    /// # Errors
    ///
    /// Same conditions as [`WavFile::from_bytes`] plus filesystem errors.
    pub fn load(path: &std::path::Path) -> Result<Self, DspError> {
        let bytes = std::fs::read(path)
            .map_err(|e| DspError::invalid("path", format!("cannot read wav: {e}")))?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize) -> Vec<f64> {
        (0..n).map(|i| 0.5 * (i as f64 * 0.1).sin()).collect()
    }

    #[test]
    fn mono_round_trip() {
        let wav = WavFile::mono(tone(500), 44_100).unwrap();
        let back = WavFile::from_bytes(&wav.to_bytes()).unwrap();
        assert_eq!(back.sample_rate, 44_100);
        assert_eq!(back.channels.len(), 1);
        assert_eq!(back.len(), 500);
        for (a, b) in wav.channels[0].iter().zip(&back.channels[0]) {
            assert!((a - b).abs() < 1.0 / 32_767.0);
        }
    }

    #[test]
    fn stereo_round_trip_preserves_channel_order() {
        let left = tone(300);
        let right: Vec<f64> = tone(300).iter().map(|x| -x).collect();
        let wav = WavFile::stereo(left.clone(), right.clone(), 48_000).unwrap();
        let back = WavFile::from_bytes(&wav.to_bytes()).unwrap();
        assert_eq!(back.channels.len(), 2);
        for (a, b) in left.iter().zip(&back.channels[0]) {
            assert!((a - b).abs() < 1.0 / 32_767.0);
        }
        for (a, b) in right.iter().zip(&back.channels[1]) {
            assert!((a - b).abs() < 1.0 / 32_767.0);
        }
    }

    #[test]
    fn header_layout_is_canonical() {
        let wav = WavFile::mono(vec![0.0; 10], 44_100).unwrap();
        let bytes = wav.to_bytes();
        assert_eq!(&bytes[0..4], b"RIFF");
        assert_eq!(&bytes[8..12], b"WAVE");
        assert_eq!(&bytes[12..16], b"fmt ");
        assert_eq!(&bytes[36..40], b"data");
        assert_eq!(bytes.len(), 44 + 20);
    }

    #[test]
    fn rejects_malformed_files() {
        assert!(WavFile::from_bytes(b"").is_err());
        assert!(WavFile::from_bytes(b"RIFFxxxxWAVE").is_err());
        assert!(WavFile::from_bytes(b"JUNKxxxxJUNKJUNK").is_err());
        // Valid header but 8-bit format field.
        let wav = WavFile::mono(vec![0.1; 4], 8_000).unwrap();
        let mut bytes = wav.to_bytes();
        bytes[34] = 8; // bits per sample
        assert!(WavFile::from_bytes(&bytes).is_err());
        // Chunk length pointing past the end of the file.
        let mut truncated = wav.to_bytes();
        let n = truncated.len();
        truncated.truncate(n - 4);
        assert!(WavFile::from_bytes(&truncated).is_err());
    }

    #[test]
    fn construction_validation() {
        assert!(WavFile::mono(vec![], 44_100).is_err());
        assert!(WavFile::mono(vec![0.0], 0).is_err());
        assert!(WavFile::stereo(vec![0.0; 3], vec![0.0; 4], 44_100).is_err());
        let wav = WavFile::mono(vec![0.0; 3], 44_100).unwrap();
        assert!(!wav.is_empty());
    }

    #[test]
    fn disk_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("hyperear_wav_test.wav");
        let wav = WavFile::stereo(tone(200), tone(200), 44_100).unwrap();
        wav.save(&path).unwrap();
        let back = WavFile::load(&path).unwrap();
        assert_eq!(back.len(), 200);
        assert_eq!(back.sample_rate, 44_100);
        let _ = std::fs::remove_file(&path);
        assert!(WavFile::load(&dir.join("hyperear_missing.wav")).is_err());
    }

    #[test]
    fn skips_ancillary_chunks() {
        // Insert a LIST chunk between fmt and data.
        let wav = WavFile::mono(vec![0.25; 8], 22_050).unwrap();
        let canonical = wav.to_bytes();
        let mut patched = Vec::new();
        patched.extend_from_slice(&canonical[..36]); // through fmt chunk
        patched.extend_from_slice(b"LIST");
        patched.extend_from_slice(&4u32.to_le_bytes());
        patched.extend_from_slice(b"INFO");
        patched.extend_from_slice(&canonical[36..]); // data chunk
                                                     // Fix the RIFF length.
        let riff_len = (patched.len() - 8) as u32;
        patched[4..8].copy_from_slice(&riff_len.to_le_bytes());
        let back = WavFile::from_bytes(&patched).unwrap();
        assert_eq!(back.len(), 8);
    }
}
