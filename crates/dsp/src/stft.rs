//! Short-time Fourier transform.
//!
//! Frame-based spectral analysis: used to visualize beacon chirps (the
//! `spectrogram` example), to verify noise-model spectra over time, and
//! generally useful to anyone adopting the DSP crate.

use crate::plan::{DspScratch, PlanCache};
use crate::window::Window;
use crate::DspError;

/// A magnitude spectrogram: frames × frequency bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrogram {
    /// Frame hop in samples.
    pub hop: usize,
    /// FFT size used per frame.
    pub fft_size: usize,
    /// Sample rate, hertz.
    pub sample_rate: f64,
    /// Magnitudes, `frames[t][k]` for time frame `t` and bin `k`
    /// (bins cover `0..=fft_size/2`).
    pub frames: Vec<Vec<f64>>,
}

impl Spectrogram {
    /// The centre time of frame `t`, seconds.
    #[must_use]
    pub fn time_of(&self, t: usize) -> f64 {
        (t * self.hop) as f64 / self.sample_rate
    }

    /// The frequency of bin `k`, hertz.
    #[must_use]
    pub fn freq_of(&self, k: usize) -> f64 {
        k as f64 * self.sample_rate / self.fft_size as f64
    }

    /// The bin index nearest `freq_hz`.
    #[must_use]
    pub fn bin_of(&self, freq_hz: f64) -> usize {
        ((freq_hz * self.fft_size as f64 / self.sample_rate).round() as usize)
            .min(self.fft_size / 2)
    }

    /// The frequency (Hz) of the strongest bin in frame `t`, or `None`
    /// for an out-of-range frame.
    #[must_use]
    pub fn peak_frequency(&self, t: usize) -> Option<f64> {
        let frame = self.frames.get(t)?;
        let (k, _) = frame.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))?;
        Some(self.freq_of(k))
    }
}

/// Computes a magnitude spectrogram.
///
/// `frame_len` samples per frame (Hann-windowed, zero-padded to the next
/// power of two), advancing by `hop` samples.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal,
/// [`DspError::InvalidParameter`] for zero frame/hop sizes, a frame
/// longer than the signal, or a non-positive sample rate.
pub fn stft(
    signal: &[f64],
    frame_len: usize,
    hop: usize,
    sample_rate: f64,
) -> Result<Spectrogram, DspError> {
    crate::plan::with_thread_ctx(|plans, scratch| {
        stft_with(signal, frame_len, hop, sample_rate, plans, scratch)
    })
}

/// Planned spectrogram: identical output to [`stft`], with the per-frame
/// FFT plan and working buffers taken from `plans`/`scratch` — one plan
/// lookup for the whole call and no per-frame transform setup.
///
/// # Errors
///
/// Same conditions as [`stft`].
pub fn stft_with(
    signal: &[f64],
    frame_len: usize,
    hop: usize,
    sample_rate: f64,
    plans: &mut PlanCache,
    scratch: &mut DspScratch,
) -> Result<Spectrogram, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput { what: "stft input" });
    }
    if frame_len == 0 || hop == 0 {
        return Err(DspError::invalid("frame_len/hop", "must be positive"));
    }
    if frame_len > signal.len() {
        return Err(DspError::invalid(
            "frame_len",
            format!("frame {frame_len} longer than signal {}", signal.len()),
        ));
    }
    if sample_rate <= 0.0 {
        return Err(DspError::invalid("sample_rate", "must be positive"));
    }
    let fft_size = crate::fft::try_next_pow2(frame_len)?;
    let plan = plans.real_plan(fft_size)?;
    let window = Window::Hann.coefficients(frame_len)?;
    let mut frames = Vec::new();
    let mut start = 0;
    while start + frame_len <= signal.len() {
        scratch.r1.clear();
        scratch
            .r1
            .extend_from_slice(&signal[start..start + frame_len]);
        Window::apply_coefficients(&window, &mut scratch.r1)?;
        // rfft_half_into zero-pads to fft_size and yields exactly the
        // fft_size/2 + 1 one-sided bins each frame stores.
        plan.rfft_half_into(&scratch.r1, &mut scratch.c1)?;
        frames.push(scratch.c1.iter().map(|c| c.abs()).collect());
        start += hop;
    }
    Ok(Spectrogram {
        hop,
        fft_size,
        sample_rate,
        frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tone_concentrates_in_one_bin_over_time() {
        let fs = 8_000.0;
        let f = 1_000.0;
        let signal: Vec<f64> = (0..8_000)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin())
            .collect();
        let spec = stft(&signal, 256, 128, fs).unwrap();
        assert!(spec.frames.len() > 50);
        for t in 0..spec.frames.len() {
            let peak = spec.peak_frequency(t).unwrap();
            assert!((peak - f).abs() < 40.0, "frame {t}: peak {peak}");
        }
    }

    #[test]
    fn chirp_peak_frequency_sweeps_up_then_down() {
        let chirp = crate::chirp::Chirp::hyperear_beacon(44_100.0).unwrap();
        let spec = stft(chirp.samples(), 256, 64, 44_100.0).unwrap();
        let n = spec.frames.len();
        // Skip the tapered edges (the Hann envelope kills the extremes).
        let early = spec.peak_frequency(n / 8).unwrap();
        let mid = spec.peak_frequency(n / 2).unwrap();
        let late = spec.peak_frequency(7 * n / 8).unwrap();
        assert!(mid > early + 1_000.0, "mid {mid} early {early}");
        assert!(mid > late + 1_000.0, "mid {mid} late {late}");
        assert!((5_000.0..6_600.0).contains(&mid), "mid {mid}");
    }

    #[test]
    fn coordinate_helpers() {
        let signal = vec![0.0; 2_048];
        let spec = stft(&signal, 256, 128, 8_000.0).unwrap();
        assert_eq!(spec.fft_size, 256);
        assert_eq!(spec.time_of(0), 0.0);
        assert!((spec.time_of(10) - 10.0 * 128.0 / 8_000.0).abs() < 1e-12);
        assert_eq!(spec.freq_of(0), 0.0);
        assert!((spec.freq_of(128) - 4_000.0).abs() < 1e-9);
        assert_eq!(spec.bin_of(0.0), 0);
        assert_eq!(spec.bin_of(4_000.0), 128);
        assert_eq!(spec.bin_of(1_000_000.0), 128); // clamped to Nyquist
        assert!(spec.peak_frequency(10_000).is_none());
    }

    #[test]
    fn frame_count_matches_hop_arithmetic() {
        let signal = vec![0.0; 1_000];
        let spec = stft(&signal, 100, 50, 1_000.0).unwrap();
        assert_eq!(spec.frames.len(), (1_000 - 100) / 50 + 1);
        // Each frame holds fft/2 + 1 bins.
        assert_eq!(spec.frames[0].len(), spec.fft_size / 2 + 1);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(stft(&[], 64, 32, 8_000.0).is_err());
        assert!(stft(&[0.0; 100], 0, 32, 8_000.0).is_err());
        assert!(stft(&[0.0; 100], 64, 0, 8_000.0).is_err());
        assert!(stft(&[0.0; 10], 64, 32, 8_000.0).is_err());
        assert!(stft(&[0.0; 100], 64, 32, 0.0).is_err());
    }
}
