//! Integer and fractional signal delays.
//!
//! The acoustic simulator renders propagation by delaying the speaker's
//! waveform by `distance / 343 m/s` at each microphone. Real propagation
//! delays land between sampling instants, so a windowed-sinc fractional
//! delay is essential: rounding to whole samples would inject exactly the
//! quantization error HyperEar is designed to defeat, hiding the effect
//! under test.

use crate::DspError;

/// Delays `signal` by an integer number of samples, zero-filling the front.
///
/// The output has the same length as the input; samples pushed past the end
/// are dropped.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal.
///
/// # Example
///
/// ```
/// let out = hyperear_dsp::delay::delay_integer(&[1.0, 2.0, 3.0, 4.0], 2).unwrap();
/// assert_eq!(out, vec![0.0, 0.0, 1.0, 2.0]);
/// ```
pub fn delay_integer(signal: &[f64], samples: usize) -> Result<Vec<f64>, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput {
            what: "delay input",
        });
    }
    let n = signal.len();
    let mut out = vec![0.0; n];
    if samples < n {
        out[samples..].copy_from_slice(&signal[..n - samples]);
    }
    Ok(out)
}

/// Delays `signal` by a (possibly fractional, possibly > 1) number of
/// samples using a Hann-windowed sinc kernel.
///
/// `kernel_half_width` controls reconstruction quality; 16 gives ≈-80 dB
/// interpolation error for band-limited content, plenty below the 16-bit
/// quantization floor.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal and
/// [`DspError::InvalidParameter`] for a negative delay or zero kernel width.
pub fn delay_fractional(
    signal: &[f64],
    delay_samples: f64,
    kernel_half_width: usize,
) -> Result<Vec<f64>, DspError> {
    delay_fractional_into_len(signal, delay_samples, kernel_half_width, signal.len())
}

/// Mixes `addend`, delayed by `delay_samples` and scaled by `gain`, into
/// `accumulator` in place.
///
/// This is the inner operation of multipath rendering: each image source
/// contributes one delayed, attenuated copy of the beacon.
///
/// # Errors
///
/// Same conditions as [`delay_fractional`]; additionally the accumulator
/// must be at least as long as the addend contribution is (it is simply
/// truncated otherwise, never an error).
pub fn mix_delayed(
    accumulator: &mut [f64],
    addend: &[f64],
    delay_samples: f64,
    gain: f64,
    kernel_half_width: usize,
) -> Result<(), DspError> {
    if accumulator.is_empty() {
        return Err(DspError::EmptyInput {
            what: "mix accumulator",
        });
    }
    let delayed =
        delay_fractional_into_len(addend, delay_samples, kernel_half_width, accumulator.len())?;
    for (a, d) in accumulator.iter_mut().zip(delayed.iter()) {
        *a += gain * d;
    }
    Ok(())
}

/// Like [`delay_fractional`] but renders into an output of length
/// `out_len`, so short sources can be delayed into long recordings.
///
/// # Errors
///
/// Same conditions as [`delay_fractional`].
pub fn delay_fractional_into_len(
    signal: &[f64],
    delay_samples: f64,
    kernel_half_width: usize,
    out_len: usize,
) -> Result<Vec<f64>, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput {
            what: "delay input",
        });
    }
    if delay_samples < 0.0 {
        return Err(DspError::invalid(
            "delay_samples",
            format!("delay must be non-negative, got {delay_samples}"),
        ));
    }
    if kernel_half_width == 0 {
        return Err(DspError::invalid("kernel_half_width", "must be positive"));
    }
    let int_part = delay_samples.floor();
    let frac = delay_samples - int_part;
    let int_delay = int_part as usize;
    let n = signal.len();
    let mut out = vec![0.0; out_len];

    if frac.abs() < 1e-12 {
        for (i, &v) in signal.iter().enumerate() {
            if let Some(o) = out.get_mut(i + int_delay) {
                *o = v;
            }
        }
        return Ok(out);
    }

    let hw = kernel_half_width as isize;
    let mut kernel = Vec::with_capacity((2 * hw + 1) as usize);
    for k in -hw..=hw {
        let x = k as f64 - frac;
        let w = 0.5 + 0.5 * (std::f64::consts::PI * x / (hw as f64 + 1.0)).cos();
        let w = if x.abs() > hw as f64 + 1.0 { 0.0 } else { w };
        kernel.push(sinc(x) * w);
    }
    for (i, o) in out.iter_mut().enumerate() {
        let base = i as isize - int_delay as isize;
        let mut acc = 0.0;
        for (j, &kv) in kernel.iter().enumerate() {
            let idx = base - (j as isize - hw);
            if idx >= 0 && (idx as usize) < n {
                acc += signal[idx as usize] * kv;
            }
        }
        *o = acc;
    }
    Ok(out)
}

/// Mixes `addend`, delayed by `delay_samples` and scaled by `gain`, into
/// `accumulator`, touching only the local output window.
///
/// Functionally identical to [`mix_delayed`] but costs
/// `O(addend.len() · kernel)` instead of `O(accumulator.len() · kernel)`,
/// which matters when inserting many short beacons into a long recording
/// (the simulator's hot path). Contributions past the accumulator end are
/// silently dropped (the event ran off the recording).
///
/// # Errors
///
/// Same conditions as [`delay_fractional`].
pub fn mix_delayed_local(
    accumulator: &mut [f64],
    addend: &[f64],
    delay_samples: f64,
    gain: f64,
    kernel_half_width: usize,
) -> Result<(), DspError> {
    if accumulator.is_empty() {
        return Err(DspError::EmptyInput {
            what: "mix accumulator",
        });
    }
    if addend.is_empty() {
        return Err(DspError::EmptyInput { what: "mix addend" });
    }
    if delay_samples < 0.0 {
        return Err(DspError::invalid(
            "delay_samples",
            format!("delay must be non-negative, got {delay_samples}"),
        ));
    }
    if kernel_half_width == 0 {
        return Err(DspError::invalid("kernel_half_width", "must be positive"));
    }
    let int_part = delay_samples.floor();
    let frac = delay_samples - int_part;
    let int_delay = int_part as isize;
    let n = addend.len() as isize;
    let out_len = accumulator.len() as isize;

    if frac.abs() < 1e-12 {
        for k in 0..n {
            let j = k + int_delay;
            if j >= 0 && j < out_len {
                accumulator[j as usize] += gain * addend[k as usize];
            }
        }
        return Ok(());
    }

    let hw = kernel_half_width as isize;
    // kernel[m + hw] = windowed-sinc evaluated at (m - frac): the weight of
    // input sample k on output sample (k + int_delay + m).
    let mut kernel = Vec::with_capacity((2 * hw + 1) as usize);
    for m in -hw..=hw {
        let x = m as f64 - frac;
        let w = 0.5 + 0.5 * (std::f64::consts::PI * x / (hw as f64 + 1.0)).cos();
        kernel.push(sinc(x) * w);
    }
    // Direct convolution addend ⊛ kernel placed at int_delay - hw.
    for j in (int_delay - hw).max(0)..(int_delay + n + hw).min(out_len) {
        let mut acc = 0.0;
        // j = k + int_delay + m  ⇒  k = j - int_delay - m.
        for (mi, &kv) in kernel.iter().enumerate() {
            let m = mi as isize - hw;
            let k = j - int_delay - m;
            if k >= 0 && k < n {
                acc += addend[k as usize] * kv;
            }
        }
        accumulator[j as usize] += gain * acc;
    }
    Ok(())
}

fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-12 {
        1.0
    } else {
        let px = std::f64::consts::PI * x;
        px.sin() / px
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlate::xcorr;
    use crate::interpolate::parabolic_peak;

    #[test]
    fn integer_delay_shifts_exactly() {
        let out = delay_integer(&[1.0, 2.0, 3.0, 4.0, 5.0], 3).unwrap();
        assert_eq!(out, vec![0.0, 0.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn integer_delay_past_end_yields_zeros() {
        let out = delay_integer(&[1.0, 2.0], 5).unwrap();
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn zero_delay_is_identity() {
        let signal = vec![1.0, -2.0, 3.0];
        assert_eq!(delay_fractional(&signal, 0.0, 8).unwrap(), signal);
    }

    #[test]
    fn fractional_delay_preserves_tone_phase() {
        // Delay a tone by 2.5 samples and compare against the analytically
        // shifted tone in the interior.
        let fs = 44_100.0;
        let f = 3_000.0;
        let n = 2048;
        let tone: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin())
            .collect();
        let delayed = delay_fractional(&tone, 2.5, 16).unwrap();
        for (i, &d) in delayed.iter().enumerate().take(n - 64).skip(64) {
            let truth = (2.0 * std::f64::consts::PI * f * (i as f64 - 2.5) / fs).sin();
            assert!((d - truth).abs() < 1e-4, "at {i}: {d} vs {truth}");
        }
    }

    #[test]
    fn fractional_delay_is_measurable_by_correlation() {
        // The round-trip that matters for HyperEar: render a fractional
        // delay, then recover it with matched filter + parabolic peak.
        let chirp = crate::chirp::Chirp::hyperear_beacon(44_100.0).unwrap();
        let m = chirp.samples().len();
        let true_delay = 100.37;
        let rendered = delay_fractional_into_len(chirp.samples(), true_delay, 16, m + 256).unwrap();
        let corr = xcorr(&rendered, chirp.samples()).unwrap();
        let peak = corr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let (pos, _) = parabolic_peak(&corr, peak).unwrap();
        assert!(
            (pos - true_delay).abs() < 0.05,
            "recovered {pos}, expected {true_delay}"
        );
    }

    #[test]
    fn mix_delayed_accumulates() {
        let mut acc = vec![0.0; 10];
        mix_delayed(&mut acc, &[1.0, 1.0], 2.0, 0.5, 8).unwrap();
        mix_delayed(&mut acc, &[1.0, 1.0], 4.0, 0.25, 8).unwrap();
        assert!((acc[2] - 0.5).abs() < 1e-12);
        assert!((acc[3] - 0.5).abs() < 1e-12);
        assert!((acc[4] - 0.25).abs() < 1e-12);
        assert!((acc[5] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn into_len_extends_output() {
        let out = delay_fractional_into_len(&[1.0, 2.0], 3.0, 8, 8).unwrap();
        assert_eq!(out, vec![0.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(delay_integer(&[], 1).is_err());
        assert!(delay_fractional(&[1.0], -0.5, 8).is_err());
        assert!(delay_fractional(&[1.0], 0.5, 0).is_err());
        assert!(delay_fractional(&[], 0.5, 8).is_err());
        assert!(delay_fractional_into_len(&[], 0.5, 8, 4).is_err());
        let mut empty: Vec<f64> = vec![];
        assert!(mix_delayed(&mut empty, &[1.0], 0.0, 1.0, 8).is_err());
    }

    #[test]
    fn local_mix_matches_full_mix() {
        let chirp = crate::chirp::Chirp::hyperear_beacon(44_100.0).unwrap();
        let n = 6000;
        for delay in [100.0, 250.37, 999.99, 4000.5] {
            let mut full = vec![0.0; n];
            mix_delayed(&mut full, chirp.samples(), delay, 0.7, 16).unwrap();
            let mut local = vec![0.0; n];
            mix_delayed_local(&mut local, chirp.samples(), delay, 0.7, 16).unwrap();
            for i in 0..n {
                assert!(
                    (full[i] - local[i]).abs() < 1e-9,
                    "delay {delay}, sample {i}: {} vs {}",
                    full[i],
                    local[i]
                );
            }
        }
    }

    #[test]
    fn local_mix_truncates_past_end() {
        let mut acc = vec![0.0; 8];
        mix_delayed_local(&mut acc, &[1.0, 2.0, 3.0], 6.0, 1.0, 8).unwrap();
        assert_eq!(acc[6], 1.0);
        assert_eq!(acc[7], 2.0);
    }

    #[test]
    fn local_mix_integer_fast_path() {
        let mut acc = vec![0.0; 10];
        mix_delayed_local(&mut acc, &[1.0, -1.0], 3.0, 2.0, 8).unwrap();
        assert_eq!(acc[3], 2.0);
        assert_eq!(acc[4], -2.0);
    }

    #[test]
    fn local_mix_rejects_bad_inputs() {
        let mut acc = vec![0.0; 4];
        assert!(mix_delayed_local(&mut acc, &[], 0.0, 1.0, 8).is_err());
        assert!(mix_delayed_local(&mut acc, &[1.0], -1.0, 1.0, 8).is_err());
        assert!(mix_delayed_local(&mut acc, &[1.0], 1.0, 1.0, 0).is_err());
        let mut empty: Vec<f64> = vec![];
        assert!(mix_delayed_local(&mut empty, &[1.0], 0.0, 1.0, 8).is_err());
    }

    #[test]
    fn energy_roughly_preserved_by_fractional_delay() {
        let chirp = crate::chirp::Chirp::hyperear_beacon(44_100.0).unwrap();
        let m = chirp.samples().len();
        let e_in: f64 = chirp.samples().iter().map(|x| x * x).sum();
        let out = delay_fractional_into_len(chirp.samples(), 10.63, 16, m + 64).unwrap();
        let e_out: f64 = out.iter().map(|x| x * x).sum();
        assert!((e_out - e_in).abs() / e_in < 0.01, "{e_out} vs {e_in}");
    }
}
