//! Arbitrary-ratio resampling.
//!
//! Two jobs in the reproduction:
//!
//! 1. **Modelling SFO.** The speaker's DAC clock and the phone's ADC clock
//!    disagree by tens of ppm. The simulator renders the beacon stream at
//!    the speaker's true rate, then resamples by `1 + ε` to express what a
//!    slightly-off microphone clock records.
//! 2. **Correcting SFO.** Acoustic Signal Preprocessing estimates ε and
//!    resamples (or equivalently rescales timestamps) to undo it.
//!
//! A windowed-sinc polyphase-style resampler keeps interpolation error far
//! below the 16-bit noise floor for ratios within ±1000 ppm of unity.

use crate::DspError;

/// Resamples `signal` by `ratio` using windowed-sinc interpolation.
///
/// `ratio` is the output-rate / input-rate ratio: `ratio > 1` produces more
/// output samples (the signal plays slower at the original rate). Output
/// sample `i` is the band-limited evaluation of the input at position
/// `i / ratio`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal and
/// [`DspError::InvalidParameter`] for a non-positive or non-finite ratio or
/// zero kernel width.
///
/// # Example
///
/// ```
/// // A 30 ppm-fast clock recording one second of audio.
/// let signal = vec![0.0f64; 44_100];
/// let skewed = hyperear_dsp::resample::resample(&signal, 1.0 + 30e-6, 8).unwrap();
/// assert_eq!(skewed.len(), 44_101);
/// ```
pub fn resample(
    signal: &[f64],
    ratio: f64,
    kernel_half_width: usize,
) -> Result<Vec<f64>, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput {
            what: "resample input",
        });
    }
    if !ratio.is_finite() || ratio <= 0.0 {
        return Err(DspError::invalid(
            "ratio",
            format!("must be positive and finite, got {ratio}"),
        ));
    }
    if kernel_half_width == 0 {
        return Err(DspError::invalid("kernel_half_width", "must be positive"));
    }
    let n = signal.len();
    let out_len = ((n as f64) * ratio).round() as usize;
    let hw = kernel_half_width as isize;
    let mut out = Vec::with_capacity(out_len);
    for i in 0..out_len {
        let t = i as f64 / ratio;
        let center = t.round() as isize;
        let mut acc = 0.0;
        for k in -hw..=hw {
            let idx = center + k;
            if idx < 0 || idx as usize >= n {
                continue;
            }
            let x = t - idx as f64;
            let w = 0.5 + 0.5 * (std::f64::consts::PI * x / (hw as f64 + 1.0)).cos();
            acc += signal[idx as usize] * sinc(x) * w;
        }
        out.push(acc);
    }
    Ok(out)
}

/// Applies a clock skew of `ppm` parts-per-million to a signal.
///
/// Positive `ppm` means the *recording* clock runs fast relative to
/// nominal, so a fixed-duration event occupies more recorded samples.
///
/// # Errors
///
/// Same conditions as [`resample`]; `|ppm|` above 10 000 is rejected as a
/// parameter error (real oscillators are within ±100 ppm).
pub fn apply_clock_skew_ppm(
    signal: &[f64],
    ppm: f64,
    kernel_half_width: usize,
) -> Result<Vec<f64>, DspError> {
    if !ppm.is_finite() || ppm.abs() > 10_000.0 {
        return Err(DspError::invalid(
            "ppm",
            format!("clock skew must be within ±10000 ppm, got {ppm}"),
        ));
    }
    resample(signal, 1.0 + ppm * 1e-6, kernel_half_width)
}

fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-12 {
        1.0
    } else {
        let px = std::f64::consts::PI * x;
        px.sin() / px
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_ratio_is_near_identity() {
        let signal: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();
        let out = resample(&signal, 1.0, 16).unwrap();
        assert_eq!(out.len(), signal.len());
        for i in 20..236 {
            assert!((out[i] - signal[i]).abs() < 1e-9, "at {i}");
        }
    }

    #[test]
    fn output_length_scales_with_ratio() {
        let signal = vec![0.0; 1000];
        assert_eq!(resample(&signal, 2.0, 8).unwrap().len(), 2000);
        assert_eq!(resample(&signal, 0.5, 8).unwrap().len(), 500);
        assert_eq!(resample(&signal, 1.0 + 50e-6, 8).unwrap().len(), 1000);
    }

    #[test]
    fn upsampled_tone_keeps_frequency() {
        // A tone resampled by 2 should complete the same cycles over twice
        // the samples.
        let fs = 8_000.0;
        let f = 500.0;
        let signal: Vec<f64> = (0..800)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin())
            .collect();
        let out = resample(&signal, 2.0, 16).unwrap();
        let end = out.len() - 64;
        for (i, &v) in out.iter().enumerate().take(end).skip(64) {
            let t = i as f64 / 2.0; // position in input samples
            let truth = (2.0 * std::f64::consts::PI * f * t / fs).sin();
            assert!((v - truth).abs() < 1e-3, "at {i}: {v} vs {truth}");
        }
    }

    #[test]
    fn small_skew_shifts_late_events() {
        // With a +100 ppm fast clock, an event at input sample 40000 is
        // recorded ~4 samples later.
        let mut signal = vec![0.0; 44_100];
        signal[40_000] = 1.0;
        let out = apply_clock_skew_ppm(&signal, 100.0, 16).unwrap();
        let peak = out
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, 40_004);
    }

    #[test]
    fn skew_round_trip_recovers_timing() {
        let mut signal = vec![0.0; 10_000];
        signal[9_000] = 1.0;
        let skewed = apply_clock_skew_ppm(&signal, 200.0, 16).unwrap();
        let back = apply_clock_skew_ppm(&skewed, -200.0, 16).unwrap();
        let peak = back
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(peak.abs_diff(9_000) <= 1, "peak at {peak}");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(resample(&[], 1.0, 8).is_err());
        assert!(resample(&[1.0], 0.0, 8).is_err());
        assert!(resample(&[1.0], -1.0, 8).is_err());
        assert!(resample(&[1.0], f64::NAN, 8).is_err());
        assert!(resample(&[1.0], 1.0, 0).is_err());
        assert!(apply_clock_skew_ppm(&[1.0], 20_000.0, 8).is_err());
        assert!(apply_clock_skew_ppm(&[1.0], f64::INFINITY, 8).is_err());
    }
}
