//! Spectral estimation helpers.
//!
//! Used to verify that synthesized beacons stay inside their nominal band,
//! to calibrate simulated noise spectra against the paper's SNR points, and
//! by tests that check filter behaviour.

use crate::fft::try_next_pow2;
use crate::plan::{DspScratch, HalfSpectrum, PlanCache};
use crate::window::Window;
use crate::DspError;

/// One-sided power spectrum of a real signal.
///
/// Returns `(frequencies_hz, power)` with `len/2 + 1` bins. Power is scaled
/// so that summing all bins approximates the mean-square signal value
/// (a periodogram with window compensation).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal and
/// [`DspError::InvalidParameter`] for a non-positive sample rate.
pub fn power_spectrum(
    signal: &[f64],
    sample_rate: f64,
    window: Window,
) -> Result<(Vec<f64>, Vec<f64>), DspError> {
    crate::plan::with_thread_ctx(|plans, scratch| {
        power_spectrum_with(signal, sample_rate, window, plans, scratch)
    })
}

/// Planned periodogram: identical output to [`power_spectrum`], with the
/// FFT plan and working buffers taken from `plans`/`scratch`.
///
/// # Errors
///
/// Same conditions as [`power_spectrum`].
pub fn power_spectrum_with(
    signal: &[f64],
    sample_rate: f64,
    window: Window,
    plans: &mut PlanCache,
    scratch: &mut DspScratch,
) -> Result<(Vec<f64>, Vec<f64>), DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput {
            what: "power_spectrum input",
        });
    }
    if sample_rate <= 0.0 {
        return Err(DspError::invalid("sample_rate", "must be positive"));
    }
    scratch.r1.clear();
    scratch.r1.extend_from_slice(signal);
    window.apply(&mut scratch.r1)?;
    let n = try_next_pow2(signal.len())?;
    plans
        .real_plan(n)?
        .rfft_half_into(&scratch.r1, &mut scratch.c1)?;
    let spec = HalfSpectrum::new(&scratch.c1)?;
    let half = spec.num_bins();
    let gain = window.coherent_gain(signal.len());
    let norm = 1.0 / (n as f64 * signal.len() as f64 * gain * gain);
    let mut freqs = Vec::with_capacity(half);
    let mut power = Vec::with_capacity(half);
    for (k, c) in spec.bins().iter().enumerate() {
        freqs.push(k as f64 * sample_rate / n as f64);
        // One-sided: double interior bins.
        let scale = if k == 0 || k == half - 1 { 1.0 } else { 2.0 };
        power.push(scale * c.norm_sqr() * norm);
    }
    Ok((freqs, power))
}

/// Fraction of total signal energy lying inside `[low_hz, high_hz]`.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if the band is empty or outside
/// `[0, fs/2]`, plus the conditions of [`power_spectrum`].
pub fn band_energy_fraction(
    signal: &[f64],
    sample_rate: f64,
    low_hz: f64,
    high_hz: f64,
) -> Result<f64, DspError> {
    if low_hz >= high_hz {
        return Err(DspError::invalid(
            "low_hz/high_hz",
            format!("band must satisfy low < high, got {low_hz} >= {high_hz}"),
        ));
    }
    if low_hz < 0.0 || high_hz > sample_rate / 2.0 {
        return Err(DspError::invalid(
            "band",
            format!(
                "band [{low_hz}, {high_hz}] outside [0, {}]",
                sample_rate / 2.0
            ),
        ));
    }
    let (freqs, power) = power_spectrum(signal, sample_rate, Window::Hann)?;
    let total: f64 = power.iter().sum();
    if total == 0.0 {
        return Ok(0.0);
    }
    let in_band: f64 = freqs
        .iter()
        .zip(&power)
        .filter(|(f, _)| **f >= low_hz && **f <= high_hz)
        .map(|(_, p)| p)
        .sum();
    Ok(in_band / total)
}

/// The frequency (Hz) of the strongest spectral bin.
///
/// # Errors
///
/// Same conditions as [`power_spectrum`].
pub fn dominant_frequency(signal: &[f64], sample_rate: f64) -> Result<f64, DspError> {
    let (freqs, power) = power_spectrum(signal, sample_rate, Window::Hann)?;
    let (idx, _) = power
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("power spectrum is non-empty");
    Ok(freqs[idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn dominant_frequency_of_pure_tone() {
        let fs = 44_100.0;
        let signal = tone(4_000.0, fs, 8192);
        let f = dominant_frequency(&signal, fs).unwrap();
        assert!((f - 4_000.0).abs() < 10.0, "got {f}");
    }

    #[test]
    fn band_energy_concentrated_for_tone() {
        let fs = 44_100.0;
        let signal = tone(3_000.0, fs, 8192);
        let inside = band_energy_fraction(&signal, fs, 2_500.0, 3_500.0).unwrap();
        let outside = band_energy_fraction(&signal, fs, 10_000.0, 20_000.0).unwrap();
        assert!(inside > 0.99, "inside {inside}");
        assert!(outside < 0.001, "outside {outside}");
    }

    #[test]
    fn power_sums_to_mean_square() {
        let fs = 1_000.0;
        let signal = tone(100.0, fs, 1024);
        let ms: f64 = signal.iter().map(|x| x * x).sum::<f64>() / signal.len() as f64;
        let (_, power) = power_spectrum(&signal, fs, Window::Rectangular).unwrap();
        let total: f64 = power.iter().sum();
        assert!((total - ms).abs() / ms < 0.02, "{total} vs {ms}");
    }

    #[test]
    fn two_tones_both_visible() {
        let fs = 44_100.0;
        let n = 8192;
        let mut signal = tone(2_000.0, fs, n);
        let t2 = tone(6_000.0, fs, n);
        for (a, b) in signal.iter_mut().zip(&t2) {
            *a += 0.5 * b;
        }
        let low = band_energy_fraction(&signal, fs, 1_800.0, 2_200.0).unwrap();
        let high = band_energy_fraction(&signal, fs, 5_800.0, 6_200.0).unwrap();
        assert!(low > 0.7, "low {low}");
        assert!(high > 0.15, "high {high}");
    }

    #[test]
    fn zero_signal_band_fraction_is_zero() {
        let z = vec![0.0; 1024];
        assert_eq!(
            band_energy_fraction(&z, 44_100.0, 100.0, 200.0).unwrap(),
            0.0
        );
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(power_spectrum(&[], 44_100.0, Window::Hann).is_err());
        assert!(power_spectrum(&[1.0], 0.0, Window::Hann).is_err());
        assert!(band_energy_fraction(&[1.0; 64], 44_100.0, 300.0, 200.0).is_err());
        assert!(band_energy_fraction(&[1.0; 64], 44_100.0, -10.0, 200.0).is_err());
        assert!(band_energy_fraction(&[1.0; 64], 44_100.0, 100.0, 44_100.0).is_err());
    }

    #[test]
    fn frequencies_are_monotonic_to_nyquist() {
        let (freqs, _) = power_spectrum(&tone(100.0, 1_000.0, 256), 1_000.0, Window::Hann).unwrap();
        assert!(freqs.windows(2).all(|w| w[1] > w[0]));
        assert!((freqs.last().unwrap() - 500.0).abs() < 1e-9);
        assert_eq!(freqs[0], 0.0);
    }
}
