use std::fmt;

/// Errors produced by the DSP primitives in this crate.
///
/// Every fallible public function in `hyperear-dsp` returns
/// `Result<_, DspError>`. The variants carry enough context to diagnose the
/// offending call without a debugger.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DspError {
    /// An input slice was empty where at least one sample is required.
    EmptyInput {
        /// The function or parameter the empty input was passed to.
        what: &'static str,
    },
    /// A numeric parameter was outside its valid domain.
    InvalidParameter {
        /// The parameter name.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// Two inputs that must agree in length did not.
    LengthMismatch {
        /// Description of the first operand.
        left: usize,
        /// Description of the second operand.
        right: usize,
        /// The operation that required matching lengths.
        what: &'static str,
    },
    /// A request referenced an index outside the signal.
    OutOfRange {
        /// The requested index or position.
        index: usize,
        /// The length of the signal being indexed.
        len: usize,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::EmptyInput { what } => write!(f, "empty input for {what}"),
            DspError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DspError::LengthMismatch { left, right, what } => {
                write!(f, "length mismatch in {what}: {left} vs {right}")
            }
            DspError::OutOfRange { index, len } => {
                write!(f, "index {index} out of range for signal of length {len}")
            }
        }
    }
}

impl std::error::Error for DspError {}

impl DspError {
    /// Convenience constructor for [`DspError::InvalidParameter`].
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        DspError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DspError::EmptyInput { what: "fft input" };
        assert!(e.to_string().contains("fft input"));
        let e = DspError::invalid("cutoff", "must be positive");
        assert!(e.to_string().contains("cutoff"));
        assert!(e.to_string().contains("must be positive"));
        let e = DspError::LengthMismatch {
            left: 3,
            right: 5,
            what: "dot product",
        };
        assert!(e.to_string().contains("3 vs 5"));
        let e = DspError::OutOfRange { index: 9, len: 4 };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}
