//! Cross-correlation and matched filtering.
//!
//! HyperEar detects chirp beacons the BeepBeep way: "the recorded audio
//! signal at each microphone is correlated with a reference chirp signal.
//! The maximum peak of correlation is concluded as the location of a
//! signal" (Section IV-A). Correlation is computed in the frequency domain
//! so a full one-second stereo recording is cheap to scan.

use crate::fft::try_next_pow2;
use crate::plan::{shared_real_plan, DspScratch, PlanCache, RealFftPlan};
use crate::{Complex, DspError};
use std::sync::Arc;

fn validate_xcorr_inputs(signal: &[f64], template: &[f64]) -> Result<(), DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput {
            what: "xcorr signal",
        });
    }
    if template.is_empty() {
        return Err(DspError::EmptyInput {
            what: "xcorr template",
        });
    }
    if template.len() > signal.len() {
        return Err(DspError::invalid(
            "template",
            format!(
                "template ({}) longer than signal ({})",
                template.len(),
                signal.len()
            ),
        ));
    }
    Ok(())
}

/// Full cross-correlation of `signal` with `template` at all lags where the
/// template overlaps the signal start, computed via FFT.
///
/// `output[k] = Σ_n signal[n + k] · template[n]`, for `k` in
/// `0..signal.len()`. The value at `k` is large when the template occurs at
/// position `k` in the signal, making the output directly indexable by
/// arrival sample.
///
/// This is the one-shot convenience; repeated correlation should go
/// through [`xcorr_into`] (reusable plans/scratch) or a [`MatchedFilter`]
/// (which additionally caches the template spectrum).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if either input is empty, and
/// [`DspError::InvalidParameter`] if the template is longer than the signal.
pub fn xcorr(signal: &[f64], template: &[f64]) -> Result<Vec<f64>, DspError> {
    let mut out = Vec::new();
    crate::plan::with_thread_ctx(|plans, scratch| {
        xcorr_into(signal, template, plans, scratch, &mut out)
    })?;
    Ok(out)
}

/// Planned cross-correlation: identical output to [`xcorr`], but all FFT
/// setup comes from `plans` and all working storage from `scratch`/`out`,
/// so steady-state calls at warm sizes do not allocate.
///
/// `out` is cleared and refilled (its capacity is reused).
///
/// # Errors
///
/// Same conditions as [`xcorr`].
pub fn xcorr_into(
    signal: &[f64],
    template: &[f64],
    plans: &mut PlanCache,
    scratch: &mut DspScratch,
    out: &mut Vec<f64>,
) -> Result<(), DspError> {
    validate_xcorr_inputs(signal, template)?;
    let n = try_next_pow2(signal.len().saturating_add(template.len()))?;
    let plan = plans.real_plan(n)?;
    plan.rfft_half_into(signal, &mut scratch.c1)?;
    plan.rfft_half_into(template, &mut scratch.c2)?;
    for (s, &t) in scratch.c1.iter_mut().zip(&scratch.c2) {
        *s *= t.conj();
    }
    let DspScratch { c1, r1, .. } = scratch;
    plan.irfft_half_into(c1, r1)?;
    out.clear();
    out.extend_from_slice(&r1[..signal.len()]);
    Ok(())
}

/// Normalized cross-correlation: [`xcorr`] scaled so a perfect match of the
/// template at a lag yields 1.0.
///
/// Normalization divides by `‖template‖ · ‖signal window‖` at each lag,
/// making the output comparable across recordings with different gains.
///
/// # Errors
///
/// Same conditions as [`xcorr`].
pub fn normalized_xcorr(signal: &[f64], template: &[f64]) -> Result<Vec<f64>, DspError> {
    let raw = xcorr(signal, template)?;
    let tpl_energy: f64 = template.iter().map(|x| x * x).sum();
    let tpl_norm = tpl_energy.sqrt();
    if tpl_norm == 0.0 {
        return Err(DspError::invalid("template", "template has zero energy"));
    }
    // Sliding window energy of the signal via prefix sums.
    let mut prefix = vec![0.0; signal.len() + 1];
    for (i, &s) in signal.iter().enumerate() {
        prefix[i + 1] = prefix[i] + s * s;
    }
    let m = template.len();
    let out = raw
        .iter()
        .enumerate()
        .map(|(k, &r)| {
            let end = (k + m).min(signal.len());
            let win_energy = prefix[end] - prefix[k];
            if win_energy <= 0.0 {
                0.0
            } else {
                r / (tpl_norm * win_energy.sqrt())
            }
        })
        .collect();
    Ok(out)
}

/// A reusable matched filter with per-size cached template spectra.
///
/// When the same reference chirp is correlated against many recordings
/// (every slide, every microphone, every session), the template's FFT is
/// the same work each time. The filter owns a [`PlanCache`] and memoizes
/// the template spectrum per padded FFT length, so over a filter's
/// lifetime **at most one template FFT runs per padded length** — the
/// [`MatchedFilter::template_fft_count`] counter makes that observable.
/// The `*_into` methods are the planned hot path (allocation-free once
/// warm); `correlate`/`correlate_normalized` remain as one-shot wrappers.
#[derive(Debug, Clone)]
pub struct MatchedFilter {
    template: Vec<f64>,
    template_energy: f64,
    plans: PlanCache,
    /// Cached template half-spectra, keyed by padded FFT length.
    spectra: Vec<(usize, Vec<Complex>)>,
    template_ffts: usize,
}

impl MatchedFilter {
    /// Creates a matched filter for `template`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty template and
    /// [`DspError::InvalidParameter`] for an all-zero template.
    pub fn new(template: &[f64]) -> Result<Self, DspError> {
        if template.is_empty() {
            return Err(DspError::EmptyInput {
                what: "matched filter template",
            });
        }
        let energy: f64 = template.iter().map(|x| x * x).sum();
        if energy == 0.0 {
            return Err(DspError::invalid("template", "template has zero energy"));
        }
        Ok(MatchedFilter {
            template: template.to_vec(),
            template_energy: energy,
            plans: PlanCache::new(),
            spectra: Vec::new(),
            template_ffts: 0,
        })
    }

    /// The template length in samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.template.len()
    }

    /// Whether the template is empty (never true for a constructed filter).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.template.is_empty()
    }

    /// The template energy `Σ x²`.
    #[must_use]
    pub fn template_energy(&self) -> f64 {
        self.template_energy
    }

    /// How many template FFTs have run over this filter's lifetime.
    ///
    /// Stays at the number of distinct padded lengths seen — the
    /// "at most one template FFT per (template, padded length) pair"
    /// guarantee of the spectrum cache.
    #[must_use]
    pub fn template_fft_count(&self) -> usize {
        self.template_ffts
    }

    /// The cached template half-spectrum for padded length `n`, computing
    /// and memoizing it on first use.
    fn template_spectrum(&mut self, n: usize) -> Result<usize, DspError> {
        if let Some(i) = self.spectra.iter().position(|(len, _)| *len == n) {
            return Ok(i);
        }
        let plan = self.plans.real_plan(n)?;
        let mut spec = Vec::with_capacity(plan.num_bins());
        plan.rfft_half_into(&self.template, &mut spec)?;
        self.template_ffts += 1;
        self.spectra.push((n, spec));
        Ok(self.spectra.len() - 1)
    }

    /// Planned raw correlation: identical output to
    /// [`MatchedFilter::correlate`], with the template spectrum served
    /// from the per-length cache, FFT setup from the internal plan cache,
    /// and working storage borrowed from `scratch`/`out`. Steady-state
    /// calls at warm sizes do not allocate.
    ///
    /// `out` is cleared and refilled (its capacity is reused).
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate_into(
        &mut self,
        signal: &[f64],
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        validate_xcorr_inputs(signal, &self.template)?;
        let n = try_next_pow2(signal.len().saturating_add(self.template.len()))?;
        let plan = self.plans.real_plan(n)?;
        let idx = self.template_spectrum(n)?;
        let tpl_spec = &self.spectra[idx].1;
        plan.rfft_half_into(signal, &mut scratch.c1)?;
        for (s, &t) in scratch.c1.iter_mut().zip(tpl_spec) {
            *s *= t.conj();
        }
        let DspScratch { c1, r1, .. } = scratch;
        plan.irfft_half_into(c1, r1)?;
        out.clear();
        out.extend_from_slice(&r1[..signal.len()]);
        Ok(())
    }

    /// Planned normalized correlation: identical output to
    /// [`MatchedFilter::correlate_normalized`], on the allocation-free
    /// path of [`MatchedFilter::correlate_into`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate_normalized_into(
        &mut self,
        signal: &[f64],
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        self.correlate_into(signal, scratch, out)?;
        let k = 1.0 / self.template_energy;
        for v in out.iter_mut() {
            *v *= k;
        }
        Ok(())
    }

    /// Raw correlation of the filter template against `signal`.
    ///
    /// See [`xcorr`] for the output convention.
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate(&self, signal: &[f64]) -> Result<Vec<f64>, DspError> {
        xcorr(signal, &self.template)
    }

    /// Normalized correlation (template-energy normalized only).
    ///
    /// Output of 1.0 means the signal window equals the template exactly;
    /// unlike [`normalized_xcorr`] the signal window energy is not divided
    /// out, so absolute amplitude still matters. This matches the
    /// matched-filter SNR detection used for beacon finding: we want loud,
    /// template-shaped events.
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate_normalized(&self, signal: &[f64]) -> Result<Vec<f64>, DspError> {
        let mut out = self.correlate(signal)?;
        let k = 1.0 / self.template_energy;
        for v in &mut out {
            *v *= k;
        }
        Ok(out)
    }
}

/// Overlap-save block cross-correlation against a fixed template.
///
/// Correlates an arbitrarily long signal one FFT block at a time: each
/// block gathers `block_len` samples of the (implicitly zero-padded,
/// optionally `lead`-shifted) signal, multiplies its half-spectrum by the
/// conjugated template half-spectrum, and keeps the first
/// `block_len - template_len + 1` inverse-transform outputs — the lags
/// free of circular wraparound. Blocks advance by that step, overlapping
/// by `template_len - 1` samples.
///
/// This is the shared engine behind [`StreamingMatchedFilter`] (with
/// `lead = 0`) and the FFT zero-phase FIR path (with `lead` compensating
/// the filter group delay). Peak FFT size is `block_len`, independent of
/// how long the signal is.
#[derive(Debug, Clone)]
pub(crate) struct OverlapSave {
    /// Shared, read-only FFT tables for the block size: every engine at
    /// one block length in the process points at the same plan.
    plan: Arc<RealFftPlan>,
    /// Template half-spectrum at `block_len` (not conjugated).
    template_spec: Vec<Complex>,
    template_len: usize,
}

impl OverlapSave {
    /// Builds the engine for `template` with FFT blocks of `block_len`.
    ///
    /// `block_len` must be a power of two and at least `template.len()`
    /// (otherwise no lag is free of circular wraparound).
    pub(crate) fn new(template: &[f64], block_len: usize) -> Result<Self, DspError> {
        if template.is_empty() {
            return Err(DspError::EmptyInput {
                what: "overlap-save template",
            });
        }
        if block_len < template.len() {
            return Err(DspError::invalid(
                "block_len",
                format!(
                    "block ({block_len}) shorter than template ({})",
                    template.len()
                ),
            ));
        }
        let plan = shared_real_plan(block_len)?;
        let mut template_spec = Vec::with_capacity(plan.num_bins());
        plan.rfft_half_into(template, &mut template_spec)?;
        Ok(OverlapSave {
            plan,
            template_spec,
            template_len: template.len(),
        })
    }

    pub(crate) fn block_len(&self) -> usize {
        self.plan.len()
    }

    /// Valid (wraparound-free) output lags per block.
    pub(crate) fn step(&self) -> usize {
        self.block_len() - self.template_len + 1
    }

    /// Writes `out[k] = Σ_n signal[n + k - lead] · template[n]` for
    /// `k` in `0..out_len`, treating the signal as zero outside its
    /// bounds. `lead = 0` reproduces the [`xcorr`] convention.
    pub(crate) fn run(
        &self,
        signal: &[f64],
        lead: usize,
        out_len: usize,
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        out.clear();
        out.reserve(out_len);
        let block = self.block_len();
        let step = self.step();
        let mut pos = 0;
        while pos < out_len {
            scratch.r1.clear();
            scratch.r1.extend((pos..pos + block).map(|j| {
                j.checked_sub(lead)
                    .and_then(|i| signal.get(i))
                    .copied()
                    .unwrap_or(0.0)
            }));
            self.plan.rfft_half_into(&scratch.r1, &mut scratch.c1)?;
            for (s, &t) in scratch.c1.iter_mut().zip(&self.template_spec) {
                *s *= t.conj();
            }
            let DspScratch { c1, r1, .. } = scratch;
            self.plan.irfft_half_into(c1, r1)?;
            let take = step.min(out_len - pos);
            out.extend_from_slice(&r1[..take]);
            pos += step;
        }
        Ok(())
    }
}

/// Incremental ingestion state for one overlap-save engine: the partial
/// FFT block under assembly plus push/emit progress counters.
///
/// A feed turns a blocked engine ([`StreamingMatchedFilter`],
/// [`crate::filter::ZeroPhaseFir`]) into an online one: samples arrive in
/// chunks of any size (single samples to whole captures) and completed
/// output lags are emitted as soon as their FFT block fills. The engine
/// itself stays `&self` and immutable — all mutable state lives here, so
/// one engine can serve many concurrent feeds.
///
/// Because a block is transformed exactly when it reaches `block_len`
/// samples, the block contents — and therefore every emitted value — are
/// **bit-identical** regardless of how the input was chunked, and
/// bit-identical to the corresponding one-shot call
/// ([`StreamingMatchedFilter::correlate_into`] /
/// [`crate::filter::ZeroPhaseFir::filter_into`]) on the concatenated
/// input.
///
/// The working set is one `block_len` buffer, independent of how many
/// samples have been pushed.
#[derive(Debug, Clone)]
pub struct ChunkFeed {
    /// The sliding window of the implicitly padded input stream
    /// (`lead` zeros, then every pushed sample, then flush-time zeros):
    /// always equal to `padded[blocks_done * step ..]`, capacity
    /// `block_len`.
    pub(crate) buf: Vec<f64>,
    pub(crate) lead: usize,
    pub(crate) block_len: usize,
    pub(crate) template_len: usize,
    pub(crate) pushed: usize,
    pub(crate) emitted: usize,
    pub(crate) finished: bool,
}

impl ChunkFeed {
    pub(crate) fn new(lead: usize, block_len: usize, template_len: usize) -> Self {
        let mut buf = Vec::with_capacity(block_len);
        buf.resize(lead, 0.0);
        ChunkFeed {
            buf,
            lead,
            block_len,
            template_len,
            pushed: 0,
            emitted: 0,
            finished: false,
        }
    }

    /// Samples pushed since construction or the last reset.
    #[must_use]
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// Output values emitted so far (always `<=` [`ChunkFeed::pushed`]).
    #[must_use]
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Whether the stream has been finished; a finished feed rejects
    /// further pushes until [`ChunkFeed::reset`].
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Returns the feed to its initial state for a fresh stream, keeping
    /// the block buffer's capacity (no allocation).
    pub fn reset(&mut self) {
        self.buf.clear();
        self.buf.resize(self.lead, 0.0);
        self.pushed = 0;
        self.emitted = 0;
        self.finished = false;
    }

    /// Bytes reserved by the feed's block buffer.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.buf.capacity() * std::mem::size_of::<f64>()
    }
}

impl OverlapSave {
    fn check_feed(&self, feed: &ChunkFeed, expected_lead: usize) -> Result<(), DspError> {
        if feed.block_len != self.block_len()
            || feed.template_len != self.template_len
            || feed.lead != expected_lead
        {
            return Err(DspError::invalid(
                "feed",
                "chunk feed was created for a different engine",
            ));
        }
        if feed.finished {
            return Err(DspError::invalid(
                "feed",
                "chunk feed already finished; call reset() before reuse",
            ));
        }
        Ok(())
    }

    /// Transforms the (full) block in `feed.buf`, leaving the block's
    /// correlation lags in `scratch.r1` and sliding the buffer forward by
    /// one step so only the `template_len - 1` overlap tail remains.
    fn feed_transform(
        &self,
        feed: &mut ChunkFeed,
        scratch: &mut DspScratch,
    ) -> Result<(), DspError> {
        debug_assert_eq!(feed.buf.len(), self.block_len());
        scratch.r1.clear();
        scratch.r1.extend_from_slice(&feed.buf);
        self.plan.rfft_half_into(&scratch.r1, &mut scratch.c1)?;
        for (s, &t) in scratch.c1.iter_mut().zip(&self.template_spec) {
            *s *= t.conj();
        }
        let DspScratch { c1, r1, .. } = scratch;
        self.plan.irfft_half_into(c1, r1)?;
        let step = self.step();
        feed.buf.copy_within(step.., 0);
        feed.buf.truncate(self.block_len() - step);
        Ok(())
    }

    /// Appends `chunk` to the feed, emitting (appending to `out`) the
    /// lags of every FFT block that fills. Emission never runs ahead of
    /// ingestion: `emitted <= pushed` holds throughout because
    /// `lead <= template_len - 1`.
    pub(crate) fn feed_push(
        &self,
        feed: &mut ChunkFeed,
        expected_lead: usize,
        chunk: &[f64],
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        self.check_feed(feed, expected_lead)?;
        let block = self.block_len();
        let step = self.step();
        let mut rest = chunk;
        while !rest.is_empty() {
            let take = (block - feed.buf.len()).min(rest.len());
            feed.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if feed.buf.len() == block {
                self.feed_transform(feed, scratch)?;
                out.extend_from_slice(&scratch.r1[..step]);
                feed.emitted += step;
            }
        }
        feed.pushed += chunk.len();
        debug_assert!(feed.emitted <= feed.pushed);
        Ok(())
    }

    /// Flushes the feed: zero-pads the final blocks and emits (appending
    /// to `out`) every remaining lag up to the `pushed` total, exactly
    /// reproducing [`OverlapSave::run`]'s output length and values for
    /// the concatenated input. Marks the feed finished.
    pub(crate) fn feed_finish(
        &self,
        feed: &mut ChunkFeed,
        expected_lead: usize,
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        self.check_feed(feed, expected_lead)?;
        let total = feed.pushed;
        while feed.emitted < total {
            feed.buf.resize(self.block_len(), 0.0);
            self.feed_transform(feed, scratch)?;
            let take = self.step().min(total - feed.emitted);
            out.extend_from_slice(&scratch.r1[..take]);
            feed.emitted += take;
        }
        feed.finished = true;
        Ok(())
    }
}

/// A matched filter that correlates in fixed-size overlap-save blocks.
///
/// Where [`MatchedFilter`] pads the whole capture to one
/// `next_pow2(signal + template)` transform — a multi-second capture means
/// a 2^20-point FFT and megabytes of scratch — this filter processes the
/// signal through [`OverlapSave`] blocks of `block_len` samples
/// (default `next_pow2(4 × template)`, so 4–8× the template length).
/// Cost is O(N log B) time and O(B) working memory: the peak FFT size is
/// [`StreamingMatchedFilter::block_len`] regardless of capture length,
/// which is what makes streaming ingestion of unbounded captures possible.
///
/// # Accuracy
///
/// Output is *bit-close, not bit-identical*, to one-shot [`xcorr`]: both
/// compute the same exact sum per lag, but block boundaries change the
/// floating-point summation order. The difference is pinned by tests at
/// `≤ 1e-9 · (1 + max|xcorr|)` per lag (observed error is ~1e-12
/// relative for audio-scale inputs).
///
/// The hot methods take `&self` — one filter can serve many channels
/// concurrently, each with its own [`DspScratch`].
#[derive(Debug, Clone)]
pub struct StreamingMatchedFilter {
    core: OverlapSave,
    template_energy: f64,
}

impl StreamingMatchedFilter {
    /// Creates a streaming matched filter with the default block policy:
    /// `block_len = next_pow2(4 × template.len())`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty template and
    /// [`DspError::InvalidParameter`] for an all-zero template.
    pub fn new(template: &[f64]) -> Result<Self, DspError> {
        let block = try_next_pow2(template.len().saturating_mul(4))?;
        Self::with_block_len(template, block)
    }

    /// Creates a streaming matched filter with an explicit FFT block
    /// length (power of two, at least `template.len()`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`StreamingMatchedFilter::new`], plus
    /// [`DspError::InvalidParameter`] for an invalid `block_len`.
    pub fn with_block_len(template: &[f64], block_len: usize) -> Result<Self, DspError> {
        let energy: f64 = template.iter().map(|x| x * x).sum();
        if !template.is_empty() && energy == 0.0 {
            return Err(DspError::invalid("template", "template has zero energy"));
        }
        Ok(StreamingMatchedFilter {
            core: OverlapSave::new(template, block_len)?,
            template_energy: energy,
        })
    }

    /// The template length in samples.
    #[must_use]
    pub fn template_len(&self) -> usize {
        self.core.template_len
    }

    /// The FFT block length — the peak transform size of every call,
    /// independent of signal length.
    #[must_use]
    pub fn block_len(&self) -> usize {
        self.core.block_len()
    }

    /// Valid correlation lags produced per block
    /// (`block_len - template_len + 1`).
    #[must_use]
    pub fn step(&self) -> usize {
        self.core.step()
    }

    /// The template energy `Σ x²`.
    #[must_use]
    pub fn template_energy(&self) -> f64 {
        self.template_energy
    }

    /// Blocked raw correlation; same output convention as [`xcorr`]
    /// (see the struct docs for the accuracy contract). Steady-state
    /// calls at warm sizes do not allocate.
    ///
    /// `out` is cleared and refilled (its capacity is reused).
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate_into(
        &self,
        signal: &[f64],
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput {
                what: "xcorr signal",
            });
        }
        if self.template_len() > signal.len() {
            return Err(DspError::invalid(
                "template",
                format!(
                    "template ({}) longer than signal ({})",
                    self.template_len(),
                    signal.len()
                ),
            ));
        }
        self.core.run(signal, 0, signal.len(), scratch, out)
    }

    /// Blocked template-energy-normalized correlation; same output
    /// convention as [`MatchedFilter::correlate_normalized`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate_normalized_into(
        &self,
        signal: &[f64],
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        self.correlate_into(signal, scratch, out)?;
        let k = 1.0 / self.template_energy;
        for v in out.iter_mut() {
            *v *= k;
        }
        Ok(())
    }

    /// One-shot convenience over [`StreamingMatchedFilter::correlate_into`]
    /// using the thread-local scratch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate(&self, signal: &[f64]) -> Result<Vec<f64>, DspError> {
        let mut out = Vec::new();
        crate::plan::with_thread_ctx(|_, scratch| self.correlate_into(signal, scratch, &mut out))?;
        Ok(out)
    }

    /// Creates an online ingestion feed for this filter (see
    /// [`ChunkFeed`]). One filter can serve any number of concurrent
    /// feeds; each feed belongs to exactly one logical stream.
    #[must_use]
    pub fn chunk_feed(&self) -> ChunkFeed {
        ChunkFeed::new(0, self.block_len(), self.template_len())
    }

    /// Pushes `chunk` (any length, empty included) into `feed`, appending
    /// every raw correlation lag whose FFT block completed to `out`.
    ///
    /// Once the stream is flushed with
    /// [`StreamingMatchedFilter::finish_chunks_into`], the concatenation
    /// of everything appended is **bit-identical** to
    /// [`StreamingMatchedFilter::correlate_into`] over the concatenated
    /// chunks — independent of the chunking. Steady-state calls at warm
    /// sizes do not allocate beyond `out`'s growth.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `feed` was created by a
    /// different engine or has already been finished.
    pub fn push_chunk_into(
        &self,
        feed: &mut ChunkFeed,
        chunk: &[f64],
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        self.core.feed_push(feed, 0, chunk, scratch, out)
    }

    /// [`StreamingMatchedFilter::push_chunk_into`] with the emitted lags
    /// template-energy normalized, matching
    /// [`StreamingMatchedFilter::correlate_normalized_into`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`StreamingMatchedFilter::push_chunk_into`].
    pub fn push_chunk_normalized_into(
        &self,
        feed: &mut ChunkFeed,
        chunk: &[f64],
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        let start = out.len();
        self.push_chunk_into(feed, chunk, scratch, out)?;
        let k = 1.0 / self.template_energy;
        for v in &mut out[start..] {
            *v *= k;
        }
        Ok(())
    }

    /// Flushes `feed`, appending the remaining raw lags to `out` so the
    /// stream's total output matches the one-shot call exactly (one lag
    /// per pushed sample). The feed is then finished; call
    /// [`ChunkFeed::reset`] to reuse it for a new stream.
    ///
    /// # Errors
    ///
    /// Mirrors [`StreamingMatchedFilter::correlate_into`] on the
    /// concatenated input: [`DspError::EmptyInput`] when nothing was
    /// pushed, [`DspError::InvalidParameter`] when fewer samples than the
    /// template length were pushed (or the feed belongs to a different
    /// engine / was already finished).
    pub fn finish_chunks_into(
        &self,
        feed: &mut ChunkFeed,
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        if !feed.finished && feed.pushed == 0 {
            return Err(DspError::EmptyInput {
                what: "xcorr signal",
            });
        }
        if !feed.finished && feed.pushed < self.template_len() {
            return Err(DspError::invalid(
                "template",
                format!(
                    "template ({}) longer than signal ({})",
                    self.template_len(),
                    feed.pushed
                ),
            ));
        }
        self.core.feed_finish(feed, 0, scratch, out)
    }

    /// [`StreamingMatchedFilter::finish_chunks_into`] with the emitted
    /// lags template-energy normalized.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StreamingMatchedFilter::finish_chunks_into`].
    pub fn finish_chunks_normalized_into(
        &self,
        feed: &mut ChunkFeed,
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        let start = out.len();
        self.finish_chunks_into(feed, scratch, out)?;
        let k = 1.0 / self.template_energy;
        for v in &mut out[start..] {
            *v *= k;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argmax(x: &[f64]) -> usize {
        x.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0
    }

    #[test]
    fn finds_template_at_known_offset() {
        let template = [1.0, -2.0, 3.0, -1.0];
        let mut signal = vec![0.0; 64];
        signal[20..24].copy_from_slice(&template);
        let out = xcorr(&signal, &template).unwrap();
        assert_eq!(argmax(&out), 20);
        let peak = out[20];
        let energy: f64 = template.iter().map(|x| x * x).sum();
        assert!((peak - energy).abs() < 1e-9);
    }

    #[test]
    fn matches_direct_computation() {
        let signal: Vec<f64> = (0..50).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let template: Vec<f64> = (0..8).map(|i| ((i * 3 % 5) as f64) - 2.0).collect();
        let fast = xcorr(&signal, &template).unwrap();
        for k in 0..signal.len() {
            let direct: f64 = template
                .iter()
                .enumerate()
                .filter(|(n, _)| k + n < signal.len())
                .map(|(n, &t)| signal[k + n] * t)
                .sum();
            assert!((fast[k] - direct).abs() < 1e-8, "lag {k}");
        }
    }

    #[test]
    fn normalized_peak_is_one_for_exact_match() {
        let template = [0.5, -1.5, 2.5, 0.25, -0.75];
        let mut signal = vec![0.0; 32];
        signal[10..15].copy_from_slice(&template);
        let out = normalized_xcorr(&signal, &template).unwrap();
        assert!((out[10] - 1.0).abs() < 1e-9);
        assert_eq!(argmax(&out), 10);
    }

    #[test]
    fn normalized_is_gain_invariant() {
        let template = [1.0, -1.0, 2.0];
        let mut quiet = vec![0.0; 32];
        quiet[5..8].copy_from_slice(&[0.01, -0.01, 0.02]);
        let out = normalized_xcorr(&quiet, &template).unwrap();
        assert!((out[5] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn matched_filter_normalization() {
        let template = [2.0, 0.0, -2.0];
        let filter = MatchedFilter::new(&template).unwrap();
        let mut signal = vec![0.0; 16];
        signal[4..7].copy_from_slice(&template);
        let out = filter.correlate_normalized(&signal).unwrap();
        assert!((out[4] - 1.0).abs() < 1e-9);
        assert_eq!(filter.len(), 3);
        assert!(!filter.is_empty());
        assert!((filter.template_energy() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(xcorr(&[], &[1.0]).is_err());
        assert!(xcorr(&[1.0], &[]).is_err());
        assert!(xcorr(&[1.0], &[1.0, 2.0]).is_err());
        assert!(MatchedFilter::new(&[]).is_err());
        assert!(MatchedFilter::new(&[0.0, 0.0]).is_err());
        assert!(normalized_xcorr(&[1.0, 2.0], &[0.0]).is_err());
    }

    #[test]
    fn detects_template_in_noise() {
        // Deterministic pseudo-noise plus a strong template.
        let template: Vec<f64> = (0..32)
            .map(|i| (i as f64 * 0.7).sin() * (i as f64 * 0.13).cos())
            .collect();
        let mut signal: Vec<f64> = (0..512)
            .map(|i| 0.05 * ((i * 2654435761_usize % 1000) as f64 / 500.0 - 1.0))
            .collect();
        for (i, &t) in template.iter().enumerate() {
            signal[200 + i] += t;
        }
        let out = xcorr(&signal, &template).unwrap();
        assert_eq!(argmax(&out), 200);
    }

    #[test]
    fn two_occurrences_produce_two_peaks() {
        let template = [1.0, 2.0, 1.0];
        let mut signal = vec![0.0; 64];
        signal[10..13].copy_from_slice(&template);
        signal[40..43].copy_from_slice(&template);
        let out = xcorr(&signal, &template).unwrap();
        let energy: f64 = template.iter().map(|x| x * x).sum();
        assert!((out[10] - energy).abs() < 1e-9);
        assert!((out[40] - energy).abs() < 1e-9);
    }

    fn assert_bit_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        let scale = 1.0 + b.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= 1e-9 * scale, "lag {i}: {x} vs {y}");
        }
    }

    #[test]
    fn streaming_matches_one_shot_xcorr() {
        let template: Vec<f64> = (0..37)
            .map(|i| (i as f64 * 0.4).sin() - 0.3 * (i as f64 * 0.09).cos())
            .collect();
        let signal: Vec<f64> = (0..1500)
            .map(|i| (i as f64 * 0.021).sin() * (i as f64 * 0.0047).cos())
            .collect();
        let reference = xcorr(&signal, &template).unwrap();
        let filter = StreamingMatchedFilter::new(&template).unwrap();
        assert_eq!(filter.block_len(), 256); // next_pow2(4 * 37)
        assert_eq!(filter.step(), 256 - 37 + 1);
        let streamed = filter.correlate(&signal).unwrap();
        assert_bit_close(&streamed, &reference);
    }

    #[test]
    fn streaming_handles_signal_shorter_than_one_block() {
        let template = [1.0, -2.0, 3.0, -1.0, 0.5];
        let signal: Vec<f64> = (0..7).map(|i| (i as f64 * 0.9).sin()).collect();
        let filter = StreamingMatchedFilter::new(&template).unwrap();
        assert!(filter.block_len() > signal.len());
        let streamed = filter.correlate(&signal).unwrap();
        let reference = xcorr(&signal, &template).unwrap();
        assert_bit_close(&streamed, &reference);
    }

    #[test]
    fn streaming_peak_fft_size_is_capture_independent() {
        let template: Vec<f64> = (0..100).map(|i| (i as f64 * 0.2).sin()).collect();
        let filter = StreamingMatchedFilter::new(&template).unwrap();
        let block = filter.block_len();
        for &len in &[200usize, 1000, 50_000] {
            let signal: Vec<f64> = (0..len).map(|i| (i as f64 * 0.01).cos()).collect();
            let reference = xcorr(&signal, &template).unwrap();
            let streamed = filter.correlate(&signal).unwrap();
            assert_bit_close(&streamed, &reference);
            // Block length is a property of the template alone.
            assert_eq!(filter.block_len(), block);
        }
    }

    #[test]
    fn streaming_normalization_matches_matched_filter() {
        let template = [2.0, 0.0, -2.0];
        let mut signal = vec![0.0; 64];
        signal[4..7].copy_from_slice(&template);
        let filter = StreamingMatchedFilter::new(&template).unwrap();
        let mut scratch = DspScratch::new();
        let mut out = Vec::new();
        filter
            .correlate_normalized_into(&signal, &mut scratch, &mut out)
            .unwrap();
        assert!((out[4] - 1.0).abs() < 1e-9);
        assert!((filter.template_energy() - 8.0).abs() < 1e-12);
        assert_eq!(filter.template_len(), 3);
    }

    /// Feeds `signal` through a chunk feed in pieces of the given sizes
    /// (cycled) and returns the full emitted output.
    fn run_chunked(filter: &StreamingMatchedFilter, signal: &[f64], sizes: &[usize]) -> Vec<f64> {
        let mut feed = filter.chunk_feed();
        let mut scratch = DspScratch::new();
        let mut out = Vec::new();
        let mut pos = 0;
        let mut i = 0;
        while pos < signal.len() {
            let n = sizes[i % sizes.len()].min(signal.len() - pos);
            filter
                .push_chunk_into(&mut feed, &signal[pos..pos + n], &mut scratch, &mut out)
                .unwrap();
            pos += n;
            i += 1;
        }
        filter
            .finish_chunks_into(&mut feed, &mut scratch, &mut out)
            .unwrap();
        assert!(feed.is_finished());
        assert_eq!(feed.pushed(), signal.len());
        assert_eq!(feed.emitted(), signal.len());
        out
    }

    #[test]
    fn chunked_feed_is_bit_identical_to_one_shot() {
        let template: Vec<f64> = (0..37)
            .map(|i| (i as f64 * 0.4).sin() - 0.3 * (i as f64 * 0.09).cos())
            .collect();
        let signal: Vec<f64> = (0..1777)
            .map(|i| (i as f64 * 0.021).sin() * (i as f64 * 0.0047).cos())
            .collect();
        let filter = StreamingMatchedFilter::new(&template).unwrap();
        let reference = filter.correlate(&signal).unwrap();
        // Single samples, prime sizes, block-aligned sizes, whole capture.
        for sizes in [
            &[1usize][..],
            &[3, 7, 11][..],
            &[256][..],
            &[signal.len()][..],
            &[255, 1, 513][..],
        ] {
            let streamed = run_chunked(&filter, &signal, sizes);
            assert_eq!(streamed, reference, "chunk sizes {sizes:?}");
        }
    }

    #[test]
    fn chunked_feed_normalized_matches_one_shot_normalized() {
        let template = [2.0, 0.0, -2.0, 1.0];
        let signal: Vec<f64> = (0..300).map(|i| (i as f64 * 0.17).sin()).collect();
        let filter = StreamingMatchedFilter::new(&template).unwrap();
        let mut scratch = DspScratch::new();
        let mut reference = Vec::new();
        filter
            .correlate_normalized_into(&signal, &mut scratch, &mut reference)
            .unwrap();
        let mut feed = filter.chunk_feed();
        let mut out = Vec::new();
        for chunk in signal.chunks(23) {
            filter
                .push_chunk_normalized_into(&mut feed, chunk, &mut scratch, &mut out)
                .unwrap();
        }
        filter
            .finish_chunks_normalized_into(&mut feed, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out, reference);
    }

    #[test]
    fn chunk_feed_reset_supports_reuse_and_empty_chunks() {
        let template = [1.0, -1.0, 0.5];
        let signal: Vec<f64> = (0..97).map(|i| (i as f64 * 0.3).cos()).collect();
        let filter = StreamingMatchedFilter::new(&template).unwrap();
        let reference = filter.correlate(&signal).unwrap();
        let mut feed = filter.chunk_feed();
        let mut scratch = DspScratch::new();
        for round in 0..3 {
            let mut out = Vec::new();
            // Zero-length chunks are no-ops anywhere in the stream.
            filter
                .push_chunk_into(&mut feed, &[], &mut scratch, &mut out)
                .unwrap();
            filter
                .push_chunk_into(&mut feed, &signal[..40], &mut scratch, &mut out)
                .unwrap();
            filter
                .push_chunk_into(&mut feed, &[], &mut scratch, &mut out)
                .unwrap();
            filter
                .push_chunk_into(&mut feed, &signal[40..], &mut scratch, &mut out)
                .unwrap();
            filter
                .finish_chunks_into(&mut feed, &mut scratch, &mut out)
                .unwrap();
            assert_eq!(out, reference, "round {round}");
            // A finished feed rejects further traffic until reset.
            assert!(filter
                .push_chunk_into(&mut feed, &signal[..1], &mut scratch, &mut out)
                .is_err());
            assert!(filter
                .finish_chunks_into(&mut feed, &mut scratch, &mut out)
                .is_err());
            feed.reset();
        }
    }

    #[test]
    fn chunk_feed_finish_mirrors_one_shot_errors() {
        let filter = StreamingMatchedFilter::new(&[1.0, 2.0, 3.0]).unwrap();
        let mut scratch = DspScratch::new();
        let mut out = Vec::new();
        // Nothing pushed: same error class as correlate(&[]).
        let mut feed = filter.chunk_feed();
        assert!(matches!(
            filter.finish_chunks_into(&mut feed, &mut scratch, &mut out),
            Err(DspError::EmptyInput { .. })
        ));
        // Fewer samples than the template: same error as the one-shot.
        feed.reset();
        filter
            .push_chunk_into(&mut feed, &[1.0, 2.0], &mut scratch, &mut out)
            .unwrap();
        assert!(filter
            .finish_chunks_into(&mut feed, &mut scratch, &mut out)
            .is_err());
        // A feed from a different engine geometry is rejected.
        let other = StreamingMatchedFilter::new(&[1.0; 64]).unwrap();
        let mut foreign = other.chunk_feed();
        assert!(filter
            .push_chunk_into(&mut foreign, &[1.0], &mut scratch, &mut out)
            .is_err());
    }

    #[test]
    fn streaming_rejects_degenerate_inputs() {
        assert!(StreamingMatchedFilter::new(&[]).is_err());
        assert!(StreamingMatchedFilter::new(&[0.0, 0.0]).is_err());
        // Block shorter than template, or not a power of two.
        assert!(StreamingMatchedFilter::with_block_len(&[1.0; 8], 4).is_err());
        assert!(StreamingMatchedFilter::with_block_len(&[1.0; 8], 12).is_err());
        let filter = StreamingMatchedFilter::new(&[1.0, 2.0]).unwrap();
        assert!(filter.correlate(&[]).is_err());
        assert!(filter.correlate(&[1.0]).is_err());
    }
}
