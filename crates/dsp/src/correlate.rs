//! Cross-correlation and matched filtering.
//!
//! HyperEar detects chirp beacons the BeepBeep way: "the recorded audio
//! signal at each microphone is correlated with a reference chirp signal.
//! The maximum peak of correlation is concluded as the location of a
//! signal" (Section IV-A). Correlation is computed in the frequency domain
//! so a full one-second stereo recording is cheap to scan.

use crate::fft::{self, next_pow2};
use crate::{Complex, DspError};

/// Full cross-correlation of `signal` with `template` at all lags where the
/// template overlaps the signal start, computed via FFT.
///
/// `output[k] = Σ_n signal[n + k] · template[n]`, for `k` in
/// `0..signal.len()`. The value at `k` is large when the template occurs at
/// position `k` in the signal, making the output directly indexable by
/// arrival sample.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if either input is empty, and
/// [`DspError::InvalidParameter`] if the template is longer than the signal.
pub fn xcorr(signal: &[f64], template: &[f64]) -> Result<Vec<f64>, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput {
            what: "xcorr signal",
        });
    }
    if template.is_empty() {
        return Err(DspError::EmptyInput {
            what: "xcorr template",
        });
    }
    if template.len() > signal.len() {
        return Err(DspError::invalid(
            "template",
            format!(
                "template ({}) longer than signal ({})",
                template.len(),
                signal.len()
            ),
        ));
    }
    let n = next_pow2(signal.len() + template.len());
    let sig_spec = fft::rfft(signal, n)?;
    let tpl_spec = fft::rfft(template, n)?;
    let mut prod: Vec<Complex> = sig_spec
        .iter()
        .zip(&tpl_spec)
        .map(|(&s, &t)| s * t.conj())
        .collect();
    fft::ifft(&mut prod)?;
    Ok(prod[..signal.len()].iter().map(|c| c.re).collect())
}

/// Normalized cross-correlation: [`xcorr`] scaled so a perfect match of the
/// template at a lag yields 1.0.
///
/// Normalization divides by `‖template‖ · ‖signal window‖` at each lag,
/// making the output comparable across recordings with different gains.
///
/// # Errors
///
/// Same conditions as [`xcorr`].
pub fn normalized_xcorr(signal: &[f64], template: &[f64]) -> Result<Vec<f64>, DspError> {
    let raw = xcorr(signal, template)?;
    let tpl_energy: f64 = template.iter().map(|x| x * x).sum();
    let tpl_norm = tpl_energy.sqrt();
    if tpl_norm == 0.0 {
        return Err(DspError::invalid("template", "template has zero energy"));
    }
    // Sliding window energy of the signal via prefix sums.
    let mut prefix = vec![0.0; signal.len() + 1];
    for (i, &s) in signal.iter().enumerate() {
        prefix[i + 1] = prefix[i] + s * s;
    }
    let m = template.len();
    let out = raw
        .iter()
        .enumerate()
        .map(|(k, &r)| {
            let end = (k + m).min(signal.len());
            let win_energy = prefix[end] - prefix[k];
            if win_energy <= 0.0 {
                0.0
            } else {
                r / (tpl_norm * win_energy.sqrt())
            }
        })
        .collect();
    Ok(out)
}

/// A reusable matched filter with a precomputed template spectrum.
///
/// When the same reference chirp is correlated against many recordings
/// (every slide, every microphone), caching the conjugated template spectrum
/// per FFT size avoids redundant transforms.
#[derive(Debug, Clone)]
pub struct MatchedFilter {
    template: Vec<f64>,
    template_energy: f64,
}

impl MatchedFilter {
    /// Creates a matched filter for `template`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty template and
    /// [`DspError::InvalidParameter`] for an all-zero template.
    pub fn new(template: &[f64]) -> Result<Self, DspError> {
        if template.is_empty() {
            return Err(DspError::EmptyInput {
                what: "matched filter template",
            });
        }
        let energy: f64 = template.iter().map(|x| x * x).sum();
        if energy == 0.0 {
            return Err(DspError::invalid("template", "template has zero energy"));
        }
        Ok(MatchedFilter {
            template: template.to_vec(),
            template_energy: energy,
        })
    }

    /// The template length in samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.template.len()
    }

    /// Whether the template is empty (never true for a constructed filter).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.template.is_empty()
    }

    /// The template energy `Σ x²`.
    #[must_use]
    pub fn template_energy(&self) -> f64 {
        self.template_energy
    }

    /// Raw correlation of the filter template against `signal`.
    ///
    /// See [`xcorr`] for the output convention.
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate(&self, signal: &[f64]) -> Result<Vec<f64>, DspError> {
        xcorr(signal, &self.template)
    }

    /// Normalized correlation (template-energy normalized only).
    ///
    /// Output of 1.0 means the signal window equals the template exactly;
    /// unlike [`normalized_xcorr`] the signal window energy is not divided
    /// out, so absolute amplitude still matters. This matches the
    /// matched-filter SNR detection used for beacon finding: we want loud,
    /// template-shaped events.
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate_normalized(&self, signal: &[f64]) -> Result<Vec<f64>, DspError> {
        let mut out = self.correlate(signal)?;
        let k = 1.0 / self.template_energy;
        for v in &mut out {
            *v *= k;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argmax(x: &[f64]) -> usize {
        x.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0
    }

    #[test]
    fn finds_template_at_known_offset() {
        let template = [1.0, -2.0, 3.0, -1.0];
        let mut signal = vec![0.0; 64];
        signal[20..24].copy_from_slice(&template);
        let out = xcorr(&signal, &template).unwrap();
        assert_eq!(argmax(&out), 20);
        let peak = out[20];
        let energy: f64 = template.iter().map(|x| x * x).sum();
        assert!((peak - energy).abs() < 1e-9);
    }

    #[test]
    fn matches_direct_computation() {
        let signal: Vec<f64> = (0..50).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let template: Vec<f64> = (0..8).map(|i| ((i * 3 % 5) as f64) - 2.0).collect();
        let fast = xcorr(&signal, &template).unwrap();
        for k in 0..signal.len() {
            let direct: f64 = template
                .iter()
                .enumerate()
                .filter(|(n, _)| k + n < signal.len())
                .map(|(n, &t)| signal[k + n] * t)
                .sum();
            assert!((fast[k] - direct).abs() < 1e-8, "lag {k}");
        }
    }

    #[test]
    fn normalized_peak_is_one_for_exact_match() {
        let template = [0.5, -1.5, 2.5, 0.25, -0.75];
        let mut signal = vec![0.0; 32];
        signal[10..15].copy_from_slice(&template);
        let out = normalized_xcorr(&signal, &template).unwrap();
        assert!((out[10] - 1.0).abs() < 1e-9);
        assert_eq!(argmax(&out), 10);
    }

    #[test]
    fn normalized_is_gain_invariant() {
        let template = [1.0, -1.0, 2.0];
        let mut quiet = vec![0.0; 32];
        quiet[5..8].copy_from_slice(&[0.01, -0.01, 0.02]);
        let out = normalized_xcorr(&quiet, &template).unwrap();
        assert!((out[5] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn matched_filter_normalization() {
        let template = [2.0, 0.0, -2.0];
        let filter = MatchedFilter::new(&template).unwrap();
        let mut signal = vec![0.0; 16];
        signal[4..7].copy_from_slice(&template);
        let out = filter.correlate_normalized(&signal).unwrap();
        assert!((out[4] - 1.0).abs() < 1e-9);
        assert_eq!(filter.len(), 3);
        assert!(!filter.is_empty());
        assert!((filter.template_energy() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(xcorr(&[], &[1.0]).is_err());
        assert!(xcorr(&[1.0], &[]).is_err());
        assert!(xcorr(&[1.0], &[1.0, 2.0]).is_err());
        assert!(MatchedFilter::new(&[]).is_err());
        assert!(MatchedFilter::new(&[0.0, 0.0]).is_err());
        assert!(normalized_xcorr(&[1.0, 2.0], &[0.0]).is_err());
    }

    #[test]
    fn detects_template_in_noise() {
        // Deterministic pseudo-noise plus a strong template.
        let template: Vec<f64> = (0..32)
            .map(|i| (i as f64 * 0.7).sin() * (i as f64 * 0.13).cos())
            .collect();
        let mut signal: Vec<f64> = (0..512)
            .map(|i| 0.05 * ((i * 2654435761_usize % 1000) as f64 / 500.0 - 1.0))
            .collect();
        for (i, &t) in template.iter().enumerate() {
            signal[200 + i] += t;
        }
        let out = xcorr(&signal, &template).unwrap();
        assert_eq!(argmax(&out), 200);
    }

    #[test]
    fn two_occurrences_produce_two_peaks() {
        let template = [1.0, 2.0, 1.0];
        let mut signal = vec![0.0; 64];
        signal[10..13].copy_from_slice(&template);
        signal[40..43].copy_from_slice(&template);
        let out = xcorr(&signal, &template).unwrap();
        let energy: f64 = template.iter().map(|x| x * x).sum();
        assert!((out[10] - energy).abs() < 1e-9);
        assert!((out[40] - energy).abs() < 1e-9);
    }
}
