//! Cross-correlation and matched filtering.
//!
//! HyperEar detects chirp beacons the BeepBeep way: "the recorded audio
//! signal at each microphone is correlated with a reference chirp signal.
//! The maximum peak of correlation is concluded as the location of a
//! signal" (Section IV-A). Correlation is computed in the frequency domain
//! so a full one-second stereo recording is cheap to scan.

use crate::fft::next_pow2;
use crate::plan::{DspScratch, PlanCache};
use crate::{Complex, DspError};

fn validate_xcorr_inputs(signal: &[f64], template: &[f64]) -> Result<(), DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput {
            what: "xcorr signal",
        });
    }
    if template.is_empty() {
        return Err(DspError::EmptyInput {
            what: "xcorr template",
        });
    }
    if template.len() > signal.len() {
        return Err(DspError::invalid(
            "template",
            format!(
                "template ({}) longer than signal ({})",
                template.len(),
                signal.len()
            ),
        ));
    }
    Ok(())
}

/// Full cross-correlation of `signal` with `template` at all lags where the
/// template overlaps the signal start, computed via FFT.
///
/// `output[k] = Σ_n signal[n + k] · template[n]`, for `k` in
/// `0..signal.len()`. The value at `k` is large when the template occurs at
/// position `k` in the signal, making the output directly indexable by
/// arrival sample.
///
/// This is the one-shot convenience; repeated correlation should go
/// through [`xcorr_into`] (reusable plans/scratch) or a [`MatchedFilter`]
/// (which additionally caches the template spectrum).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if either input is empty, and
/// [`DspError::InvalidParameter`] if the template is longer than the signal.
pub fn xcorr(signal: &[f64], template: &[f64]) -> Result<Vec<f64>, DspError> {
    let mut out = Vec::new();
    crate::plan::with_thread_ctx(|plans, scratch| {
        xcorr_into(signal, template, plans, scratch, &mut out)
    })?;
    Ok(out)
}

/// Planned cross-correlation: identical output to [`xcorr`], but all FFT
/// setup comes from `plans` and all working storage from `scratch`/`out`,
/// so steady-state calls at warm sizes do not allocate.
///
/// `out` is cleared and refilled (its capacity is reused).
///
/// # Errors
///
/// Same conditions as [`xcorr`].
pub fn xcorr_into(
    signal: &[f64],
    template: &[f64],
    plans: &mut PlanCache,
    scratch: &mut DspScratch,
    out: &mut Vec<f64>,
) -> Result<(), DspError> {
    validate_xcorr_inputs(signal, template)?;
    let n = next_pow2(signal.len() + template.len());
    let plan = plans.plan(n)?;
    plan.rfft_into(signal, &mut scratch.c1)?;
    plan.rfft_into(template, &mut scratch.c2)?;
    for (s, &t) in scratch.c1.iter_mut().zip(&scratch.c2) {
        *s *= t.conj();
    }
    plan.ifft(&mut scratch.c1)?;
    out.clear();
    out.extend(scratch.c1[..signal.len()].iter().map(|c| c.re));
    Ok(())
}

/// Normalized cross-correlation: [`xcorr`] scaled so a perfect match of the
/// template at a lag yields 1.0.
///
/// Normalization divides by `‖template‖ · ‖signal window‖` at each lag,
/// making the output comparable across recordings with different gains.
///
/// # Errors
///
/// Same conditions as [`xcorr`].
pub fn normalized_xcorr(signal: &[f64], template: &[f64]) -> Result<Vec<f64>, DspError> {
    let raw = xcorr(signal, template)?;
    let tpl_energy: f64 = template.iter().map(|x| x * x).sum();
    let tpl_norm = tpl_energy.sqrt();
    if tpl_norm == 0.0 {
        return Err(DspError::invalid("template", "template has zero energy"));
    }
    // Sliding window energy of the signal via prefix sums.
    let mut prefix = vec![0.0; signal.len() + 1];
    for (i, &s) in signal.iter().enumerate() {
        prefix[i + 1] = prefix[i] + s * s;
    }
    let m = template.len();
    let out = raw
        .iter()
        .enumerate()
        .map(|(k, &r)| {
            let end = (k + m).min(signal.len());
            let win_energy = prefix[end] - prefix[k];
            if win_energy <= 0.0 {
                0.0
            } else {
                r / (tpl_norm * win_energy.sqrt())
            }
        })
        .collect();
    Ok(out)
}

/// A reusable matched filter with per-size cached template spectra.
///
/// When the same reference chirp is correlated against many recordings
/// (every slide, every microphone, every session), the template's FFT is
/// the same work each time. The filter owns a [`PlanCache`] and memoizes
/// the template spectrum per padded FFT length, so over a filter's
/// lifetime **at most one template FFT runs per padded length** — the
/// [`MatchedFilter::template_fft_count`] counter makes that observable.
/// The `*_into` methods are the planned hot path (allocation-free once
/// warm); `correlate`/`correlate_normalized` remain as one-shot wrappers.
#[derive(Debug, Clone)]
pub struct MatchedFilter {
    template: Vec<f64>,
    template_energy: f64,
    plans: PlanCache,
    /// Cached template spectra, keyed by padded FFT length.
    spectra: Vec<(usize, Vec<Complex>)>,
    template_ffts: usize,
}

impl MatchedFilter {
    /// Creates a matched filter for `template`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty template and
    /// [`DspError::InvalidParameter`] for an all-zero template.
    pub fn new(template: &[f64]) -> Result<Self, DspError> {
        if template.is_empty() {
            return Err(DspError::EmptyInput {
                what: "matched filter template",
            });
        }
        let energy: f64 = template.iter().map(|x| x * x).sum();
        if energy == 0.0 {
            return Err(DspError::invalid("template", "template has zero energy"));
        }
        Ok(MatchedFilter {
            template: template.to_vec(),
            template_energy: energy,
            plans: PlanCache::new(),
            spectra: Vec::new(),
            template_ffts: 0,
        })
    }

    /// The template length in samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.template.len()
    }

    /// Whether the template is empty (never true for a constructed filter).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.template.is_empty()
    }

    /// The template energy `Σ x²`.
    #[must_use]
    pub fn template_energy(&self) -> f64 {
        self.template_energy
    }

    /// How many template FFTs have run over this filter's lifetime.
    ///
    /// Stays at the number of distinct padded lengths seen — the
    /// "at most one template FFT per (template, padded length) pair"
    /// guarantee of the spectrum cache.
    #[must_use]
    pub fn template_fft_count(&self) -> usize {
        self.template_ffts
    }

    /// The cached template spectrum for padded length `n`, computing and
    /// memoizing it on first use.
    fn template_spectrum(&mut self, n: usize) -> Result<usize, DspError> {
        if let Some(i) = self.spectra.iter().position(|(len, _)| *len == n) {
            return Ok(i);
        }
        let plan = self.plans.plan(n)?;
        let mut spec = Vec::with_capacity(n);
        plan.rfft_into(&self.template, &mut spec)?;
        self.template_ffts += 1;
        self.spectra.push((n, spec));
        Ok(self.spectra.len() - 1)
    }

    /// Planned raw correlation: identical output to
    /// [`MatchedFilter::correlate`], with the template spectrum served
    /// from the per-length cache, FFT setup from the internal plan cache,
    /// and working storage borrowed from `scratch`/`out`. Steady-state
    /// calls at warm sizes do not allocate.
    ///
    /// `out` is cleared and refilled (its capacity is reused).
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate_into(
        &mut self,
        signal: &[f64],
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        validate_xcorr_inputs(signal, &self.template)?;
        let n = next_pow2(signal.len() + self.template.len());
        let plan = self.plans.plan(n)?;
        let idx = self.template_spectrum(n)?;
        let tpl_spec = &self.spectra[idx].1;
        plan.rfft_into(signal, &mut scratch.c1)?;
        for (s, &t) in scratch.c1.iter_mut().zip(tpl_spec) {
            *s *= t.conj();
        }
        plan.ifft(&mut scratch.c1)?;
        out.clear();
        out.extend(scratch.c1[..signal.len()].iter().map(|c| c.re));
        Ok(())
    }

    /// Planned normalized correlation: identical output to
    /// [`MatchedFilter::correlate_normalized`], on the allocation-free
    /// path of [`MatchedFilter::correlate_into`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate_normalized_into(
        &mut self,
        signal: &[f64],
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        self.correlate_into(signal, scratch, out)?;
        let k = 1.0 / self.template_energy;
        for v in out.iter_mut() {
            *v *= k;
        }
        Ok(())
    }

    /// Raw correlation of the filter template against `signal`.
    ///
    /// See [`xcorr`] for the output convention.
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate(&self, signal: &[f64]) -> Result<Vec<f64>, DspError> {
        xcorr(signal, &self.template)
    }

    /// Normalized correlation (template-energy normalized only).
    ///
    /// Output of 1.0 means the signal window equals the template exactly;
    /// unlike [`normalized_xcorr`] the signal window energy is not divided
    /// out, so absolute amplitude still matters. This matches the
    /// matched-filter SNR detection used for beacon finding: we want loud,
    /// template-shaped events.
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate_normalized(&self, signal: &[f64]) -> Result<Vec<f64>, DspError> {
        let mut out = self.correlate(signal)?;
        let k = 1.0 / self.template_energy;
        for v in &mut out {
            *v *= k;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argmax(x: &[f64]) -> usize {
        x.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0
    }

    #[test]
    fn finds_template_at_known_offset() {
        let template = [1.0, -2.0, 3.0, -1.0];
        let mut signal = vec![0.0; 64];
        signal[20..24].copy_from_slice(&template);
        let out = xcorr(&signal, &template).unwrap();
        assert_eq!(argmax(&out), 20);
        let peak = out[20];
        let energy: f64 = template.iter().map(|x| x * x).sum();
        assert!((peak - energy).abs() < 1e-9);
    }

    #[test]
    fn matches_direct_computation() {
        let signal: Vec<f64> = (0..50).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let template: Vec<f64> = (0..8).map(|i| ((i * 3 % 5) as f64) - 2.0).collect();
        let fast = xcorr(&signal, &template).unwrap();
        for k in 0..signal.len() {
            let direct: f64 = template
                .iter()
                .enumerate()
                .filter(|(n, _)| k + n < signal.len())
                .map(|(n, &t)| signal[k + n] * t)
                .sum();
            assert!((fast[k] - direct).abs() < 1e-8, "lag {k}");
        }
    }

    #[test]
    fn normalized_peak_is_one_for_exact_match() {
        let template = [0.5, -1.5, 2.5, 0.25, -0.75];
        let mut signal = vec![0.0; 32];
        signal[10..15].copy_from_slice(&template);
        let out = normalized_xcorr(&signal, &template).unwrap();
        assert!((out[10] - 1.0).abs() < 1e-9);
        assert_eq!(argmax(&out), 10);
    }

    #[test]
    fn normalized_is_gain_invariant() {
        let template = [1.0, -1.0, 2.0];
        let mut quiet = vec![0.0; 32];
        quiet[5..8].copy_from_slice(&[0.01, -0.01, 0.02]);
        let out = normalized_xcorr(&quiet, &template).unwrap();
        assert!((out[5] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn matched_filter_normalization() {
        let template = [2.0, 0.0, -2.0];
        let filter = MatchedFilter::new(&template).unwrap();
        let mut signal = vec![0.0; 16];
        signal[4..7].copy_from_slice(&template);
        let out = filter.correlate_normalized(&signal).unwrap();
        assert!((out[4] - 1.0).abs() < 1e-9);
        assert_eq!(filter.len(), 3);
        assert!(!filter.is_empty());
        assert!((filter.template_energy() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(xcorr(&[], &[1.0]).is_err());
        assert!(xcorr(&[1.0], &[]).is_err());
        assert!(xcorr(&[1.0], &[1.0, 2.0]).is_err());
        assert!(MatchedFilter::new(&[]).is_err());
        assert!(MatchedFilter::new(&[0.0, 0.0]).is_err());
        assert!(normalized_xcorr(&[1.0, 2.0], &[0.0]).is_err());
    }

    #[test]
    fn detects_template_in_noise() {
        // Deterministic pseudo-noise plus a strong template.
        let template: Vec<f64> = (0..32)
            .map(|i| (i as f64 * 0.7).sin() * (i as f64 * 0.13).cos())
            .collect();
        let mut signal: Vec<f64> = (0..512)
            .map(|i| 0.05 * ((i * 2654435761_usize % 1000) as f64 / 500.0 - 1.0))
            .collect();
        for (i, &t) in template.iter().enumerate() {
            signal[200 + i] += t;
        }
        let out = xcorr(&signal, &template).unwrap();
        assert_eq!(argmax(&out), 200);
    }

    #[test]
    fn two_occurrences_produce_two_peaks() {
        let template = [1.0, 2.0, 1.0];
        let mut signal = vec![0.0; 64];
        signal[10..13].copy_from_slice(&template);
        signal[40..43].copy_from_slice(&template);
        let out = xcorr(&signal, &template).unwrap();
        let energy: f64 = template.iter().map(|x| x * x).sum();
        assert!((out[10] - energy).abs() < 1e-9);
        assert!((out[40] - energy).abs() < 1e-9);
    }
}
