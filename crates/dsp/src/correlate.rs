//! Cross-correlation and matched filtering.
//!
//! HyperEar detects chirp beacons the BeepBeep way: "the recorded audio
//! signal at each microphone is correlated with a reference chirp signal.
//! The maximum peak of correlation is concluded as the location of a
//! signal" (Section IV-A). Correlation is computed in the frequency domain
//! so a full one-second stereo recording is cheap to scan.

use crate::complex::{conj_mul_in_place, conj_mul_planes};
use crate::fft::try_next_pow2;
use crate::plan::{
    shared_real_plan, shared_real_plan32, DspScratch, PlanCache, RealFft32Plan, RealFftPlan,
};
use crate::{Complex, DspError};
use std::sync::Arc;

fn validate_xcorr_inputs(signal: &[f64], template: &[f64]) -> Result<(), DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput {
            what: "xcorr signal",
        });
    }
    if template.is_empty() {
        return Err(DspError::EmptyInput {
            what: "xcorr template",
        });
    }
    if template.len() > signal.len() {
        return Err(DspError::invalid(
            "template",
            format!(
                "template ({}) longer than signal ({})",
                template.len(),
                signal.len()
            ),
        ));
    }
    Ok(())
}

/// Full cross-correlation of `signal` with `template` at all lags where the
/// template overlaps the signal start, computed via FFT.
///
/// `output[k] = Σ_n signal[n + k] · template[n]`, for `k` in
/// `0..signal.len()`. The value at `k` is large when the template occurs at
/// position `k` in the signal, making the output directly indexable by
/// arrival sample.
///
/// This is the one-shot convenience; repeated correlation should go
/// through [`xcorr_into`] (reusable plans/scratch) or a [`MatchedFilter`]
/// (which additionally caches the template spectrum).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if either input is empty, and
/// [`DspError::InvalidParameter`] if the template is longer than the signal.
pub fn xcorr(signal: &[f64], template: &[f64]) -> Result<Vec<f64>, DspError> {
    let mut out = Vec::new();
    crate::plan::with_thread_ctx(|plans, scratch| {
        xcorr_into(signal, template, plans, scratch, &mut out)
    })?;
    Ok(out)
}

/// Planned cross-correlation: identical output to [`xcorr`], but all FFT
/// setup comes from `plans` and all working storage from `scratch`/`out`,
/// so steady-state calls at warm sizes do not allocate.
///
/// `out` is cleared and refilled (its capacity is reused).
///
/// # Errors
///
/// Same conditions as [`xcorr`].
pub fn xcorr_into(
    signal: &[f64],
    template: &[f64],
    plans: &mut PlanCache,
    scratch: &mut DspScratch,
    out: &mut Vec<f64>,
) -> Result<(), DspError> {
    validate_xcorr_inputs(signal, template)?;
    let n = try_next_pow2(signal.len().saturating_add(template.len()))?;
    let plan = plans.real_plan(n)?;
    plan.rfft_half_into(signal, &mut scratch.c1)?;
    plan.rfft_half_into(template, &mut scratch.c2)?;
    conj_mul_in_place(&mut scratch.c1, &scratch.c2);
    let DspScratch { c1, r1, .. } = scratch;
    plan.irfft_half_into(c1, r1)?;
    out.clear();
    out.extend_from_slice(&r1[..signal.len()]);
    Ok(())
}

/// Normalized cross-correlation: [`xcorr`] scaled so a perfect match of the
/// template at a lag yields 1.0.
///
/// Normalization divides by `‖template‖ · ‖signal window‖` at each lag,
/// making the output comparable across recordings with different gains.
///
/// # Errors
///
/// Same conditions as [`xcorr`].
pub fn normalized_xcorr(signal: &[f64], template: &[f64]) -> Result<Vec<f64>, DspError> {
    let raw = xcorr(signal, template)?;
    let tpl_energy: f64 = template.iter().map(|x| x * x).sum();
    let tpl_norm = tpl_energy.sqrt();
    if tpl_norm == 0.0 {
        return Err(DspError::invalid("template", "template has zero energy"));
    }
    // Sliding window energy of the signal via prefix sums.
    let mut prefix = vec![0.0; signal.len() + 1];
    for (i, &s) in signal.iter().enumerate() {
        prefix[i + 1] = prefix[i] + s * s;
    }
    let m = template.len();
    let out = raw
        .iter()
        .enumerate()
        .map(|(k, &r)| {
            let end = (k + m).min(signal.len());
            let win_energy = prefix[end] - prefix[k];
            if win_energy <= 0.0 {
                0.0
            } else {
                r / (tpl_norm * win_energy.sqrt())
            }
        })
        .collect();
    Ok(out)
}

/// A reusable matched filter with per-size cached template spectra.
///
/// When the same reference chirp is correlated against many recordings
/// (every slide, every microphone, every session), the template's FFT is
/// the same work each time. The filter owns a [`PlanCache`] and memoizes
/// the template spectrum per padded FFT length, so over a filter's
/// lifetime **at most one template FFT runs per padded length** — the
/// [`MatchedFilter::template_fft_count`] counter makes that observable.
/// The `*_into` methods are the planned hot path (allocation-free once
/// warm); `correlate`/`correlate_normalized` remain as one-shot wrappers.
#[derive(Debug, Clone)]
pub struct MatchedFilter {
    template: Vec<f64>,
    template_energy: f64,
    plans: PlanCache,
    /// Cached template half-spectra, keyed by padded FFT length.
    spectra: Vec<(usize, Vec<Complex>)>,
    template_ffts: usize,
}

impl MatchedFilter {
    /// Creates a matched filter for `template`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty template and
    /// [`DspError::InvalidParameter`] for an all-zero template.
    pub fn new(template: &[f64]) -> Result<Self, DspError> {
        if template.is_empty() {
            return Err(DspError::EmptyInput {
                what: "matched filter template",
            });
        }
        let energy: f64 = template.iter().map(|x| x * x).sum();
        if energy == 0.0 {
            return Err(DspError::invalid("template", "template has zero energy"));
        }
        Ok(MatchedFilter {
            template: template.to_vec(),
            template_energy: energy,
            plans: PlanCache::new(),
            spectra: Vec::new(),
            template_ffts: 0,
        })
    }

    /// The template length in samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.template.len()
    }

    /// Whether the template is empty (never true for a constructed filter).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.template.is_empty()
    }

    /// The template energy `Σ x²`.
    #[must_use]
    pub fn template_energy(&self) -> f64 {
        self.template_energy
    }

    /// How many template FFTs have run over this filter's lifetime.
    ///
    /// Stays at the number of distinct padded lengths seen — the
    /// "at most one template FFT per (template, padded length) pair"
    /// guarantee of the spectrum cache.
    #[must_use]
    pub fn template_fft_count(&self) -> usize {
        self.template_ffts
    }

    /// The cached template half-spectrum for padded length `n`, computing
    /// and memoizing it on first use.
    fn template_spectrum(&mut self, n: usize) -> Result<usize, DspError> {
        if let Some(i) = self.spectra.iter().position(|(len, _)| *len == n) {
            return Ok(i);
        }
        let plan = self.plans.real_plan(n)?;
        let mut spec = Vec::with_capacity(plan.num_bins());
        plan.rfft_half_into(&self.template, &mut spec)?;
        self.template_ffts += 1;
        self.spectra.push((n, spec));
        Ok(self.spectra.len() - 1)
    }

    /// Planned raw correlation: identical output to
    /// [`MatchedFilter::correlate`], with the template spectrum served
    /// from the per-length cache, FFT setup from the internal plan cache,
    /// and working storage borrowed from `scratch`/`out`. Steady-state
    /// calls at warm sizes do not allocate.
    ///
    /// `out` is cleared and refilled (its capacity is reused).
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate_into(
        &mut self,
        signal: &[f64],
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        validate_xcorr_inputs(signal, &self.template)?;
        let n = try_next_pow2(signal.len().saturating_add(self.template.len()))?;
        let plan = self.plans.real_plan(n)?;
        let idx = self.template_spectrum(n)?;
        let tpl_spec = &self.spectra[idx].1;
        plan.rfft_half_into(signal, &mut scratch.c1)?;
        conj_mul_in_place(&mut scratch.c1, tpl_spec);
        let DspScratch { c1, r1, .. } = scratch;
        plan.irfft_half_into(c1, r1)?;
        out.clear();
        out.extend_from_slice(&r1[..signal.len()]);
        Ok(())
    }

    /// Planned normalized correlation: identical output to
    /// [`MatchedFilter::correlate_normalized`], on the allocation-free
    /// path of [`MatchedFilter::correlate_into`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate_normalized_into(
        &mut self,
        signal: &[f64],
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        self.correlate_into(signal, scratch, out)?;
        let k = 1.0 / self.template_energy;
        for v in out.iter_mut() {
            *v *= k;
        }
        Ok(())
    }

    /// Raw correlation of the filter template against `signal`.
    ///
    /// See [`xcorr`] for the output convention.
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate(&self, signal: &[f64]) -> Result<Vec<f64>, DspError> {
        xcorr(signal, &self.template)
    }

    /// Normalized correlation (template-energy normalized only).
    ///
    /// Output of 1.0 means the signal window equals the template exactly;
    /// unlike [`normalized_xcorr`] the signal window energy is not divided
    /// out, so absolute amplitude still matters. This matches the
    /// matched-filter SNR detection used for beacon finding: we want loud,
    /// template-shaped events.
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate_normalized(&self, signal: &[f64]) -> Result<Vec<f64>, DspError> {
        let mut out = self.correlate(signal)?;
        let k = 1.0 / self.template_energy;
        for v in &mut out {
            *v *= k;
        }
        Ok(out)
    }
}

/// Overlap-save block cross-correlation against a fixed template.
///
/// Correlates an arbitrarily long signal one FFT block at a time: each
/// block gathers `block_len` samples of the (implicitly zero-padded,
/// optionally `lead`-shifted) signal, multiplies its half-spectrum by the
/// conjugated template half-spectrum, and keeps the first
/// `block_len - template_len + 1` inverse-transform outputs — the lags
/// free of circular wraparound. Blocks advance by that step, overlapping
/// by `template_len - 1` samples.
///
/// This is the shared engine behind [`StreamingMatchedFilter`] (with
/// `lead = 0`) and the FFT zero-phase FIR path (with `lead` compensating
/// the filter group delay). Peak FFT size is `block_len`, independent of
/// how long the signal is.
#[derive(Debug, Clone)]
pub(crate) struct OverlapSave {
    /// Shared, read-only FFT tables for the block size: every engine at
    /// one block length in the process points at the same plan.
    plan: Arc<RealFftPlan>,
    /// Template half-spectrum at `block_len` (not conjugated).
    template_spec: Vec<Complex>,
    template_len: usize,
}

impl OverlapSave {
    /// Builds the engine for `template` with FFT blocks of `block_len`.
    ///
    /// `block_len` must be a power of two and at least `template.len()`
    /// (otherwise no lag is free of circular wraparound).
    pub(crate) fn new(template: &[f64], block_len: usize) -> Result<Self, DspError> {
        if template.is_empty() {
            return Err(DspError::EmptyInput {
                what: "overlap-save template",
            });
        }
        if block_len < template.len() {
            return Err(DspError::invalid(
                "block_len",
                format!(
                    "block ({block_len}) shorter than template ({})",
                    template.len()
                ),
            ));
        }
        let plan = shared_real_plan(block_len)?;
        let mut template_spec = Vec::with_capacity(plan.num_bins());
        plan.rfft_half_into(template, &mut template_spec)?;
        Ok(OverlapSave {
            plan,
            template_spec,
            template_len: template.len(),
        })
    }

    pub(crate) fn block_len(&self) -> usize {
        self.plan.len()
    }

    /// Valid (wraparound-free) output lags per block.
    pub(crate) fn step(&self) -> usize {
        self.block_len() - self.template_len + 1
    }

    /// Writes `out[k] = Σ_n signal[n + k - lead] · template[n]` for
    /// `k` in `0..out_len`, treating the signal as zero outside its
    /// bounds. `lead = 0` reproduces the [`xcorr`] convention.
    pub(crate) fn run(
        &self,
        signal: &[f64],
        lead: usize,
        out_len: usize,
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        out.clear();
        out.reserve(out_len);
        let block = self.block_len();
        let step = self.step();
        let mut pos = 0;
        while pos < out_len {
            scratch.r1.clear();
            scratch.r1.extend((pos..pos + block).map(|j| {
                j.checked_sub(lead)
                    .and_then(|i| signal.get(i))
                    .copied()
                    .unwrap_or(0.0)
            }));
            self.plan.rfft_half_into(&scratch.r1, &mut scratch.c1)?;
            conj_mul_in_place(&mut scratch.c1, &self.template_spec);
            let DspScratch { c1, r1, .. } = scratch;
            self.plan.irfft_half_into(c1, r1)?;
            let take = step.min(out_len - pos);
            out.extend_from_slice(&r1[..take]);
            pos += step;
        }
        Ok(())
    }
}

/// Incremental ingestion state for one overlap-save engine: the partial
/// FFT block under assembly plus push/emit progress counters.
///
/// A feed turns a blocked engine ([`StreamingMatchedFilter`],
/// [`crate::filter::ZeroPhaseFir`]) into an online one: samples arrive in
/// chunks of any size (single samples to whole captures) and completed
/// output lags are emitted as soon as their FFT block fills. The engine
/// itself stays `&self` and immutable — all mutable state lives here, so
/// one engine can serve many concurrent feeds.
///
/// Because a block is transformed exactly when it reaches `block_len`
/// samples, the block contents — and therefore every emitted value — are
/// **bit-identical** regardless of how the input was chunked, and
/// bit-identical to the corresponding one-shot call
/// ([`StreamingMatchedFilter::correlate_into`] /
/// [`crate::filter::ZeroPhaseFir::filter_into`]) on the concatenated
/// input.
///
/// The working set is one `block_len` buffer, independent of how many
/// samples have been pushed.
///
/// The sample type parameter defaults to `f64` (the conformance path);
/// the reduced-precision engines ([`StreamingMatchedFilter32`],
/// `ZeroPhaseFir32`) hand out `ChunkFeed<f32>` feeds with identical
/// semantics.
#[derive(Debug, Clone)]
pub struct ChunkFeed<T = f64> {
    /// The sliding window of the implicitly padded input stream
    /// (`lead` zeros, then every pushed sample, then flush-time zeros):
    /// always equal to `padded[blocks_done * step ..]`, capacity
    /// `block_len`.
    pub(crate) buf: Vec<T>,
    pub(crate) lead: usize,
    pub(crate) block_len: usize,
    pub(crate) template_len: usize,
    pub(crate) pushed: usize,
    pub(crate) emitted: usize,
    pub(crate) finished: bool,
}

impl<T: Copy + Default> ChunkFeed<T> {
    pub(crate) fn new(lead: usize, block_len: usize, template_len: usize) -> Self {
        let mut buf = Vec::with_capacity(block_len);
        buf.resize(lead, T::default());
        ChunkFeed {
            buf,
            lead,
            block_len,
            template_len,
            pushed: 0,
            emitted: 0,
            finished: false,
        }
    }

    /// Samples pushed since construction or the last reset.
    #[must_use]
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// Output values emitted so far (always `<=` [`ChunkFeed::pushed`]).
    #[must_use]
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Whether the stream has been finished; a finished feed rejects
    /// further pushes until [`ChunkFeed::reset`].
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Returns the feed to its initial state for a fresh stream, keeping
    /// the block buffer's capacity (no allocation).
    pub fn reset(&mut self) {
        self.buf.clear();
        self.buf.resize(self.lead, T::default());
        self.pushed = 0;
        self.emitted = 0;
        self.finished = false;
    }

    /// Bytes reserved by the feed's block buffer.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.buf.capacity() * std::mem::size_of::<T>()
    }
}

impl OverlapSave {
    fn check_feed(&self, feed: &ChunkFeed, expected_lead: usize) -> Result<(), DspError> {
        if feed.block_len != self.block_len()
            || feed.template_len != self.template_len
            || feed.lead != expected_lead
        {
            return Err(DspError::invalid(
                "feed",
                "chunk feed was created for a different engine",
            ));
        }
        if feed.finished {
            return Err(DspError::invalid(
                "feed",
                "chunk feed already finished; call reset() before reuse",
            ));
        }
        Ok(())
    }

    /// Transforms the (full) block in `feed.buf`, leaving the block's
    /// correlation lags in `scratch.r1` and sliding the buffer forward by
    /// one step so only the `template_len - 1` overlap tail remains.
    fn feed_transform(
        &self,
        feed: &mut ChunkFeed,
        scratch: &mut DspScratch,
    ) -> Result<(), DspError> {
        debug_assert_eq!(feed.buf.len(), self.block_len());
        scratch.r1.clear();
        scratch.r1.extend_from_slice(&feed.buf);
        self.plan.rfft_half_into(&scratch.r1, &mut scratch.c1)?;
        conj_mul_in_place(&mut scratch.c1, &self.template_spec);
        let DspScratch { c1, r1, .. } = scratch;
        self.plan.irfft_half_into(c1, r1)?;
        let step = self.step();
        feed.buf.copy_within(step.., 0);
        feed.buf.truncate(self.block_len() - step);
        Ok(())
    }

    /// Appends `chunk` to the feed, emitting (appending to `out`) the
    /// lags of every FFT block that fills. Emission never runs ahead of
    /// ingestion: `emitted <= pushed` holds throughout because
    /// `lead <= template_len - 1`.
    pub(crate) fn feed_push(
        &self,
        feed: &mut ChunkFeed,
        expected_lead: usize,
        chunk: &[f64],
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        self.check_feed(feed, expected_lead)?;
        let block = self.block_len();
        let step = self.step();
        let mut rest = chunk;
        while !rest.is_empty() {
            let take = (block - feed.buf.len()).min(rest.len());
            feed.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if feed.buf.len() == block {
                self.feed_transform(feed, scratch)?;
                out.extend_from_slice(&scratch.r1[..step]);
                feed.emitted += step;
            }
        }
        feed.pushed += chunk.len();
        debug_assert!(feed.emitted <= feed.pushed);
        Ok(())
    }

    /// Flushes the feed: zero-pads the final blocks and emits (appending
    /// to `out`) every remaining lag up to the `pushed` total, exactly
    /// reproducing [`OverlapSave::run`]'s output length and values for
    /// the concatenated input. Marks the feed finished.
    pub(crate) fn feed_finish(
        &self,
        feed: &mut ChunkFeed,
        expected_lead: usize,
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        self.check_feed(feed, expected_lead)?;
        let total = feed.pushed;
        while feed.emitted < total {
            feed.buf.resize(self.block_len(), 0.0);
            self.feed_transform(feed, scratch)?;
            let take = self.step().min(total - feed.emitted);
            out.extend_from_slice(&scratch.r1[..take]);
            feed.emitted += take;
        }
        feed.finished = true;
        Ok(())
    }
}

/// Single-precision overlap-save engine over split re/im planes — the
/// f32 analogue of [`OverlapSave`], built on [`RealFft32Plan`] and the
/// [`conj_mul_planes`] kernel. Same block geometry and zero-padding
/// semantics; all samples, spectra and outputs are `f32`.
#[derive(Debug, Clone)]
pub(crate) struct OverlapSave32 {
    plan: Arc<RealFft32Plan>,
    /// Template half-spectrum planes at `block_len` (not conjugated).
    template_re: Vec<f32>,
    template_im: Vec<f32>,
    template_len: usize,
}

impl OverlapSave32 {
    /// Builds the engine for `template` with FFT blocks of `block_len`
    /// (power of two, at least `template.len()`).
    pub(crate) fn new(template: &[f32], block_len: usize) -> Result<Self, DspError> {
        if template.is_empty() {
            return Err(DspError::EmptyInput {
                what: "overlap-save template",
            });
        }
        if block_len < template.len() {
            return Err(DspError::invalid(
                "block_len",
                format!(
                    "block ({block_len}) shorter than template ({})",
                    template.len()
                ),
            ));
        }
        let plan = shared_real_plan32(block_len)?;
        let mut template_re = Vec::with_capacity(plan.num_bins());
        let mut template_im = Vec::with_capacity(plan.num_bins());
        plan.rfft_half_into(template, &mut template_re, &mut template_im)?;
        Ok(OverlapSave32 {
            plan,
            template_re,
            template_im,
            template_len: template.len(),
        })
    }

    pub(crate) fn block_len(&self) -> usize {
        self.plan.len()
    }

    /// Valid (wraparound-free) output lags per block.
    pub(crate) fn step(&self) -> usize {
        self.block_len() - self.template_len + 1
    }

    /// Transforms one assembled block in `scratch.r32`, leaving the
    /// block's correlation lags back in `scratch.r32`.
    fn transform_block(&self, scratch: &mut DspScratch) -> Result<(), DspError> {
        let DspScratch {
            f1_re, f1_im, r32, ..
        } = scratch;
        self.plan.rfft_half_into(r32, f1_re, f1_im)?;
        conj_mul_planes(f1_re, f1_im, &self.template_re, &self.template_im);
        self.plan.irfft_half_into(f1_re, f1_im, r32)
    }

    /// Writes `out[k] = Σ_n signal[n + k - lead] · template[n]` for
    /// `k` in `0..out_len`, treating the signal as zero outside its
    /// bounds (f32 analogue of [`OverlapSave::run`]).
    pub(crate) fn run(
        &self,
        signal: &[f32],
        lead: usize,
        out_len: usize,
        scratch: &mut DspScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), DspError> {
        out.clear();
        out.reserve(out_len);
        let block = self.block_len();
        let step = self.step();
        let mut pos = 0;
        while pos < out_len {
            scratch.r32.clear();
            scratch.r32.extend((pos..pos + block).map(|j| {
                j.checked_sub(lead)
                    .and_then(|i| signal.get(i))
                    .copied()
                    .unwrap_or(0.0)
            }));
            self.transform_block(scratch)?;
            let take = step.min(out_len - pos);
            out.extend_from_slice(&scratch.r32[..take]);
            pos += step;
        }
        Ok(())
    }

    fn check_feed(&self, feed: &ChunkFeed<f32>, expected_lead: usize) -> Result<(), DspError> {
        if feed.block_len != self.block_len()
            || feed.template_len != self.template_len
            || feed.lead != expected_lead
        {
            return Err(DspError::invalid(
                "feed",
                "chunk feed was created for a different engine",
            ));
        }
        if feed.finished {
            return Err(DspError::invalid(
                "feed",
                "chunk feed already finished; call reset() before reuse",
            ));
        }
        Ok(())
    }

    /// Transforms the (full) block in `feed.buf`, leaving the block's
    /// correlation lags in `scratch.r32` and sliding the buffer forward
    /// by one step.
    fn feed_transform(
        &self,
        feed: &mut ChunkFeed<f32>,
        scratch: &mut DspScratch,
    ) -> Result<(), DspError> {
        debug_assert_eq!(feed.buf.len(), self.block_len());
        scratch.r32.clear();
        scratch.r32.extend_from_slice(&feed.buf);
        self.transform_block(scratch)?;
        let step = self.step();
        feed.buf.copy_within(step.., 0);
        feed.buf.truncate(self.block_len() - step);
        Ok(())
    }

    /// Appends `chunk` to the feed, emitting the lags of every FFT block
    /// that fills (f32 analogue of [`OverlapSave::feed_push`]).
    pub(crate) fn feed_push(
        &self,
        feed: &mut ChunkFeed<f32>,
        expected_lead: usize,
        chunk: &[f32],
        scratch: &mut DspScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), DspError> {
        self.check_feed(feed, expected_lead)?;
        let block = self.block_len();
        let step = self.step();
        let mut rest = chunk;
        while !rest.is_empty() {
            let take = (block - feed.buf.len()).min(rest.len());
            feed.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if feed.buf.len() == block {
                self.feed_transform(feed, scratch)?;
                out.extend_from_slice(&scratch.r32[..step]);
                feed.emitted += step;
            }
        }
        feed.pushed += chunk.len();
        debug_assert!(feed.emitted <= feed.pushed);
        Ok(())
    }

    /// Flushes the feed, emitting every remaining lag up to the `pushed`
    /// total (f32 analogue of [`OverlapSave::feed_finish`]).
    pub(crate) fn feed_finish(
        &self,
        feed: &mut ChunkFeed<f32>,
        expected_lead: usize,
        scratch: &mut DspScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), DspError> {
        self.check_feed(feed, expected_lead)?;
        let total = feed.pushed;
        while feed.emitted < total {
            feed.buf.resize(self.block_len(), 0.0);
            self.feed_transform(feed, scratch)?;
            let take = self.step().min(total - feed.emitted);
            out.extend_from_slice(&scratch.r32[..take]);
            feed.emitted += take;
        }
        feed.finished = true;
        Ok(())
    }
}

/// Folds a zero-phase FIR prefilter into a correlation template:
/// `G[u] = Σⱼ h[j]·t[u − (T−1) + j]`, the full cross-correlation of the
/// template with the taps, accumulated in f64. Correlating a raw signal
/// against `G` at lead `(T−1)/2` reproduces band-pass-then-correlate
/// exactly for every full-overlap lag (`corr(bp(x), t) = corr(x, bp⋆t)`
/// for LTI filtering under zero-extension boundaries) — the algebra
/// behind [`StreamingMatchedFilter::with_zero_phase_prefilter`] and the
/// template banks, which pay for the prefilter at construction instead
/// of once per input pass.
fn fold_zero_phase_taps(template: &[f64], taps: &[f64]) -> Vec<f64> {
    let m = template.len();
    let t = taps.len();
    (0..m + t - 1)
        .map(|u| {
            let mut acc = 0.0f64;
            for (j, &h) in taps.iter().enumerate() {
                let idx = u as isize - (t as isize - 1) + j as isize;
                if (0..m as isize).contains(&idx) {
                    acc += h * template[idx as usize];
                }
            }
            acc
        })
        .collect()
}

/// The single-precision streaming matched filter behind the opt-in f32
/// pipeline (`Precision::F32` in the core crate).
///
/// API and block geometry mirror [`StreamingMatchedFilter`]; samples,
/// spectra and outputs are `f32` stored in split re/im planes, which is
/// what lets the spectral kernels run 8-wide. There is **no bit-identity
/// contract** on this path — accuracy against the f64 reference is
/// pinned statistically by the precision property tests (clean-session
/// TDoA error within the one-sample floor), and f64 remains the
/// conformance reference (DESIGN.md §11).
#[derive(Debug, Clone)]
pub struct StreamingMatchedFilter32 {
    core: OverlapSave32,
    /// `Σ x²` accumulated in f64 so normalization quality does not
    /// depend on template length.
    template_energy: f64,
    /// Lag-origin offset into the engine's template: nonzero only for
    /// folded-prefilter templates, whose first `lead` entries reach
    /// *before* the nominal template start (the zero-phase group delay).
    lead: usize,
}

impl StreamingMatchedFilter32 {
    /// Creates a filter with the default block policy
    /// (`next_pow2(4 × template.len())`).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty template and
    /// [`DspError::InvalidParameter`] for an all-zero template.
    pub fn new(template: &[f32]) -> Result<Self, DspError> {
        let block = try_next_pow2(template.len().saturating_mul(4))?;
        Self::with_block_len(template, block)
    }

    /// Creates a filter with an explicit FFT block length (power of two,
    /// at least `template.len()`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`StreamingMatchedFilter32::new`], plus
    /// [`DspError::InvalidParameter`] for an invalid `block_len`.
    pub fn with_block_len(template: &[f32], block_len: usize) -> Result<Self, DspError> {
        let energy: f64 = template.iter().map(|&x| x as f64 * x as f64).sum();
        if !template.is_empty() && energy == 0.0 {
            return Err(DspError::invalid("template", "template has zero energy"));
        }
        Ok(StreamingMatchedFilter32 {
            core: OverlapSave32::new(template, block_len)?,
            template_energy: energy,
            lead: 0,
        })
    }

    /// Creates a filter with a zero-phase FIR prefilter **folded into
    /// the template**: correlating a raw signal through the returned
    /// filter produces the same lags as band-passing the signal with
    /// `taps` (zero-phase, group-delay compensated) and then correlating
    /// with `template` — one overlap-save pass instead of two.
    ///
    /// The identity is exact for linear filtering under the
    /// zero-extension boundary semantics both engines use: with
    /// `delay = (taps.len() − 1) / 2`,
    /// `Σₙ bp(x)[n+k]·t[n] = Σᵤ x[u+k−delay]·G[u]` where
    /// `G[u] = Σⱼ h[j]·t[u − (T−1) + j]` is the full cross-correlation
    /// of the template with the taps. The fold is accumulated in f64 and
    /// rounded once; normalization still divides by the **original**
    /// template's energy so peak amplitudes match the unfolded
    /// two-pass pipeline.
    ///
    /// One boundary caveat: the two-pass pipeline truncates the
    /// prefilter's ringing tail at the signal end, the folded engine
    /// keeps it, so the final `template.len() − 1` lags — the
    /// partial-overlap region where a matched filter's output is not
    /// meaningful anyway — may differ between the two formulations.
    /// Every lag `k < signal.len() − template.len() + 1` is identical.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StreamingMatchedFilter32::new`], plus
    /// [`DspError::EmptyInput`] for an empty `taps` slice.
    pub fn with_zero_phase_prefilter(template: &[f32], taps: &[f64]) -> Result<Self, DspError> {
        if template.is_empty() {
            return Err(DspError::EmptyInput {
                what: "matched-filter template",
            });
        }
        if taps.is_empty() {
            return Err(DspError::EmptyInput {
                what: "prefilter taps",
            });
        }
        let energy: f64 = template.iter().map(|&x| x as f64 * x as f64).sum();
        if energy == 0.0 {
            return Err(DspError::invalid("template", "template has zero energy"));
        }
        let delay = (taps.len() - 1) / 2;
        let template_f64: Vec<f64> = template.iter().map(|&x| f64::from(x)).collect();
        let folded: Vec<f32> = fold_zero_phase_taps(&template_f64, taps)
            .into_iter()
            .map(|v| v as f32)
            .collect();
        let block = try_next_pow2(folded.len().saturating_mul(4))?;
        Ok(StreamingMatchedFilter32 {
            core: OverlapSave32::new(&folded, block)?,
            template_energy: energy,
            lead: delay,
        })
    }

    /// The template length in samples.
    #[must_use]
    pub fn template_len(&self) -> usize {
        self.core.template_len
    }

    /// The FFT block length — the peak transform size of every call.
    #[must_use]
    pub fn block_len(&self) -> usize {
        self.core.block_len()
    }

    /// Valid correlation lags produced per block.
    #[must_use]
    pub fn step(&self) -> usize {
        self.core.step()
    }

    /// The template energy `Σ x²` (accumulated in f64).
    #[must_use]
    pub fn template_energy(&self) -> f64 {
        self.template_energy
    }

    /// Blocked raw correlation; same output convention as [`xcorr`].
    /// Steady-state calls at warm sizes do not allocate.
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate_into(
        &self,
        signal: &[f32],
        scratch: &mut DspScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput {
                what: "xcorr signal",
            });
        }
        if self.template_len() > signal.len() {
            return Err(DspError::invalid(
                "template",
                format!(
                    "template ({}) longer than signal ({})",
                    self.template_len(),
                    signal.len()
                ),
            ));
        }
        self.core.run(signal, self.lead, signal.len(), scratch, out)
    }

    /// Blocked template-energy-normalized correlation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate_normalized_into(
        &self,
        signal: &[f32],
        scratch: &mut DspScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), DspError> {
        self.correlate_into(signal, scratch, out)?;
        let k = (1.0 / self.template_energy) as f32;
        for v in out.iter_mut() {
            *v *= k;
        }
        Ok(())
    }

    /// Creates an online ingestion feed for this filter (see
    /// [`ChunkFeed`]).
    #[must_use]
    pub fn chunk_feed(&self) -> ChunkFeed<f32> {
        ChunkFeed::new(self.lead, self.block_len(), self.template_len())
    }

    /// Pushes `chunk` into `feed`, appending every raw correlation lag
    /// whose FFT block completed to `out`. The flushed stream is
    /// bit-identical to [`StreamingMatchedFilter32::correlate_into`]
    /// over the concatenated chunks, independent of chunking.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `feed` was created by a
    /// different engine or has already been finished.
    pub fn push_chunk_into(
        &self,
        feed: &mut ChunkFeed<f32>,
        chunk: &[f32],
        scratch: &mut DspScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), DspError> {
        self.core.feed_push(feed, self.lead, chunk, scratch, out)
    }

    /// [`StreamingMatchedFilter32::push_chunk_into`] with the emitted
    /// lags template-energy normalized.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StreamingMatchedFilter32::push_chunk_into`].
    pub fn push_chunk_normalized_into(
        &self,
        feed: &mut ChunkFeed<f32>,
        chunk: &[f32],
        scratch: &mut DspScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), DspError> {
        let start = out.len();
        self.push_chunk_into(feed, chunk, scratch, out)?;
        let k = (1.0 / self.template_energy) as f32;
        for v in &mut out[start..] {
            *v *= k;
        }
        Ok(())
    }

    /// Flushes `feed`, appending the remaining raw lags to `out` (one
    /// lag per pushed sample).
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`StreamingMatchedFilter::finish_chunks_into`].
    pub fn finish_chunks_into(
        &self,
        feed: &mut ChunkFeed<f32>,
        scratch: &mut DspScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), DspError> {
        if !feed.finished && feed.pushed == 0 {
            return Err(DspError::EmptyInput {
                what: "xcorr signal",
            });
        }
        if !feed.finished && feed.pushed < self.template_len() {
            return Err(DspError::invalid(
                "template",
                format!(
                    "template ({}) longer than signal ({})",
                    self.template_len(),
                    feed.pushed
                ),
            ));
        }
        self.core.feed_finish(feed, self.lead, scratch, out)
    }

    /// [`StreamingMatchedFilter32::finish_chunks_into`] with the emitted
    /// lags template-energy normalized.
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`StreamingMatchedFilter32::finish_chunks_into`].
    pub fn finish_chunks_normalized_into(
        &self,
        feed: &mut ChunkFeed<f32>,
        scratch: &mut DspScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), DspError> {
        let start = out.len();
        self.finish_chunks_into(feed, scratch, out)?;
        let k = (1.0 / self.template_energy) as f32;
        for v in &mut out[start..] {
            *v *= k;
        }
        Ok(())
    }
}

/// A matched filter that correlates in fixed-size overlap-save blocks.
///
/// Where [`MatchedFilter`] pads the whole capture to one
/// `next_pow2(signal + template)` transform — a multi-second capture means
/// a 2^20-point FFT and megabytes of scratch — this filter processes the
/// signal through [`OverlapSave`] blocks of `block_len` samples
/// (default `next_pow2(4 × template)`, so 4–8× the template length).
/// Cost is O(N log B) time and O(B) working memory: the peak FFT size is
/// [`StreamingMatchedFilter::block_len`] regardless of capture length,
/// which is what makes streaming ingestion of unbounded captures possible.
///
/// # Accuracy
///
/// Output is *bit-close, not bit-identical*, to one-shot [`xcorr`]: both
/// compute the same exact sum per lag, but block boundaries change the
/// floating-point summation order. The difference is pinned by tests at
/// `≤ 1e-9 · (1 + max|xcorr|)` per lag (observed error is ~1e-12
/// relative for audio-scale inputs).
///
/// The hot methods take `&self` — one filter can serve many channels
/// concurrently, each with its own [`DspScratch`].
#[derive(Debug, Clone)]
pub struct StreamingMatchedFilter {
    core: OverlapSave,
    template_energy: f64,
    /// Lag-origin offset into the engine's template: nonzero only for
    /// folded-prefilter templates, whose first `lead` entries reach
    /// *before* the nominal template start (the zero-phase group delay).
    lead: usize,
}

impl StreamingMatchedFilter {
    /// Creates a streaming matched filter with the default block policy:
    /// `block_len = next_pow2(4 × template.len())`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty template and
    /// [`DspError::InvalidParameter`] for an all-zero template.
    pub fn new(template: &[f64]) -> Result<Self, DspError> {
        let block = try_next_pow2(template.len().saturating_mul(4))?;
        Self::with_block_len(template, block)
    }

    /// Creates a streaming matched filter with an explicit FFT block
    /// length (power of two, at least `template.len()`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`StreamingMatchedFilter::new`], plus
    /// [`DspError::InvalidParameter`] for an invalid `block_len`.
    pub fn with_block_len(template: &[f64], block_len: usize) -> Result<Self, DspError> {
        let energy: f64 = template.iter().map(|x| x * x).sum();
        if !template.is_empty() && energy == 0.0 {
            return Err(DspError::invalid("template", "template has zero energy"));
        }
        Ok(StreamingMatchedFilter {
            core: OverlapSave::new(template, block_len)?,
            template_energy: energy,
            lead: 0,
        })
    }

    /// Creates a filter with a zero-phase FIR prefilter **folded into
    /// the template** — the f64 counterpart of
    /// [`StreamingMatchedFilter32::with_zero_phase_prefilter`], with the
    /// identical algebra and boundary caveat (the final
    /// `template.len() − 1` partial-overlap lags may differ from the
    /// two-pass pipeline; every full-overlap lag is exact up to
    /// floating-point summation order). The fold runs entirely in f64,
    /// and normalization divides by the **original** template's energy
    /// so peak amplitudes match the unfolded two-pass pipeline.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StreamingMatchedFilter::new`], plus
    /// [`DspError::EmptyInput`] for an empty `taps` slice.
    pub fn with_zero_phase_prefilter(template: &[f64], taps: &[f64]) -> Result<Self, DspError> {
        if template.is_empty() {
            return Err(DspError::EmptyInput {
                what: "matched-filter template",
            });
        }
        if taps.is_empty() {
            return Err(DspError::EmptyInput {
                what: "prefilter taps",
            });
        }
        let energy: f64 = template.iter().map(|x| x * x).sum();
        if energy == 0.0 {
            return Err(DspError::invalid("template", "template has zero energy"));
        }
        let folded = fold_zero_phase_taps(template, taps);
        let block = try_next_pow2(folded.len().saturating_mul(4))?;
        Ok(StreamingMatchedFilter {
            core: OverlapSave::new(&folded, block)?,
            template_energy: energy,
            lead: (taps.len() - 1) / 2,
        })
    }

    /// The template length in samples.
    #[must_use]
    pub fn template_len(&self) -> usize {
        self.core.template_len
    }

    /// The FFT block length — the peak transform size of every call,
    /// independent of signal length.
    #[must_use]
    pub fn block_len(&self) -> usize {
        self.core.block_len()
    }

    /// Valid correlation lags produced per block
    /// (`block_len - template_len + 1`).
    #[must_use]
    pub fn step(&self) -> usize {
        self.core.step()
    }

    /// The template energy `Σ x²`.
    #[must_use]
    pub fn template_energy(&self) -> f64 {
        self.template_energy
    }

    /// Blocked raw correlation; same output convention as [`xcorr`]
    /// (see the struct docs for the accuracy contract). Steady-state
    /// calls at warm sizes do not allocate.
    ///
    /// `out` is cleared and refilled (its capacity is reused).
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate_into(
        &self,
        signal: &[f64],
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput {
                what: "xcorr signal",
            });
        }
        if self.template_len() > signal.len() {
            return Err(DspError::invalid(
                "template",
                format!(
                    "template ({}) longer than signal ({})",
                    self.template_len(),
                    signal.len()
                ),
            ));
        }
        self.core.run(signal, self.lead, signal.len(), scratch, out)
    }

    /// Blocked template-energy-normalized correlation; same output
    /// convention as [`MatchedFilter::correlate_normalized`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate_normalized_into(
        &self,
        signal: &[f64],
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        self.correlate_into(signal, scratch, out)?;
        let k = 1.0 / self.template_energy;
        for v in out.iter_mut() {
            *v *= k;
        }
        Ok(())
    }

    /// One-shot convenience over [`StreamingMatchedFilter::correlate_into`]
    /// using the thread-local scratch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`].
    pub fn correlate(&self, signal: &[f64]) -> Result<Vec<f64>, DspError> {
        let mut out = Vec::new();
        crate::plan::with_thread_ctx(|_, scratch| self.correlate_into(signal, scratch, &mut out))?;
        Ok(out)
    }

    /// Creates an online ingestion feed for this filter (see
    /// [`ChunkFeed`]). One filter can serve any number of concurrent
    /// feeds; each feed belongs to exactly one logical stream.
    #[must_use]
    pub fn chunk_feed(&self) -> ChunkFeed {
        ChunkFeed::new(self.lead, self.block_len(), self.template_len())
    }

    /// Pushes `chunk` (any length, empty included) into `feed`, appending
    /// every raw correlation lag whose FFT block completed to `out`.
    ///
    /// Once the stream is flushed with
    /// [`StreamingMatchedFilter::finish_chunks_into`], the concatenation
    /// of everything appended is **bit-identical** to
    /// [`StreamingMatchedFilter::correlate_into`] over the concatenated
    /// chunks — independent of the chunking. Steady-state calls at warm
    /// sizes do not allocate beyond `out`'s growth.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `feed` was created by a
    /// different engine or has already been finished.
    pub fn push_chunk_into(
        &self,
        feed: &mut ChunkFeed,
        chunk: &[f64],
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        self.core.feed_push(feed, self.lead, chunk, scratch, out)
    }

    /// [`StreamingMatchedFilter::push_chunk_into`] with the emitted lags
    /// template-energy normalized, matching
    /// [`StreamingMatchedFilter::correlate_normalized_into`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`StreamingMatchedFilter::push_chunk_into`].
    pub fn push_chunk_normalized_into(
        &self,
        feed: &mut ChunkFeed,
        chunk: &[f64],
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        let start = out.len();
        self.push_chunk_into(feed, chunk, scratch, out)?;
        let k = 1.0 / self.template_energy;
        for v in &mut out[start..] {
            *v *= k;
        }
        Ok(())
    }

    /// Flushes `feed`, appending the remaining raw lags to `out` so the
    /// stream's total output matches the one-shot call exactly (one lag
    /// per pushed sample). The feed is then finished; call
    /// [`ChunkFeed::reset`] to reuse it for a new stream.
    ///
    /// # Errors
    ///
    /// Mirrors [`StreamingMatchedFilter::correlate_into`] on the
    /// concatenated input: [`DspError::EmptyInput`] when nothing was
    /// pushed, [`DspError::InvalidParameter`] when fewer samples than the
    /// template length were pushed (or the feed belongs to a different
    /// engine / was already finished).
    pub fn finish_chunks_into(
        &self,
        feed: &mut ChunkFeed,
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        if !feed.finished && feed.pushed == 0 {
            return Err(DspError::EmptyInput {
                what: "xcorr signal",
            });
        }
        if !feed.finished && feed.pushed < self.template_len() {
            return Err(DspError::invalid(
                "template",
                format!(
                    "template ({}) longer than signal ({})",
                    self.template_len(),
                    feed.pushed
                ),
            ));
        }
        self.core.feed_finish(feed, self.lead, scratch, out)
    }

    /// [`StreamingMatchedFilter::finish_chunks_into`] with the emitted
    /// lags template-energy normalized.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StreamingMatchedFilter::finish_chunks_into`].
    pub fn finish_chunks_normalized_into(
        &self,
        feed: &mut ChunkFeed,
        scratch: &mut DspScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        let start = out.len();
        self.finish_chunks_into(feed, scratch, out)?;
        let k = 1.0 / self.template_energy;
        for v in &mut out[start..] {
            *v *= k;
        }
        Ok(())
    }
}

/// One template's share of a bank: its half-spectrum at the bank's block
/// length and the energy that normalizes its correlation lane.
///
/// The spectrum sits behind an `Arc` so cloning a bank — one clone per
/// pool worker is the intended sharing pattern — duplicates only the
/// pointer, never the spectrum. Template FFTs therefore run exactly once
/// per template per bank family, observable via
/// [`StreamingMatchedFilterBank::template_fft_count`].
#[derive(Debug, Clone)]
struct BankLane {
    /// Template half-spectrum at the bank block length (not conjugated).
    spec: Arc<Vec<Complex>>,
    /// `Σ x²` of the **original** (pre-fold) template.
    energy: f64,
}

/// K matched filters sharing one forward FFT per overlap-save block.
///
/// A [`StreamingMatchedFilter`] spends each block on one forward
/// transform of the input, one spectral conjugate-multiply, and one
/// inverse transform. Correlating the same capture against K templates
/// through K independent filters repeats the *input* forward transform
/// K times even though it is template-independent. The bank hoists it:
/// every template is held at one shared `(block_len, template_len)`
/// geometry (shorter templates are implicitly zero-padded, which changes
/// no correlation value), so each block costs **1 forward + K
/// multiply/inverse** instead of K×(forward + multiply + inverse).
///
/// Output goes to K caller-owned correlation lanes (`lanes[k]` receives
/// template k's lags). Each lane is **bit-identical** to an independent
/// [`StreamingMatchedFilter::with_block_len`] over template k padded to
/// the bank's template length at the bank's block length: the shared
/// forward spectrum is copied before each lane's conjugate multiply, so
/// per-lane arithmetic is exactly the single-engine sequence
/// (conformance-pinned by the bank tests).
///
/// Band-pass prefilters fold into the templates
/// ([`StreamingMatchedFilterBank::with_zero_phase_prefilters`]), so a
/// K-beacon detection pass runs **zero** FIR passes over the input —
/// `corr(bp(x), tᵢ) = corr(x, bp⋆tᵢ)` moves each beacon's band-pass
/// into its own lane's template at construction time.
///
/// The hot methods take `&self`; clones share template spectra and the
/// FFT plan by `Arc`, so per-worker state is one [`DspScratch`] plus the
/// lanes. Steady-state calls at warm sizes do not allocate.
#[derive(Debug, Clone)]
pub struct StreamingMatchedFilterBank {
    /// Shared, read-only FFT tables for the block size (process-wide,
    /// see [`shared_real_plan`]).
    plan: Arc<RealFftPlan>,
    lanes: Vec<BankLane>,
    /// The shared template length: the longest (folded) template. All
    /// lanes run at this length so one [`ChunkFeed`] drives them all.
    template_len: usize,
    /// Lag-origin offset (the folded prefilters' group delay; 0 without
    /// prefilters).
    lead: usize,
    /// Template FFTs run at construction — stays put across clones,
    /// which share the spectra instead of recomputing them.
    template_ffts: usize,
}

impl StreamingMatchedFilterBank {
    /// Creates a bank with the default block policy:
    /// `block_len = next_pow2(4 × longest template)`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty template list or an
    /// empty template, and [`DspError::InvalidParameter`] for an
    /// all-zero template.
    pub fn new(templates: &[&[f64]]) -> Result<Self, DspError> {
        let longest = templates.iter().map(|t| t.len()).max().unwrap_or(0);
        let block = try_next_pow2(longest.saturating_mul(4))?;
        Self::with_block_len(templates, block)
    }

    /// Creates a bank with an explicit FFT block length (power of two,
    /// at least the longest template's length).
    ///
    /// # Errors
    ///
    /// Same conditions as [`StreamingMatchedFilterBank::new`], plus
    /// [`DspError::InvalidParameter`] for an invalid `block_len`.
    pub fn with_block_len(templates: &[&[f64]], block_len: usize) -> Result<Self, DspError> {
        let energies = Self::validate_templates(templates)?;
        Self::build(templates, &energies, block_len, 0)
    }

    /// Creates a bank with a zero-phase FIR prefilter folded into each
    /// template: entry `k` is `(template_k, taps_k)`, and lane `k`
    /// reproduces band-pass-with-`taps_k`-then-correlate-with-
    /// `template_k` under the exact algebra (and partial-overlap caveat)
    /// of [`StreamingMatchedFilter::with_zero_phase_prefilter`]. Each
    /// template can carry its *own* band — the fold runs per lane, the
    /// input is never filtered at all.
    ///
    /// All taps must share one group delay `(len − 1) / 2` so every lane
    /// keeps the shared lag origin (equal odd tap counts, the common
    /// case of one configured tap budget, always qualify).
    ///
    /// # Errors
    ///
    /// Same conditions as [`StreamingMatchedFilterBank::new`], plus
    /// [`DspError::EmptyInput`] for an empty taps slice and
    /// [`DspError::InvalidParameter`] for mismatched group delays.
    pub fn with_zero_phase_prefilters(entries: &[(&[f64], &[f64])]) -> Result<Self, DspError> {
        if entries.is_empty() {
            return Err(DspError::EmptyInput {
                what: "template bank",
            });
        }
        let mut delay = None;
        for (template, taps) in entries {
            if template.is_empty() {
                return Err(DspError::EmptyInput {
                    what: "matched-filter template",
                });
            }
            if taps.is_empty() {
                return Err(DspError::EmptyInput {
                    what: "prefilter taps",
                });
            }
            let d = (taps.len() - 1) / 2;
            if *delay.get_or_insert(d) != d {
                return Err(DspError::invalid(
                    "taps",
                    "all prefilters in a bank must share one group delay",
                ));
            }
        }
        let mut energies = Vec::with_capacity(entries.len());
        let mut folded = Vec::with_capacity(entries.len());
        for (template, taps) in entries {
            let energy: f64 = template.iter().map(|x| x * x).sum();
            if energy == 0.0 {
                return Err(DspError::invalid("template", "template has zero energy"));
            }
            energies.push(energy);
            folded.push(fold_zero_phase_taps(template, taps));
        }
        let longest = folded.iter().map(Vec::len).max().unwrap_or(0);
        let block = try_next_pow2(longest.saturating_mul(4))?;
        let refs: Vec<&[f64]> = folded.iter().map(Vec::as_slice).collect();
        Self::build(&refs, &energies, block, delay.unwrap_or(0))
    }

    /// Per-template emptiness/energy validation shared by the unfolded
    /// constructors; returns the template energies.
    fn validate_templates(templates: &[&[f64]]) -> Result<Vec<f64>, DspError> {
        if templates.is_empty() {
            return Err(DspError::EmptyInput {
                what: "template bank",
            });
        }
        templates
            .iter()
            .map(|template| {
                if template.is_empty() {
                    return Err(DspError::EmptyInput {
                        what: "matched-filter template",
                    });
                }
                let energy: f64 = template.iter().map(|x| x * x).sum();
                if energy == 0.0 {
                    return Err(DspError::invalid("template", "template has zero energy"));
                }
                Ok(energy)
            })
            .collect()
    }

    fn build(
        templates: &[&[f64]],
        energies: &[f64],
        block_len: usize,
        lead: usize,
    ) -> Result<Self, DspError> {
        let template_len = templates.iter().map(|t| t.len()).max().unwrap_or(0);
        if block_len < template_len {
            return Err(DspError::invalid(
                "block_len",
                format!("block ({block_len}) shorter than template ({template_len})"),
            ));
        }
        let plan = shared_real_plan(block_len)?;
        let mut lanes = Vec::with_capacity(templates.len());
        let mut template_ffts = 0;
        for (template, &energy) in templates.iter().zip(energies) {
            // `rfft_half_into` zero-pads to the plan length, so a short
            // template's spectrum equals its padded twin's exactly.
            let mut spec = Vec::with_capacity(plan.num_bins());
            plan.rfft_half_into(template, &mut spec)?;
            template_ffts += 1;
            lanes.push(BankLane {
                spec: Arc::new(spec),
                energy,
            });
        }
        Ok(StreamingMatchedFilterBank {
            plan,
            lanes,
            template_len,
            lead,
            template_ffts,
        })
    }

    /// Number of templates (correlation lanes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the bank holds no templates (never true once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// The shared (padded) template length in samples.
    #[must_use]
    pub fn template_len(&self) -> usize {
        self.template_len
    }

    /// The FFT block length — the peak transform size of every call.
    #[must_use]
    pub fn block_len(&self) -> usize {
        self.plan.len()
    }

    /// Valid correlation lags produced per block
    /// (`block_len - template_len + 1`).
    #[must_use]
    pub fn step(&self) -> usize {
        self.block_len() - self.template_len + 1
    }

    /// The lag-origin offset (folded prefilter group delay).
    #[must_use]
    pub fn lead(&self) -> usize {
        self.lead
    }

    /// Template FFTs run over this bank's lifetime: exactly one per
    /// template, at construction. Clones share the spectra by `Arc` and
    /// report the same count — the observable proof that sharing a bank
    /// across pool workers never recomputes a template spectrum.
    #[must_use]
    pub fn template_fft_count(&self) -> usize {
        self.template_ffts
    }

    /// Template `k`'s original (pre-fold) energy `Σ x²`, or `None` out
    /// of range.
    #[must_use]
    pub fn template_energy(&self, k: usize) -> Option<f64> {
        self.lanes.get(k).map(|l| l.energy)
    }

    fn check_lanes(&self, lanes: &[Vec<f64>]) -> Result<(), DspError> {
        if lanes.len() != self.lanes.len() {
            return Err(DspError::invalid(
                "lanes",
                format!(
                    "bank holds {} templates but {} output lanes were provided",
                    self.lanes.len(),
                    lanes.len()
                ),
            ));
        }
        Ok(())
    }

    fn check_feed(&self, feed: &ChunkFeed) -> Result<(), DspError> {
        if feed.block_len != self.block_len()
            || feed.template_len != self.template_len
            || feed.lead != self.lead
        {
            return Err(DspError::invalid(
                "feed",
                "chunk feed was created for a different engine",
            ));
        }
        if feed.finished {
            return Err(DspError::invalid(
                "feed",
                "chunk feed already finished; call reset() before reuse",
            ));
        }
        Ok(())
    }

    /// Fans the shared input spectrum in `scratch.c1` out across every
    /// lane: copy, conjugate-multiply with the lane's template spectrum,
    /// inverse-transform, append the first `take` lags to the lane. The
    /// copy into `scratch.c2` is what preserves the shared spectrum — the
    /// half-spectrum inverse transform consumes its input.
    fn fan_out(
        &self,
        scratch: &mut DspScratch,
        take: usize,
        lanes: &mut [Vec<f64>],
    ) -> Result<(), DspError> {
        for (lane, out) in self.lanes.iter().zip(lanes.iter_mut()) {
            scratch.c2.clear();
            scratch.c2.extend_from_slice(&scratch.c1);
            conj_mul_in_place(&mut scratch.c2, &lane.spec);
            let DspScratch { c2, r1, .. } = &mut *scratch;
            self.plan.irfft_half_into(c2, r1)?;
            out.extend_from_slice(&r1[..take]);
        }
        Ok(())
    }

    /// One-shot banked correlation: lane `k` receives exactly the output
    /// of an independent [`StreamingMatchedFilter`] for template `k` at
    /// the bank geometry ([`xcorr`] convention), but the input forward
    /// FFT runs once per block for all lanes. Each lane is cleared and
    /// refilled; steady-state calls at warm sizes do not allocate.
    ///
    /// # Errors
    ///
    /// Same conditions as [`xcorr`], plus
    /// [`DspError::InvalidParameter`] when `lanes.len()` differs from
    /// the bank's template count.
    pub fn correlate_into(
        &self,
        signal: &[f64],
        scratch: &mut DspScratch,
        lanes: &mut [Vec<f64>],
    ) -> Result<(), DspError> {
        self.check_lanes(lanes)?;
        if signal.is_empty() {
            return Err(DspError::EmptyInput {
                what: "xcorr signal",
            });
        }
        if self.template_len > signal.len() {
            return Err(DspError::invalid(
                "template",
                format!(
                    "template ({}) longer than signal ({})",
                    self.template_len,
                    signal.len()
                ),
            ));
        }
        let out_len = signal.len();
        for lane in lanes.iter_mut() {
            lane.clear();
            lane.reserve(out_len);
        }
        let block = self.block_len();
        let step = self.step();
        let mut pos = 0;
        while pos < out_len {
            scratch.r1.clear();
            scratch.r1.extend((pos..pos + block).map(|j| {
                j.checked_sub(self.lead)
                    .and_then(|i| signal.get(i))
                    .copied()
                    .unwrap_or(0.0)
            }));
            self.plan.rfft_half_into(&scratch.r1, &mut scratch.c1)?;
            let take = step.min(out_len - pos);
            self.fan_out(scratch, take, lanes)?;
            pos += step;
        }
        Ok(())
    }

    /// [`StreamingMatchedFilterBank::correlate_into`] with each lane
    /// normalized by its own template's energy.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StreamingMatchedFilterBank::correlate_into`].
    pub fn correlate_normalized_into(
        &self,
        signal: &[f64],
        scratch: &mut DspScratch,
        lanes: &mut [Vec<f64>],
    ) -> Result<(), DspError> {
        self.correlate_into(signal, scratch, lanes)?;
        for (lane, out) in self.lanes.iter().zip(lanes.iter_mut()) {
            let k = 1.0 / lane.energy;
            for v in out.iter_mut() {
                *v *= k;
            }
        }
        Ok(())
    }

    /// Creates an online ingestion feed for this bank (see
    /// [`ChunkFeed`]). One feed drives all K lanes — the shared block
    /// geometry is the point of the bank.
    #[must_use]
    pub fn chunk_feed(&self) -> ChunkFeed {
        ChunkFeed::new(self.lead, self.block_len(), self.template_len)
    }

    /// Pushes `chunk` into `feed`, appending every raw correlation lag
    /// whose FFT block completed to all K lanes (one forward transform
    /// per completed block, K inverse transforms). Flushed streams are
    /// bit-identical per lane to
    /// [`StreamingMatchedFilterBank::correlate_into`] over the
    /// concatenated chunks, independent of chunking.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `feed` was created by a
    /// different engine, has already been finished, or `lanes` is
    /// mis-sized.
    pub fn push_chunk_into(
        &self,
        feed: &mut ChunkFeed,
        chunk: &[f64],
        scratch: &mut DspScratch,
        lanes: &mut [Vec<f64>],
    ) -> Result<(), DspError> {
        self.check_lanes(lanes)?;
        self.check_feed(feed)?;
        let block = self.block_len();
        let step = self.step();
        let mut rest = chunk;
        while !rest.is_empty() {
            let take = (block - feed.buf.len()).min(rest.len());
            feed.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if feed.buf.len() == block {
                self.feed_transform(feed, scratch)?;
                self.fan_out(scratch, step, lanes)?;
                feed.emitted += step;
            }
        }
        feed.pushed += chunk.len();
        debug_assert!(feed.emitted <= feed.pushed);
        Ok(())
    }

    /// Forward-transforms the (full) block in `feed.buf` into the shared
    /// spectrum `scratch.c1` and slides the buffer forward by one step.
    fn feed_transform(
        &self,
        feed: &mut ChunkFeed,
        scratch: &mut DspScratch,
    ) -> Result<(), DspError> {
        debug_assert_eq!(feed.buf.len(), self.block_len());
        scratch.r1.clear();
        scratch.r1.extend_from_slice(&feed.buf);
        self.plan.rfft_half_into(&scratch.r1, &mut scratch.c1)?;
        let step = self.step();
        feed.buf.copy_within(step.., 0);
        feed.buf.truncate(self.block_len() - step);
        Ok(())
    }

    /// [`StreamingMatchedFilterBank::push_chunk_into`] with the emitted
    /// lags normalized per lane.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StreamingMatchedFilterBank::push_chunk_into`].
    pub fn push_chunk_normalized_into(
        &self,
        feed: &mut ChunkFeed,
        chunk: &[f64],
        scratch: &mut DspScratch,
        lanes: &mut [Vec<f64>],
    ) -> Result<(), DspError> {
        let before = feed.emitted;
        self.push_chunk_into(feed, chunk, scratch, lanes)?;
        self.normalize_tail(feed.emitted - before, lanes);
        Ok(())
    }

    /// Flushes `feed`, appending the remaining raw lags to every lane so
    /// each lane's total output matches the one-shot call exactly (one
    /// lag per pushed sample). The feed is then finished; call
    /// [`ChunkFeed::reset`] to reuse it.
    ///
    /// # Errors
    ///
    /// Mirrors [`StreamingMatchedFilterBank::correlate_into`] on the
    /// concatenated input, like
    /// [`StreamingMatchedFilter::finish_chunks_into`].
    pub fn finish_chunks_into(
        &self,
        feed: &mut ChunkFeed,
        scratch: &mut DspScratch,
        lanes: &mut [Vec<f64>],
    ) -> Result<(), DspError> {
        self.check_lanes(lanes)?;
        if !feed.finished && feed.pushed == 0 {
            return Err(DspError::EmptyInput {
                what: "xcorr signal",
            });
        }
        if !feed.finished && feed.pushed < self.template_len {
            return Err(DspError::invalid(
                "template",
                format!(
                    "template ({}) longer than signal ({})",
                    self.template_len, feed.pushed
                ),
            ));
        }
        self.check_feed(feed)?;
        let total = feed.pushed;
        while feed.emitted < total {
            feed.buf.resize(self.block_len(), 0.0);
            self.feed_transform(feed, scratch)?;
            let take = self.step().min(total - feed.emitted);
            self.fan_out(scratch, take, lanes)?;
            feed.emitted += take;
        }
        feed.finished = true;
        Ok(())
    }

    /// [`StreamingMatchedFilterBank::finish_chunks_into`] with the
    /// emitted lags normalized per lane.
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`StreamingMatchedFilterBank::finish_chunks_into`].
    pub fn finish_chunks_normalized_into(
        &self,
        feed: &mut ChunkFeed,
        scratch: &mut DspScratch,
        lanes: &mut [Vec<f64>],
    ) -> Result<(), DspError> {
        let before = feed.emitted;
        self.finish_chunks_into(feed, scratch, lanes)?;
        self.normalize_tail(feed.emitted - before, lanes);
        Ok(())
    }

    /// Scales the last `appended` values of every lane by its template
    /// energy (every lane receives the same lag count per call, so one
    /// counter covers them all — no per-lane bookkeeping to allocate).
    fn normalize_tail(&self, appended: usize, lanes: &mut [Vec<f64>]) {
        for (lane, out) in self.lanes.iter().zip(lanes.iter_mut()) {
            let k = 1.0 / lane.energy;
            let start = out.len() - appended;
            for v in &mut out[start..] {
                *v *= k;
            }
        }
    }
}

/// One f32 lane: split-plane template half-spectrum plus normalization
/// energy (see [`BankLane`]).
#[derive(Debug, Clone)]
struct BankLane32 {
    spec_re: Arc<Vec<f32>>,
    spec_im: Arc<Vec<f32>>,
    energy: f64,
}

/// The single-precision twin of [`StreamingMatchedFilterBank`], built on
/// [`RealFft32Plan`]'s split re/im planes so the spectral kernels stay
/// 8-wide.
///
/// Same shared-forward-transform economics and per-lane semantics; like
/// the rest of the f32 pipeline there is **no bit-identity contract**
/// against the f64 reference (DESIGN.md §11) — but each lane *is*
/// bit-identical to an independent [`StreamingMatchedFilter32`] at the
/// bank geometry, by the same copied-spectrum argument as the f64 bank.
///
/// The fan-out stages each lane's conjugate product in the second
/// scratch plane pair (`DspScratch::f2_re`/`f2_im`), preserving the
/// shared input spectrum in `f1_re`/`f1_im` across lanes.
#[derive(Debug, Clone)]
pub struct StreamingMatchedFilterBank32 {
    plan: Arc<RealFft32Plan>,
    lanes: Vec<BankLane32>,
    template_len: usize,
    lead: usize,
    template_ffts: usize,
}

impl StreamingMatchedFilterBank32 {
    /// Creates a bank with the default block policy
    /// (`next_pow2(4 × longest template)`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`StreamingMatchedFilterBank::new`].
    pub fn new(templates: &[&[f32]]) -> Result<Self, DspError> {
        let longest = templates.iter().map(|t| t.len()).max().unwrap_or(0);
        let block = try_next_pow2(longest.saturating_mul(4))?;
        Self::with_block_len(templates, block)
    }

    /// Creates a bank with an explicit FFT block length.
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`StreamingMatchedFilterBank::with_block_len`].
    pub fn with_block_len(templates: &[&[f32]], block_len: usize) -> Result<Self, DspError> {
        if templates.is_empty() {
            return Err(DspError::EmptyInput {
                what: "template bank",
            });
        }
        let mut energies = Vec::with_capacity(templates.len());
        for template in templates {
            if template.is_empty() {
                return Err(DspError::EmptyInput {
                    what: "matched-filter template",
                });
            }
            let energy: f64 = template.iter().map(|&x| f64::from(x) * f64::from(x)).sum();
            if energy == 0.0 {
                return Err(DspError::invalid("template", "template has zero energy"));
            }
            energies.push(energy);
        }
        Self::build(templates, &energies, block_len, 0)
    }

    /// Creates a bank with a zero-phase FIR prefilter folded into each
    /// template (see
    /// [`StreamingMatchedFilterBank::with_zero_phase_prefilters`]; the
    /// fold is accumulated in f64 and rounded once per tap, exactly as
    /// [`StreamingMatchedFilter32::with_zero_phase_prefilter`] does).
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`StreamingMatchedFilterBank::with_zero_phase_prefilters`].
    pub fn with_zero_phase_prefilters(entries: &[(&[f32], &[f64])]) -> Result<Self, DspError> {
        if entries.is_empty() {
            return Err(DspError::EmptyInput {
                what: "template bank",
            });
        }
        let mut delay = None;
        let mut energies = Vec::with_capacity(entries.len());
        let mut folded = Vec::with_capacity(entries.len());
        for (template, taps) in entries {
            if template.is_empty() {
                return Err(DspError::EmptyInput {
                    what: "matched-filter template",
                });
            }
            if taps.is_empty() {
                return Err(DspError::EmptyInput {
                    what: "prefilter taps",
                });
            }
            let d = (taps.len() - 1) / 2;
            if *delay.get_or_insert(d) != d {
                return Err(DspError::invalid(
                    "taps",
                    "all prefilters in a bank must share one group delay",
                ));
            }
            let energy: f64 = template.iter().map(|&x| f64::from(x) * f64::from(x)).sum();
            if energy == 0.0 {
                return Err(DspError::invalid("template", "template has zero energy"));
            }
            energies.push(energy);
            let template_f64: Vec<f64> = template.iter().map(|&x| f64::from(x)).collect();
            folded.push(
                fold_zero_phase_taps(&template_f64, taps)
                    .into_iter()
                    .map(|v| v as f32)
                    .collect::<Vec<f32>>(),
            );
        }
        let longest = folded.iter().map(Vec::len).max().unwrap_or(0);
        let block = try_next_pow2(longest.saturating_mul(4))?;
        let refs: Vec<&[f32]> = folded.iter().map(Vec::as_slice).collect();
        Self::build(&refs, &energies, block, delay.unwrap_or(0))
    }

    fn build(
        templates: &[&[f32]],
        energies: &[f64],
        block_len: usize,
        lead: usize,
    ) -> Result<Self, DspError> {
        let template_len = templates.iter().map(|t| t.len()).max().unwrap_or(0);
        if block_len < template_len {
            return Err(DspError::invalid(
                "block_len",
                format!("block ({block_len}) shorter than template ({template_len})"),
            ));
        }
        let plan = shared_real_plan32(block_len)?;
        let mut lanes = Vec::with_capacity(templates.len());
        let mut template_ffts = 0;
        for (template, &energy) in templates.iter().zip(energies) {
            let mut spec_re = Vec::with_capacity(plan.num_bins());
            let mut spec_im = Vec::with_capacity(plan.num_bins());
            plan.rfft_half_into(template, &mut spec_re, &mut spec_im)?;
            template_ffts += 1;
            lanes.push(BankLane32 {
                spec_re: Arc::new(spec_re),
                spec_im: Arc::new(spec_im),
                energy,
            });
        }
        Ok(StreamingMatchedFilterBank32 {
            plan,
            lanes,
            template_len,
            lead,
            template_ffts,
        })
    }

    /// Number of templates (correlation lanes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the bank holds no templates (never true once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// The shared (padded) template length in samples.
    #[must_use]
    pub fn template_len(&self) -> usize {
        self.template_len
    }

    /// The FFT block length.
    #[must_use]
    pub fn block_len(&self) -> usize {
        self.plan.len()
    }

    /// Valid correlation lags produced per block.
    #[must_use]
    pub fn step(&self) -> usize {
        self.block_len() - self.template_len + 1
    }

    /// The lag-origin offset (folded prefilter group delay).
    #[must_use]
    pub fn lead(&self) -> usize {
        self.lead
    }

    /// Template FFTs run over this bank's lifetime (one per template;
    /// clones share the spectra).
    #[must_use]
    pub fn template_fft_count(&self) -> usize {
        self.template_ffts
    }

    fn check_lanes(&self, lanes: &[Vec<f32>]) -> Result<(), DspError> {
        if lanes.len() != self.lanes.len() {
            return Err(DspError::invalid(
                "lanes",
                format!(
                    "bank holds {} templates but {} output lanes were provided",
                    self.lanes.len(),
                    lanes.len()
                ),
            ));
        }
        Ok(())
    }

    fn check_feed(&self, feed: &ChunkFeed<f32>) -> Result<(), DspError> {
        if feed.block_len != self.block_len()
            || feed.template_len != self.template_len
            || feed.lead != self.lead
        {
            return Err(DspError::invalid(
                "feed",
                "chunk feed was created for a different engine",
            ));
        }
        if feed.finished {
            return Err(DspError::invalid(
                "feed",
                "chunk feed already finished; call reset() before reuse",
            ));
        }
        Ok(())
    }

    /// Fans the shared input spectrum (`f1_re`/`f1_im`) out across every
    /// lane via the second plane pair.
    fn fan_out(
        &self,
        scratch: &mut DspScratch,
        take: usize,
        lanes: &mut [Vec<f32>],
    ) -> Result<(), DspError> {
        for (lane, out) in self.lanes.iter().zip(lanes.iter_mut()) {
            scratch.f2_re.clear();
            scratch.f2_re.extend_from_slice(&scratch.f1_re);
            scratch.f2_im.clear();
            scratch.f2_im.extend_from_slice(&scratch.f1_im);
            let DspScratch {
                f2_re, f2_im, r32, ..
            } = &mut *scratch;
            conj_mul_planes(f2_re, f2_im, &lane.spec_re, &lane.spec_im);
            self.plan.irfft_half_into(f2_re, f2_im, r32)?;
            out.extend_from_slice(&r32[..take]);
        }
        Ok(())
    }

    /// One-shot banked correlation (f32 twin of
    /// [`StreamingMatchedFilterBank::correlate_into`]).
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`StreamingMatchedFilterBank::correlate_into`].
    pub fn correlate_into(
        &self,
        signal: &[f32],
        scratch: &mut DspScratch,
        lanes: &mut [Vec<f32>],
    ) -> Result<(), DspError> {
        self.check_lanes(lanes)?;
        if signal.is_empty() {
            return Err(DspError::EmptyInput {
                what: "xcorr signal",
            });
        }
        if self.template_len > signal.len() {
            return Err(DspError::invalid(
                "template",
                format!(
                    "template ({}) longer than signal ({})",
                    self.template_len,
                    signal.len()
                ),
            ));
        }
        let out_len = signal.len();
        for lane in lanes.iter_mut() {
            lane.clear();
            lane.reserve(out_len);
        }
        let block = self.block_len();
        let step = self.step();
        let mut pos = 0;
        while pos < out_len {
            scratch.r32.clear();
            scratch.r32.extend((pos..pos + block).map(|j| {
                j.checked_sub(self.lead)
                    .and_then(|i| signal.get(i))
                    .copied()
                    .unwrap_or(0.0)
            }));
            let DspScratch {
                f1_re, f1_im, r32, ..
            } = &mut *scratch;
            self.plan.rfft_half_into(r32, f1_re, f1_im)?;
            let take = step.min(out_len - pos);
            self.fan_out(scratch, take, lanes)?;
            pos += step;
        }
        Ok(())
    }

    /// [`StreamingMatchedFilterBank32::correlate_into`] with each lane
    /// normalized by its own template's energy.
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`StreamingMatchedFilterBank32::correlate_into`].
    pub fn correlate_normalized_into(
        &self,
        signal: &[f32],
        scratch: &mut DspScratch,
        lanes: &mut [Vec<f32>],
    ) -> Result<(), DspError> {
        self.correlate_into(signal, scratch, lanes)?;
        for (lane, out) in self.lanes.iter().zip(lanes.iter_mut()) {
            let k = (1.0 / lane.energy) as f32;
            for v in out.iter_mut() {
                *v *= k;
            }
        }
        Ok(())
    }

    /// Creates an online ingestion feed for this bank.
    #[must_use]
    pub fn chunk_feed(&self) -> ChunkFeed<f32> {
        ChunkFeed::new(self.lead, self.block_len(), self.template_len)
    }

    /// Pushes `chunk` into `feed`, appending completed-block lags to all
    /// K lanes (f32 twin of
    /// [`StreamingMatchedFilterBank::push_chunk_into`]).
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`StreamingMatchedFilterBank::push_chunk_into`].
    pub fn push_chunk_into(
        &self,
        feed: &mut ChunkFeed<f32>,
        chunk: &[f32],
        scratch: &mut DspScratch,
        lanes: &mut [Vec<f32>],
    ) -> Result<(), DspError> {
        self.check_lanes(lanes)?;
        self.check_feed(feed)?;
        let block = self.block_len();
        let step = self.step();
        let mut rest = chunk;
        while !rest.is_empty() {
            let take = (block - feed.buf.len()).min(rest.len());
            feed.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if feed.buf.len() == block {
                self.feed_transform(feed, scratch)?;
                self.fan_out(scratch, step, lanes)?;
                feed.emitted += step;
            }
        }
        feed.pushed += chunk.len();
        debug_assert!(feed.emitted <= feed.pushed);
        Ok(())
    }

    fn feed_transform(
        &self,
        feed: &mut ChunkFeed<f32>,
        scratch: &mut DspScratch,
    ) -> Result<(), DspError> {
        debug_assert_eq!(feed.buf.len(), self.block_len());
        scratch.r32.clear();
        scratch.r32.extend_from_slice(&feed.buf);
        let DspScratch {
            f1_re, f1_im, r32, ..
        } = &mut *scratch;
        self.plan.rfft_half_into(r32, f1_re, f1_im)?;
        let step = self.step();
        feed.buf.copy_within(step.., 0);
        feed.buf.truncate(self.block_len() - step);
        Ok(())
    }

    /// [`StreamingMatchedFilterBank32::push_chunk_into`] with the
    /// emitted lags normalized per lane.
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`StreamingMatchedFilterBank32::push_chunk_into`].
    pub fn push_chunk_normalized_into(
        &self,
        feed: &mut ChunkFeed<f32>,
        chunk: &[f32],
        scratch: &mut DspScratch,
        lanes: &mut [Vec<f32>],
    ) -> Result<(), DspError> {
        let before = feed.emitted;
        self.push_chunk_into(feed, chunk, scratch, lanes)?;
        self.normalize_tail(feed.emitted - before, lanes);
        Ok(())
    }

    /// Flushes `feed`, appending the remaining raw lags to every lane
    /// (f32 twin of [`StreamingMatchedFilterBank::finish_chunks_into`]).
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`StreamingMatchedFilterBank::finish_chunks_into`].
    pub fn finish_chunks_into(
        &self,
        feed: &mut ChunkFeed<f32>,
        scratch: &mut DspScratch,
        lanes: &mut [Vec<f32>],
    ) -> Result<(), DspError> {
        self.check_lanes(lanes)?;
        if !feed.finished && feed.pushed == 0 {
            return Err(DspError::EmptyInput {
                what: "xcorr signal",
            });
        }
        if !feed.finished && feed.pushed < self.template_len {
            return Err(DspError::invalid(
                "template",
                format!(
                    "template ({}) longer than signal ({})",
                    self.template_len, feed.pushed
                ),
            ));
        }
        self.check_feed(feed)?;
        let total = feed.pushed;
        while feed.emitted < total {
            feed.buf.resize(self.block_len(), 0.0);
            self.feed_transform(feed, scratch)?;
            let take = self.step().min(total - feed.emitted);
            self.fan_out(scratch, take, lanes)?;
            feed.emitted += take;
        }
        feed.finished = true;
        Ok(())
    }

    /// [`StreamingMatchedFilterBank32::finish_chunks_into`] with the
    /// emitted lags normalized per lane.
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`StreamingMatchedFilterBank32::finish_chunks_into`].
    pub fn finish_chunks_normalized_into(
        &self,
        feed: &mut ChunkFeed<f32>,
        scratch: &mut DspScratch,
        lanes: &mut [Vec<f32>],
    ) -> Result<(), DspError> {
        let before = feed.emitted;
        self.finish_chunks_into(feed, scratch, lanes)?;
        self.normalize_tail(feed.emitted - before, lanes);
        Ok(())
    }

    fn normalize_tail(&self, appended: usize, lanes: &mut [Vec<f32>]) {
        for (lane, out) in self.lanes.iter().zip(lanes.iter_mut()) {
            let k = (1.0 / lane.energy) as f32;
            let start = out.len() - appended;
            for v in &mut out[start..] {
                *v *= k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::Window;

    fn argmax(x: &[f64]) -> usize {
        x.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0
    }

    #[test]
    fn finds_template_at_known_offset() {
        let template = [1.0, -2.0, 3.0, -1.0];
        let mut signal = vec![0.0; 64];
        signal[20..24].copy_from_slice(&template);
        let out = xcorr(&signal, &template).unwrap();
        assert_eq!(argmax(&out), 20);
        let peak = out[20];
        let energy: f64 = template.iter().map(|x| x * x).sum();
        assert!((peak - energy).abs() < 1e-9);
    }

    #[test]
    fn matches_direct_computation() {
        let signal: Vec<f64> = (0..50).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let template: Vec<f64> = (0..8).map(|i| ((i * 3 % 5) as f64) - 2.0).collect();
        let fast = xcorr(&signal, &template).unwrap();
        for k in 0..signal.len() {
            let direct: f64 = template
                .iter()
                .enumerate()
                .filter(|(n, _)| k + n < signal.len())
                .map(|(n, &t)| signal[k + n] * t)
                .sum();
            assert!((fast[k] - direct).abs() < 1e-8, "lag {k}");
        }
    }

    #[test]
    fn normalized_peak_is_one_for_exact_match() {
        let template = [0.5, -1.5, 2.5, 0.25, -0.75];
        let mut signal = vec![0.0; 32];
        signal[10..15].copy_from_slice(&template);
        let out = normalized_xcorr(&signal, &template).unwrap();
        assert!((out[10] - 1.0).abs() < 1e-9);
        assert_eq!(argmax(&out), 10);
    }

    #[test]
    fn normalized_is_gain_invariant() {
        let template = [1.0, -1.0, 2.0];
        let mut quiet = vec![0.0; 32];
        quiet[5..8].copy_from_slice(&[0.01, -0.01, 0.02]);
        let out = normalized_xcorr(&quiet, &template).unwrap();
        assert!((out[5] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn matched_filter_normalization() {
        let template = [2.0, 0.0, -2.0];
        let filter = MatchedFilter::new(&template).unwrap();
        let mut signal = vec![0.0; 16];
        signal[4..7].copy_from_slice(&template);
        let out = filter.correlate_normalized(&signal).unwrap();
        assert!((out[4] - 1.0).abs() < 1e-9);
        assert_eq!(filter.len(), 3);
        assert!(!filter.is_empty());
        assert!((filter.template_energy() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(xcorr(&[], &[1.0]).is_err());
        assert!(xcorr(&[1.0], &[]).is_err());
        assert!(xcorr(&[1.0], &[1.0, 2.0]).is_err());
        assert!(MatchedFilter::new(&[]).is_err());
        assert!(MatchedFilter::new(&[0.0, 0.0]).is_err());
        assert!(normalized_xcorr(&[1.0, 2.0], &[0.0]).is_err());
    }

    #[test]
    fn detects_template_in_noise() {
        // Deterministic pseudo-noise plus a strong template.
        let template: Vec<f64> = (0..32)
            .map(|i| (i as f64 * 0.7).sin() * (i as f64 * 0.13).cos())
            .collect();
        let mut signal: Vec<f64> = (0..512)
            .map(|i| 0.05 * ((i * 2654435761_usize % 1000) as f64 / 500.0 - 1.0))
            .collect();
        for (i, &t) in template.iter().enumerate() {
            signal[200 + i] += t;
        }
        let out = xcorr(&signal, &template).unwrap();
        assert_eq!(argmax(&out), 200);
    }

    #[test]
    fn two_occurrences_produce_two_peaks() {
        let template = [1.0, 2.0, 1.0];
        let mut signal = vec![0.0; 64];
        signal[10..13].copy_from_slice(&template);
        signal[40..43].copy_from_slice(&template);
        let out = xcorr(&signal, &template).unwrap();
        let energy: f64 = template.iter().map(|x| x * x).sum();
        assert!((out[10] - energy).abs() < 1e-9);
        assert!((out[40] - energy).abs() < 1e-9);
    }

    fn assert_bit_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        let scale = 1.0 + b.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= 1e-9 * scale, "lag {i}: {x} vs {y}");
        }
    }

    #[test]
    fn streaming_matches_one_shot_xcorr() {
        let template: Vec<f64> = (0..37)
            .map(|i| (i as f64 * 0.4).sin() - 0.3 * (i as f64 * 0.09).cos())
            .collect();
        let signal: Vec<f64> = (0..1500)
            .map(|i| (i as f64 * 0.021).sin() * (i as f64 * 0.0047).cos())
            .collect();
        let reference = xcorr(&signal, &template).unwrap();
        let filter = StreamingMatchedFilter::new(&template).unwrap();
        assert_eq!(filter.block_len(), 256); // next_pow2(4 * 37)
        assert_eq!(filter.step(), 256 - 37 + 1);
        let streamed = filter.correlate(&signal).unwrap();
        assert_bit_close(&streamed, &reference);
    }

    #[test]
    fn streaming_handles_signal_shorter_than_one_block() {
        let template = [1.0, -2.0, 3.0, -1.0, 0.5];
        let signal: Vec<f64> = (0..7).map(|i| (i as f64 * 0.9).sin()).collect();
        let filter = StreamingMatchedFilter::new(&template).unwrap();
        assert!(filter.block_len() > signal.len());
        let streamed = filter.correlate(&signal).unwrap();
        let reference = xcorr(&signal, &template).unwrap();
        assert_bit_close(&streamed, &reference);
    }

    #[test]
    fn streaming_peak_fft_size_is_capture_independent() {
        let template: Vec<f64> = (0..100).map(|i| (i as f64 * 0.2).sin()).collect();
        let filter = StreamingMatchedFilter::new(&template).unwrap();
        let block = filter.block_len();
        for &len in &[200usize, 1000, 50_000] {
            let signal: Vec<f64> = (0..len).map(|i| (i as f64 * 0.01).cos()).collect();
            let reference = xcorr(&signal, &template).unwrap();
            let streamed = filter.correlate(&signal).unwrap();
            assert_bit_close(&streamed, &reference);
            // Block length is a property of the template alone.
            assert_eq!(filter.block_len(), block);
        }
    }

    #[test]
    fn streaming_normalization_matches_matched_filter() {
        let template = [2.0, 0.0, -2.0];
        let mut signal = vec![0.0; 64];
        signal[4..7].copy_from_slice(&template);
        let filter = StreamingMatchedFilter::new(&template).unwrap();
        let mut scratch = DspScratch::new();
        let mut out = Vec::new();
        filter
            .correlate_normalized_into(&signal, &mut scratch, &mut out)
            .unwrap();
        assert!((out[4] - 1.0).abs() < 1e-9);
        assert!((filter.template_energy() - 8.0).abs() < 1e-12);
        assert_eq!(filter.template_len(), 3);
    }

    /// Feeds `signal` through a chunk feed in pieces of the given sizes
    /// (cycled) and returns the full emitted output.
    fn run_chunked(filter: &StreamingMatchedFilter, signal: &[f64], sizes: &[usize]) -> Vec<f64> {
        let mut feed = filter.chunk_feed();
        let mut scratch = DspScratch::new();
        let mut out = Vec::new();
        let mut pos = 0;
        let mut i = 0;
        while pos < signal.len() {
            let n = sizes[i % sizes.len()].min(signal.len() - pos);
            filter
                .push_chunk_into(&mut feed, &signal[pos..pos + n], &mut scratch, &mut out)
                .unwrap();
            pos += n;
            i += 1;
        }
        filter
            .finish_chunks_into(&mut feed, &mut scratch, &mut out)
            .unwrap();
        assert!(feed.is_finished());
        assert_eq!(feed.pushed(), signal.len());
        assert_eq!(feed.emitted(), signal.len());
        out
    }

    #[test]
    fn chunked_feed_is_bit_identical_to_one_shot() {
        let template: Vec<f64> = (0..37)
            .map(|i| (i as f64 * 0.4).sin() - 0.3 * (i as f64 * 0.09).cos())
            .collect();
        let signal: Vec<f64> = (0..1777)
            .map(|i| (i as f64 * 0.021).sin() * (i as f64 * 0.0047).cos())
            .collect();
        let filter = StreamingMatchedFilter::new(&template).unwrap();
        let reference = filter.correlate(&signal).unwrap();
        // Single samples, prime sizes, block-aligned sizes, whole capture.
        for sizes in [
            &[1usize][..],
            &[3, 7, 11][..],
            &[256][..],
            &[signal.len()][..],
            &[255, 1, 513][..],
        ] {
            let streamed = run_chunked(&filter, &signal, sizes);
            assert_eq!(streamed, reference, "chunk sizes {sizes:?}");
        }
    }

    #[test]
    fn chunked_feed_normalized_matches_one_shot_normalized() {
        let template = [2.0, 0.0, -2.0, 1.0];
        let signal: Vec<f64> = (0..300).map(|i| (i as f64 * 0.17).sin()).collect();
        let filter = StreamingMatchedFilter::new(&template).unwrap();
        let mut scratch = DspScratch::new();
        let mut reference = Vec::new();
        filter
            .correlate_normalized_into(&signal, &mut scratch, &mut reference)
            .unwrap();
        let mut feed = filter.chunk_feed();
        let mut out = Vec::new();
        for chunk in signal.chunks(23) {
            filter
                .push_chunk_normalized_into(&mut feed, chunk, &mut scratch, &mut out)
                .unwrap();
        }
        filter
            .finish_chunks_normalized_into(&mut feed, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out, reference);
    }

    #[test]
    fn chunk_feed_reset_supports_reuse_and_empty_chunks() {
        let template = [1.0, -1.0, 0.5];
        let signal: Vec<f64> = (0..97).map(|i| (i as f64 * 0.3).cos()).collect();
        let filter = StreamingMatchedFilter::new(&template).unwrap();
        let reference = filter.correlate(&signal).unwrap();
        let mut feed = filter.chunk_feed();
        let mut scratch = DspScratch::new();
        for round in 0..3 {
            let mut out = Vec::new();
            // Zero-length chunks are no-ops anywhere in the stream.
            filter
                .push_chunk_into(&mut feed, &[], &mut scratch, &mut out)
                .unwrap();
            filter
                .push_chunk_into(&mut feed, &signal[..40], &mut scratch, &mut out)
                .unwrap();
            filter
                .push_chunk_into(&mut feed, &[], &mut scratch, &mut out)
                .unwrap();
            filter
                .push_chunk_into(&mut feed, &signal[40..], &mut scratch, &mut out)
                .unwrap();
            filter
                .finish_chunks_into(&mut feed, &mut scratch, &mut out)
                .unwrap();
            assert_eq!(out, reference, "round {round}");
            // A finished feed rejects further traffic until reset.
            assert!(filter
                .push_chunk_into(&mut feed, &signal[..1], &mut scratch, &mut out)
                .is_err());
            assert!(filter
                .finish_chunks_into(&mut feed, &mut scratch, &mut out)
                .is_err());
            feed.reset();
        }
    }

    #[test]
    fn chunk_feed_finish_mirrors_one_shot_errors() {
        let filter = StreamingMatchedFilter::new(&[1.0, 2.0, 3.0]).unwrap();
        let mut scratch = DspScratch::new();
        let mut out = Vec::new();
        // Nothing pushed: same error class as correlate(&[]).
        let mut feed = filter.chunk_feed();
        assert!(matches!(
            filter.finish_chunks_into(&mut feed, &mut scratch, &mut out),
            Err(DspError::EmptyInput { .. })
        ));
        // Fewer samples than the template: same error as the one-shot.
        feed.reset();
        filter
            .push_chunk_into(&mut feed, &[1.0, 2.0], &mut scratch, &mut out)
            .unwrap();
        assert!(filter
            .finish_chunks_into(&mut feed, &mut scratch, &mut out)
            .is_err());
        // A feed from a different engine geometry is rejected.
        let other = StreamingMatchedFilter::new(&[1.0; 64]).unwrap();
        let mut foreign = other.chunk_feed();
        assert!(filter
            .push_chunk_into(&mut foreign, &[1.0], &mut scratch, &mut out)
            .is_err());
    }

    #[test]
    fn streaming_rejects_degenerate_inputs() {
        assert!(StreamingMatchedFilter::new(&[]).is_err());
        assert!(StreamingMatchedFilter::new(&[0.0, 0.0]).is_err());
        // Block shorter than template, or not a power of two.
        assert!(StreamingMatchedFilter::with_block_len(&[1.0; 8], 4).is_err());
        assert!(StreamingMatchedFilter::with_block_len(&[1.0; 8], 12).is_err());
        let filter = StreamingMatchedFilter::new(&[1.0, 2.0]).unwrap();
        assert!(filter.correlate(&[]).is_err());
        assert!(filter.correlate(&[1.0]).is_err());
    }

    #[test]
    fn f32_streaming_tracks_f64_reference() {
        let template: Vec<f64> = (0..37)
            .map(|i| (i as f64 * 0.4).sin() - 0.3 * (i as f64 * 0.09).cos())
            .collect();
        let signal: Vec<f64> = (0..1500)
            .map(|i| (i as f64 * 0.021).sin() * (i as f64 * 0.0047).cos())
            .collect();
        let reference = xcorr(&signal, &template).unwrap();
        let template32: Vec<f32> = template.iter().map(|&x| x as f32).collect();
        let signal32: Vec<f32> = signal.iter().map(|&x| x as f32).collect();
        let filter = StreamingMatchedFilter32::new(&template32).unwrap();
        assert_eq!(filter.block_len(), 256);
        assert_eq!(filter.step(), 256 - 37 + 1);
        assert_eq!(filter.template_len(), 37);
        let mut scratch = DspScratch::new();
        let mut out = Vec::new();
        filter
            .correlate_into(&signal32, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out.len(), reference.len());
        let scale = 1.0 + reference.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (k, (&x, &y)) in out.iter().zip(&reference).enumerate() {
            assert!((x as f64 - y).abs() < 1e-4 * scale, "lag {k}: {x} vs {y}");
        }
    }

    #[test]
    fn f32_chunked_feed_is_bit_identical_to_f32_one_shot() {
        let template32: Vec<f32> = (0..37)
            .map(|i| ((i as f64 * 0.4).sin() - 0.3 * (i as f64 * 0.09).cos()) as f32)
            .collect();
        let signal32: Vec<f32> = (0..1777)
            .map(|i| ((i as f64 * 0.021).sin() * (i as f64 * 0.0047).cos()) as f32)
            .collect();
        let filter = StreamingMatchedFilter32::new(&template32).unwrap();
        let mut scratch = DspScratch::new();
        let mut reference = Vec::new();
        filter
            .correlate_normalized_into(&signal32, &mut scratch, &mut reference)
            .unwrap();
        for sizes in [&[1usize][..], &[3, 7, 11][..], &[256][..], &[1777][..]] {
            let mut feed = filter.chunk_feed();
            let mut out = Vec::new();
            let mut pos = 0;
            let mut i = 0;
            while pos < signal32.len() {
                let n = sizes[i % sizes.len()].min(signal32.len() - pos);
                filter
                    .push_chunk_normalized_into(
                        &mut feed,
                        &signal32[pos..pos + n],
                        &mut scratch,
                        &mut out,
                    )
                    .unwrap();
                pos += n;
                i += 1;
            }
            filter
                .finish_chunks_normalized_into(&mut feed, &mut scratch, &mut out)
                .unwrap();
            assert!(feed.is_finished());
            assert_eq!(feed.pushed(), signal32.len());
            assert_eq!(feed.emitted(), signal32.len());
            assert_eq!(out, reference, "chunk sizes {sizes:?}");
        }
    }

    #[test]
    fn folded_prefilter_matches_filter_then_correlate() {
        // Correlating the raw signal through the folded engine must
        // reproduce band-pass → correlate within f32 rounding, at every
        // lag — including the boundary lags where both pipelines rely on
        // zero extension.
        let template: Vec<f64> = (0..61)
            .map(|i| (i as f64 * 0.31).sin() * (1.0 - (i as f64 - 30.0).abs() / 31.0))
            .collect();
        let signal: Vec<f64> = (0..2_111)
            .map(|i| (i as f64 * 0.037).sin() * (i as f64 * 0.0011).cos())
            .collect();
        let bp =
            crate::filter::FirFilter::band_pass(2_000.0, 6_400.0, 44_100.0, 31, Window::Hamming)
                .unwrap();
        // Reference: f64 zero-phase band-pass, then f64 correlation.
        let filtered = bp.filter_zero_phase(&signal).unwrap();
        let reference = xcorr(&filtered, &template).unwrap();
        let energy: f64 = template.iter().map(|x| x * x).sum();

        let template32: Vec<f32> = template.iter().map(|&x| x as f32).collect();
        let signal32: Vec<f32> = signal.iter().map(|&x| x as f32).collect();
        let folded =
            StreamingMatchedFilter32::with_zero_phase_prefilter(&template32, bp.taps()).unwrap();
        assert_eq!(folded.template_len(), template.len() + bp.taps().len() - 1);
        let mut scratch = DspScratch::new();
        let mut out = Vec::new();
        folded
            .correlate_normalized_into(&signal32, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out.len(), reference.len());
        // Exact agreement holds up to the partial-overlap tail (the
        // two-pass reference truncates the prefilter's ringing at the
        // signal end; the folded engine keeps it).
        let full = signal.len() - template.len() + 1;
        let scale = 1.0
            + reference
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs() / energy));
        for (k, (&x, &y)) in out.iter().zip(&reference).enumerate().take(full) {
            assert!(
                (f64::from(x) - y / energy).abs() < 1e-4 * scale,
                "lag {k}: {x} vs {}",
                y / energy
            );
        }
        // The chunked feed honours the folded lead: bit-identical to the
        // folded one-shot, independent of chunking.
        let mut feed = folded.chunk_feed();
        let mut chunked = Vec::new();
        for chunk in signal32.chunks(97) {
            folded
                .push_chunk_normalized_into(&mut feed, chunk, &mut scratch, &mut chunked)
                .unwrap();
        }
        folded
            .finish_chunks_normalized_into(&mut feed, &mut scratch, &mut chunked)
            .unwrap();
        assert_eq!(chunked, out);
        // Degenerate folds are rejected.
        assert!(StreamingMatchedFilter32::with_zero_phase_prefilter(&[], bp.taps()).is_err());
        assert!(StreamingMatchedFilter32::with_zero_phase_prefilter(&template32, &[]).is_err());
        assert!(
            StreamingMatchedFilter32::with_zero_phase_prefilter(&[0.0, 0.0], bp.taps()).is_err()
        );
    }

    #[test]
    fn f32_streaming_rejects_degenerate_inputs() {
        assert!(StreamingMatchedFilter32::new(&[]).is_err());
        assert!(StreamingMatchedFilter32::new(&[0.0, 0.0]).is_err());
        assert!(StreamingMatchedFilter32::with_block_len(&[1.0; 8], 4).is_err());
        assert!(StreamingMatchedFilter32::with_block_len(&[1.0; 8], 12).is_err());
        let filter = StreamingMatchedFilter32::new(&[1.0, 2.0]).unwrap();
        assert!((filter.template_energy() - 5.0).abs() < 1e-12);
        let mut scratch = DspScratch::new();
        let mut out = Vec::new();
        assert!(filter.correlate_into(&[], &mut scratch, &mut out).is_err());
        assert!(filter
            .correlate_into(&[1.0], &mut scratch, &mut out)
            .is_err());
        // Feed error mirroring: nothing pushed, short stream, foreign feed.
        let mut feed = filter.chunk_feed();
        assert!(matches!(
            filter.finish_chunks_into(&mut feed, &mut scratch, &mut out),
            Err(DspError::EmptyInput { .. })
        ));
        filter
            .push_chunk_into(&mut feed, &[1.0], &mut scratch, &mut out)
            .unwrap();
        assert!(filter
            .finish_chunks_into(&mut feed, &mut scratch, &mut out)
            .is_err());
        let other = StreamingMatchedFilter32::new(&[1.0; 64]).unwrap();
        let mut foreign = other.chunk_feed();
        assert!(filter
            .push_chunk_into(&mut foreign, &[1.0], &mut scratch, &mut out)
            .is_err());
        assert!(foreign.capacity_bytes() > 0);
    }

    /// Three deterministic templates of *different* lengths plus a long
    /// test capture, shared by the bank conformance tests.
    fn bank_fixtures() -> (Vec<Vec<f64>>, Vec<f64>) {
        let templates: Vec<Vec<f64>> = [(37usize, 0.40, 0.09), (29, 0.23, 0.31), (61, 0.57, 0.13)]
            .iter()
            .map(|&(n, a, b)| {
                (0..n)
                    .map(|i| (i as f64 * a).sin() - 0.3 * (i as f64 * b).cos())
                    .collect()
            })
            .collect();
        let signal: Vec<f64> = (0..2_111)
            .map(|i| (i as f64 * 0.021).sin() * (i as f64 * 0.0047).cos())
            .collect();
        (templates, signal)
    }

    /// The bank's conformance contract: every lane is bit-identical to
    /// an independent `StreamingMatchedFilter` holding the same template
    /// at the bank's shared geometry (zero-padded to the bank template
    /// length, same block length) — one-shot, raw and normalized.
    #[test]
    fn bank_lanes_bit_identical_to_independent_engines() {
        let (templates, signal) = bank_fixtures();
        let refs: Vec<&[f64]> = templates.iter().map(Vec::as_slice).collect();
        let bank = StreamingMatchedFilterBank::new(&refs).unwrap();
        assert_eq!(bank.len(), 3);
        assert!(!bank.is_empty());
        assert_eq!(bank.template_len(), 61);
        assert_eq!(bank.block_len(), 256); // next_pow2(4 * 61)
        assert_eq!(bank.step(), 256 - 61 + 1);
        assert_eq!(bank.lead(), 0);
        let mut scratch = DspScratch::new();
        let mut lanes: Vec<Vec<f64>> = vec![Vec::new(); bank.len()];
        bank.correlate_into(&signal, &mut scratch, &mut lanes)
            .unwrap();
        for (k, template) in templates.iter().enumerate() {
            let mut padded = template.clone();
            padded.resize(bank.template_len(), 0.0);
            let single = StreamingMatchedFilter::with_block_len(&padded, bank.block_len()).unwrap();
            let mut reference = Vec::new();
            single
                .correlate_into(&signal, &mut scratch, &mut reference)
                .unwrap();
            assert_eq!(
                lanes[k], reference,
                "lane {k} diverged from independent engine"
            );
            // Zero-padding leaves the energy untouched, so the
            // normalized lane is bit-identical too.
            assert_eq!(
                bank.template_energy(k).unwrap(),
                single.template_energy(),
                "lane {k} energy"
            );
        }
        let raw = lanes.clone();
        bank.correlate_normalized_into(&signal, &mut scratch, &mut lanes)
            .unwrap();
        for (k, template) in templates.iter().enumerate() {
            let mut padded = template.clone();
            padded.resize(bank.template_len(), 0.0);
            let single = StreamingMatchedFilter::with_block_len(&padded, bank.block_len()).unwrap();
            let mut reference = Vec::new();
            single
                .correlate_normalized_into(&signal, &mut scratch, &mut reference)
                .unwrap();
            assert_eq!(lanes[k], reference, "normalized lane {k}");
            assert_ne!(lanes[k], raw[k]);
        }
        assert!(bank.template_energy(3).is_none());
    }

    #[test]
    fn bank_chunked_feed_is_bit_identical_to_one_shot() {
        let (templates, signal) = bank_fixtures();
        let refs: Vec<&[f64]> = templates.iter().map(Vec::as_slice).collect();
        let bank = StreamingMatchedFilterBank::new(&refs).unwrap();
        let mut scratch = DspScratch::new();
        let mut reference: Vec<Vec<f64>> = vec![Vec::new(); bank.len()];
        bank.correlate_into(&signal, &mut scratch, &mut reference)
            .unwrap();
        for sizes in [
            &[1usize][..],
            &[3, 7, 11][..],
            &[256][..],
            &[signal.len()][..],
            &[255, 1, 513][..],
        ] {
            let mut feed = bank.chunk_feed();
            let mut lanes: Vec<Vec<f64>> = vec![Vec::new(); bank.len()];
            let mut pos = 0;
            let mut i = 0;
            while pos < signal.len() {
                let n = sizes[i % sizes.len()].min(signal.len() - pos);
                bank.push_chunk_into(&mut feed, &signal[pos..pos + n], &mut scratch, &mut lanes)
                    .unwrap();
                pos += n;
                i += 1;
            }
            bank.finish_chunks_into(&mut feed, &mut scratch, &mut lanes)
                .unwrap();
            assert!(feed.is_finished());
            assert_eq!(feed.pushed(), signal.len());
            assert_eq!(feed.emitted(), signal.len());
            assert_eq!(lanes, reference, "chunk sizes {sizes:?}");
        }
        // Normalized chunked flow matches the normalized one-shot.
        let mut normalized: Vec<Vec<f64>> = vec![Vec::new(); bank.len()];
        bank.correlate_normalized_into(&signal, &mut scratch, &mut normalized)
            .unwrap();
        let mut feed = bank.chunk_feed();
        let mut lanes: Vec<Vec<f64>> = vec![Vec::new(); bank.len()];
        for chunk in signal.chunks(97) {
            bank.push_chunk_normalized_into(&mut feed, chunk, &mut scratch, &mut lanes)
                .unwrap();
        }
        bank.finish_chunks_normalized_into(&mut feed, &mut scratch, &mut lanes)
            .unwrap();
        assert_eq!(lanes, normalized);
    }

    /// Folded-prefilter bank: each lane bit-identical to an independent
    /// folded engine. Equal-length templates give both paths the same
    /// geometry automatically.
    #[test]
    fn bank_folded_prefilters_match_independent_folded_engines() {
        let templates: Vec<Vec<f64>> = [(0.40, 0.09), (0.23, 0.31), (0.57, 0.13), (0.71, 0.05)]
            .iter()
            .map(|&(a, b)| {
                (0..48)
                    .map(|i| (i as f64 * a).sin() - 0.3 * (i as f64 * b).cos())
                    .collect()
            })
            .collect();
        let signal: Vec<f64> = (0..1_900)
            .map(|i| (i as f64 * 0.037).sin() * (i as f64 * 0.0011).cos())
            .collect();
        // Per-lane band-pass filters with distinct bands but one tap
        // count (hence one group delay), like K beacon signatures.
        let bands = [
            (2_000.0, 3_000.0),
            (3_200.0, 4_200.0),
            (4_400.0, 5_400.0),
            (5_600.0, 6_600.0),
        ];
        let taps: Vec<Vec<f64>> = bands
            .iter()
            .map(|&(lo, hi)| {
                crate::filter::FirFilter::band_pass(lo, hi, 44_100.0, 31, Window::Hamming)
                    .unwrap()
                    .taps()
                    .to_vec()
            })
            .collect();
        let entries: Vec<(&[f64], &[f64])> = templates
            .iter()
            .zip(&taps)
            .map(|(t, h)| (t.as_slice(), h.as_slice()))
            .collect();
        let bank = StreamingMatchedFilterBank::with_zero_phase_prefilters(&entries).unwrap();
        assert_eq!(bank.lead(), 15);
        assert_eq!(bank.template_len(), 48 + 31 - 1);
        let mut scratch = DspScratch::new();
        let mut lanes: Vec<Vec<f64>> = vec![Vec::new(); bank.len()];
        bank.correlate_normalized_into(&signal, &mut scratch, &mut lanes)
            .unwrap();
        for (k, (template, tap)) in templates.iter().zip(&taps).enumerate() {
            let single = StreamingMatchedFilter::with_zero_phase_prefilter(template, tap).unwrap();
            assert_eq!(single.block_len(), bank.block_len());
            assert_eq!(single.template_len(), bank.template_len());
            let mut reference = Vec::new();
            single
                .correlate_normalized_into(&signal, &mut scratch, &mut reference)
                .unwrap();
            assert_eq!(lanes[k], reference, "folded lane {k}");
        }
        // Chunked folded bank honours the shared lead.
        let mut feed = bank.chunk_feed();
        let mut chunked: Vec<Vec<f64>> = vec![Vec::new(); bank.len()];
        for chunk in signal.chunks(113) {
            bank.push_chunk_normalized_into(&mut feed, chunk, &mut scratch, &mut chunked)
                .unwrap();
        }
        bank.finish_chunks_normalized_into(&mut feed, &mut scratch, &mut chunked)
            .unwrap();
        assert_eq!(chunked, lanes);
    }

    /// The folded f64 single engine itself must reproduce band-pass →
    /// correlate exactly (not just within f32 rounding): zero-phase
    /// filter then correlate equals folded correlation at every full-
    /// overlap lag.
    #[test]
    fn f64_folded_prefilter_matches_filter_then_correlate() {
        let template: Vec<f64> = (0..61)
            .map(|i| (i as f64 * 0.31).sin() * (1.0 - (i as f64 - 30.0).abs() / 31.0))
            .collect();
        let signal: Vec<f64> = (0..2_111)
            .map(|i| (i as f64 * 0.037).sin() * (i as f64 * 0.0011).cos())
            .collect();
        let bp =
            crate::filter::FirFilter::band_pass(2_000.0, 6_400.0, 44_100.0, 31, Window::Hamming)
                .unwrap();
        let filtered = bp.filter_zero_phase(&signal).unwrap();
        let reference = xcorr(&filtered, &template).unwrap();
        let folded =
            StreamingMatchedFilter::with_zero_phase_prefilter(&template, bp.taps()).unwrap();
        assert_eq!(folded.template_len(), template.len() + bp.taps().len() - 1);
        let streamed = folded.correlate(&signal).unwrap();
        assert_eq!(streamed.len(), reference.len());
        let full = signal.len() - folded.template_len() + 1;
        assert_bit_close(&streamed[..full], &reference[..full]);
        // Degenerate folds are rejected.
        assert!(StreamingMatchedFilter::with_zero_phase_prefilter(&[], bp.taps()).is_err());
        assert!(StreamingMatchedFilter::with_zero_phase_prefilter(&template, &[]).is_err());
        assert!(StreamingMatchedFilter::with_zero_phase_prefilter(&[0.0, 0.0], bp.taps()).is_err());
    }

    #[test]
    fn bank_clone_shares_template_spectra() {
        let (templates, _) = bank_fixtures();
        let refs: Vec<&[f64]> = templates.iter().map(Vec::as_slice).collect();
        let bank = StreamingMatchedFilterBank::new(&refs).unwrap();
        assert_eq!(bank.template_fft_count(), 3);
        let clone = bank.clone();
        // A clone reuses the Arc'd spectra — no new template FFTs.
        assert_eq!(clone.template_fft_count(), 3);
        for (a, b) in bank.lanes.iter().zip(&clone.lanes) {
            assert!(Arc::ptr_eq(&a.spec, &b.spec));
        }
        assert!(Arc::ptr_eq(&bank.plan, &clone.plan));
    }

    #[test]
    fn bank_rejects_degenerate_inputs() {
        assert!(StreamingMatchedFilterBank::new(&[]).is_err());
        assert!(StreamingMatchedFilterBank::new(&[&[1.0, 2.0][..], &[][..]]).is_err());
        assert!(StreamingMatchedFilterBank::new(&[&[1.0][..], &[0.0, 0.0][..]]).is_err());
        assert!(StreamingMatchedFilterBank::with_block_len(&[&[1.0; 8][..]], 4).is_err());
        assert!(StreamingMatchedFilterBank::with_block_len(&[&[1.0; 8][..]], 12).is_err());
        // Mismatched prefilter group delays are rejected.
        assert!(StreamingMatchedFilterBank::with_zero_phase_prefilters(&[
            (&[1.0, 2.0][..], &[0.2, 0.6, 0.2][..]),
            (&[1.0, 2.0][..], &[0.1, 0.2, 0.4, 0.2, 0.1][..]),
        ])
        .is_err());
        assert!(StreamingMatchedFilterBank::with_zero_phase_prefilters(&[]).is_err());
        assert!(
            StreamingMatchedFilterBank::with_zero_phase_prefilters(&[(&[1.0][..], &[][..])])
                .is_err()
        );

        let bank = StreamingMatchedFilterBank::new(&[&[1.0, 2.0][..], &[2.0, -1.0][..]]).unwrap();
        let mut scratch = DspScratch::new();
        let mut lanes: Vec<Vec<f64>> = vec![Vec::new(); 2];
        assert!(bank.correlate_into(&[], &mut scratch, &mut lanes).is_err());
        assert!(bank
            .correlate_into(&[1.0], &mut scratch, &mut lanes)
            .is_err());
        // Mis-sized lane sets are rejected everywhere.
        let mut short: Vec<Vec<f64>> = vec![Vec::new(); 1];
        assert!(bank
            .correlate_into(&[1.0; 16], &mut scratch, &mut short)
            .is_err());
        let mut feed = bank.chunk_feed();
        assert!(bank
            .push_chunk_into(&mut feed, &[1.0], &mut scratch, &mut short)
            .is_err());
        assert!(bank
            .finish_chunks_into(&mut feed, &mut scratch, &mut short)
            .is_err());
        // Feed error mirroring: nothing pushed, short stream, foreign feed.
        assert!(matches!(
            bank.finish_chunks_into(&mut feed, &mut scratch, &mut lanes),
            Err(DspError::EmptyInput { .. })
        ));
        bank.push_chunk_into(&mut feed, &[1.0], &mut scratch, &mut lanes)
            .unwrap();
        assert!(bank
            .finish_chunks_into(&mut feed, &mut scratch, &mut lanes)
            .is_err());
        let other = StreamingMatchedFilterBank::new(&[&[1.0; 64][..]]).unwrap();
        let mut foreign = other.chunk_feed();
        let mut one: Vec<Vec<f64>> = vec![Vec::new(); 1];
        assert!(other
            .push_chunk_into(&mut feed, &[1.0], &mut scratch, &mut one)
            .is_err());
        assert!(bank
            .push_chunk_into(&mut foreign, &[1.0], &mut scratch, &mut lanes)
            .is_err());
    }

    #[test]
    fn f32_bank_lanes_bit_identical_to_independent_f32_engines() {
        let (templates, signal) = bank_fixtures();
        let templates32: Vec<Vec<f32>> = templates
            .iter()
            .map(|t| t.iter().map(|&x| x as f32).collect())
            .collect();
        let signal32: Vec<f32> = signal.iter().map(|&x| x as f32).collect();
        let refs: Vec<&[f32]> = templates32.iter().map(Vec::as_slice).collect();
        let bank = StreamingMatchedFilterBank32::new(&refs).unwrap();
        assert_eq!(bank.len(), 3);
        assert!(!bank.is_empty());
        assert_eq!(bank.template_len(), 61);
        assert_eq!(bank.block_len(), 256);
        assert_eq!(bank.step(), 196);
        assert_eq!(bank.lead(), 0);
        assert_eq!(bank.template_fft_count(), 3);
        let mut scratch = DspScratch::new();
        let mut lanes: Vec<Vec<f32>> = vec![Vec::new(); bank.len()];
        bank.correlate_into(&signal32, &mut scratch, &mut lanes)
            .unwrap();
        for (k, template) in templates32.iter().enumerate() {
            let mut padded = template.clone();
            padded.resize(bank.template_len(), 0.0);
            let single =
                StreamingMatchedFilter32::with_block_len(&padded, bank.block_len()).unwrap();
            let mut reference = Vec::new();
            single
                .correlate_into(&signal32, &mut scratch, &mut reference)
                .unwrap();
            assert_eq!(lanes[k], reference, "f32 lane {k}");
        }
        // Chunked f32 bank flow is bit-identical to the f32 one-shot.
        let mut reference = lanes.clone();
        bank.correlate_normalized_into(&signal32, &mut scratch, &mut reference)
            .unwrap();
        let mut feed = bank.chunk_feed();
        let mut chunked: Vec<Vec<f32>> = vec![Vec::new(); bank.len()];
        for chunk in signal32.chunks(131) {
            bank.push_chunk_normalized_into(&mut feed, chunk, &mut scratch, &mut chunked)
                .unwrap();
        }
        bank.finish_chunks_normalized_into(&mut feed, &mut scratch, &mut chunked)
            .unwrap();
        assert_eq!(chunked, reference);
        // Raw chunked flow too.
        feed.reset();
        let mut raw: Vec<Vec<f32>> = vec![Vec::new(); bank.len()];
        bank.push_chunk_into(&mut feed, &signal32, &mut scratch, &mut raw)
            .unwrap();
        bank.finish_chunks_into(&mut feed, &mut scratch, &mut raw)
            .unwrap();
        assert_eq!(raw, lanes);
    }

    #[test]
    fn f32_bank_folded_prefilters_match_independent_folded_engines() {
        let templates32: Vec<Vec<f32>> = [(0.40, 0.09), (0.23, 0.31)]
            .iter()
            .map(|&(a, b)| {
                (0..48)
                    .map(|i| ((i as f64 * a).sin() - 0.3 * (i as f64 * b).cos()) as f32)
                    .collect()
            })
            .collect();
        let signal32: Vec<f32> = (0..1_500)
            .map(|i| ((i as f64 * 0.037).sin() * (i as f64 * 0.0011).cos()) as f32)
            .collect();
        let taps: Vec<Vec<f64>> = [(2_000.0, 3_000.0), (4_400.0, 5_400.0)]
            .iter()
            .map(|&(lo, hi)| {
                crate::filter::FirFilter::band_pass(lo, hi, 44_100.0, 31, Window::Hamming)
                    .unwrap()
                    .taps()
                    .to_vec()
            })
            .collect();
        let entries: Vec<(&[f32], &[f64])> = templates32
            .iter()
            .zip(&taps)
            .map(|(t, h)| (t.as_slice(), h.as_slice()))
            .collect();
        let bank = StreamingMatchedFilterBank32::with_zero_phase_prefilters(&entries).unwrap();
        assert_eq!(bank.lead(), 15);
        let mut scratch = DspScratch::new();
        let mut lanes: Vec<Vec<f32>> = vec![Vec::new(); bank.len()];
        bank.correlate_normalized_into(&signal32, &mut scratch, &mut lanes)
            .unwrap();
        for (k, (template, tap)) in templates32.iter().zip(&taps).enumerate() {
            let single =
                StreamingMatchedFilter32::with_zero_phase_prefilter(template, tap).unwrap();
            assert_eq!(single.block_len(), bank.block_len());
            assert_eq!(single.template_len(), bank.template_len());
            let mut reference = Vec::new();
            single
                .correlate_normalized_into(&signal32, &mut scratch, &mut reference)
                .unwrap();
            assert_eq!(lanes[k], reference, "f32 folded lane {k}");
        }
        // Degenerate f32 bank inputs are rejected.
        assert!(StreamingMatchedFilterBank32::new(&[]).is_err());
        assert!(StreamingMatchedFilterBank32::new(&[&[][..]]).is_err());
        assert!(StreamingMatchedFilterBank32::new(&[&[0.0, 0.0][..]]).is_err());
        assert!(StreamingMatchedFilterBank32::with_zero_phase_prefilters(&[]).is_err());
        assert!(StreamingMatchedFilterBank32::with_zero_phase_prefilters(&[
            (&[1.0f32, 2.0][..], &[0.2, 0.6, 0.2][..]),
            (&[1.0f32, 2.0][..], &[0.1, 0.2, 0.4, 0.2, 0.1][..]),
        ])
        .is_err());
    }
}
