//! Robust TDoA estimator kernels: spectral re-weighting of a matched-filter
//! correlation and cross-channel fusion of redundant correlations.
//!
//! The HyperEar pipeline extracts beacon arrivals from a normalized
//! matched-filter correlation. Under clean line-of-sight conditions the
//! plain correlation is optimal, but indoor NLOS multipath smears the main
//! lobe and in-band interference raises spurious peaks. This module
//! provides three progressively heavier alternatives, all operating on the
//! correlation sequence *between* matched filtering and peak extraction so
//! the rest of the pipeline is untouched:
//!
//! - [`gcc_phat_with`] — GCC-PHAT-style spectral whitening with a
//!   configurable magnitude floor. Each half-spectrum bin is divided by
//!   `max(|R(f)|, floor · max|R|)^β` (β = [`PHAT_BETA`], partial
//!   whitening), equalizing the band's contribution and sharpening the
//!   correlation main lobe — the classic defence against
//!   multipath-induced lobe smearing. The floor bounds the whitening gain
//!   so near-empty bins cannot amplify noise without limit (plain PHAT's
//!   known low-SNR failure mode), and β < 1 keeps part of the magnitude
//!   spectrum so whitening a periodic beacon train does not raise
//!   phase-only ghost images at multiples of the beacon period.
//! - [`subband_coherence_with`] — Wiener-style per-band weighting inside
//!   the beacon band. The band is split into sub-bands; each sub-band `b`
//!   with mean power `S_b` is scaled by `S_b / (S_b + N)` where `N` is the
//!   median sub-band power (a robust noise reference), and out-of-band
//!   bins are zeroed. Bands dominated by narrowband interference or
//!   notched by frequency-selective fading are attenuated instead of
//!   voting on the peak position.
//! - [`mcci_offsets_with`] / [`mcci_fuse_channel_into`] — multiple
//!   cross-correlation identity (MCCI) fusion across redundant channels.
//!   Each channel's correlation images the same beacon train shifted by
//!   that channel's propagation delay, so pairwise lags between the
//!   correlation sequences over-determine a consistent per-channel time
//!   line (least-squares over all pairs). Shift-and-averaging every live
//!   channel onto one channel's time line averages down uncorrelated
//!   noise and dropout while the common beacon structure adds coherently.
//!
//! All spectral weights are real and non-negative, i.e. zero-phase: they
//! reshape lobe widths and relative amplitudes but cannot bias the peak
//! position of an isolated arrival. All kernels are allocation-free once
//! their [`EstimatorScratch`] has grown to the working size, and degrade
//! gracefully (a no-op leaving the correlation unchanged) on inputs with
//! no usable spectral mass instead of producing NaNs.

use crate::complex::{axpy, dot_seq};
use crate::fft::try_next_pow2;
use crate::plan::shared_real_plan;
use crate::{Complex, DspError};

/// Reusable workspace for the estimator kernels.
///
/// Holds the half-spectrum buffer, the inverse-transform output, and the
/// per-band power table. Grows to a high-water mark on first use and is
/// allocation-free afterwards, mirroring [`crate::plan::DspScratch`].
#[derive(Debug, Clone, Default)]
pub struct EstimatorScratch {
    /// Half-spectrum bins of the forward real FFT.
    pub half: Vec<Complex>,
    /// Real output of the inverse transform.
    pub real: Vec<f64>,
    /// Per-sub-band mean power (coherence weighting).
    pub band_power: Vec<f64>,
    /// Sorted copy of `band_power` for the median noise reference.
    pub band_sort: Vec<f64>,
}

impl EstimatorScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total heap capacity currently held, in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.half.capacity() * std::mem::size_of::<Complex>()
            + (self.real.capacity() + self.band_power.capacity() + self.band_sort.capacity())
                * std::mem::size_of::<f64>()
    }
}

/// Partial-whitening exponent for [`gcc_phat_with`] (PHAT-β).
///
/// Full phase-only whitening (β = 1) of a *periodic* beacon train
/// manufactures ghost images one beacon period before/after the real
/// arrivals — the phase-only spectrum of a pulse train is a comb, and its
/// inverse transform rings at the comb period at ≈ 0.36 of the main-peak
/// amplitude, enough to clear the detector's relative threshold on clean
/// input. β = 0.5 keeps the square root of the magnitude spectrum, which
/// damps the images below 0.21 of the main peak while retaining most of
/// the lobe sharpening that makes PHAT robust under multipath.
pub const PHAT_BETA: f64 = 0.5;

/// Whitens a correlation sequence in place with a floored PHAT-β weight.
///
/// Each half-spectrum bin is divided by
/// `max(|R(f)|, floor · max_f|R(f)|)^β` (β = [`PHAT_BETA`]), then the
/// sequence is inverse-transformed back to the lag domain. The transform
/// length is the next power of two above `corr.len()` (shared
/// process-wide plan, so warm calls do not allocate).
///
/// A correlation with no spectral mass at all (all zeros) is left
/// unchanged — whitening has nothing to normalize and the division floor
/// would otherwise manufacture NaNs.
///
/// # Errors
///
/// - [`DspError::EmptyInput`] when `corr` is empty.
/// - [`DspError::InvalidParameter`] when `floor` is not in `(0, 1)`.
pub fn gcc_phat_with(
    corr: &mut Vec<f64>,
    floor: f64,
    scratch: &mut EstimatorScratch,
) -> Result<(), DspError> {
    if corr.is_empty() {
        return Err(DspError::EmptyInput {
            what: "gcc_phat correlation",
        });
    }
    if !floor.is_finite() || floor <= 0.0 || floor >= 1.0 {
        return Err(DspError::invalid(
            "floor",
            format!("PHAT whitening floor must be in (0, 1), got {floor}"),
        ));
    }
    let n = corr.len();
    let plan = shared_real_plan(try_next_pow2(n)?)?;
    plan.rfft_half_into(corr, &mut scratch.half)?;
    let max_mag = scratch.half.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
    if max_mag <= 0.0 || !max_mag.is_finite() {
        // All-zero (or non-finite) spectrum: graceful no-op.
        return Ok(());
    }
    let eps = floor * max_mag;
    for z in &mut scratch.half {
        // PHAT_BETA = 0.5: divide by the floored magnitude's square root.
        *z = z.scale(1.0 / z.abs().max(eps).sqrt());
    }
    plan.irfft_half_into(&mut scratch.half, &mut scratch.real)?;
    corr.clear();
    corr.extend_from_slice(&scratch.real[..n]);
    Ok(())
}

/// Re-weights a correlation sequence in place by per-sub-band coherence.
///
/// The half-spectrum bins covering `band_lo..band_hi` Hz are split into
/// `bands` equal sub-bands. Each sub-band with mean power `S_b` is scaled
/// by the Wiener-style coherence weight `S_b / (S_b + N)`, where `N` is
/// the median sub-band power (minimum when fewer than three sub-bands
/// exist, so a single-band request degenerates to a pure band-pass).
/// Bins outside the band are zeroed.
///
/// A correlation with no in-band spectral mass is left unchanged.
///
/// # Errors
///
/// - [`DspError::EmptyInput`] when `corr` is empty.
/// - [`DspError::InvalidParameter`] when the band edges are not
///   `0 < band_lo < band_hi <= sample_rate / 2` or `bands == 0`.
pub fn subband_coherence_with(
    corr: &mut Vec<f64>,
    sample_rate: f64,
    band_lo: f64,
    band_hi: f64,
    bands: usize,
    scratch: &mut EstimatorScratch,
) -> Result<(), DspError> {
    if corr.is_empty() {
        return Err(DspError::EmptyInput {
            what: "subband_coherence correlation",
        });
    }
    if sample_rate.is_nan() || sample_rate <= 0.0 {
        return Err(DspError::invalid(
            "sample_rate",
            format!("must be positive, got {sample_rate}"),
        ));
    }
    if !(band_lo > 0.0 && band_lo < band_hi && band_hi <= sample_rate / 2.0) {
        return Err(DspError::invalid(
            "band",
            format!("need 0 < lo < hi <= fs/2, got {band_lo}..{band_hi} at fs {sample_rate}"),
        ));
    }
    if bands == 0 {
        return Err(DspError::invalid("bands", "need at least one sub-band"));
    }
    let n = corr.len();
    let m = try_next_pow2(n)?;
    let plan = shared_real_plan(m)?;
    plan.rfft_half_into(corr, &mut scratch.half)?;
    let bins = scratch.half.len();
    let bin_hz = sample_rate / m as f64;
    let k_lo = (band_lo / bin_hz).ceil() as usize;
    let k_hi = ((band_hi / bin_hz).floor() as usize).min(bins - 1);
    if k_lo > k_hi {
        // The transform is too short to resolve the band: no-op.
        return Ok(());
    }
    let span = k_hi - k_lo + 1;
    let b_count = bands.min(span);
    let band_of = |k: usize| ((k - k_lo) * b_count / span).min(b_count - 1);
    scratch.band_power.clear();
    scratch.band_power.resize(b_count, 0.0);
    for k in k_lo..=k_hi {
        scratch.band_power[band_of(k)] += scratch.half[k].norm_sqr();
    }
    // Equal-width bands up to rounding; normalize by each band's bin count.
    for b in 0..b_count {
        let lo = k_lo + (b * span).div_ceil(b_count);
        let hi = k_lo + ((b + 1) * span).div_ceil(b_count);
        let width = hi.saturating_sub(lo).max(1);
        scratch.band_power[b] /= width as f64;
    }
    let total: f64 = scratch.band_power.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        // No in-band spectral mass: graceful no-op.
        return Ok(());
    }
    scratch.band_sort.clear();
    scratch.band_sort.extend_from_slice(&scratch.band_power);
    scratch.band_sort.sort_unstable_by(f64::total_cmp);
    let noise = if b_count >= 3 {
        scratch.band_sort[b_count / 2]
    } else {
        scratch.band_sort[0]
    };
    for (k, z) in scratch.half.iter_mut().enumerate() {
        if k < k_lo || k > k_hi {
            *z = Complex::ZERO;
        } else {
            let s = scratch.band_power[band_of(k)];
            let w = if s + noise > 0.0 {
                s / (s + noise)
            } else {
                0.0
            };
            *z = z.scale(w);
        }
    }
    plan.irfft_half_into(&mut scratch.half, &mut scratch.real)?;
    corr.clear();
    corr.extend_from_slice(&scratch.real[..n]);
    Ok(())
}

/// Estimates least-squares-consistent per-channel alignment offsets from
/// pairwise lags between correlation sequences (the MCCI identity step).
///
/// For every live pair `(i, j)` the lag maximizing
/// `Σ_t corr_i[t] · corr_j[t + d]` over `d ∈ [−max_lag, max_lag]` measures
/// `τ_j − τ_i`. The over-determined pairwise system is solved in closed
/// form (`offset_i = −Σ_j l_ij / K`, the zero-mean least-squares
/// solution), so inconsistent pair measurements are averaged rather than
/// propagated. A channel whose correlation carries no energy is marked
/// dead (`live[k] = false`, offset 0) and excluded from the solve.
///
/// Returns the number of live channels. Fewer than two live channels
/// means no fusion is possible; callers should fall back to the plain
/// per-channel correlations.
///
/// # Errors
///
/// - [`DspError::EmptyInput`] when `corrs` is empty or a channel is empty.
/// - [`DspError::LengthMismatch`] when channels differ in length.
/// - [`DspError::InvalidParameter`] when `max_lag` is zero or not below
///   the channel length.
pub fn mcci_offsets_with(
    corrs: &[&[f64]],
    max_lag: usize,
    offsets: &mut Vec<f64>,
    live: &mut Vec<bool>,
) -> Result<usize, DspError> {
    if corrs.is_empty() {
        return Err(DspError::EmptyInput {
            what: "mcci channels",
        });
    }
    let n = corrs[0].len();
    if n == 0 {
        return Err(DspError::EmptyInput {
            what: "mcci correlation",
        });
    }
    for c in corrs {
        if c.len() != n {
            return Err(DspError::LengthMismatch {
                left: n,
                right: c.len(),
                what: "mcci channel correlations",
            });
        }
    }
    if max_lag == 0 || max_lag >= n {
        return Err(DspError::invalid(
            "max_lag",
            format!("must be in 1..{n} for correlations of length {n}, got {max_lag}"),
        ));
    }
    let k_ch = corrs.len();
    live.clear();
    live.extend(corrs.iter().map(|c| c.iter().any(|&v| v != 0.0)));
    offsets.clear();
    offsets.resize(k_ch, 0.0);
    let n_live = live.iter().filter(|&&l| l).count();
    if n_live < 2 {
        return Ok(n_live);
    }
    for i in 0..k_ch {
        if !live[i] {
            continue;
        }
        for j in (i + 1)..k_ch {
            if !live[j] {
                continue;
            }
            let l_ij = best_pair_lag(corrs[i], corrs[j], max_lag);
            // l_ij ≈ τ_j − τ_i; accumulate the zero-mean LS solution.
            offsets[i] -= l_ij;
            offsets[j] += l_ij;
        }
    }
    for (o, &is_live) in offsets.iter_mut().zip(live.iter()) {
        if is_live {
            *o /= n_live as f64;
        }
    }
    Ok(n_live)
}

/// The integer lag in `[−max_lag, max_lag]` maximizing
/// `Σ_t a[t] · b[t + d]` (ties break toward the smaller |d|, then the
/// negative side, deterministically).
fn best_pair_lag(a: &[f64], b: &[f64], max_lag: usize) -> f64 {
    let n = a.len();
    let l = max_lag as isize;
    let mut best = f64::NEG_INFINITY;
    let mut best_d = 0isize;
    let mut d = 0isize;
    // Visit lags by increasing |d| so ties keep the smallest shift.
    let mut step = 0isize;
    loop {
        let (lo, hi) = if d >= 0 {
            (0usize, n - d as usize)
        } else {
            ((-d) as usize, n)
        };
        // Sequential MAC through the shared kernel: the accumulation
        // order is part of the MCCI conformance pins, so this lag sum
        // must not be reassociated (see `dot_seq`).
        let acc = dot_seq(
            &a[lo..hi],
            &b[(lo as isize + d) as usize..(hi as isize + d) as usize],
        );
        if acc > best {
            best = acc;
            best_d = d;
        }
        step += 1;
        let mag = step / 2 + step % 2;
        if mag > l {
            break;
        }
        d = if step % 2 == 1 { -mag } else { mag };
    }
    best_d as f64
}

/// Shift-and-averages every live channel's correlation onto `channel`'s
/// time line using the offsets from [`mcci_offsets_with`], writing the
/// fused sequence into `out` (cleared and refilled; capacity reused).
///
/// Channel `j` is read at `t + round(offset_j − offset_channel)`; samples
/// shifted past either end contribute zero. The fused sequence is the
/// mean over live channels, so its amplitude scale matches the inputs.
///
/// # Errors
///
/// - [`DspError::EmptyInput`] when `corrs` is empty.
/// - [`DspError::LengthMismatch`] when `offsets`/`live` do not match the
///   channel count or channels differ in length.
/// - [`DspError::OutOfRange`] when `channel` is not a valid index.
pub fn mcci_fuse_channel_into(
    corrs: &[&[f64]],
    offsets: &[f64],
    live: &[bool],
    channel: usize,
    out: &mut Vec<f64>,
) -> Result<(), DspError> {
    if corrs.is_empty() {
        return Err(DspError::EmptyInput {
            what: "mcci channels",
        });
    }
    if offsets.len() != corrs.len() || live.len() != corrs.len() {
        return Err(DspError::LengthMismatch {
            left: corrs.len(),
            right: offsets.len().min(live.len()),
            what: "mcci offsets/live tables",
        });
    }
    if channel >= corrs.len() {
        return Err(DspError::OutOfRange {
            index: channel,
            len: corrs.len(),
        });
    }
    let n = corrs[0].len();
    for c in corrs {
        if c.len() != n {
            return Err(DspError::LengthMismatch {
                left: n,
                right: c.len(),
                what: "mcci channel correlations",
            });
        }
    }
    out.clear();
    out.resize(n, 0.0);
    let n_live = live.iter().filter(|&&l| l).count().max(1);
    let scale = 1.0 / n_live as f64;
    for (j, c) in corrs.iter().enumerate() {
        if !live[j] {
            continue;
        }
        let d = (offsets[j] - offsets[channel]).round() as isize;
        let (t_lo, t_hi) = if d >= 0 {
            (0usize, n.saturating_sub(d as usize))
        } else {
            ((-d) as usize, n)
        };
        if t_lo < t_hi {
            // Elementwise shift-and-accumulate through the shared axpy
            // kernel (bit-identical to the per-sample loop).
            axpy(
                &mut out[t_lo..t_hi],
                scale,
                &c[(t_lo as isize + d) as usize..(t_hi as isize + d) as usize],
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chirp::Chirp;
    use crate::correlate::MatchedFilter;
    use crate::plan::DspScratch;

    fn beacon_corr(positions: &[f64], n: usize, noise_seed: u64) -> Vec<f64> {
        let chirp = Chirp::hyperear_beacon(44_100.0).expect("chirp");
        let mut signal = vec![0.0f64; n];
        for &p in positions {
            crate::delay::mix_delayed_local(&mut signal, chirp.samples(), p, 1.0, 16).expect("mix");
        }
        // Small deterministic noise so spectra are never exactly zero.
        let mut state = noise_seed | 1;
        for s in &mut signal {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *s += ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 1e-3;
        }
        let mut filter = MatchedFilter::new(chirp.samples()).expect("filter");
        let mut scratch = DspScratch::new();
        let mut corr = Vec::new();
        filter
            .correlate_normalized_into(&signal, &mut scratch, &mut corr)
            .expect("correlate");
        corr
    }

    fn argmax(v: &[f64]) -> usize {
        v.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty")
            .0
    }

    #[test]
    fn phat_preserves_peak_position() {
        let mut corr = beacon_corr(&[5_000.0], 16_384, 7);
        let before = argmax(&corr);
        let mut scratch = EstimatorScratch::new();
        gcc_phat_with(&mut corr, 0.15, &mut scratch).expect("phat");
        let after = argmax(&corr);
        assert!(
            (before as isize - after as isize).abs() <= 1,
            "peak moved {before} -> {after}"
        );
        assert!(corr.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn phat_all_zero_is_graceful_noop() {
        let mut corr = vec![0.0f64; 4_096];
        let mut scratch = EstimatorScratch::new();
        gcc_phat_with(&mut corr, 0.15, &mut scratch).expect("no-op");
        assert!(corr.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn phat_rejects_bad_floor_and_empty() {
        let mut scratch = EstimatorScratch::new();
        let mut corr = vec![1.0f64; 16];
        assert!(gcc_phat_with(&mut corr, 0.0, &mut scratch).is_err());
        assert!(gcc_phat_with(&mut corr, 1.0, &mut scratch).is_err());
        let mut empty = Vec::new();
        assert!(gcc_phat_with(&mut empty, 0.15, &mut scratch).is_err());
    }

    #[test]
    fn coherence_preserves_peak_and_handles_single_band() {
        let mut corr = beacon_corr(&[5_000.0], 16_384, 11);
        let before = argmax(&corr);
        let mut scratch = EstimatorScratch::new();
        subband_coherence_with(&mut corr, 44_100.0, 1_800.0, 7_040.0, 16, &mut scratch)
            .expect("coherence");
        assert!((before as isize - argmax(&corr) as isize).abs() <= 1);
        assert!(corr.iter().all(|v| v.is_finite()));
        // Single-band collapse degenerates to a pure band-pass, no panic.
        let mut corr = beacon_corr(&[5_000.0], 16_384, 13);
        subband_coherence_with(&mut corr, 44_100.0, 1_800.0, 7_040.0, 1, &mut scratch)
            .expect("single band");
        assert!(corr.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn coherence_all_zero_is_graceful_noop() {
        let mut corr = vec![0.0f64; 4_096];
        let mut scratch = EstimatorScratch::new();
        subband_coherence_with(&mut corr, 44_100.0, 1_800.0, 7_040.0, 8, &mut scratch)
            .expect("no-op");
        assert!(corr.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn coherence_rejects_bad_band() {
        let mut scratch = EstimatorScratch::new();
        let mut corr = vec![1.0f64; 64];
        assert!(
            subband_coherence_with(&mut corr, 44_100.0, 7_040.0, 1_800.0, 8, &mut scratch).is_err()
        );
        assert!(
            subband_coherence_with(&mut corr, 44_100.0, 1_800.0, 30_000.0, 8, &mut scratch)
                .is_err()
        );
        assert!(
            subband_coherence_with(&mut corr, 44_100.0, 1_800.0, 7_040.0, 0, &mut scratch).is_err()
        );
    }

    #[test]
    fn mcci_recovers_interchannel_lag_and_fuses() {
        let a = beacon_corr(&[5_000.0, 12_000.0], 16_384, 17);
        let b = beacon_corr(&[5_012.0, 12_012.0], 16_384, 19);
        let corrs = [a.as_slice(), b.as_slice()];
        let mut offsets = Vec::new();
        let mut live = Vec::new();
        let n_live = mcci_offsets_with(&corrs, 64, &mut offsets, &mut live).expect("offsets");
        assert_eq!(n_live, 2);
        // τ_b − τ_a = 12 samples; the zero-mean LS split is ±6.
        let lag = offsets[1] - offsets[0];
        assert!((lag - 12.0).abs() <= 1.0, "recovered lag {lag}");
        let mut fused = Vec::new();
        mcci_fuse_channel_into(&corrs, &offsets, &live, 0, &mut fused).expect("fuse");
        assert_eq!(fused.len(), a.len());
        // The fused peak stays at channel 0's own beacon position.
        assert!((argmax(&fused) as isize - 5_000).abs() <= 2);
    }

    #[test]
    fn mcci_dead_channel_is_excluded() {
        let a = beacon_corr(&[5_000.0], 16_384, 23);
        let dead = vec![0.0f64; 16_384];
        let corrs = [a.as_slice(), dead.as_slice()];
        let mut offsets = Vec::new();
        let mut live = Vec::new();
        let n_live = mcci_offsets_with(&corrs, 64, &mut offsets, &mut live).expect("offsets");
        assert_eq!(n_live, 1);
        assert_eq!(live, vec![true, false]);
    }

    #[test]
    fn mcci_rejects_mismatched_inputs() {
        let a = vec![1.0f64; 128];
        let b = vec![1.0f64; 64];
        let mut offsets = Vec::new();
        let mut live = Vec::new();
        assert!(
            mcci_offsets_with(&[a.as_slice(), b.as_slice()], 8, &mut offsets, &mut live).is_err()
        );
        assert!(mcci_offsets_with(&[a.as_slice()], 0, &mut offsets, &mut live).is_err());
        assert!(mcci_offsets_with(&[], 8, &mut offsets, &mut live).is_err());
    }

    #[test]
    fn kernels_are_allocation_free_when_warm() {
        // Capacity-based proxy: after one warm call, buffers stop growing.
        let mut scratch = EstimatorScratch::new();
        let mut corr = beacon_corr(&[3_000.0], 8_192, 29);
        gcc_phat_with(&mut corr, 0.15, &mut scratch).expect("warm-up");
        let cap = scratch.capacity_bytes();
        let mut corr = beacon_corr(&[3_000.0], 8_192, 31);
        gcc_phat_with(&mut corr, 0.15, &mut scratch).expect("warm");
        subband_coherence_with(&mut corr, 44_100.0, 1_800.0, 7_040.0, 16, &mut scratch)
            .expect("warm");
        assert_eq!(scratch.capacity_bytes(), cap.max(scratch.capacity_bytes()));
        assert!(scratch.capacity_bytes() >= cap);
    }
}
