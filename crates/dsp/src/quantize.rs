//! ADC quantization and PCM byte codecs.
//!
//! The paper's phones record "16-bit 44.1kHz ... stereo" (Section VII-A).
//! The simulator pushes every rendered waveform through 16-bit quantization
//! so the pipeline faces genuine quantization noise, and the PCM codecs let
//! recordings round-trip through the byte representation `AudioRecord`
//! would hand an app.

use crate::DspError;

/// Quantizes a float signal (nominal range ±1.0) to 16-bit integers.
///
/// Values outside ±1.0 clip, exactly like a saturating ADC.
///
/// # Example
///
/// ```
/// let q = hyperear_dsp::quantize::quantize_i16(&[0.0, 1.0, -1.0, 2.0]);
/// assert_eq!(q, vec![0, 32767, -32767, 32767]);
/// ```
#[must_use]
pub fn quantize_i16(signal: &[f64]) -> Vec<i16> {
    signal
        .iter()
        .map(|&x| (x.clamp(-1.0, 1.0) * 32_767.0).round() as i16)
        .collect()
}

/// Converts 16-bit samples back to floats in ±1.0.
#[must_use]
pub fn dequantize_i16(samples: &[i16]) -> Vec<f64> {
    samples.iter().map(|&s| s as f64 / 32_767.0).collect()
}

/// Round-trips a float signal through 16-bit quantization.
///
/// This is what the simulator applies to every microphone channel: the
/// output equals the input plus quantization error bounded by half an LSB
/// (~3.05e-5).
#[must_use]
pub fn requantize(signal: &[f64]) -> Vec<f64> {
    dequantize_i16(&quantize_i16(signal))
}

/// Encodes samples as interleaved little-endian 16-bit PCM.
#[must_use]
pub fn encode_pcm16(samples: &[i16]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(samples.len() * 2);
    for &s in samples {
        buf.extend_from_slice(&s.to_le_bytes());
    }
    buf
}

/// Decodes interleaved little-endian 16-bit PCM bytes.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if the byte length is odd.
pub fn decode_pcm16(bytes: &[u8]) -> Result<Vec<i16>, DspError> {
    if !bytes.len().is_multiple_of(2) {
        return Err(DspError::invalid(
            "bytes",
            format!(
                "PCM16 byte stream must have even length, got {}",
                bytes.len()
            ),
        ));
    }
    Ok(bytes
        .chunks_exact(2)
        .map(|pair| i16::from_le_bytes([pair[0], pair[1]]))
        .collect())
}

/// Interleaves two channels into a single stereo stream (L, R, L, R, ...).
///
/// # Errors
///
/// Returns [`DspError::LengthMismatch`] if the channels differ in length.
pub fn interleave_stereo(left: &[i16], right: &[i16]) -> Result<Vec<i16>, DspError> {
    if left.len() != right.len() {
        return Err(DspError::LengthMismatch {
            left: left.len(),
            right: right.len(),
            what: "stereo interleave",
        });
    }
    let mut out = Vec::with_capacity(left.len() * 2);
    for (&l, &r) in left.iter().zip(right) {
        out.push(l);
        out.push(r);
    }
    Ok(out)
}

/// Splits an interleaved stereo stream into left and right channels.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if the sample count is odd.
pub fn deinterleave_stereo(stereo: &[i16]) -> Result<(Vec<i16>, Vec<i16>), DspError> {
    if !stereo.len().is_multiple_of(2) {
        return Err(DspError::invalid(
            "stereo",
            format!(
                "interleaved stereo must have even length, got {}",
                stereo.len()
            ),
        ));
    }
    let mut left = Vec::with_capacity(stereo.len() / 2);
    let mut right = Vec::with_capacity(stereo.len() / 2);
    for pair in stereo.chunks_exact(2) {
        left.push(pair[0]);
        right.push(pair[1]);
    }
    Ok((left, right))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_error_is_bounded_by_half_lsb() {
        let signal: Vec<f64> = (0..1000).map(|i| ((i as f64) * 0.0137).sin()).collect();
        let rq = requantize(&signal);
        let lsb = 1.0 / 32_767.0;
        for (a, b) in signal.iter().zip(&rq) {
            assert!((a - b).abs() <= 0.5 * lsb + 1e-12);
        }
    }

    #[test]
    fn clipping_saturates() {
        let q = quantize_i16(&[1.5, -2.0]);
        assert_eq!(q, vec![32_767, -32_767]);
    }

    #[test]
    fn pcm_round_trip() {
        let samples: Vec<i16> = vec![0, 1, -1, 32_767, -32_768, 12_345, -12_345];
        let bytes = encode_pcm16(&samples);
        assert_eq!(bytes.len(), samples.len() * 2);
        let back = decode_pcm16(&bytes).unwrap();
        assert_eq!(back, samples);
    }

    #[test]
    fn pcm_rejects_odd_length() {
        assert!(decode_pcm16(&[1, 2, 3]).is_err());
    }

    #[test]
    fn stereo_round_trip() {
        let left = vec![1i16, 2, 3];
        let right = vec![-1i16, -2, -3];
        let inter = interleave_stereo(&left, &right).unwrap();
        assert_eq!(inter, vec![1, -1, 2, -2, 3, -3]);
        let (l, r) = deinterleave_stereo(&inter).unwrap();
        assert_eq!(l, left);
        assert_eq!(r, right);
    }

    #[test]
    fn stereo_length_checks() {
        assert!(interleave_stereo(&[1], &[1, 2]).is_err());
        assert!(deinterleave_stereo(&[1, 2, 3]).is_err());
    }

    #[test]
    fn full_audio_round_trip_through_bytes() {
        let signal: Vec<f64> = (0..441).map(|i| (i as f64 * 0.1).sin() * 0.8).collect();
        let q = quantize_i16(&signal);
        let bytes = encode_pcm16(&q);
        let back = dequantize_i16(&decode_pcm16(&bytes).unwrap());
        for (a, b) in signal.iter().zip(&back) {
            assert!((a - b).abs() < 1.0 / 32_767.0);
        }
    }
}
