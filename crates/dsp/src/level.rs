//! Signal level, decibel and SNR utilities.
//!
//! Fig. 19 of the paper sweeps environments by signal-to-noise ratio
//! (> 15 dB quiet room down to 3 dB busy mall); the simulator uses these
//! helpers to scale noise to an exact target SNR, and the pipeline uses
//! them to report measured SNR.

use crate::DspError;

/// Root-mean-square level of a signal.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal.
///
/// # Example
///
/// ```
/// let r = hyperear_dsp::level::rms(&[3.0, -3.0, 3.0, -3.0]).unwrap();
/// assert!((r - 3.0).abs() < 1e-12);
/// ```
pub fn rms(signal: &[f64]) -> Result<f64, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput { what: "rms input" });
    }
    Ok((signal.iter().map(|x| x * x).sum::<f64>() / signal.len() as f64).sqrt())
}

/// Mean power (mean square) of a signal.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal.
pub fn power(signal: &[f64]) -> Result<f64, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput {
            what: "power input",
        });
    }
    Ok(signal.iter().map(|x| x * x).sum::<f64>() / signal.len() as f64)
}

/// Converts a power ratio to decibels: `10·log10(ratio)`.
#[must_use]
pub fn power_ratio_to_db(ratio: f64) -> f64 {
    10.0 * ratio.log10()
}

/// Converts decibels to a power ratio: `10^(db/10)`.
#[must_use]
pub fn db_to_power_ratio(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts an amplitude ratio to decibels: `20·log10(ratio)`.
#[must_use]
pub fn amplitude_ratio_to_db(ratio: f64) -> f64 {
    20.0 * ratio.log10()
}

/// Converts decibels to an amplitude ratio: `10^(db/20)`.
#[must_use]
pub fn db_to_amplitude_ratio(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Signal-to-noise ratio in dB given separate signal and noise traces.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if either trace is empty and
/// [`DspError::InvalidParameter`] if the noise has zero power.
pub fn snr_db(signal: &[f64], noise: &[f64]) -> Result<f64, DspError> {
    let ps = power(signal)?;
    let pn = power(noise)?;
    if pn == 0.0 {
        return Err(DspError::invalid("noise", "noise power is zero"));
    }
    Ok(power_ratio_to_db(ps / pn))
}

/// Gain to apply to `noise` so that `signal + gain·noise` has the target
/// SNR in dB.
///
/// # Errors
///
/// Same conditions as [`snr_db`].
pub fn noise_gain_for_snr(
    signal: &[f64],
    noise: &[f64],
    target_snr_db: f64,
) -> Result<f64, DspError> {
    let ps = power(signal)?;
    let pn = power(noise)?;
    if pn == 0.0 {
        return Err(DspError::invalid("noise", "noise power is zero"));
    }
    if ps == 0.0 {
        return Err(DspError::invalid("signal", "signal power is zero"));
    }
    // target = 10·log10(ps / (g²·pn))  ⇒  g = sqrt(ps / (pn·10^(t/10)))
    Ok((ps / (pn * db_to_power_ratio(target_snr_db))).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rms_of_constant() {
        assert!((rms(&[2.0; 16]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rms_of_sine_is_amplitude_over_sqrt2() {
        let signal: Vec<f64> = (0..10_000)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 100.0).sin())
            .collect();
        let r = rms(&signal).unwrap();
        assert!((r - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
    }

    #[test]
    fn db_round_trips() {
        for db in [-20.0, -3.0, 0.0, 3.0, 10.0, 15.0] {
            assert!((power_ratio_to_db(db_to_power_ratio(db)) - db).abs() < 1e-12);
            assert!((amplitude_ratio_to_db(db_to_amplitude_ratio(db)) - db).abs() < 1e-12);
        }
    }

    #[test]
    fn db_reference_points() {
        assert!((power_ratio_to_db(10.0) - 10.0).abs() < 1e-12);
        assert!((power_ratio_to_db(2.0) - 3.0103).abs() < 1e-3);
        assert!((amplitude_ratio_to_db(10.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn snr_of_equal_power_is_zero_db() {
        let a = vec![1.0, -1.0, 1.0, -1.0];
        assert!((snr_db(&a, &a).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn noise_gain_achieves_target_snr() {
        let signal: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.3).sin()).collect();
        let noise: Vec<f64> = (0..4096)
            .map(|i| ((i * 7919) as f64 * 0.11).sin())
            .collect();
        for target in [3.0, 6.0, 9.0, 15.0] {
            let g = noise_gain_for_snr(&signal, &noise, target).unwrap();
            let scaled: Vec<f64> = noise.iter().map(|x| g * x).collect();
            let achieved = snr_db(&signal, &scaled).unwrap();
            assert!(
                (achieved - target).abs() < 1e-9,
                "target {target} got {achieved}"
            );
        }
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(rms(&[]).is_err());
        assert!(power(&[]).is_err());
        assert!(snr_db(&[1.0], &[0.0]).is_err());
        assert!(noise_gain_for_snr(&[0.0], &[1.0], 3.0).is_err());
        assert!(noise_gain_for_snr(&[1.0], &[0.0], 3.0).is_err());
    }
}
