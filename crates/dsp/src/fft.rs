//! Iterative radix-2 fast Fourier transform.
//!
//! The transform is the workhorse behind [`crate::correlate`] (matched
//! filtering of chirp beacons) and [`crate::spectrum`]. Sizes must be powers
//! of two; [`next_pow2`] helps choose a padded length.
//!
//! The functions here are one-shot conveniences: each call borrows the
//! thread-local plan cache ([`crate::plan::with_thread_ctx`]), so repeated
//! calls at one size reuse twiddle tables. Hot paths that transform
//! repeatedly at the same size should still hold their own
//! [`crate::plan::PlanCache`] and call its allocation-free methods
//! directly — results are bit-identical either way.
//!
//! # Example
//!
//! ```
//! use hyperear_dsp::fft::{fft, ifft};
//! use hyperear_dsp::Complex;
//!
//! # fn main() -> Result<(), hyperear_dsp::DspError> {
//! let mut data: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
//! let original = data.clone();
//! fft(&mut data)?;
//! ifft(&mut data)?;
//! for (a, b) in data.iter().zip(&original) {
//!     assert!((a.re - b.re).abs() < 1e-12);
//! }
//! # Ok(())
//! # }
//! ```

use crate::plan::{with_thread_ctx, DspScratch, PlanCache};
use crate::{Complex, DspError};

/// Returns the smallest power of two greater than or equal to `n`.
///
/// Returns 1 for `n == 0`.
///
/// # Panics
///
/// Panics if no `usize` power of two can hold `n` (i.e.
/// `n > usize::MAX/2 + 1`). Fallible call sites — anything deriving a pad
/// length from caller-controlled input — should use [`try_next_pow2`].
///
/// # Example
///
/// ```
/// assert_eq!(hyperear_dsp::fft::next_pow2(1000), 1024);
/// assert_eq!(hyperear_dsp::fft::next_pow2(1024), 1024);
/// ```
#[must_use]
pub fn next_pow2(n: usize) -> usize {
    try_next_pow2(n).expect("next_pow2 overflow")
}

/// Fallible form of [`next_pow2`]: the padded FFT length for `n`, or
/// [`DspError::InvalidParameter`] when `n` exceeds the largest `usize`
/// power of two (`usize::MAX/2 + 1`), where `next_power_of_two` would
/// panic in debug builds and silently wrap to 0 in release builds.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] on overflow.
///
/// # Example
///
/// ```
/// use hyperear_dsp::fft::try_next_pow2;
/// assert_eq!(try_next_pow2(1000).unwrap(), 1024);
/// assert!(try_next_pow2(usize::MAX).is_err());
/// ```
pub fn try_next_pow2(n: usize) -> Result<usize, DspError> {
    const MAX_POW2: usize = usize::MAX / 2 + 1;
    if n > MAX_POW2 {
        return Err(DspError::invalid(
            "n",
            format!("no usize power of two can hold {n} (max {MAX_POW2})"),
        ));
    }
    Ok(n.max(1).next_power_of_two())
}

/// In-place forward FFT.
///
/// Computes `X[k] = Σ_n x[n]·e^{-2πi·kn/N}` without normalization.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if the length is not a power of
/// two, and [`DspError::EmptyInput`] for an empty slice.
pub fn fft(data: &mut [Complex]) -> Result<(), DspError> {
    with_thread_ctx(|plans, _| plans.plan(data.len())?.fft(data))
}

/// In-place inverse FFT, normalized by `1/N`.
///
/// `ifft(fft(x)) == x` up to floating-point error.
///
/// # Errors
///
/// Same conditions as [`fft`].
pub fn ifft(data: &mut [Complex]) -> Result<(), DspError> {
    with_thread_ctx(|plans, _| plans.plan(data.len())?.ifft(data))
}

/// Forward FFT of a real signal, zero-padded to `padded_len`.
///
/// Returns the full complex spectrum of length `padded_len` (which must be a
/// power of two at least as large as `signal.len()`).
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `padded_len` is smaller than the
/// signal or not a power of two, and [`DspError::EmptyInput`] for an empty
/// signal.
pub fn rfft(signal: &[f64], padded_len: usize) -> Result<Vec<Complex>, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput { what: "rfft input" });
    }
    if padded_len < signal.len() {
        return Err(DspError::invalid(
            "padded_len",
            format!(
                "padded length {padded_len} is smaller than the signal ({})",
                signal.len()
            ),
        ));
    }
    let mut buf: Vec<Complex> = Vec::with_capacity(padded_len);
    with_thread_ctx(|plans, _| plans.plan(padded_len)?.rfft_into(signal, &mut buf))?;
    Ok(buf)
}

/// Inverse FFT returning only the real parts.
///
/// Intended for spectra known to be conjugate-symmetric (i.e. spectra of
/// real signals); the discarded imaginary parts are then numerical noise.
///
/// The complex working copy lives in the thread-local scratch, so the
/// only allocation per call is the returned vector; [`irfft_with`] is the
/// fully allocation-free form.
///
/// # Errors
///
/// Same conditions as [`ifft`].
pub fn irfft(spectrum: &[Complex]) -> Result<Vec<f64>, DspError> {
    let mut out = Vec::with_capacity(spectrum.len());
    with_thread_ctx(|plans, scratch| irfft_with(spectrum, plans, scratch, &mut out))?;
    Ok(out)
}

/// Planned form of [`irfft`]: identical output, with the complex working
/// copy in `scratch` and the result written into `out` (cleared and
/// refilled; capacity reused), so steady-state calls at warm sizes do not
/// allocate.
///
/// # Errors
///
/// Same conditions as [`ifft`].
pub fn irfft_with(
    spectrum: &[Complex],
    plans: &mut PlanCache,
    scratch: &mut DspScratch,
    out: &mut Vec<f64>,
) -> Result<(), DspError> {
    scratch.c1.clear();
    scratch.c1.extend_from_slice(spectrum);
    plans.plan(spectrum.len())?.ifft(&mut scratch.c1)?;
    out.clear();
    out.extend(scratch.c1.iter().map(|c| c.re));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut data = vec![Complex::ZERO; 12];
        assert!(matches!(
            fft(&mut data),
            Err(DspError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn rejects_empty() {
        let mut data: Vec<Complex> = Vec::new();
        assert!(matches!(fft(&mut data), Err(DspError::EmptyInput { .. })));
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut data = vec![Complex::ZERO; 16];
        data[0] = Complex::ONE;
        fft(&mut data).unwrap();
        for v in &data {
            assert_close(v.re, 1.0, 1e-12);
            assert_close(v.im, 0.0, 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k = 5;
        let mut data: Vec<Complex> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                Complex::from_real((2.0 * std::f64::consts::PI * k as f64 * t).cos())
            })
            .collect();
        fft(&mut data).unwrap();
        for (bin, v) in data.iter().enumerate() {
            let expected = if bin == k || bin == n - k {
                n as f64 / 2.0
            } else {
                0.0
            };
            assert_close(v.abs(), expected, 1e-9);
        }
    }

    #[test]
    fn round_trip_recovers_signal() {
        let mut data: Vec<Complex> = (0..128)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let original = data.clone();
        fft(&mut data).unwrap();
        ifft(&mut data).unwrap();
        for (a, b) in data.iter().zip(&original) {
            assert_close(a.re, b.re, 1e-10);
            assert_close(a.im, b.im, 1e-10);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let signal: Vec<f64> = (0..256).map(|i| ((i * i) as f64 * 0.013).sin()).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spec = rfft(&signal, 256).unwrap();
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / 256.0;
        assert_close(time_energy, freq_energy, 1e-8);
    }

    #[test]
    fn rfft_pads_with_zeros() {
        let signal = vec![1.0, 2.0, 3.0];
        let spec = rfft(&signal, 8).unwrap();
        assert_eq!(spec.len(), 8);
        // DC bin equals the sum of samples.
        assert_close(spec[0].re, 6.0, 1e-12);
    }

    #[test]
    fn rfft_rejects_short_pad() {
        let signal = vec![1.0; 10];
        assert!(rfft(&signal, 8).is_err());
    }

    #[test]
    fn irfft_round_trip() {
        let signal: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin()).collect();
        let spec = rfft(&signal, 64).unwrap();
        let back = irfft(&spec).unwrap();
        for (a, b) in back.iter().zip(&signal) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn next_pow2_boundaries() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(4096), 4096);
        assert_eq!(next_pow2(4097), 8192);
    }

    #[test]
    fn try_next_pow2_overflow_boundary() {
        // The largest usize power of two is the last representable
        // target; one past it must fail, not wrap to zero.
        const MAX_POW2: usize = usize::MAX / 2 + 1;
        assert_eq!(try_next_pow2(MAX_POW2).unwrap(), MAX_POW2);
        assert!(matches!(
            try_next_pow2(MAX_POW2 + 1),
            Err(DspError::InvalidParameter { .. })
        ));
        assert!(try_next_pow2(usize::MAX).is_err());
    }

    #[test]
    fn linearity_of_fft() {
        let a: Vec<Complex> = (0..32).map(|i| Complex::new(i as f64, 0.5)).collect();
        let b: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64).sqrt(), -1.0))
            .collect();
        let mut sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        fft(&mut fa).unwrap();
        fft(&mut fb).unwrap();
        fft(&mut sum).unwrap();
        for i in 0..32 {
            let expect = fa[i] + fb[i];
            assert_close(sum[i].re, expect.re, 1e-9);
            assert_close(sum[i].im, expect.im, 1e-9);
        }
    }
}
