//! Sub-sample interpolation.
//!
//! At 44.1 kHz one sample of TDoA equals 7.78 mm of path difference
//! (Section II-C). HyperEar's Acoustic Signal Preprocessing performs
//! "interpolation ... to achieve sub-sample resolution": the matched-filter
//! peak is refined below the sampling grid before any geometry is computed.
//! Two refiners are provided:
//!
//! - [`parabolic_peak`] — fits a parabola to the three samples around a
//!   local maximum; cheap and accurate for smooth correlation main lobes.
//! - [`sinc_peak`] — golden-section search over a windowed-sinc
//!   reconstruction of the correlation function; slower but unbiased for
//!   narrow lobes.

use crate::DspError;

/// Refines the position of a local maximum to sub-sample precision by
/// fitting a parabola through `y[peak-1], y[peak], y[peak+1]`.
///
/// Returns the interpolated peak position in (fractional) samples and the
/// interpolated peak value.
///
/// # Errors
///
/// Returns [`DspError::OutOfRange`] if `peak` is on the signal boundary
/// (no neighbours to fit) and [`DspError::EmptyInput`] for an empty signal.
pub fn parabolic_peak(y: &[f64], peak: usize) -> Result<(f64, f64), DspError> {
    if y.is_empty() {
        return Err(DspError::EmptyInput {
            what: "parabolic_peak input",
        });
    }
    if peak == 0 || peak + 1 >= y.len() {
        return Err(DspError::OutOfRange {
            index: peak,
            len: y.len(),
        });
    }
    let (a, b, c) = (y[peak - 1], y[peak], y[peak + 1]);
    let denom = a - 2.0 * b + c;
    if denom.abs() < 1e-300 {
        // Flat triple — no curvature to fit; the integer peak is the answer.
        return Ok((peak as f64, b));
    }
    let delta = 0.5 * (a - c) / denom;
    // A genuine local max keeps |delta| <= 0.5; clamp to be safe against
    // pathological neighbours.
    let delta = delta.clamp(-0.5, 0.5);
    let value = b - 0.25 * (a - c) * delta;
    Ok((peak as f64 + delta, value))
}

/// Evaluates the band-limited (windowed-sinc) reconstruction of `y` at the
/// fractional position `t`, using `half_width` samples on each side.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal and
/// [`DspError::InvalidParameter`] if `t` lies outside `[0, len-1]` or
/// `half_width` is zero.
pub fn sinc_interpolate(y: &[f64], t: f64, half_width: usize) -> Result<f64, DspError> {
    if y.is_empty() {
        return Err(DspError::EmptyInput {
            what: "sinc_interpolate input",
        });
    }
    if half_width == 0 {
        return Err(DspError::invalid("half_width", "must be positive"));
    }
    if !(0.0..=(y.len() - 1) as f64).contains(&t) {
        return Err(DspError::invalid(
            "t",
            format!("position {t} outside signal of length {}", y.len()),
        ));
    }
    let center = t.round() as isize;
    let mut acc = 0.0;
    for k in -(half_width as isize)..=(half_width as isize) {
        let idx = center + k;
        if idx < 0 || idx as usize >= y.len() {
            continue;
        }
        let x = t - idx as f64;
        // Hann taper over the kernel span suppresses truncation ripple.
        let w = 0.5 + 0.5 * (std::f64::consts::PI * x / (half_width as f64 + 1.0)).cos();
        acc += y[idx as usize] * sinc(x) * w;
    }
    Ok(acc)
}

/// Refines a local maximum with a golden-section search over the
/// windowed-sinc reconstruction in `[peak-1, peak+1]`.
///
/// Returns `(position, value)` like [`parabolic_peak`], typically a few
/// times more accurate for sharp matched-filter lobes.
///
/// # Errors
///
/// Same conditions as [`parabolic_peak`].
pub fn sinc_peak(y: &[f64], peak: usize, half_width: usize) -> Result<(f64, f64), DspError> {
    if y.is_empty() {
        return Err(DspError::EmptyInput {
            what: "sinc_peak input",
        });
    }
    if peak == 0 || peak + 1 >= y.len() {
        return Err(DspError::OutOfRange {
            index: peak,
            len: y.len(),
        });
    }
    let f = |t: f64| sinc_interpolate(y, t, half_width).unwrap_or(f64::NEG_INFINITY);
    let (mut lo, mut hi) = ((peak - 1) as f64, (peak + 1) as f64);
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    let mut x1 = hi - phi * (hi - lo);
    let mut x2 = lo + phi * (hi - lo);
    let (mut f1, mut f2) = (f(x1), f(x2));
    for _ in 0..48 {
        if f1 < f2 {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + phi * (hi - lo);
            f2 = f(x2);
        } else {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - phi * (hi - lo);
            f1 = f(x1);
        }
    }
    let t = 0.5 * (lo + hi);
    Ok((t, f(t)))
}

/// Linear interpolation of `y` at fractional index `t`.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `t` is outside `[0, len-1]`.
pub fn linear_interpolate(y: &[f64], t: f64) -> Result<f64, DspError> {
    if y.is_empty() {
        return Err(DspError::EmptyInput {
            what: "linear_interpolate input",
        });
    }
    if !(0.0..=(y.len() - 1) as f64).contains(&t) {
        return Err(DspError::invalid(
            "t",
            format!("position {t} outside signal of length {}", y.len()),
        ));
    }
    let i = t.floor() as usize;
    if i + 1 >= y.len() {
        return Ok(y[y.len() - 1]);
    }
    let frac = t - i as f64;
    Ok(y[i] * (1.0 - frac) + y[i + 1] * frac)
}

fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-12 {
        1.0
    } else {
        let px = std::f64::consts::PI * x;
        px.sin() / px
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parabola_recovers_exact_vertex() {
        // y = -(x - 5.3)^2 + 2 sampled on integers.
        let y: Vec<f64> = (0..12).map(|i| -(i as f64 - 5.3).powi(2) + 2.0).collect();
        let (pos, val) = parabolic_peak(&y, 5).unwrap();
        assert!((pos - 5.3).abs() < 1e-9, "pos {pos}");
        assert!((val - 2.0).abs() < 1e-9, "val {val}");
    }

    #[test]
    fn parabola_vertex_below_half_sample() {
        let y: Vec<f64> = (0..12).map(|i| -(i as f64 - 6.49).powi(2)).collect();
        let (pos, _) = parabolic_peak(&y, 6).unwrap();
        assert!((pos - 6.49).abs() < 1e-9);
    }

    #[test]
    fn parabola_boundary_is_error() {
        let y = vec![1.0, 2.0, 3.0];
        assert!(parabolic_peak(&y, 0).is_err());
        assert!(parabolic_peak(&y, 2).is_err());
        assert!(parabolic_peak(&[], 0).is_err());
    }

    #[test]
    fn parabola_flat_signal_returns_integer_peak() {
        let y = vec![1.0; 5];
        let (pos, val) = parabolic_peak(&y, 2).unwrap();
        assert_eq!(pos, 2.0);
        assert_eq!(val, 1.0);
    }

    #[test]
    fn sinc_interpolation_is_exact_on_samples() {
        let y: Vec<f64> = (0..32).map(|i| (i as f64 * 0.5).sin()).collect();
        for i in 4..28 {
            let v = sinc_interpolate(&y, i as f64, 8).unwrap();
            assert!((v - y[i]).abs() < 1e-6, "at {i}: {v} vs {}", y[i]);
        }
    }

    #[test]
    fn sinc_interpolation_reconstructs_bandlimited_signal() {
        // A 0.1-cycles/sample tone is well below Nyquist; the windowed-sinc
        // reconstruction at half-sample offsets should match the analytic
        // value closely in the signal interior.
        let f = 0.1;
        let y: Vec<f64> = (0..64)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64).sin())
            .collect();
        for i in 16..48 {
            let t = i as f64 + 0.5;
            let v = sinc_interpolate(&y, t, 12).unwrap();
            let truth = (2.0 * std::f64::consts::PI * f * t).sin();
            assert!((v - truth).abs() < 1e-3, "at {t}: {v} vs {truth}");
        }
    }

    #[test]
    fn sinc_peak_refines_better_than_integer() {
        // Sample a band-limited pulse centred off-grid and check that the
        // refined peak is close to the true centre.
        let center = 20.37;
        let y: Vec<f64> = (0..41)
            .map(|i| {
                let x = i as f64 - center;
                sinc(0.9 * x)
            })
            .collect();
        let integer_peak = y
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let (pos, val) = sinc_peak(&y, integer_peak, 10).unwrap();
        assert!((pos - center).abs() < 0.02, "refined pos {pos}");
        assert!(val <= 1.0 + 1e-6);
        let integer_err = (integer_peak as f64 - center).abs();
        assert!((pos - center).abs() < integer_err);
    }

    #[test]
    fn linear_interpolation_midpoints() {
        let y = vec![0.0, 2.0, 4.0];
        assert_eq!(linear_interpolate(&y, 0.5).unwrap(), 1.0);
        assert_eq!(linear_interpolate(&y, 1.25).unwrap(), 2.5);
        assert_eq!(linear_interpolate(&y, 2.0).unwrap(), 4.0);
        assert!(linear_interpolate(&y, 2.5).is_err());
        assert!(linear_interpolate(&[], 0.0).is_err());
    }

    #[test]
    fn sinc_peak_boundary_is_error() {
        let y = vec![0.0, 1.0, 0.0];
        assert!(sinc_peak(&y, 0, 4).is_err());
        assert!(sinc_peak(&[], 1, 4).is_err());
    }

    #[test]
    fn sinc_interpolate_domain_checks() {
        let y = vec![1.0, 2.0, 3.0];
        assert!(sinc_interpolate(&y, -0.5, 4).is_err());
        assert!(sinc_interpolate(&y, 2.5, 4).is_err());
        assert!(sinc_interpolate(&y, 1.0, 0).is_err());
        assert!(sinc_interpolate(&[], 0.0, 4).is_err());
    }
}
