//! Chirp beacon synthesis.
//!
//! The HyperEar speaker "periodically plays a chirp signal, in which the
//! frequency first linearly increases and then decreases with time, for its
//! good auto correlation property" (Section IV-A). The evaluation uses a
//! 2–6.4 kHz linear chirp repeated every 200 ms.

use crate::window::Window;
use crate::DspError;

/// The frequency trajectory of a chirp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChirpShape {
    /// Frequency sweeps linearly from `f0` to `f1` over the full duration.
    Up,
    /// Frequency sweeps linearly from `f1` down to `f0`.
    Down,
    /// Frequency rises `f0 → f1` over the first half, then falls back to
    /// `f0` — the HyperEar beacon shape.
    UpDown,
}

/// A synthesized chirp with cached samples.
///
/// # Example
///
/// ```
/// use hyperear_dsp::chirp::{Chirp, ChirpShape};
///
/// # fn main() -> Result<(), hyperear_dsp::DspError> {
/// let beacon = Chirp::hyperear_beacon(44_100.0)?;
/// assert_eq!(beacon.samples().len(), (0.04 * 44_100.0) as usize);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Chirp {
    f0: f64,
    f1: f64,
    duration: f64,
    sample_rate: f64,
    shape: ChirpShape,
    samples: Vec<f64>,
}

impl Chirp {
    /// The lower edge of the paper's chirp band, in hertz.
    pub const HYPEREAR_F0: f64 = 2_000.0;
    /// The upper edge of the paper's chirp band, in hertz.
    pub const HYPEREAR_F1: f64 = 6_400.0;
    /// The beacon duration used in this reproduction, in seconds.
    ///
    /// The paper does not state the chirp length explicitly; 40 ms gives a
    /// time-bandwidth product of ~176 with the 4.4 kHz sweep, comfortably
    /// inside the 200 ms repetition period.
    pub const HYPEREAR_DURATION: f64 = 0.04;
    /// The beacon repetition period: "playing chirp signals on every 200ms".
    pub const HYPEREAR_PERIOD: f64 = 0.2;

    /// Synthesizes a chirp.
    ///
    /// `f0`/`f1` are the sweep band edges in hertz, `duration` in seconds.
    /// A Hann amplitude envelope is applied to suppress spectral splatter
    /// at the chirp edges, which keeps the beacon inside its nominal band.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if frequencies are not in
    /// `(0, fs/2)`, `f0 >= f1`, or the duration yields fewer than 8 samples.
    pub fn new(
        f0: f64,
        f1: f64,
        duration: f64,
        sample_rate: f64,
        shape: ChirpShape,
    ) -> Result<Self, DspError> {
        if sample_rate <= 0.0 {
            return Err(DspError::invalid("sample_rate", "must be positive"));
        }
        let nyquist = sample_rate / 2.0;
        if !(f0 > 0.0 && f0 < nyquist && f1 > 0.0 && f1 < nyquist) {
            return Err(DspError::invalid(
                "f0/f1",
                format!("frequencies must be in (0, {nyquist})"),
            ));
        }
        if f0 >= f1 {
            return Err(DspError::invalid(
                "f0/f1",
                format!("need f0 < f1, got {f0} >= {f1}"),
            ));
        }
        let n = (duration * sample_rate).round() as usize;
        if n < 8 {
            return Err(DspError::invalid(
                "duration",
                format!("chirp must span at least 8 samples, got {n}"),
            ));
        }
        let samples = synthesize(f0, f1, n, sample_rate, shape);
        Ok(Chirp {
            f0,
            f1,
            duration,
            sample_rate,
            shape,
            samples,
        })
    }

    /// The standard HyperEar beacon: 2–6.4 kHz up-down chirp, 40 ms.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `sample_rate` cannot carry
    /// the 6.4 kHz band edge.
    pub fn hyperear_beacon(sample_rate: f64) -> Result<Self, DspError> {
        Chirp::new(
            Self::HYPEREAR_F0,
            Self::HYPEREAR_F1,
            Self::HYPEREAR_DURATION,
            sample_rate,
            ChirpShape::UpDown,
        )
    }

    /// The chirp samples (unit peak amplitude envelope).
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The lower band edge in hertz.
    #[must_use]
    pub fn f0(&self) -> f64 {
        self.f0
    }

    /// The upper band edge in hertz.
    #[must_use]
    pub fn f1(&self) -> f64 {
        self.f1
    }

    /// The duration in seconds.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// The sample rate the chirp was synthesized at.
    #[must_use]
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// The frequency trajectory shape.
    #[must_use]
    pub fn shape(&self) -> ChirpShape {
        self.shape
    }

    /// The swept bandwidth `f1 - f0` in hertz.
    #[must_use]
    pub fn bandwidth(&self) -> f64 {
        self.f1 - self.f0
    }

    /// Time-bandwidth product, the matched-filter processing gain.
    #[must_use]
    pub fn time_bandwidth(&self) -> f64 {
        self.duration * self.bandwidth()
    }
}

fn synthesize(f0: f64, f1: f64, n: usize, fs: f64, shape: ChirpShape) -> Vec<f64> {
    let dt = 1.0 / fs;
    let total = n as f64 * dt;
    let tau = 2.0 * std::f64::consts::PI;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f64 * dt;
        // Phase = 2π ∫ f(t) dt for the piecewise-linear frequency law.
        let phase = match shape {
            ChirpShape::Up => {
                let k = (f1 - f0) / total;
                tau * (f0 * t + 0.5 * k * t * t)
            }
            ChirpShape::Down => {
                let k = (f1 - f0) / total;
                tau * (f1 * t - 0.5 * k * t * t)
            }
            ChirpShape::UpDown => {
                let half = total / 2.0;
                let k = (f1 - f0) / half;
                if t <= half {
                    tau * (f0 * t + 0.5 * k * t * t)
                } else {
                    let u = t - half;
                    let phase_half = tau * (f0 * half + 0.5 * k * half * half);
                    phase_half + tau * (f1 * u - 0.5 * k * u * u)
                }
            }
        };
        out.push(phase.sin());
    }
    // Hann envelope to confine spectral leakage.
    for (i, s) in out.iter_mut().enumerate() {
        *s *= Window::Hann.value(i, n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlate::xcorr;
    use crate::spectrum::band_energy_fraction;

    #[test]
    fn beacon_parameters() {
        let c = Chirp::hyperear_beacon(44_100.0).unwrap();
        assert_eq!(c.f0(), 2_000.0);
        assert_eq!(c.f1(), 6_400.0);
        assert_eq!(c.shape(), ChirpShape::UpDown);
        assert!((c.bandwidth() - 4_400.0).abs() < 1e-9);
        assert!((c.time_bandwidth() - 176.0).abs() < 1e-9);
        assert_eq!(c.samples().len(), 1764);
    }

    #[test]
    fn amplitude_is_bounded() {
        for shape in [ChirpShape::Up, ChirpShape::Down, ChirpShape::UpDown] {
            let c = Chirp::new(2_000.0, 6_400.0, 0.04, 44_100.0, shape).unwrap();
            assert!(c.samples().iter().all(|s| s.abs() <= 1.0 + 1e-12));
        }
    }

    #[test]
    fn energy_is_confined_to_band() {
        let c = Chirp::hyperear_beacon(44_100.0).unwrap();
        let frac = band_energy_fraction(c.samples(), 44_100.0, 1_800.0, 6_600.0).unwrap();
        assert!(frac > 0.97, "in-band energy fraction was {frac}");
    }

    #[test]
    fn autocorrelation_peaks_sharply_at_zero_lag() {
        let c = Chirp::hyperear_beacon(44_100.0).unwrap();
        let n = c.samples().len();
        let mut padded = vec![0.0; n * 3];
        padded[n..2 * n].copy_from_slice(c.samples());
        let ac = xcorr(&padded, c.samples()).unwrap();
        let peak_idx = ac
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak_idx, n);
        // Sidelobes 20 samples away should be well below the main peak —
        // the "good auto correlation property" the paper relies on.
        let main = ac[n];
        let sidelobe = ac[n + 20].abs().max(ac[n - 20].abs());
        assert!(sidelobe < 0.2 * main, "sidelobe ratio {}", sidelobe / main);
    }

    #[test]
    fn up_and_down_chirps_differ() {
        let up = Chirp::new(2_000.0, 6_400.0, 0.04, 44_100.0, ChirpShape::Up).unwrap();
        let down = Chirp::new(2_000.0, 6_400.0, 0.04, 44_100.0, ChirpShape::Down).unwrap();
        assert_ne!(up.samples(), down.samples());
    }

    #[test]
    fn updown_is_nearly_symmetric_in_band() {
        // The up-down chirp spends equal time at each frequency; spectral
        // content of the two halves should match closely.
        let c = Chirp::hyperear_beacon(44_100.0).unwrap();
        let n = c.samples().len();
        let first: Vec<f64> = c.samples()[..n / 2].to_vec();
        let second: Vec<f64> = c.samples()[n / 2..].to_vec();
        let e1: f64 = first.iter().map(|x| x * x).sum();
        let e2: f64 = second.iter().map(|x| x * x).sum();
        assert!((e1 - e2).abs() / e1 < 0.05);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Chirp::new(0.0, 6_400.0, 0.04, 44_100.0, ChirpShape::Up).is_err());
        assert!(Chirp::new(2_000.0, 30_000.0, 0.04, 44_100.0, ChirpShape::Up).is_err());
        assert!(Chirp::new(6_400.0, 2_000.0, 0.04, 44_100.0, ChirpShape::Up).is_err());
        assert!(Chirp::new(2_000.0, 6_400.0, 0.00001, 44_100.0, ChirpShape::Up).is_err());
        assert!(Chirp::new(2_000.0, 6_400.0, 0.04, 0.0, ChirpShape::Up).is_err());
    }

    #[test]
    fn duration_accessor_matches_request() {
        let c = Chirp::new(2_000.0, 6_400.0, 0.05, 48_000.0, ChirpShape::UpDown).unwrap();
        assert_eq!(c.duration(), 0.05);
        assert_eq!(c.sample_rate(), 48_000.0);
    }
}
