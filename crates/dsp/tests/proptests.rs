//! Property-based tests of the DSP invariants.

use hyperear_dsp::correlate::xcorr;
use hyperear_dsp::delay::delay_fractional_into_len;
use hyperear_dsp::fft::{fft, ifft, next_pow2, rfft};
use hyperear_dsp::filter::MovingAverage;
use hyperear_dsp::interpolate::parabolic_peak;
use hyperear_dsp::level::{db_to_power_ratio, noise_gain_for_snr, power_ratio_to_db, snr_db};
use hyperear_dsp::quantize::{dequantize_i16, quantize_i16};
use hyperear_dsp::resample::resample;
use hyperear_dsp::window::Window;
use hyperear_dsp::Complex;
use proptest::prelude::*;

fn signal_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0f64..1.0, 8..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_round_trip_recovers_signal(signal in signal_strategy(256)) {
        let n = next_pow2(signal.len());
        let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
        data.resize(n, Complex::ZERO);
        let original = data.clone();
        fft(&mut data).unwrap();
        ifft(&mut data).unwrap();
        for (a, b) in data.iter().zip(&original) {
            prop_assert!((a.re - b.re).abs() < 1e-9);
            prop_assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_holds(signal in signal_strategy(256)) {
        let n = next_pow2(signal.len());
        let spec = rfft(&signal, n).unwrap();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time_energy - freq_energy).abs() < 1e-6 * (1.0 + time_energy));
    }

    #[test]
    fn xcorr_finds_planted_template(
        template in prop::collection::vec(-1.0f64..1.0, 8..32),
        offset in 0usize..64,
    ) {
        // Reject templates with almost no energy (nothing to find).
        let energy: f64 = template.iter().map(|x| x * x).sum();
        prop_assume!(energy > 0.5);
        let mut signal = vec![0.0; 128];
        for (i, &t) in template.iter().enumerate() {
            signal[offset + i] = t;
        }
        let corr = xcorr(&signal, &template).unwrap();
        let peak = corr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        prop_assert_eq!(peak, offset);
    }

    #[test]
    fn quantization_error_is_bounded(signal in signal_strategy(256)) {
        let q = dequantize_i16(&quantize_i16(&signal));
        let lsb = 1.0 / 32_767.0;
        for (a, b) in signal.iter().zip(&q) {
            prop_assert!((a - b).abs() <= 0.5 * lsb + 1e-12);
        }
    }

    #[test]
    fn sma_output_within_input_hull(signal in signal_strategy(128), window in 1usize..12) {
        let sma = MovingAverage::new(window).unwrap();
        let out = sma.filter(&signal).unwrap();
        let lo = signal.iter().cloned().fold(f64::MAX, f64::min);
        let hi = signal.iter().cloned().fold(f64::MIN, f64::max);
        for v in out {
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }
    }

    #[test]
    fn window_coefficients_bounded(n in 1usize..512) {
        for w in [Window::Rectangular, Window::Hann, Window::Hamming, Window::Blackman] {
            let c = w.coefficients(n).unwrap();
            prop_assert_eq!(c.len(), n);
            for v in c {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v));
            }
        }
    }

    #[test]
    fn db_round_trip(db in -60.0f64..60.0) {
        let back = power_ratio_to_db(db_to_power_ratio(db));
        prop_assert!((back - db).abs() < 1e-9);
    }

    #[test]
    fn noise_gain_hits_any_target(target in -10.0f64..30.0) {
        let signal: Vec<f64> = (0..512).map(|i| (i as f64 * 0.3).sin()).collect();
        let noise: Vec<f64> = (0..512).map(|i| (i as f64 * 0.71).cos()).collect();
        let g = noise_gain_for_snr(&signal, &noise, target).unwrap();
        let scaled: Vec<f64> = noise.iter().map(|x| g * x).collect();
        let achieved = snr_db(&signal, &scaled).unwrap();
        prop_assert!((achieved - target).abs() < 1e-6);
    }

    #[test]
    fn resample_output_length(ratio in 0.5f64..2.0, len in 16usize..256) {
        let signal = vec![0.25; len];
        let out = resample(&signal, ratio, 8).unwrap();
        prop_assert_eq!(out.len(), (len as f64 * ratio).round() as usize);
    }

    #[test]
    fn fractional_delay_places_pulse(delay in 0.0f64..200.0) {
        let mut pulse = vec![0.0; 8];
        pulse[4] = 1.0;
        let out = delay_fractional_into_len(&pulse, delay, 16, 300).unwrap();
        let peak = out
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let expected = 4.0 + delay;
        prop_assert!((peak as f64 - expected).abs() <= 1.0, "peak {} expected {}", peak, expected);
    }

    #[test]
    fn parabolic_vertex_recovery(vertex in 1.2f64..18.8, scale in 0.1f64..10.0) {
        let y: Vec<f64> = (0..20).map(|i| -scale * (i as f64 - vertex).powi(2) + 3.0).collect();
        let peak = y
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        prop_assume!(peak > 0 && peak + 1 < y.len());
        let (pos, _) = parabolic_peak(&y, peak).unwrap();
        prop_assert!((pos - vertex).abs() < 1e-6);
    }
}
