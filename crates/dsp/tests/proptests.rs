//! Property-based tests of the DSP invariants, on the workspace's own
//! harness (`hyperear_util::prop`). Each property runs
//! `HYPEREAR_PROP_CASES` seeded cases (default 64) and reports the
//! failing seed on a counterexample.

use hyperear_dsp::correlate::{xcorr, xcorr_into, MatchedFilter, StreamingMatchedFilter};
use hyperear_dsp::delay::delay_fractional_into_len;
use hyperear_dsp::fft::{fft, ifft, next_pow2, rfft};
use hyperear_dsp::filter::MovingAverage;
use hyperear_dsp::interpolate::parabolic_peak;
use hyperear_dsp::level::{db_to_power_ratio, noise_gain_for_snr, power_ratio_to_db, snr_db};
use hyperear_dsp::plan::{DspScratch, FftPlan, PlanCache};
use hyperear_dsp::quantize::{dequantize_i16, quantize_i16};
use hyperear_dsp::resample::resample;
use hyperear_dsp::window::Window;
use hyperear_dsp::Complex;
use hyperear_util::prop::{self, f64_range, usize_range, vec_f64};
use hyperear_util::{prop_assert, prop_assert_eq, prop_assume};

fn signal_strategy(max_len: usize) -> prop::VecOf<prop::F64Range> {
    vec_f64(-1.0, 1.0, 8, max_len)
}

#[test]
fn fft_round_trip_recovers_signal() {
    prop::check(
        "fft_round_trip_recovers_signal",
        signal_strategy(256),
        |signal| {
            let n = next_pow2(signal.len());
            let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
            data.resize(n, Complex::ZERO);
            let original = data.clone();
            fft(&mut data).unwrap();
            ifft(&mut data).unwrap();
            for (a, b) in data.iter().zip(&original) {
                prop_assert!((a.re - b.re).abs() < 1e-9);
                prop_assert!((a.im - b.im).abs() < 1e-9);
            }
            prop::pass()
        },
    );
}

#[test]
fn parseval_holds() {
    prop::check("parseval_holds", signal_strategy(256), |signal| {
        let n = next_pow2(signal.len());
        let spec = rfft(signal, n).unwrap();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time_energy - freq_energy).abs() < 1e-6 * (1.0 + time_energy));
        prop::pass()
    });
}

#[test]
fn xcorr_finds_planted_template() {
    let strat = (vec_f64(-1.0, 1.0, 8, 32), usize_range(0, 64));
    prop::check(
        "xcorr_finds_planted_template",
        strat,
        |(template, offset)| {
            // Reject templates with almost no energy (nothing to find).
            let energy: f64 = template.iter().map(|x| x * x).sum();
            prop_assume!(energy > 0.5);
            let mut signal = vec![0.0; 128];
            for (i, &t) in template.iter().enumerate() {
                signal[offset + i] = t;
            }
            let corr = xcorr(&signal, template).unwrap();
            let peak = corr
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            prop_assert_eq!(peak, *offset);
            prop::pass()
        },
    );
}

#[test]
fn quantization_error_is_bounded() {
    prop::check(
        "quantization_error_is_bounded",
        signal_strategy(256),
        |signal| {
            let q = dequantize_i16(&quantize_i16(signal));
            let lsb = 1.0 / 32_767.0;
            for (a, b) in signal.iter().zip(&q) {
                prop_assert!((a - b).abs() <= 0.5 * lsb + 1e-12);
            }
            prop::pass()
        },
    );
}

#[test]
fn sma_output_within_input_hull() {
    let strat = (vec_f64(-1.0, 1.0, 8, 128), usize_range(1, 12));
    prop::check("sma_output_within_input_hull", strat, |(signal, window)| {
        let sma = MovingAverage::new(*window).unwrap();
        let out = sma.filter(signal).unwrap();
        let lo = signal.iter().copied().fold(f64::MAX, f64::min);
        let hi = signal.iter().copied().fold(f64::MIN, f64::max);
        for v in out {
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }
        prop::pass()
    });
}

#[test]
fn window_coefficients_bounded() {
    prop::check("window_coefficients_bounded", usize_range(1, 512), |&n| {
        for w in [
            Window::Rectangular,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
        ] {
            let c = w.coefficients(n).unwrap();
            prop_assert_eq!(c.len(), n);
            for v in c {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v));
            }
        }
        prop::pass()
    });
}

#[test]
fn db_round_trip() {
    prop::check("db_round_trip", f64_range(-60.0, 60.0), |&db| {
        let back = power_ratio_to_db(db_to_power_ratio(db));
        prop_assert!((back - db).abs() < 1e-9);
        prop::pass()
    });
}

#[test]
fn noise_gain_hits_any_target() {
    prop::check(
        "noise_gain_hits_any_target",
        f64_range(-10.0, 30.0),
        |&target| {
            let signal: Vec<f64> = (0..512).map(|i| (i as f64 * 0.3).sin()).collect();
            let noise: Vec<f64> = (0..512).map(|i| (i as f64 * 0.71).cos()).collect();
            let g = noise_gain_for_snr(&signal, &noise, target).unwrap();
            let scaled: Vec<f64> = noise.iter().map(|x| g * x).collect();
            let achieved = snr_db(&signal, &scaled).unwrap();
            prop_assert!((achieved - target).abs() < 1e-6);
            prop::pass()
        },
    );
}

#[test]
fn resample_output_length() {
    let strat = (f64_range(0.5, 2.0), usize_range(16, 256));
    prop::check("resample_output_length", strat, |(ratio, len)| {
        let signal = vec![0.25; *len];
        let out = resample(&signal, *ratio, 8).unwrap();
        prop_assert_eq!(out.len(), (*len as f64 * ratio).round() as usize);
        prop::pass()
    });
}

#[test]
fn fractional_delay_places_pulse() {
    prop::check(
        "fractional_delay_places_pulse",
        f64_range(0.0, 200.0),
        |&delay| {
            let mut pulse = vec![0.0; 8];
            pulse[4] = 1.0;
            let out = delay_fractional_into_len(&pulse, delay, 16, 300).unwrap();
            let peak = out
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            let expected = 4.0 + delay;
            prop_assert!(
                (peak as f64 - expected).abs() <= 1.0,
                "peak {peak} expected {expected}"
            );
            prop::pass()
        },
    );
}

// ---- Planned-vs-one-shot equivalence (the PR-2 refactor contract):
// the planned, allocation-free variants must be *bit-identical* to the
// historical one-shot functions, for any signal at any size.

#[test]
fn planned_fft_bit_identical_to_one_shot() {
    let strat = (signal_strategy(256), usize_range(0, 4));
    prop::check(
        "planned_fft_bit_identical_to_one_shot",
        strat,
        |(signal, extra_pow)| {
            let n = next_pow2(signal.len()) << extra_pow;
            let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
            data.resize(n, Complex::ZERO);
            let mut planned = data.clone();
            let plan = FftPlan::new(n).unwrap();
            plan.fft(&mut planned).unwrap();
            fft(&mut data).unwrap();
            prop_assert_eq!(&planned, &data);
            plan.ifft(&mut planned).unwrap();
            ifft(&mut data).unwrap();
            prop_assert_eq!(&planned, &data);
            prop::pass()
        },
    );
}

#[test]
fn planned_rfft_bit_identical_to_one_shot() {
    let strat = (signal_strategy(256), usize_range(0, 3));
    prop::check(
        "planned_rfft_bit_identical_to_one_shot",
        strat,
        |(signal, extra_pow)| {
            let n = next_pow2(signal.len()) << extra_pow;
            let mut plans = PlanCache::new();
            let mut out = Vec::new();
            plans.plan(n).unwrap().rfft_into(signal, &mut out).unwrap();
            let reference = rfft(signal, n).unwrap();
            prop_assert_eq!(&out, &reference);
            // A second pass through the warm plan and buffer must not
            // change anything.
            plans.plan(n).unwrap().rfft_into(signal, &mut out).unwrap();
            prop_assert_eq!(&out, &reference);
            prop::pass()
        },
    );
}

#[test]
fn planned_xcorr_bit_identical_to_one_shot() {
    let strat = (signal_strategy(128), vec_f64(-1.0, 1.0, 8, 32));
    prop::check(
        "planned_xcorr_bit_identical_to_one_shot",
        strat,
        |(signal, template)| {
            prop_assume!(template.len() <= signal.len());
            let reference = xcorr(signal, template).unwrap();
            let mut plans = PlanCache::new();
            let mut scratch = DspScratch::new();
            let mut out = Vec::new();
            // Two passes: cold (buffers grow) and warm (buffers reused)
            // must both match the one-shot result exactly.
            for _ in 0..2 {
                xcorr_into(signal, template, &mut plans, &mut scratch, &mut out).unwrap();
                prop_assert_eq!(&out, &reference);
            }
            prop::pass()
        },
    );
}

#[test]
fn cached_matched_filter_bit_identical_to_one_shot() {
    let strat = (signal_strategy(192), vec_f64(-1.0, 1.0, 8, 24));
    prop::check(
        "cached_matched_filter_bit_identical_to_one_shot",
        strat,
        |(signal, template)| {
            prop_assume!(template.len() <= signal.len());
            let energy: f64 = template.iter().map(|x| x * x).sum();
            prop_assume!(energy > 1e-6);
            let mut filter = MatchedFilter::new(template).unwrap();
            let plain = filter.correlate(signal).unwrap();
            let normalized = filter.correlate_normalized(signal).unwrap();
            let mut scratch = DspScratch::new();
            let mut out = Vec::new();
            for _ in 0..2 {
                filter
                    .correlate_into(signal, &mut scratch, &mut out)
                    .unwrap();
                prop_assert_eq!(&out, &plain);
                filter
                    .correlate_normalized_into(signal, &mut scratch, &mut out)
                    .unwrap();
                prop_assert_eq!(&out, &normalized);
            }
            // All four calls share one padded length: one template FFT.
            prop_assert_eq!(filter.template_fft_count(), 1);
            prop::pass()
        },
    );
}

// ---- Real-input fast path (the PR-4 perf contract): the packed
// half-size transform and the overlap-save streaming engine must be
// *bit-close* to their full-size references — identical up to the
// rounding-error reordering inherent in a different FFT factorization.

/// Per-element tolerance for "bit-close": a few ulps of headroom scaled
/// by the reference magnitude. Observed differences are ~1e-12 relative.
fn bit_close_tol(reference_max: f64) -> f64 {
    1e-9 * (1.0 + reference_max)
}

#[test]
fn rfft_half_expands_to_full_rfft() {
    let strat = (signal_strategy(256), usize_range(0, 3));
    prop::check(
        "rfft_half_expands_to_full_rfft",
        strat,
        |(signal, extra_pow)| {
            let n = next_pow2(signal.len()) << extra_pow;
            let reference = rfft(signal, n).unwrap();
            let mut plans = PlanCache::new();
            let mut half = Vec::new();
            plans
                .real_plan(n)
                .unwrap()
                .rfft_half_into(signal, &mut half)
                .unwrap();
            prop_assert_eq!(half.len(), n / 2 + 1);
            // Expand the half spectrum by conjugate symmetry:
            // X[n-k] = conj(X[k]) for a real input.
            let max_mag = reference.iter().map(|c| c.abs()).fold(0.0, f64::max);
            let tol = bit_close_tol(max_mag);
            for (k, r) in reference.iter().enumerate() {
                let x = if k <= n / 2 {
                    half[k]
                } else {
                    half[n - k].conj()
                };
                prop_assert!(
                    (x.re - r.re).abs() <= tol && (x.im - r.im).abs() <= tol,
                    "bin {k}: half-path {x:?} vs full rfft {r:?}"
                );
            }
            prop::pass()
        },
    );
}

#[test]
fn streaming_matched_filter_matches_one_shot_xcorr() {
    // Block sizes from the minimum legal (next_pow2(m), where the step
    // can be as small as 1 and the template dominates the block) up to
    // 8x the template; signals from shorter than one block to many
    // blocks long.
    let strat = (
        signal_strategy(192),
        vec_f64(-1.0, 1.0, 8, 24),
        usize_range(0, 3),
    );
    prop::check(
        "streaming_matched_filter_matches_one_shot_xcorr",
        strat,
        |(signal, template, extra_pow)| {
            prop_assume!(template.len() <= signal.len());
            let energy: f64 = template.iter().map(|x| x * x).sum();
            prop_assume!(energy > 1e-6);
            let block = next_pow2(template.len()) << extra_pow;
            let filter = StreamingMatchedFilter::with_block_len(template, block).unwrap();
            let reference = xcorr(signal, template).unwrap();
            let mut scratch = DspScratch::new();
            let mut out = Vec::new();
            // Two passes: cold and warm must both stay bit-close.
            for _ in 0..2 {
                filter
                    .correlate_into(signal, &mut scratch, &mut out)
                    .unwrap();
                prop_assert_eq!(out.len(), reference.len());
                let max_mag = reference.iter().copied().map(f64::abs).fold(0.0, f64::max);
                let tol = bit_close_tol(max_mag);
                for (i, (a, r)) in out.iter().zip(&reference).enumerate() {
                    prop_assert!(
                        (a - r).abs() <= tol,
                        "lag {i}: streaming {a} vs one-shot {r} (block {block})"
                    );
                }
            }
            prop::pass()
        },
    );
}

#[test]
fn planned_stft_and_spectrum_match_one_shot() {
    let strat = (vec_f64(-1.0, 1.0, 64, 512), usize_range(16, 64));
    prop::check(
        "planned_stft_and_spectrum_match_one_shot",
        strat,
        |(signal, frame)| {
            prop_assume!(*frame <= signal.len());
            let mut plans = PlanCache::new();
            let mut scratch = DspScratch::new();
            let hop = (frame / 2).max(1);
            let planned = hyperear_dsp::stft::stft_with(
                signal,
                *frame,
                hop,
                8_000.0,
                &mut plans,
                &mut scratch,
            )
            .unwrap();
            let reference = hyperear_dsp::stft::stft(signal, *frame, hop, 8_000.0).unwrap();
            prop_assert_eq!(&planned, &reference);
            let planned_ps = hyperear_dsp::spectrum::power_spectrum_with(
                signal,
                8_000.0,
                Window::Hann,
                &mut plans,
                &mut scratch,
            )
            .unwrap();
            let reference_ps =
                hyperear_dsp::spectrum::power_spectrum(signal, 8_000.0, Window::Hann).unwrap();
            prop_assert_eq!(&planned_ps, &reference_ps);
            prop::pass()
        },
    );
}

#[test]
fn parabolic_vertex_recovery() {
    let strat = (f64_range(1.2, 18.8), f64_range(0.1, 10.0));
    prop::check("parabolic_vertex_recovery", strat, |(vertex, scale)| {
        let y: Vec<f64> = (0..20)
            .map(|i| -scale * (i as f64 - vertex).powi(2) + 3.0)
            .collect();
        let peak = y
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        prop_assume!(peak > 0 && peak + 1 < y.len());
        let (pos, _) = parabolic_peak(&y, peak).unwrap();
        prop_assert!((pos - vertex).abs() < 1e-6);
        prop::pass()
    });
}
