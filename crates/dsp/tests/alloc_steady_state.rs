//! Pins the plan/scratch architecture's central promise: once the plan
//! cache, scratch arena, template spectrum and output buffer are warm,
//! the DSP hot path — up to and including a full pipeline session
//! through a warm `SessionEngine::run_into` — performs **zero** heap
//! allocations per call.
//!
//! The whole file is one `#[test]` on purpose — the counting allocator is
//! process-global, and concurrent tests in the same binary would pollute
//! the counter between the snapshot and the assertion.

use hyperear::config::HyperEarConfig;
use hyperear::pipeline::{SessionEngine, SessionInput, SessionResult};
use hyperear_dsp::correlate::{
    xcorr_into, MatchedFilter, StreamingMatchedFilter, StreamingMatchedFilter32,
};
use hyperear_dsp::filter::{FirFilter, ZeroPhaseFir, ZeroPhaseFir32};
use hyperear_dsp::plan::{DspScratch, PlanCache};
use hyperear_dsp::window::Window;
use hyperear_sim::environment::Environment;
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::ScenarioBuilder;
use hyperear_util::alloc_counter::CountingAllocator;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

#[test]
fn warm_xcorr_path_does_not_allocate() {
    let template: Vec<f64> = (0..1_764).map(|i| (i as f64 * 0.21).sin()).collect();
    let signal: Vec<f64> = (0..44_100)
        .map(|i| (i as f64 * 0.037).sin() * (i as f64 * 0.0011).cos())
        .collect();

    // --- Free-function planned path: xcorr_into. ----------------------
    let mut plans = PlanCache::new();
    let mut scratch = DspScratch::new();
    let mut out = Vec::new();
    // Warm-up: plans built, buffers grown to their high-water mark.
    xcorr_into(&signal, &template, &mut plans, &mut scratch, &mut out).unwrap();
    let expected = out.clone();

    let before = ALLOC.allocations();
    for _ in 0..3 {
        xcorr_into(&signal, &template, &mut plans, &mut scratch, &mut out).unwrap();
    }
    let after = ALLOC.allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state xcorr_into must not allocate"
    );
    assert_eq!(out, expected, "warm path must stay bit-identical");

    // --- Matched filter with cached template spectrum. ----------------
    let mut filter = MatchedFilter::new(&template).unwrap();
    let mut out = Vec::new();
    // Warm-up computes the template spectrum for this padded length.
    filter
        .correlate_normalized_into(&signal, &mut scratch, &mut out)
        .unwrap();
    assert_eq!(filter.template_fft_count(), 1);

    let before = ALLOC.allocations();
    for _ in 0..3 {
        filter
            .correlate_normalized_into(&signal, &mut scratch, &mut out)
            .unwrap();
    }
    let after = ALLOC.allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state matched filtering must not allocate"
    );
    // Still exactly one template FFT for this (template, padded-length).
    assert_eq!(filter.template_fft_count(), 1);

    // --- Overlap-save streaming matched filter. -----------------------
    // Block-sized FFTs instead of one capture-sized transform; the same
    // zero-allocation contract must hold once scratch is at its
    // high-water mark (one block, not one capture).
    let streaming = StreamingMatchedFilter::new(&template).unwrap();
    let mut out = Vec::new();
    streaming
        .correlate_normalized_into(&signal, &mut scratch, &mut out)
        .unwrap();
    let expected = out.clone();

    let before = ALLOC.allocations();
    for _ in 0..3 {
        streaming
            .correlate_normalized_into(&signal, &mut scratch, &mut out)
            .unwrap();
    }
    let after = ALLOC.allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state streaming matched filtering must not allocate"
    );
    assert_eq!(out, expected, "warm streaming path must stay bit-identical");

    // --- Overlap-save zero-phase FIR. ---------------------------------
    let bp = FirFilter::band_pass(2_000.0, 6_400.0, 44_100.0, 127, Window::Hamming).unwrap();
    let fir = ZeroPhaseFir::new(&bp).unwrap();
    let mut out = Vec::new();
    fir.filter_into(&signal, &mut scratch, &mut out).unwrap();
    let expected = out.clone();

    let before = ALLOC.allocations();
    for _ in 0..3 {
        fir.filter_into(&signal, &mut scratch, &mut out).unwrap();
    }
    let after = ALLOC.allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state zero-phase FIR filtering must not allocate"
    );
    assert_eq!(out, expected, "warm FIR path must stay bit-identical");

    // --- f32 split-plane engines: same zero-allocation contract. ------
    // The opt-in reduced-precision pipeline shares the scratch arena
    // (its f32 planes live next to the complex/real f64 buffers), so a
    // warm f32 correlation or filtering pass must also be free of heap
    // traffic — including under the `simd` feature, where the same call
    // sites dispatch into the runtime-detected intrinsic kernels.
    let template32: Vec<f32> = template.iter().map(|&x| x as f32).collect();
    let signal32: Vec<f32> = signal.iter().map(|&x| x as f32).collect();
    let streaming32 = StreamingMatchedFilter32::new(&template32).unwrap();
    let mut out32 = Vec::new();
    streaming32
        .correlate_normalized_into(&signal32, &mut scratch, &mut out32)
        .unwrap();
    let expected32 = out32.clone();

    let before = ALLOC.allocations();
    for _ in 0..3 {
        streaming32
            .correlate_normalized_into(&signal32, &mut scratch, &mut out32)
            .unwrap();
    }
    let after = ALLOC.allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state f32 streaming matched filtering must not allocate"
    );
    assert_eq!(
        out32, expected32,
        "warm f32 streaming path must stay bit-identical"
    );

    let fir32 = ZeroPhaseFir32::new(&bp).unwrap();
    let mut out32 = Vec::new();
    fir32
        .filter_into(&signal32, &mut scratch, &mut out32)
        .unwrap();
    let expected32 = out32.clone();

    let before = ALLOC.allocations();
    for _ in 0..3 {
        fir32
            .filter_into(&signal32, &mut scratch, &mut out32)
            .unwrap();
    }
    let after = ALLOC.allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state f32 zero-phase FIR filtering must not allocate"
    );
    assert_eq!(
        out32, expected32,
        "warm f32 FIR path must stay bit-identical"
    );

    // --- Full pipeline session through a warm SessionEngine. ----------
    // Everything downstream of the matched filter — peak picking,
    // inertial analysis, SFO fit, per-slide confidence scoring, TDoA,
    // triangulation, aggregation — runs out of engine-owned scratch and
    // the reused result slot.
    let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::anechoic())
        .speaker_range(3.0)
        .slides(2)
        .seed(31)
        .render()
        .unwrap();
    let input = SessionInput {
        audio_sample_rate: rec.audio.sample_rate,
        left: &rec.audio.left,
        right: &rec.audio.right,
        imu_sample_rate: rec.imu.sample_rate,
        accel: &rec.imu.accel,
        gyro: &rec.imu.gyro,
    };
    let mut engine = SessionEngine::new(HyperEarConfig::galaxy_s4()).unwrap();
    let mut result = SessionResult::empty();
    // Warm-up: detector built, every scratch buffer at its high-water
    // mark, the result slot's slide storage grown.
    engine.run_into(&input, &mut result).unwrap();
    let expected = result.clone();

    let before = ALLOC.allocations();
    for _ in 0..2 {
        engine.run_into(&input, &mut result).unwrap();
    }
    let after = ALLOC.allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state SessionEngine::run_into must not allocate"
    );
    assert_eq!(result, expected, "warm session must stay bit-identical");
    // Overlap-save detection caps the engine's transforms at the block
    // size, far below the multi-second capture length.
    let peak = engine.peak_fft_len().expect("warm engine has a detector");
    assert!(
        peak < rec.audio.left.len(),
        "peak FFT length ({peak}) must be independent of capture length ({})",
        rec.audio.left.len()
    );

    // --- f32-precision session engine: same steady-state contract. ----
    // Precision::F32 swaps the detection hot path onto the split-plane
    // engines; everything downstream is unchanged, so a warm f32 session
    // must be exactly as allocation-free as the f64 reference.
    let mut cfg32 = HyperEarConfig::galaxy_s4();
    cfg32.precision = hyperear::config::Precision::F32;
    let mut engine32 = SessionEngine::new(cfg32).unwrap();
    let mut result32 = SessionResult::empty();
    engine32.run_into(&input, &mut result32).unwrap();
    let expected32 = result32.clone();

    let before = ALLOC.allocations();
    for _ in 0..2 {
        engine32.run_into(&input, &mut result32).unwrap();
    }
    let after = ALLOC.allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state f32 SessionEngine::run_into must not allocate"
    );
    assert_eq!(
        result32, expected32,
        "warm f32 session must stay bit-identical"
    );

    // --- Estimator bank: every variant allocation-free when warm. -----
    // Each estimator touches its own buffers (weighted correlation copy,
    // spectral scratch, MCCI workspace); after one warm-up pass per
    // variant they are all at their high-water marks.
    use hyperear::config::TdoaEstimator;
    for est in TdoaEstimator::ALL {
        engine.run_estimated_into(&input, est, &mut result).unwrap();
        let expected = result.clone();
        let before = ALLOC.allocations();
        for _ in 0..2 {
            engine.run_estimated_into(&input, est, &mut result).unwrap();
        }
        let after = ALLOC.allocations();
        assert_eq!(
            after - before,
            0,
            "steady-state run_estimated_into({est:?}) must not allocate"
        );
        assert_eq!(
            result, expected,
            "warm {est:?} session must stay bit-identical"
        );
    }

    // --- Escalation retries allocation-free when warm. ----------------
    // An escalate_below of 1.0 forces every monitored session through
    // the full retry ladder (clean slides score ≈ 0.99 < 1.0), so the
    // retry slot, ladder engines and diagnostics storage all warm up in
    // one pass and the steady state is a true escalating cycle.
    let mut esc_cfg = HyperEarConfig::galaxy_s4();
    esc_cfg.estimator.escalation = true;
    esc_cfg.estimator.escalate_below = 1.0;
    let mut esc_engine = SessionEngine::new(esc_cfg).unwrap();
    let mut outcome = hyperear::pipeline::SessionOutcome::idle();
    esc_engine.run_monitored_into(&input, &mut outcome);
    assert!(
        outcome.is_usable(),
        "forced-escalation session stays usable"
    );
    let expected = outcome.clone();

    let before = ALLOC.allocations();
    for _ in 0..2 {
        esc_engine.run_monitored_into(&input, &mut outcome);
    }
    let after = ALLOC.allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state escalating run_monitored_into must not allocate"
    );
    assert_eq!(
        outcome, expected,
        "warm escalating session must stay bit-identical"
    );
}
