//! Property-based tests of the inertial-chain invariants, on the
//! workspace's own harness (`hyperear_util::prop`).

use hyperear_imu::displacement::{integrate_velocity, segment_displacement};
use hyperear_imu::rotation::{max_rotation_deg, yaw_trace};
use hyperear_imu::segment::{power_levels, segment_movements, SegmentConfig};
use hyperear_imu::velocity::{correct_linear_drift, estimate_velocity, integrate_acceleration};
use hyperear_util::prop::{self, f64_range, usize_range, vec_f64, vec_of};
use hyperear_util::{prop_assert, prop_assert_eq, prop_assume};

fn min_jerk_accel(dist: f64, n: usize, fs: f64) -> Vec<f64> {
    let duration = (n - 1) as f64 / fs;
    (0..n)
        .map(|i| {
            let tau = i as f64 / (n - 1) as f64;
            let a = 60.0 * tau - 180.0 * tau * tau + 120.0 * tau * tau * tau;
            a * dist / (duration * duration)
        })
        .collect()
}

#[test]
fn drift_correction_is_exact_for_linear_drift() {
    let strat = (
        f64_range(-1.0, 1.0),
        f64_range(-0.5, 0.5),
        usize_range(41, 200),
    );
    prop::check(
        "drift_correction_is_exact_for_linear_drift",
        strat,
        |&(dist, bias, n)| {
            prop_assume!(dist.abs() > 0.05);
            let mut accel = min_jerk_accel(dist, n, 100.0);
            for a in &mut accel {
                *a += bias;
            }
            let est = estimate_velocity(&accel, 100.0).unwrap();
            // The corrected end velocity is exactly zero, and the recovered
            // drift slope equals the injected bias.
            prop_assert!(est.corrected.last().unwrap().abs() < 1e-9);
            prop_assert!((est.drift_slope - bias).abs() < 1e-9);
            prop::pass()
        },
    );
}

#[test]
fn displacement_recovers_distance_under_bias() {
    let strat = (
        f64_range(-1.0, 1.0),
        f64_range(-0.3, 0.3),
        usize_range(61, 160),
    );
    prop::check(
        "displacement_recovers_distance_under_bias",
        strat,
        |&(dist, bias, n)| {
            prop_assume!(dist.abs() > 0.05);
            let mut accel = min_jerk_accel(dist, n, 100.0);
            for a in &mut accel {
                *a += bias;
            }
            let d = segment_displacement(&accel, 100.0).unwrap();
            prop_assert!(
                (d - dist).abs() < 0.01 * (1.0 + dist.abs()),
                "dist {dist} est {d}"
            );
            prop::pass()
        },
    );
}

#[test]
fn integration_is_linear() {
    let strat = (f64_range(0.1, 5.0), usize_range(10, 100));
    prop::check("integration_is_linear", strat, |&(scale, n)| {
        let accel: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.17).sin()).collect();
        let scaled: Vec<f64> = accel.iter().map(|a| a * scale).collect();
        let v1 = integrate_acceleration(&accel, 100.0).unwrap();
        let v2 = integrate_acceleration(&scaled, 100.0).unwrap();
        for (a, b) in v1.iter().zip(&v2) {
            prop_assert!((a * scale - b).abs() < 1e-9);
        }
        prop::pass()
    });
}

#[test]
fn corrected_velocity_endpoints_are_zero() {
    prop::check(
        "corrected_velocity_endpoints_are_zero",
        vec_f64(-2.0, 2.0, 8, 64),
        |raw| {
            let mut raw = raw.clone();
            raw[0] = 0.0; // integration always starts at rest
            let (corrected, _) = correct_linear_drift(&raw, 100.0).unwrap();
            prop_assert!(corrected[0].abs() < 1e-12);
            prop_assert!(corrected.last().unwrap().abs() < 1e-12);
            prop::pass()
        },
    );
}

#[test]
fn power_levels_are_nonnegative_and_bounded() {
    prop::check(
        "power_levels_are_nonnegative_and_bounded",
        vec_f64(-3.0, 3.0, 8, 128),
        |signal| {
            let p = power_levels(signal, 4).unwrap();
            prop_assert_eq!(p.len(), signal.len());
            let max_sq = signal.iter().map(|x| x * x).fold(0.0f64, f64::max);
            for v in p {
                prop_assert!(v >= 0.0);
                prop_assert!(v <= max_sq + 1e-12);
            }
            prop::pass()
        },
    );
}

#[test]
fn segments_are_sorted_and_disjoint() {
    let strat = vec_of((usize_range(0, 8), usize_range(20, 60)), 1, 4);
    prop::check("segments_are_sorted_and_disjoint", strat, |bursts| {
        // Build a trace with bursts at deterministic, spread positions.
        let mut signal = vec![0.0; 1000];
        for (k, &(slot, len)) in bursts.iter().enumerate() {
            let start = 100 + (slot + k * 3) % 8 * 110;
            for i in 0..len.min(90) {
                signal[start + i] = 2.0;
            }
        }
        let segments = segment_movements(&signal, &SegmentConfig::default()).unwrap();
        for pair in segments.windows(2) {
            prop_assert!(pair[0].end <= pair[1].start);
        }
        for s in &segments {
            prop_assert!(s.start < s.end);
            prop_assert!(s.end <= signal.len());
        }
        prop::pass()
    });
}

#[test]
fn yaw_trace_differences_track_wobble() {
    let strat = (
        f64_range(0.01, 0.3),
        f64_range(0.2, 0.8),
        f64_range(-0.05, 0.05),
    );
    prop::check(
        "yaw_trace_differences_track_wobble",
        strat,
        |&(amp, freq, bias)| {
            let fs = 100.0;
            let w = std::f64::consts::TAU * freq;
            let gyro: Vec<f64> = (0..1800)
                .map(|i| bias + amp * w * (w * i as f64 / fs).cos())
                .collect();
            let yaw = yaw_trace(&gyro, fs).unwrap();
            let (i, j) = (700usize, 860usize);
            let est = yaw[j] - yaw[i];
            let truth = amp * ((w * j as f64 / fs).sin() - (w * i as f64 / fs).sin());
            prop_assert!(
                (est - truth).abs() < 0.01 + 0.05 * amp,
                "est {est} truth {truth}"
            );
            prop::pass()
        },
    );
}

#[test]
fn rotation_gate_measures_constant_wobble() {
    prop::check(
        "rotation_gate_measures_constant_wobble",
        f64_range(1.0, 30.0),
        |&amp_deg| {
            let fs = 100.0;
            let amp = amp_deg.to_radians();
            let w = std::f64::consts::TAU * 0.5;
            let rate: Vec<f64> = (0..=200)
                .map(|i| amp * w * (w * i as f64 / fs).cos())
                .collect();
            let measured = max_rotation_deg(&rate, fs).unwrap();
            prop_assert!((measured - amp_deg).abs() < 0.1 * amp_deg + 0.5);
            prop::pass()
        },
    );
}

#[test]
fn velocity_then_displacement_is_consistent() {
    let strat = (f64_range(0.1, 1.0), usize_range(81, 160));
    prop::check(
        "velocity_then_displacement_is_consistent",
        strat,
        |&(dist, n)| {
            let accel = min_jerk_accel(dist, n, 100.0);
            let est = estimate_velocity(&accel, 100.0).unwrap();
            let d = integrate_velocity(&est.corrected, 100.0).unwrap();
            // Monotonic displacement for a one-way slide.
            for pair in d.windows(2) {
                prop_assert!(pair[1] >= pair[0] - 1e-9);
            }
            prop_assert!((d.last().unwrap() - dist).abs() < 0.01);
            prop::pass()
        },
    );
}
