//! Session-level inertial analysis.
//!
//! Chains the whole of paper Section V: gravity removal → SMA smoothing →
//! power segmentation (y-axis for slides, z-axis for stature changes) →
//! drift-corrected velocity → displacement → z-rotation measurement.
//! The output is everything the localization stage needs from the IMU:
//! per-slide windows, signed distances `D′`, rotation for the quality
//! gate, and the stature change `H` of the 3D protocol.

use crate::displacement::{segment_kinematics, DisplacementScratch};
use crate::preprocess::preprocess_into;
use crate::rotation::max_rotation_deg_with;
use crate::segment::{segment_movements_into, Segment, SegmentConfig};
use crate::ImuError;
use hyperear_geom::Vec3;

/// Configuration for [`analyze_session`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Samples of the initial stationary window used to estimate gravity.
    pub gravity_window: usize,
    /// SMA smoothing window (paper: 4 samples at 100 Hz).
    pub sma_window: usize,
    /// Movement segmentation parameters.
    pub segmenter: SegmentConfig,
    /// Whether to apply the Eq. 4 linear drift correction (true in the
    /// paper; false only for the ablation experiment).
    pub drift_correction: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            gravity_window: 60,
            sma_window: 4,
            segmenter: SegmentConfig::default(),
            drift_correction: true,
        }
    }
}

impl hyperear_util::ToJson for SessionConfig {
    fn to_json(&self) -> hyperear_util::Json {
        use hyperear_util::Json;
        Json::obj(vec![
            ("gravity_window", Json::Number(self.gravity_window as f64)),
            ("sma_window", Json::Number(self.sma_window as f64)),
            ("segmenter", self.segmenter.to_json()),
            ("drift_correction", Json::Bool(self.drift_correction)),
        ])
    }
}

impl hyperear_util::FromJson for SessionConfig {
    fn from_json(json: &hyperear_util::Json) -> Result<Self, hyperear_util::JsonError> {
        Ok(SessionConfig {
            gravity_window: json.field("gravity_window")?,
            sma_window: json.field("sma_window")?,
            segmenter: json.field("segmenter")?,
            drift_correction: json.field("drift_correction")?,
        })
    }
}

/// One detected and measured slide.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlideEstimate {
    /// The slide's sample window.
    pub segment: Segment,
    /// Start time, seconds.
    pub start_time: f64,
    /// End time, seconds.
    pub end_time: f64,
    /// Signed displacement along the phone's y (slide) axis, metres.
    pub distance: f64,
    /// Maximum z-rotation over the slide, degrees.
    pub rotation_deg: f64,
    /// Raw integrated y-velocity at the slide end before the Eq. 4
    /// correction, m/s. The zero-velocity assumption says this should be
    /// ~0; a large residual flags a drift-corrupted slide for the
    /// confidence scoring downstream.
    pub end_velocity_residual: f64,
}

/// One detected vertical stature change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatureChange {
    /// The movement's sample window.
    pub segment: Segment,
    /// Signed vertical displacement, metres (negative = lowered).
    pub height_change: f64,
}

/// The full inertial summary of one session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionAnalysis {
    /// Gravity vector estimated from the calibration window, m/s².
    pub gravity: Vec3,
    /// Detected slides in time order.
    pub slides: Vec<SlideEstimate>,
    /// Detected stature changes in time order.
    pub stature_changes: Vec<StatureChange>,
}

/// Analyzes raw accelerometer and gyroscope traces into slides and
/// stature changes.
///
/// Movements are classified by dominant axis: a segment found on the
/// y-axis whose y-displacement dominates is a slide; a z-axis segment
/// whose vertical displacement dominates is a stature change. Segments
/// detected on both axes (a sloppy diagonal movement) are assigned to the
/// axis with the larger displacement.
///
/// # Errors
///
/// Returns [`ImuError::TraceTooShort`] for traces shorter than the
/// gravity window and propagates component errors.
pub fn analyze_session(
    accel: &[Vec3],
    gyro: &[Vec3],
    sample_rate: f64,
    config: &SessionConfig,
) -> Result<SessionAnalysis, ImuError> {
    let mut scratch = AnalyzeScratch::new();
    let mut out = SessionAnalysis {
        gravity: Vec3::ZERO,
        slides: Vec::new(),
        stature_changes: Vec::new(),
    };
    analyze_session_with(accel, gyro, sample_rate, config, &mut scratch, &mut out)?;
    Ok(out)
}

/// Reusable work buffers for [`analyze_session_with`]: every intermediate
/// trace of the inertial chain, so a warm session engine re-analyzes
/// without heap allocation.
#[derive(Debug, Clone, Default)]
pub struct AnalyzeScratch {
    linear: Vec<Vec3>,
    axis_y: Vec<f64>,
    axis_z: Vec<f64>,
    gyro_z: Vec<f64>,
    power: Vec<f64>,
    segments_y: Vec<Segment>,
    segments_z: Vec<Segment>,
    displacement: DisplacementScratch,
    angle: Vec<f64>,
}

impl AnalyzeScratch {
    /// Creates empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Allocation-free form of [`analyze_session`]: intermediates live in
/// `scratch` and the result is written into `out` (whose `slides` and
/// `stature_changes` vectors are cleared and reused). Results are
/// identical to [`analyze_session`].
///
/// # Errors
///
/// Same conditions as [`analyze_session`].
pub fn analyze_session_with(
    accel: &[Vec3],
    gyro: &[Vec3],
    sample_rate: f64,
    config: &SessionConfig,
    scratch: &mut AnalyzeScratch,
    out: &mut SessionAnalysis,
) -> Result<(), ImuError> {
    if sample_rate <= 0.0 {
        return Err(ImuError::invalid("sample_rate", "must be positive"));
    }
    if accel.len() != gyro.len() {
        return Err(ImuError::invalid(
            "accel/gyro",
            format!("length mismatch: {} vs {}", accel.len(), gyro.len()),
        ));
    }
    let gravity = preprocess_into(
        accel,
        config.gravity_window,
        config.sma_window,
        &mut scratch.linear,
    )?;
    scratch.axis_y.clear();
    scratch.axis_y.extend(scratch.linear.iter().map(|v| v.y));
    scratch.axis_z.clear();
    scratch.axis_z.extend(scratch.linear.iter().map(|v| v.z));
    scratch.gyro_z.clear();
    scratch.gyro_z.extend(gyro.iter().map(|v| v.z));

    segment_movements_into(
        &scratch.axis_y,
        &config.segmenter,
        &mut scratch.power,
        &mut scratch.segments_y,
    )?;
    segment_movements_into(
        &scratch.axis_z,
        &config.segmenter,
        &mut scratch.power,
        &mut scratch.segments_z,
    )?;

    out.gravity = gravity;
    out.slides.clear();
    out.stature_changes.clear();

    for si in 0..scratch.segments_y.len() {
        let seg = scratch.segments_y[si];
        let kin_y = segment_kinematics(
            &scratch.axis_y[seg.start..seg.end],
            sample_rate,
            config.drift_correction,
            &mut scratch.displacement,
        )?;
        let kin_z = segment_kinematics(
            &scratch.axis_z[seg.start..seg.end],
            sample_rate,
            config.drift_correction,
            &mut scratch.displacement,
        )?;
        if kin_y.distance.abs() < kin_z.distance.abs() {
            continue; // dominated by vertical motion; the z pass owns it
        }
        let rotation = max_rotation_deg_with(
            &scratch.gyro_z[seg.start..seg.end],
            sample_rate,
            &mut scratch.angle,
        )?;
        out.slides.push(SlideEstimate {
            segment: seg,
            start_time: seg.start as f64 / sample_rate,
            end_time: seg.end as f64 / sample_rate,
            distance: kin_y.distance,
            rotation_deg: rotation,
            end_velocity_residual: kin_y.end_velocity_residual,
        });
    }
    for si in 0..scratch.segments_z.len() {
        let seg = scratch.segments_z[si];
        let kin_z = segment_kinematics(
            &scratch.axis_z[seg.start..seg.end],
            sample_rate,
            config.drift_correction,
            &mut scratch.displacement,
        )?;
        let kin_y = segment_kinematics(
            &scratch.axis_y[seg.start..seg.end],
            sample_rate,
            config.drift_correction,
            &mut scratch.displacement,
        )?;
        if kin_z.distance.abs() <= kin_y.distance.abs() {
            continue; // this is a slide, already handled above
        }
        out.stature_changes.push(StatureChange {
            segment: seg,
            height_change: kin_z.distance,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: f64 = 9.806_65;
    const FS: f64 = 100.0;

    fn min_jerk_accel(dist: f64, n: usize) -> Vec<f64> {
        let duration = (n - 1) as f64 / FS;
        (0..n)
            .map(|i| {
                let tau = i as f64 / (n - 1) as f64;
                let a = 60.0 * tau - 180.0 * tau * tau + 120.0 * tau * tau * tau;
                a * dist / (duration * duration)
            })
            .collect()
    }

    /// Builds a raw trace: hold, slide(s) on y, optional z drop.
    fn build_trace(slide_dists: &[f64], drop: Option<f64>) -> (Vec<Vec3>, Vec<Vec3>) {
        let mut accel = vec![Vec3::new(0.0, 0.0, -G); 150];
        for &d in slide_dists {
            let profile = min_jerk_accel(d, 81);
            for &a in &profile {
                accel.push(Vec3::new(0.0, a, -G));
            }
            accel.extend(std::iter::repeat_n(Vec3::new(0.0, 0.0, -G), 70));
        }
        if let Some(h) = drop {
            let profile = min_jerk_accel(-h, 101);
            for &a in &profile {
                accel.push(Vec3::new(0.0, 0.0, a - G));
            }
            accel.extend(std::iter::repeat_n(Vec3::new(0.0, 0.0, -G), 70));
        }
        let gyro = vec![Vec3::ZERO; accel.len()];
        (accel, gyro)
    }

    #[test]
    fn single_slide_measured_accurately() {
        let (accel, gyro) = build_trace(&[0.55], None);
        let session = analyze_session(&accel, &gyro, FS, &SessionConfig::default()).unwrap();
        assert_eq!(session.slides.len(), 1);
        let s = &session.slides[0];
        assert!((s.distance - 0.55).abs() < 0.01, "distance {}", s.distance);
        assert!(s.rotation_deg < 0.1);
        assert!(session.stature_changes.is_empty());
        assert!((session.gravity.z + G).abs() < 1e-9);
    }

    #[test]
    fn back_and_forth_slides_have_signs() {
        let (accel, gyro) = build_trace(&[0.5, -0.5, 0.5], None);
        let session = analyze_session(&accel, &gyro, FS, &SessionConfig::default()).unwrap();
        assert_eq!(session.slides.len(), 3);
        assert!(session.slides[0].distance > 0.4);
        assert!(session.slides[1].distance < -0.4);
        assert!(session.slides[2].distance > 0.4);
        // Time ordering.
        assert!(session.slides[0].end_time <= session.slides[1].start_time);
    }

    #[test]
    fn stature_change_detected_on_z() {
        let (accel, gyro) = build_trace(&[0.55], Some(0.4));
        let session = analyze_session(&accel, &gyro, FS, &SessionConfig::default()).unwrap();
        assert_eq!(session.slides.len(), 1);
        assert_eq!(session.stature_changes.len(), 1);
        let h = session.stature_changes[0].height_change;
        assert!((h + 0.4).abs() < 0.01, "height change {h}");
    }

    #[test]
    fn rotation_is_reported_per_slide() {
        let (accel, mut gyro) = build_trace(&[0.55], None);
        // Inject a yaw wobble during the slide (samples 150..231).
        let amp = 25f64.to_radians();
        let w = std::f64::consts::TAU * 1.0;
        for (i, g) in gyro.iter_mut().enumerate().take(231).skip(150) {
            let t = (i - 150) as f64 / FS;
            g.z = amp * w * (w * t).cos();
        }
        let session = analyze_session(&accel, &gyro, FS, &SessionConfig::default()).unwrap();
        assert_eq!(session.slides.len(), 1);
        assert!(
            session.slides[0].rotation_deg > 15.0,
            "rotation {}",
            session.slides[0].rotation_deg
        );
    }

    #[test]
    fn mismatched_traces_rejected() {
        let (accel, _) = build_trace(&[0.5], None);
        let gyro = vec![Vec3::ZERO; 10];
        assert!(analyze_session(&accel, &gyro, FS, &SessionConfig::default()).is_err());
        assert!(analyze_session(
            &accel,
            &vec![Vec3::ZERO; accel.len()],
            0.0,
            &SessionConfig::default()
        )
        .is_err());
    }

    #[test]
    fn short_trace_rejected() {
        let accel = vec![Vec3::new(0.0, 0.0, -G); 10];
        let gyro = vec![Vec3::ZERO; 10];
        assert!(analyze_session(&accel, &gyro, FS, &SessionConfig::default()).is_err());
    }

    #[test]
    fn quiet_session_has_no_movements() {
        let accel = vec![Vec3::new(0.0, 0.0, -G); 400];
        let gyro = vec![Vec3::ZERO; 400];
        let session = analyze_session(&accel, &gyro, FS, &SessionConfig::default()).unwrap();
        assert!(session.slides.is_empty());
        assert!(session.stature_changes.is_empty());
    }

    #[test]
    fn with_variant_matches_allocating_form() {
        let (mut accel, gyro) = build_trace(&[0.5, -0.5], Some(0.4));
        // A little accelerometer bias so the residual field is non-zero.
        for a in accel.iter_mut().skip(150) {
            a.y += 0.05;
        }
        let cfg = SessionConfig::default();
        let reference = analyze_session(&accel, &gyro, FS, &cfg).unwrap();
        let mut scratch = AnalyzeScratch::new();
        let mut out = SessionAnalysis {
            gravity: Vec3::new(9.0, 9.0, 9.0),
            slides: Vec::new(),
            stature_changes: Vec::new(),
        };
        for _ in 0..2 {
            analyze_session_with(&accel, &gyro, FS, &cfg, &mut scratch, &mut out).unwrap();
            assert_eq!(out, reference); // bit-identical, including residuals
        }
        assert!(!reference.slides.is_empty());
        for s in &reference.slides {
            assert!(
                s.end_velocity_residual.abs() > 1e-4,
                "bias should leave a visible residual, got {}",
                s.end_velocity_residual
            );
        }
    }

    #[test]
    fn works_on_simulated_recording() {
        // End-to-end against the full simulator with ruler motion.
        use hyperear_sim::phone::PhoneModel;
        use hyperear_sim::scenario::ScenarioBuilder;
        let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
            .environment(hyperear_sim::environment::Environment::anechoic())
            .speaker_range(3.0)
            .slides(2)
            .seed(5)
            .render()
            .unwrap();
        let session = analyze_session(
            &rec.imu.accel,
            &rec.imu.gyro,
            rec.imu.sample_rate,
            &SessionConfig::default(),
        )
        .unwrap();
        assert_eq!(session.slides.len(), 2, "slides: {:?}", session.slides);
        for (est, truth) in session.slides.iter().zip(&rec.truth.motion.slides) {
            let err = (est.distance - truth.distance).abs();
            assert!(
                err < 0.02,
                "estimated {} true {} (err {err})",
                est.distance,
                truth.distance
            );
        }
    }

    #[test]
    fn simulated_two_stature_protocol() {
        use hyperear_sim::phone::PhoneModel;
        use hyperear_sim::scenario::ScenarioBuilder;
        let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
            .environment(hyperear_sim::environment::Environment::anechoic())
            .speaker_range(3.0)
            .speaker_stature(0.5)
            .slides(2)
            .slides_low(2)
            .stature_drop(0.4)
            .seed(6)
            .render()
            .unwrap();
        let session = analyze_session(
            &rec.imu.accel,
            &rec.imu.gyro,
            rec.imu.sample_rate,
            &SessionConfig::default(),
        )
        .unwrap();
        assert_eq!(session.slides.len(), 4);
        assert_eq!(session.stature_changes.len(), 1);
        let h = session.stature_changes[0].height_change;
        assert!((h + 0.4).abs() < 0.03, "stature change {h}");
    }
}
