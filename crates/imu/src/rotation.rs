//! Gyroscope integration for the z-rotation quality gate.
//!
//! "Slides with an estimated distance over 50cm and z-axis rotation angle
//! less than 20° are automatically selected for use" (Section VII-B). The
//! rotation angle over a slide window comes from integrating the
//! gyroscope's z-axis.

use crate::ImuError;

/// Integrates an angular-rate trace (rad/s) into an angle trace (rad),
/// starting from zero, trapezoidal rule.
///
/// # Errors
///
/// Returns [`ImuError::TraceTooShort`] for fewer than 2 samples and
/// [`ImuError::InvalidParameter`] for a non-positive sample rate.
pub fn integrate_rate(rate: &[f64], sample_rate: f64) -> Result<Vec<f64>, ImuError> {
    let mut angle = Vec::new();
    integrate_rate_into(rate, sample_rate, &mut angle)?;
    Ok(angle)
}

/// Allocation-free form of [`integrate_rate`] writing into a caller-owned
/// buffer that is cleared and reused.
///
/// # Errors
///
/// Same conditions as [`integrate_rate`].
pub fn integrate_rate_into(
    rate: &[f64],
    sample_rate: f64,
    out: &mut Vec<f64>,
) -> Result<(), ImuError> {
    if rate.len() < 2 {
        return Err(ImuError::TraceTooShort {
            have: rate.len(),
            need: 2,
        });
    }
    if sample_rate <= 0.0 {
        return Err(ImuError::invalid("sample_rate", "must be positive"));
    }
    let dt = 1.0 / sample_rate;
    out.clear();
    out.reserve(rate.len());
    out.push(0.0);
    for i in 1..rate.len() {
        let prev = out[i - 1];
        out.push(prev + 0.5 * (rate[i - 1] + rate[i]) * dt);
    }
    Ok(())
}

/// Integrates the gyroscope z-axis into a session yaw trace with the
/// constant gyro bias removed by least-squares detrending of the
/// integrated angle.
///
/// This is the "Rotation Estimation" component of the paper's
/// architecture (Fig. 5): the yaw at each beacon time feeds the
/// rotation-corrected augmented TDoA. The sensitivity there is brutal —
/// a residual bias of `b` rad/s leaks `D·b·Δt` metres of false distance
/// difference into Mic2's augmented TDoA, with a *constant sign in time*
/// that alternates against back-and-forth slides. LS-detrending the
/// integrated angle estimates the bias far more robustly than averaging
/// any rate window: zero-mean hand wobble contributes only
/// `O(amplitude/(ω·T²))` to the fitted slope.
///
/// Assumption: the user's net orientation is unchanged over the session
/// (they keep facing the speaker), so any sustained rotation trend *is*
/// drift. A deliberate net turn would be absorbed into the bias.
///
/// # Errors
///
/// Returns [`ImuError::TraceTooShort`] for fewer than 2 samples and
/// [`ImuError::InvalidParameter`] for a non-positive sample rate.
pub fn yaw_trace(gyro_z: &[f64], sample_rate: f64) -> Result<Vec<f64>, ImuError> {
    let mut out = Vec::new();
    yaw_trace_into(gyro_z, sample_rate, &mut out)?;
    Ok(out)
}

/// Allocation-free form of [`yaw_trace`]: the angle is integrated into
/// the caller-owned buffer and detrended in place.
///
/// # Errors
///
/// Same conditions as [`yaw_trace`].
pub fn yaw_trace_into(
    gyro_z: &[f64],
    sample_rate: f64,
    out: &mut Vec<f64>,
) -> Result<(), ImuError> {
    integrate_rate_into(gyro_z, sample_rate, out)?;
    let n = out.len() as f64;
    let t_mean = (n - 1.0) / 2.0;
    let a_mean = out.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (i, &a) in out.iter().enumerate() {
        let dt = i as f64 - t_mean;
        sxx += dt * dt;
        sxy += dt * (a - a_mean);
    }
    let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
    for (i, a) in out.iter_mut().enumerate() {
        *a = *a - a_mean - slope * (i as f64 - t_mean);
    }
    Ok(())
}

/// The maximum absolute rotation (degrees) accumulated over a window of
/// gyroscope z-axis samples — the quantity the 20° gate inspects.
///
/// A constant-rate (bias-like) component is removed first using the same
/// zero-rotation endpoint reasoning as the velocity drift correction: the
/// hand returns to its orientation by the end of a slide, so a net linear
/// trend in the integrated angle is treated as bias.
///
/// # Errors
///
/// Same conditions as [`integrate_rate`].
pub fn max_rotation_deg(gyro_z: &[f64], sample_rate: f64) -> Result<f64, ImuError> {
    let mut angle = Vec::new();
    max_rotation_deg_with(gyro_z, sample_rate, &mut angle)
}

/// Allocation-free form of [`max_rotation_deg`]: the intermediate angle
/// trace lives in a caller-owned buffer that is cleared and reused.
///
/// # Errors
///
/// Same conditions as [`max_rotation_deg`].
pub fn max_rotation_deg_with(
    gyro_z: &[f64],
    sample_rate: f64,
    angle: &mut Vec<f64>,
) -> Result<f64, ImuError> {
    integrate_rate_into(gyro_z, sample_rate, angle)?;
    let n = angle.len();
    let end = angle[n - 1];
    let max = angle
        .iter()
        .enumerate()
        .map(|(i, &a)| (a - end * i as f64 / (n - 1) as f64).abs())
        .fold(0.0f64, f64::max);
    Ok(max.to_degrees())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_integrates_linearly() {
        let rate = vec![0.1; 101];
        let angle = integrate_rate(&rate, 100.0).unwrap();
        assert!((angle[100] - 0.1).abs() < 1e-12);
        assert_eq!(angle[0], 0.0);
    }

    #[test]
    fn still_gyro_reports_no_rotation() {
        let deg = max_rotation_deg(&[0.0; 100], 100.0).unwrap();
        assert_eq!(deg, 0.0);
    }

    #[test]
    fn sinusoidal_wobble_is_measured() {
        // Yaw wobble of ±10°: rate = d/dt(A·sin(ωt)).
        let fs = 100.0;
        let amp = 10f64.to_radians();
        let freq = 0.5;
        let w = std::f64::consts::TAU * freq;
        let rate: Vec<f64> = (0..200)
            .map(|i| amp * w * (w * i as f64 / fs).cos())
            .collect();
        let deg = max_rotation_deg(&rate, fs).unwrap();
        assert!((deg - 10.0).abs() < 1.0, "measured {deg}");
    }

    #[test]
    fn gyro_bias_is_discounted() {
        // Pure bias looks like a steady rotation the hand did not make;
        // the endpoint detrending removes it.
        let rate = vec![0.05; 100];
        let deg = max_rotation_deg(&rate, 100.0).unwrap();
        assert!(deg < 0.01, "bias leaked {deg}°");
    }

    #[test]
    fn wobble_plus_bias_measures_wobble() {
        // One full wobble period so the hand truly returns to its
        // starting orientation (the assumption the detrending makes).
        let fs = 100.0;
        let amp = 15f64.to_radians();
        let w = std::f64::consts::TAU * 0.5;
        let rate: Vec<f64> = (0..=200)
            .map(|i| amp * w * (w * i as f64 / fs).cos() + 0.02)
            .collect();
        let deg = max_rotation_deg(&rate, fs).unwrap();
        assert!((deg - 15.0).abs() < 2.0, "measured {deg}");
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(integrate_rate(&[], 100.0).is_err());
        assert!(integrate_rate(&[0.1], 100.0).is_err());
        assert!(integrate_rate(&[0.1, 0.2], 0.0).is_err());
        assert!(max_rotation_deg(&[0.1], 100.0).is_err());
        assert!(yaw_trace(&[0.1], 100.0).is_err());
        assert!(yaw_trace(&[0.1, 0.2], 0.0).is_err());
    }

    #[test]
    fn into_variants_match_allocating_forms() {
        let fs = 100.0;
        let w = std::f64::consts::TAU * 0.5;
        let gyro: Vec<f64> = (0..300)
            .map(|i| 0.02 + 0.1 * w * (w * i as f64 / fs).cos())
            .collect();
        let angle_ref = integrate_rate(&gyro, fs).unwrap();
        let yaw_ref = yaw_trace(&gyro, fs).unwrap();
        let deg_ref = max_rotation_deg(&gyro, fs).unwrap();
        let mut buf = vec![9.0; 7]; // stale contents
        for _ in 0..2 {
            integrate_rate_into(&gyro, fs, &mut buf).unwrap();
            assert_eq!(buf, angle_ref);
            yaw_trace_into(&gyro, fs, &mut buf).unwrap();
            assert_eq!(buf, yaw_ref);
            assert_eq!(max_rotation_deg_with(&gyro, fs, &mut buf).unwrap(), deg_ref);
        }
        assert!(integrate_rate_into(&[0.1], fs, &mut buf).is_err());
        assert!(yaw_trace_into(&[0.1], fs, &mut buf).is_err());
        assert!(max_rotation_deg_with(&[0.1], fs, &mut buf).is_err());
    }

    #[test]
    fn yaw_trace_removes_constant_bias() {
        // A pure 0.02 rad/s bias with no real rotation must detrend to a
        // flat yaw trace.
        let yaw = yaw_trace(&[0.02; 400], 100.0).unwrap();
        for &y in &yaw {
            assert!(y.abs() < 1e-9, "residual yaw {y}");
        }
    }

    #[test]
    fn yaw_trace_differences_are_bias_free() {
        // The pipeline consumes yaw *differences* between nearby times;
        // a bias plus wobble must leave those differences accurate.
        let fs = 100.0;
        let amp = 0.08;
        let w = std::f64::consts::TAU * 0.4;
        let gyro: Vec<f64> = (0..1800)
            .map(|i| 0.01 + amp * w * (w * i as f64 / fs).cos())
            .collect();
        let yaw = yaw_trace(&gyro, fs).unwrap();
        for (i, j) in [(100usize, 260usize), (600, 760), (1200, 1360)] {
            let est = yaw[j] - yaw[i];
            let truth = amp * ((w * j as f64 / fs).sin() - (w * i as f64 / fs).sin());
            assert!((est - truth).abs() < 0.005, "({i},{j}): {est} vs {truth}");
        }
    }

    #[test]
    fn yaw_trace_preserves_wobble_shape() {
        // Integer number of wobble periods: the detrended trace should
        // match the true wobble up to a constant offset.
        let fs = 100.0;
        let amp = 0.1;
        let w = std::f64::consts::TAU * 0.5;
        // Session-length trace (10 wobble periods): the LS slope error
        // decays as 1/T², so shape fidelity needs a realistic duration.
        let gyro: Vec<f64> = (0..2000)
            .map(|i| amp * w * (w * i as f64 / fs).cos())
            .collect();
        let yaw = yaw_trace(&gyro, fs).unwrap();
        let offset = yaw[0] - 0.0; // truth starts at sin(0) = 0
        for i in (0..2000).step_by(100) {
            let truth = amp * (w * i as f64 / fs).sin();
            // The detrend's residual is a slow, small warp; what the
            // pipeline consumes (short-span differences) is tested
            // separately with a tighter bound.
            assert!(
                (yaw[i] - offset - truth).abs() < 0.02,
                "at {i}: {} vs {truth}",
                yaw[i] - offset
            );
        }
    }
}
