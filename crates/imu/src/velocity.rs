//! Sliding-velocity estimation with linear drift correction
//! (paper Section V-B, Eq. 4, Fig. 9).
//!
//! Integrating noisy acceleration drifts; the paper observes (citing its
//! SenSpeed work) that "the accumulative error of integral is
//! approximately a linear function of time", and that "the true velocity
//! at both ends of a slide is zero". So: integrate, read the end-point
//! velocity error `v(t2)`, fit the line `err_a·(t − t1)` with
//! `err_a = v(t2)/(t2 − t1)`, and subtract it.

use crate::ImuError;

/// A velocity trace over one movement segment.
#[derive(Debug, Clone, PartialEq)]
pub struct VelocityEstimate {
    /// Raw integral velocity (drifts).
    pub raw: Vec<f64>,
    /// Drift-corrected velocity (zero at both ends by construction).
    pub corrected: Vec<f64>,
    /// The fitted drift slope `err_a`, m/s² — diagnostic for how bad the
    /// accelerometer error was over this slide.
    pub drift_slope: f64,
    /// Sampling rate, hertz.
    pub sample_rate: f64,
}

/// Integrates acceleration over a segment (trapezoidal rule) into raw
/// velocity, assuming zero initial velocity.
///
/// # Errors
///
/// Returns [`ImuError::TraceTooShort`] for fewer than 2 samples and
/// [`ImuError::InvalidParameter`] for a non-positive sample rate.
pub fn integrate_acceleration(accel: &[f64], sample_rate: f64) -> Result<Vec<f64>, ImuError> {
    let mut v = Vec::new();
    integrate_acceleration_into(accel, sample_rate, &mut v)?;
    Ok(v)
}

/// Allocation-free form of [`integrate_acceleration`] writing into a
/// caller-owned buffer that is cleared and reused.
///
/// # Errors
///
/// Same conditions as [`integrate_acceleration`].
pub fn integrate_acceleration_into(
    accel: &[f64],
    sample_rate: f64,
    out: &mut Vec<f64>,
) -> Result<(), ImuError> {
    if accel.len() < 2 {
        return Err(ImuError::TraceTooShort {
            have: accel.len(),
            need: 2,
        });
    }
    if sample_rate <= 0.0 {
        return Err(ImuError::invalid("sample_rate", "must be positive"));
    }
    let dt = 1.0 / sample_rate;
    out.clear();
    out.reserve(accel.len());
    out.push(0.0);
    for i in 1..accel.len() {
        let dv = 0.5 * (accel[i - 1] + accel[i]) * dt;
        let prev = out[i - 1];
        out.push(prev + dv);
    }
    Ok(())
}

/// Applies the Eq. 4 linear drift correction to a raw velocity trace:
/// `v*(t) = v(t) − err_a·(t − t1)` with `err_a = v(t2)/(t2 − t1)`.
///
/// # Errors
///
/// Returns [`ImuError::TraceTooShort`] for fewer than 2 samples.
pub fn correct_linear_drift(raw: &[f64], sample_rate: f64) -> Result<(Vec<f64>, f64), ImuError> {
    let mut corrected = Vec::new();
    let err_a = correct_linear_drift_into(raw, sample_rate, &mut corrected)?;
    Ok((corrected, err_a))
}

/// Allocation-free form of [`correct_linear_drift`] writing into a
/// caller-owned buffer; returns the fitted drift slope `err_a`.
///
/// # Errors
///
/// Same conditions as [`correct_linear_drift`].
pub fn correct_linear_drift_into(
    raw: &[f64],
    sample_rate: f64,
    out: &mut Vec<f64>,
) -> Result<f64, ImuError> {
    if raw.len() < 2 {
        return Err(ImuError::TraceTooShort {
            have: raw.len(),
            need: 2,
        });
    }
    if sample_rate <= 0.0 {
        return Err(ImuError::invalid("sample_rate", "must be positive"));
    }
    let duration = (raw.len() - 1) as f64 / sample_rate;
    let err_a = raw[raw.len() - 1] / duration;
    let dt = 1.0 / sample_rate;
    out.clear();
    out.extend(
        raw.iter()
            .enumerate()
            .map(|(i, &v)| v - err_a * (i as f64 * dt)),
    );
    Ok(err_a)
}

/// Full per-slide velocity estimation: integrate then drift-correct.
///
/// # Errors
///
/// Combines the conditions of [`integrate_acceleration`] and
/// [`correct_linear_drift`].
pub fn estimate_velocity(accel: &[f64], sample_rate: f64) -> Result<VelocityEstimate, ImuError> {
    let raw = integrate_acceleration(accel, sample_rate)?;
    let (corrected, drift_slope) = correct_linear_drift(&raw, sample_rate)?;
    Ok(VelocityEstimate {
        raw,
        corrected,
        drift_slope,
        sample_rate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A clean min-jerk acceleration profile: distance d over n samples.
    fn min_jerk_accel(d: f64, n: usize, fs: f64) -> Vec<f64> {
        let duration = (n - 1) as f64 / fs;
        (0..n)
            .map(|i| {
                let tau = i as f64 / (n - 1) as f64;
                let a = 60.0 * tau - 180.0 * tau * tau + 120.0 * tau * tau * tau;
                a * d / (duration * duration)
            })
            .collect()
    }

    #[test]
    fn clean_integration_ends_near_zero() {
        let accel = min_jerk_accel(0.5, 81, 100.0);
        let v = integrate_acceleration(&accel, 100.0).unwrap();
        assert_eq!(v[0], 0.0);
        assert!(v[80].abs() < 1e-3, "end velocity {}", v[80]);
        // Peak velocity = 1.875·d/T at mid.
        let peak = v.iter().cloned().fold(f64::MIN, f64::max);
        assert!((peak - 1.875 * 0.5 / 0.8).abs() < 0.01, "peak {peak}");
    }

    #[test]
    fn constant_bias_is_fully_removed() {
        // A constant accelerometer bias integrates to an exactly linear
        // velocity error — the case Eq. 4 removes perfectly.
        let mut accel = min_jerk_accel(0.5, 81, 100.0);
        for a in &mut accel {
            *a += 0.2; // large bias
        }
        let est = estimate_velocity(&accel, 100.0).unwrap();
        assert!(est.raw[80].abs() > 0.1, "raw drift should be visible");
        assert!(est.corrected[80].abs() < 1e-12, "corrected end not zero");
        assert!(
            (est.drift_slope - 0.2).abs() < 1e-9,
            "slope {}",
            est.drift_slope
        );
        // The corrected curve matches the clean integral everywhere.
        let clean = integrate_acceleration(&min_jerk_accel(0.5, 81, 100.0), 100.0).unwrap();
        for (c, t) in est.corrected.iter().zip(&clean) {
            assert!((c - t).abs() < 1e-9);
        }
    }

    #[test]
    fn corrected_velocity_zero_at_both_ends() {
        let mut accel = min_jerk_accel(0.4, 101, 100.0);
        // Arbitrary slow error ramp.
        for (i, a) in accel.iter_mut().enumerate() {
            *a += 0.05 + 0.001 * i as f64;
        }
        let est = estimate_velocity(&accel, 100.0).unwrap();
        assert_eq!(est.corrected[0], 0.0);
        assert!(est.corrected.last().unwrap().abs() < 1e-12);
    }

    #[test]
    fn fig9_shape_drift_grows_with_time() {
        // Reproduces the Fig. 9 observation: raw integral departs from
        // the corrected curve, increasingly with time.
        let mut accel = min_jerk_accel(0.5, 101, 100.0);
        for a in &mut accel {
            *a += 0.1;
        }
        let est = estimate_velocity(&accel, 100.0).unwrap();
        let gap_early = (est.raw[10] - est.corrected[10]).abs();
        let gap_late = (est.raw[90] - est.corrected[90]).abs();
        assert!(gap_late > 5.0 * gap_early);
    }

    #[test]
    fn trapezoid_matches_analytic_for_linear_accel() {
        // a(t) = t  ⇒  v(t) = t²/2 exactly under trapezoidal integration.
        let fs = 100.0;
        let accel: Vec<f64> = (0..101).map(|i| i as f64 / fs).collect();
        let v = integrate_acceleration(&accel, fs).unwrap();
        for (i, &vi) in v.iter().enumerate() {
            let t = i as f64 / fs;
            assert!((vi - t * t / 2.0).abs() < 1e-9, "at {i}");
        }
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(integrate_acceleration(&[], 100.0).is_err());
        assert!(integrate_acceleration(&[1.0], 100.0).is_err());
        assert!(integrate_acceleration(&[1.0, 2.0], 0.0).is_err());
        assert!(correct_linear_drift(&[1.0], 100.0).is_err());
        assert!(correct_linear_drift(&[1.0, 2.0], 0.0).is_err());
        let mut buf = Vec::new();
        assert!(integrate_acceleration_into(&[1.0], 100.0, &mut buf).is_err());
        assert!(correct_linear_drift_into(&[1.0], 100.0, &mut buf).is_err());
    }

    #[test]
    fn into_variants_match_allocating_forms() {
        let mut accel = min_jerk_accel(0.5, 81, 100.0);
        for (i, a) in accel.iter_mut().enumerate() {
            *a += 0.07 + 0.002 * i as f64;
        }
        let raw_ref = integrate_acceleration(&accel, 100.0).unwrap();
        let (corr_ref, slope_ref) = correct_linear_drift(&raw_ref, 100.0).unwrap();
        let (mut raw, mut corr) = (vec![9.0; 5], vec![9.0; 5]); // stale contents
        for _ in 0..2 {
            integrate_acceleration_into(&accel, 100.0, &mut raw).unwrap();
            let slope = correct_linear_drift_into(&raw, 100.0, &mut corr).unwrap();
            assert_eq!(raw, raw_ref);
            assert_eq!(corr, corr_ref);
            assert_eq!(slope, slope_ref);
        }
    }
}
