use hyperear_dsp::DspError;
use std::fmt;

/// Errors produced by the inertial-processing chain.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ImuError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint that was violated.
        reason: String,
    },
    /// The trace is too short for the requested operation.
    TraceTooShort {
        /// Samples available.
        have: usize,
        /// Samples required.
        need: usize,
    },
    /// A DSP primitive failed.
    Dsp(DspError),
}

impl fmt::Display for ImuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImuError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            ImuError::TraceTooShort { have, need } => {
                write!(
                    f,
                    "inertial trace too short: have {have} samples, need {need}"
                )
            }
            ImuError::Dsp(e) => write!(f, "dsp error in inertial chain: {e}"),
        }
    }
}

impl std::error::Error for ImuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImuError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DspError> for ImuError {
    fn from(e: DspError) -> Self {
        ImuError::Dsp(e)
    }
}

impl ImuError {
    /// Convenience constructor for [`ImuError::InvalidParameter`].
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        ImuError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_contextual() {
        assert!(ImuError::invalid("fs", "must be positive")
            .to_string()
            .contains("fs"));
        assert!(ImuError::TraceTooShort { have: 3, need: 10 }
            .to_string()
            .contains("3"));
        let e = ImuError::from(DspError::EmptyInput { what: "sma" });
        assert!(e.to_string().contains("dsp error"));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ImuError>();
    }
}
