//! # hyperear-imu
//!
//! Phone Displacement Estimation (paper Section V): the signal chain that
//! turns raw, error-prone 100 Hz inertial readings into slide distances
//! accurate enough to serve as the synthetic TDoA baseline `D′`.
//!
//! The chain, exactly as the paper orders it:
//!
//! 1. [`preprocess`] — gravity cancellation, then SMA low-pass smoothing
//!    (n = 4 at 100 Hz ⇒ ≈15 Hz cut-off).
//! 2. [`segment`] — power-based movement segmentation (Eq. 3, threshold
//!    0.2, hangover m = 8).
//! 3. [`velocity`] — acceleration integration with the linear
//!    accumulated-error correction of Eq. 4, anchored on the
//!    zero-velocity endpoints of each slide.
//! 4. [`displacement`] — integration of the corrected velocity into a
//!    signed slide distance (and stature changes on the z-axis).
//! 5. [`rotation`] — gyroscope integration for the z-rotation quality
//!    gate ("slides with ... z-axis rotation angle less than 20° are
//!    automatically selected").
//! 6. [`quality`] — the slide-acceptance gate itself.
//!
//! The top-level entry point is [`analyze::analyze_session`], which
//! produces per-slide estimates from raw accelerometer/gyroscope traces.
//!
//! # Example
//!
//! ```
//! use hyperear_geom::Vec3;
//! use hyperear_imu::analyze::{analyze_session, SessionConfig};
//!
//! # fn main() -> Result<(), hyperear_imu::ImuError> {
//! // A toy trace: stationary, then a crude 1-second push-pull on y.
//! let fs = 100.0;
//! let mut accel = vec![Vec3::new(0.0, 0.0, -9.81); 600];
//! for i in 0..50 {
//!     accel[200 + i].y += 2.0; // accelerate
//!     accel[250 + i].y -= 2.0; // decelerate
//! }
//! let gyro = vec![Vec3::ZERO; 600];
//! let session = analyze_session(&accel, &gyro, fs, &SessionConfig::default())?;
//! assert_eq!(session.slides.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod displacement;
mod error;
pub mod preprocess;
pub mod quality;
pub mod rotation;
pub mod segment;
pub mod velocity;

pub use error::ImuError;
