//! Motion Signal Preprocessing (paper Section V-A-1).
//!
//! "We first use gravimeter to cancel the gravity to get linear
//! acceleration data. ... We remove such high frequency noise by passing
//! each signal through a low pass filter ... a moving average (SMA)
//! filter ... n ... 4 to achieve -3dB cut-off frequency at 15Hz with the
//! sampling rate ... 100Hz."

use crate::ImuError;
use hyperear_dsp::filter::MovingAverage;
use hyperear_geom::Vec3;

/// Estimates the gravity vector from an initial stationary window of raw
/// accelerometer samples (the "gravimeter" of the paper: on Android this
/// is `TYPE_GRAVITY`, a long-horizon low-pass of the accelerometer).
///
/// # Errors
///
/// Returns [`ImuError::TraceTooShort`] if fewer than `window` samples are
/// available, [`ImuError::InvalidParameter`] for a zero window, and an
/// error if the estimated vector is implausibly far from 9.8 m/s²
/// (the window was not actually stationary).
pub fn estimate_gravity(accel: &[Vec3], window: usize) -> Result<Vec3, ImuError> {
    if window == 0 {
        return Err(ImuError::invalid("window", "must be positive"));
    }
    if accel.len() < window {
        return Err(ImuError::TraceTooShort {
            have: accel.len(),
            need: window,
        });
    }
    let mut sum = Vec3::ZERO;
    for a in &accel[..window] {
        sum += *a;
    }
    let g = sum / window as f64;
    let mag = g.norm();
    if !(8.0..=11.5).contains(&mag) {
        return Err(ImuError::invalid(
            "accel",
            format!(
                "gravity estimate has magnitude {mag:.2} m/s²; the calibration window does not look stationary"
            ),
        ));
    }
    Ok(g)
}

/// Subtracts a constant gravity estimate from every sample, yielding
/// linear acceleration.
#[must_use]
pub fn remove_gravity(accel: &[Vec3], gravity: Vec3) -> Vec<Vec3> {
    accel.iter().map(|a| *a - gravity).collect()
}

/// Applies the paper's SMA low-pass to each axis of a 3-axis trace.
///
/// # Errors
///
/// Returns [`ImuError::InvalidParameter`] for a zero window and
/// propagates DSP errors for an empty trace.
pub fn smooth(trace: &[Vec3], window: usize) -> Result<Vec<Vec3>, ImuError> {
    let sma = MovingAverage::new(window).map_err(ImuError::from)?;
    let x: Vec<f64> = trace.iter().map(|v| v.x).collect();
    let y: Vec<f64> = trace.iter().map(|v| v.y).collect();
    let z: Vec<f64> = trace.iter().map(|v| v.z).collect();
    let (sx, sy, sz) = (sma.filter(&x)?, sma.filter(&y)?, sma.filter(&z)?);
    Ok(sx
        .into_iter()
        .zip(sy)
        .zip(sz)
        .map(|((a, b), c)| Vec3::new(a, b, c))
        .collect())
}

/// Convenience: gravity estimation, removal, and smoothing in one call.
///
/// Returns `(linear_acceleration, gravity_estimate)`.
///
/// # Errors
///
/// Combines the error conditions of [`estimate_gravity`] and [`smooth`].
pub fn preprocess(
    accel: &[Vec3],
    gravity_window: usize,
    sma_window: usize,
) -> Result<(Vec<Vec3>, Vec3), ImuError> {
    let mut out = Vec::new();
    let gravity = preprocess_into(accel, gravity_window, sma_window, &mut out)?;
    Ok((out, gravity))
}

/// Allocation-free form of [`preprocess`]: gravity removal and SMA
/// smoothing are fused into one pass over a caller-owned output buffer.
///
/// The fused loop runs the same per-axis accumulator arithmetic as
/// [`smooth`] over the same gravity-subtracted samples, in the same
/// order, so the output is bit-identical to [`preprocess`].
///
/// Returns the gravity estimate; the smoothed linear acceleration is
/// written to `out`.
///
/// # Errors
///
/// Combines the error conditions of [`estimate_gravity`] and [`smooth`].
pub fn preprocess_into(
    accel: &[Vec3],
    gravity_window: usize,
    sma_window: usize,
    out: &mut Vec<Vec3>,
) -> Result<Vec3, ImuError> {
    let gravity = estimate_gravity(accel, gravity_window)?;
    let sma = MovingAverage::new(sma_window).map_err(ImuError::from)?;
    let n = sma.window();
    out.clear();
    out.reserve(accel.len());
    let (mut ax, mut ay, mut az) = (0.0_f64, 0.0_f64, 0.0_f64);
    for i in 0..accel.len() {
        let lin = accel[i] - gravity;
        ax += lin.x;
        ay += lin.y;
        az += lin.z;
        if i >= n {
            let old = accel[i - n] - gravity;
            ax -= old.x;
            ay -= old.y;
            az -= old.z;
        }
        let count = (i + 1).min(n) as f64;
        out.push(Vec3::new(ax / count, ay / count, az / count));
    }
    Ok(gravity)
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: f64 = 9.806_65;

    fn stationary(n: usize) -> Vec<Vec3> {
        vec![Vec3::new(0.0, 0.0, -G); n]
    }

    #[test]
    fn gravity_estimate_from_clean_stationary() {
        let g = estimate_gravity(&stationary(100), 50).unwrap();
        assert!((g - Vec3::new(0.0, 0.0, -G)).norm() < 1e-12);
    }

    #[test]
    fn gravity_estimate_averages_noise() {
        let mut accel = stationary(200);
        for (i, a) in accel.iter_mut().enumerate() {
            let e = if i % 2 == 0 { 0.1 } else { -0.1 };
            a.x += e;
            a.y -= e;
        }
        let g = estimate_gravity(&accel, 200).unwrap();
        assert!(g.x.abs() < 1e-9);
        assert!(g.y.abs() < 1e-9);
    }

    #[test]
    fn moving_window_is_rejected() {
        // A window full of large motion does not look like gravity.
        let accel = vec![Vec3::new(5.0, 5.0, -15.0); 100];
        assert!(estimate_gravity(&accel, 100).is_err());
        let accel = vec![Vec3::new(0.0, 0.0, -3.0); 100];
        assert!(estimate_gravity(&accel, 100).is_err());
    }

    #[test]
    fn short_or_empty_traces_are_errors() {
        assert!(estimate_gravity(&stationary(10), 50).is_err());
        assert!(estimate_gravity(&stationary(10), 0).is_err());
        assert!(smooth(&[], 4).is_err());
        assert!(smooth(&stationary(10), 0).is_err());
    }

    #[test]
    fn remove_gravity_zeroes_stationary_trace() {
        let accel = stationary(50);
        let g = estimate_gravity(&accel, 50).unwrap();
        let linear = remove_gravity(&accel, g);
        assert!(linear.iter().all(|v| v.norm() < 1e-12));
    }

    #[test]
    fn smoothing_averages_alternating_noise() {
        let trace: Vec<Vec3> = (0..100)
            .map(|i| {
                let e = if i % 2 == 0 { 0.5 } else { -0.5 };
                Vec3::new(1.0 + e, 2.0 - e, e)
            })
            .collect();
        let out = smooth(&trace, 4).unwrap();
        for v in &out[4..] {
            assert!((v.x - 1.0).abs() < 1e-9);
            assert!((v.y - 2.0).abs() < 1e-9);
            assert!(v.z.abs() < 1e-9);
        }
    }

    #[test]
    fn preprocess_pipeline_end_to_end() {
        let mut accel = stationary(300);
        // A motion burst after the calibration window.
        for a in accel.iter_mut().skip(150).take(20) {
            a.y += 3.0;
        }
        let (linear, gravity) = preprocess(&accel, 100, 4).unwrap();
        assert!((gravity.z + G).abs() < 1e-9);
        // Stationary part is near zero, burst part is visible.
        assert!(linear[50].norm() < 1e-9);
        let burst_peak = linear[150..175].iter().map(|v| v.y).fold(0.0, f64::max);
        assert!(burst_peak > 2.0);
    }

    #[test]
    fn preprocess_into_matches_staged_pipeline() {
        let mut accel = stationary(260);
        for (i, a) in accel.iter_mut().enumerate().skip(120).take(60) {
            a.y += 1.5 + 0.03 * (i % 7) as f64;
            a.z -= 0.4;
        }
        let (reference, g_ref) = preprocess(&accel, 100, 4).unwrap();
        let mut out = vec![Vec3::new(9.0, 9.0, 9.0); 3]; // stale contents
        for _ in 0..2 {
            let g = preprocess_into(&accel, 100, 4, &mut out).unwrap();
            assert_eq!(g, g_ref);
            assert_eq!(out, reference); // bit-identical, not just close
        }
    }

    #[test]
    fn preprocess_preserves_length() {
        let accel = stationary(120);
        let (linear, _) = preprocess(&accel, 60, 4).unwrap();
        assert_eq!(linear.len(), 120);
    }
}
