//! Displacement derivation (paper Section V-B, final step).
//!
//! "Given the corrected sliding velocity v*(t), the displacement between
//! any two time instants during a slide can be derived by taking the
//! integral of v*(t) over time."

use crate::velocity::{correct_linear_drift_into, integrate_acceleration_into};
use crate::ImuError;

/// Integrates a velocity trace (trapezoidal) into a displacement trace.
///
/// # Errors
///
/// Returns [`ImuError::TraceTooShort`] for fewer than 2 samples and
/// [`ImuError::InvalidParameter`] for a non-positive sample rate.
pub fn integrate_velocity(velocity: &[f64], sample_rate: f64) -> Result<Vec<f64>, ImuError> {
    let mut d = Vec::new();
    integrate_velocity_into(velocity, sample_rate, &mut d)?;
    Ok(d)
}

/// Allocation-free form of [`integrate_velocity`] writing into a
/// caller-owned buffer that is cleared and reused.
///
/// # Errors
///
/// Same conditions as [`integrate_velocity`].
pub fn integrate_velocity_into(
    velocity: &[f64],
    sample_rate: f64,
    out: &mut Vec<f64>,
) -> Result<(), ImuError> {
    if velocity.len() < 2 {
        return Err(ImuError::TraceTooShort {
            have: velocity.len(),
            need: 2,
        });
    }
    if sample_rate <= 0.0 {
        return Err(ImuError::invalid("sample_rate", "must be positive"));
    }
    let dt = 1.0 / sample_rate;
    out.clear();
    out.reserve(velocity.len());
    out.push(0.0);
    for i in 1..velocity.len() {
        let prev = out[i - 1];
        out.push(prev + 0.5 * (velocity[i - 1] + velocity[i]) * dt);
    }
    Ok(())
}

/// Reusable work buffers for [`segment_kinematics`]: one velocity chain
/// (raw, drift-corrected, displacement) that a session engine can carry
/// across slides without reallocating.
#[derive(Debug, Clone, Default)]
pub struct DisplacementScratch {
    velocity: Vec<f64>,
    corrected: Vec<f64>,
    displacement: Vec<f64>,
}

impl DisplacementScratch {
    /// Creates empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-segment kinematic summary produced by [`segment_kinematics`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentKinematics {
    /// Signed net displacement, metres (end minus start).
    pub distance: f64,
    /// Raw integrated velocity at the segment end, m/s — the zero-velocity
    /// residual the Eq. 4 correction removes. Near zero for a clean slide;
    /// large values mean the accelerometer drifted badly and the distance
    /// estimate is suspect.
    pub end_velocity_residual: f64,
    /// The fitted Eq. 4 drift slope `err_a`, m/s².
    pub drift_slope: f64,
}

/// Allocation-free per-segment kinematics: acceleration → drift-corrected
/// velocity → displacement, plus the zero-velocity residual diagnostics
/// used for per-slide confidence scoring. Numerically identical to
/// [`segment_displacement_with`] for the `distance` field.
///
/// # Errors
///
/// Same conditions as [`segment_displacement_with`].
pub fn segment_kinematics(
    accel: &[f64],
    sample_rate: f64,
    drift_correction: bool,
    scratch: &mut DisplacementScratch,
) -> Result<SegmentKinematics, ImuError> {
    integrate_acceleration_into(accel, sample_rate, &mut scratch.velocity)?;
    let end_velocity_residual = scratch.velocity[scratch.velocity.len() - 1];
    let drift_slope =
        correct_linear_drift_into(&scratch.velocity, sample_rate, &mut scratch.corrected)?;
    let trace = if drift_correction {
        &scratch.corrected
    } else {
        &scratch.velocity
    };
    integrate_velocity_into(trace, sample_rate, &mut scratch.displacement)?;
    let distance = scratch.displacement[scratch.displacement.len() - 1];
    Ok(SegmentKinematics {
        distance,
        end_velocity_residual,
        drift_slope,
    })
}

/// The signed net displacement of one movement segment: acceleration →
/// drift-corrected velocity → displacement, end minus start.
///
/// This is the `D′` (for horizontal slides) or `H` contribution (for
/// stature changes) of the paper's geometry.
///
/// # Errors
///
/// Combines the conditions of [`estimate_velocity`] and
/// [`integrate_velocity`].
pub fn segment_displacement(accel: &[f64], sample_rate: f64) -> Result<f64, ImuError> {
    segment_displacement_with(accel, sample_rate, true)
}

/// Like [`segment_displacement`] but with the Eq. 4 drift correction
/// switchable — the ablation the paper's Fig. 9 motivates.
///
/// # Errors
///
/// Same conditions as [`segment_displacement`].
pub fn segment_displacement_with(
    accel: &[f64],
    sample_rate: f64,
    drift_correction: bool,
) -> Result<f64, ImuError> {
    let mut scratch = DisplacementScratch::new();
    Ok(segment_kinematics(accel, sample_rate, drift_correction, &mut scratch)?.distance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::velocity::estimate_velocity;

    fn min_jerk_accel(dist: f64, n: usize, fs: f64) -> Vec<f64> {
        let duration = (n - 1) as f64 / fs;
        (0..n)
            .map(|i| {
                let tau = i as f64 / (n - 1) as f64;
                let a = 60.0 * tau - 180.0 * tau * tau + 120.0 * tau * tau * tau;
                a * dist / (duration * duration)
            })
            .collect()
    }

    #[test]
    fn clean_slide_recovers_distance() {
        for dist in [0.15, 0.35, 0.55, -0.55] {
            let accel = min_jerk_accel(dist, 81, 100.0);
            let d = segment_displacement(&accel, 100.0).unwrap();
            assert!((d - dist).abs() < 0.002, "dist {dist}: estimated {d}");
        }
    }

    #[test]
    fn biased_slide_still_recovers_distance() {
        // A constant bias produces linear velocity drift; after Eq. 4 the
        // displacement error collapses. (A 0.2 m/s² bias uncorrected would
        // add ½·0.2·0.8² = 6.4 cm.)
        let mut accel = min_jerk_accel(0.55, 81, 100.0);
        for a in &mut accel {
            *a += 0.2;
        }
        let d = segment_displacement(&accel, 100.0).unwrap();
        assert!((d - 0.55).abs() < 0.005, "estimated {d}");
    }

    #[test]
    fn integrate_velocity_of_constant() {
        let v = vec![2.0; 101];
        let d = integrate_velocity(&v, 100.0).unwrap();
        assert!((d[100] - 2.0).abs() < 1e-12);
        assert_eq!(d[0], 0.0);
    }

    #[test]
    fn displacement_is_monotonic_for_positive_velocity() {
        let v: Vec<f64> = (0..100).map(|i| (i as f64 / 50.0).min(1.0)).collect();
        let d = integrate_velocity(&v, 100.0).unwrap();
        for w in d.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(integrate_velocity(&[], 100.0).is_err());
        assert!(integrate_velocity(&[1.0], 100.0).is_err());
        assert!(integrate_velocity(&[1.0, 2.0], 0.0).is_err());
        assert!(segment_displacement(&[1.0], 100.0).is_err());
    }

    #[test]
    fn segment_kinematics_matches_staged_pipeline() {
        let mut accel = min_jerk_accel(0.55, 81, 100.0);
        for a in &mut accel {
            *a += 0.2;
        }
        let mut scratch = DisplacementScratch::new();
        for drift_correction in [true, false] {
            let reference = segment_displacement_with(&accel, 100.0, drift_correction).unwrap();
            for _ in 0..2 {
                let kin =
                    segment_kinematics(&accel, 100.0, drift_correction, &mut scratch).unwrap();
                assert_eq!(kin.distance, reference);
                // The residual is the raw end velocity: bias 0.2 over 0.8 s.
                assert!((kin.end_velocity_residual - 0.16).abs() < 0.01);
                assert!((kin.drift_slope - 0.2).abs() < 1e-9);
            }
        }
        let mut empty = DisplacementScratch::new();
        assert!(segment_kinematics(&[1.0], 100.0, true, &mut empty).is_err());
    }

    #[test]
    fn half_segment_displacement_partial() {
        // Displacement at mid-slide of a min-jerk is half the total.
        let accel = min_jerk_accel(0.5, 81, 100.0);
        let v = estimate_velocity(&accel, 100.0).unwrap();
        let d = integrate_velocity(&v.corrected, 100.0).unwrap();
        assert!((d[40] - 0.25).abs() < 0.005, "mid displacement {}", d[40]);
    }
}
