//! Displacement derivation (paper Section V-B, final step).
//!
//! "Given the corrected sliding velocity v*(t), the displacement between
//! any two time instants during a slide can be derived by taking the
//! integral of v*(t) over time."

use crate::velocity::estimate_velocity;
use crate::ImuError;

/// Integrates a velocity trace (trapezoidal) into a displacement trace.
///
/// # Errors
///
/// Returns [`ImuError::TraceTooShort`] for fewer than 2 samples and
/// [`ImuError::InvalidParameter`] for a non-positive sample rate.
pub fn integrate_velocity(velocity: &[f64], sample_rate: f64) -> Result<Vec<f64>, ImuError> {
    if velocity.len() < 2 {
        return Err(ImuError::TraceTooShort {
            have: velocity.len(),
            need: 2,
        });
    }
    if sample_rate <= 0.0 {
        return Err(ImuError::invalid("sample_rate", "must be positive"));
    }
    let dt = 1.0 / sample_rate;
    let mut d = Vec::with_capacity(velocity.len());
    d.push(0.0);
    for i in 1..velocity.len() {
        d.push(d[i - 1] + 0.5 * (velocity[i - 1] + velocity[i]) * dt);
    }
    Ok(d)
}

/// The signed net displacement of one movement segment: acceleration →
/// drift-corrected velocity → displacement, end minus start.
///
/// This is the `D′` (for horizontal slides) or `H` contribution (for
/// stature changes) of the paper's geometry.
///
/// # Errors
///
/// Combines the conditions of [`estimate_velocity`] and
/// [`integrate_velocity`].
pub fn segment_displacement(accel: &[f64], sample_rate: f64) -> Result<f64, ImuError> {
    segment_displacement_with(accel, sample_rate, true)
}

/// Like [`segment_displacement`] but with the Eq. 4 drift correction
/// switchable — the ablation the paper's Fig. 9 motivates.
///
/// # Errors
///
/// Same conditions as [`segment_displacement`].
pub fn segment_displacement_with(
    accel: &[f64],
    sample_rate: f64,
    drift_correction: bool,
) -> Result<f64, ImuError> {
    let v = estimate_velocity(accel, sample_rate)?;
    let trace = if drift_correction {
        &v.corrected
    } else {
        &v.raw
    };
    let d = integrate_velocity(trace, sample_rate)?;
    Ok(*d.last().expect("displacement trace is non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn min_jerk_accel(dist: f64, n: usize, fs: f64) -> Vec<f64> {
        let duration = (n - 1) as f64 / fs;
        (0..n)
            .map(|i| {
                let tau = i as f64 / (n - 1) as f64;
                let a = 60.0 * tau - 180.0 * tau * tau + 120.0 * tau * tau * tau;
                a * dist / (duration * duration)
            })
            .collect()
    }

    #[test]
    fn clean_slide_recovers_distance() {
        for dist in [0.15, 0.35, 0.55, -0.55] {
            let accel = min_jerk_accel(dist, 81, 100.0);
            let d = segment_displacement(&accel, 100.0).unwrap();
            assert!((d - dist).abs() < 0.002, "dist {dist}: estimated {d}");
        }
    }

    #[test]
    fn biased_slide_still_recovers_distance() {
        // A constant bias produces linear velocity drift; after Eq. 4 the
        // displacement error collapses. (A 0.2 m/s² bias uncorrected would
        // add ½·0.2·0.8² = 6.4 cm.)
        let mut accel = min_jerk_accel(0.55, 81, 100.0);
        for a in &mut accel {
            *a += 0.2;
        }
        let d = segment_displacement(&accel, 100.0).unwrap();
        assert!((d - 0.55).abs() < 0.005, "estimated {d}");
    }

    #[test]
    fn integrate_velocity_of_constant() {
        let v = vec![2.0; 101];
        let d = integrate_velocity(&v, 100.0).unwrap();
        assert!((d[100] - 2.0).abs() < 1e-12);
        assert_eq!(d[0], 0.0);
    }

    #[test]
    fn displacement_is_monotonic_for_positive_velocity() {
        let v: Vec<f64> = (0..100).map(|i| (i as f64 / 50.0).min(1.0)).collect();
        let d = integrate_velocity(&v, 100.0).unwrap();
        for w in d.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(integrate_velocity(&[], 100.0).is_err());
        assert!(integrate_velocity(&[1.0], 100.0).is_err());
        assert!(integrate_velocity(&[1.0, 2.0], 0.0).is_err());
        assert!(segment_displacement(&[1.0], 100.0).is_err());
    }

    #[test]
    fn half_segment_displacement_partial() {
        // Displacement at mid-slide of a min-jerk is half the total.
        let accel = min_jerk_accel(0.5, 81, 100.0);
        let v = estimate_velocity(&accel, 100.0).unwrap();
        let d = integrate_velocity(&v.corrected, 100.0).unwrap();
        assert!((d[40] - 0.25).abs() < 0.005, "mid displacement {}", d[40]);
    }
}
