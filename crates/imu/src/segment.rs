//! Movement segmentation (paper Section V-A-2, Eq. 3, Fig. 8).
//!
//! "We calculate the power levels of the acceleration signal along y-axis
//! by averaging the accumulative square of the signal amplitude in a
//! sliding time window ... length of the sliding window as 4 samples ...
//! a slide starts when the power levels exceeds a threshold and stops
//! when the power levels goes below the threshold for m samples. An
//! empirical threshold of 0.2 and m = 8 are used."

use crate::ImuError;

/// Parameters of the power-based segmenter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentConfig {
    /// Sliding power window length `W`, samples.
    pub window: usize,
    /// Power threshold for movement, (m/s²)².
    pub threshold: f64,
    /// Hangover `m`: the power must stay below threshold this many
    /// samples before a movement is considered over.
    pub hangover: usize,
    /// Padding added to each side of a detected segment before
    /// integration, samples. The power threshold clips the gentle
    /// beginning/end of a min-jerk profile; padding recovers them (the
    /// padded region is stationary, so the ZUPT correction is unharmed).
    pub padding: usize,
    /// Minimum segment length (before padding) to report, samples —
    /// rejects single-sample noise pops.
    pub min_length: usize,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            window: 4,
            threshold: 0.2,
            hangover: 8,
            padding: 15,
            min_length: 10,
        }
    }
}

impl SegmentConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ImuError::InvalidParameter`] for zero windows or a
    /// non-positive threshold.
    pub fn validate(&self) -> Result<(), ImuError> {
        if self.window == 0 {
            return Err(ImuError::invalid("window", "must be positive"));
        }
        if !(self.threshold > 0.0 && self.threshold.is_finite()) {
            return Err(ImuError::invalid(
                "threshold",
                format!("must be positive, got {}", self.threshold),
            ));
        }
        if self.hangover == 0 {
            return Err(ImuError::invalid("hangover", "must be positive"));
        }
        Ok(())
    }
}

impl hyperear_util::ToJson for SegmentConfig {
    fn to_json(&self) -> hyperear_util::Json {
        use hyperear_util::Json;
        Json::obj(vec![
            ("window", Json::Number(self.window as f64)),
            ("threshold", Json::Number(self.threshold)),
            ("hangover", Json::Number(self.hangover as f64)),
            ("padding", Json::Number(self.padding as f64)),
            ("min_length", Json::Number(self.min_length as f64)),
        ])
    }
}

impl hyperear_util::FromJson for SegmentConfig {
    fn from_json(json: &hyperear_util::Json) -> Result<Self, hyperear_util::JsonError> {
        Ok(SegmentConfig {
            window: json.field("window")?,
            threshold: json.field("threshold")?,
            hangover: json.field("hangover")?,
            padding: json.field("padding")?,
            min_length: json.field("min_length")?,
        })
    }
}

/// A detected movement window `[start, end)` in sample indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First sample of the movement (inclusive, after padding).
    pub start: usize,
    /// One past the last sample (exclusive, after padding).
    pub end: usize,
}

impl Segment {
    /// Number of samples covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the segment is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// The sliding power level of Eq. 3: `P(t) = (1/W)·Σ_{n=t}^{t+W-1} a(n)²`.
///
/// # Errors
///
/// Returns [`ImuError::TraceTooShort`] if the signal is shorter than the
/// window and [`ImuError::InvalidParameter`] for a zero window.
pub fn power_levels(signal: &[f64], window: usize) -> Result<Vec<f64>, ImuError> {
    let mut out = Vec::new();
    power_levels_into(signal, window, &mut out)?;
    Ok(out)
}

/// Allocation-free form of [`power_levels`] writing into a caller-owned
/// buffer that is cleared and reused.
///
/// # Errors
///
/// Same conditions as [`power_levels`].
pub fn power_levels_into(
    signal: &[f64],
    window: usize,
    out: &mut Vec<f64>,
) -> Result<(), ImuError> {
    if window == 0 {
        return Err(ImuError::invalid("window", "must be positive"));
    }
    if signal.len() < window {
        return Err(ImuError::TraceTooShort {
            have: signal.len(),
            need: window,
        });
    }
    out.clear();
    out.reserve(signal.len());
    let mut acc: f64 = signal[..window].iter().map(|x| x * x).sum();
    out.push(acc / window as f64);
    for t in 1..=signal.len() - window {
        acc += signal[t + window - 1] * signal[t + window - 1];
        acc -= signal[t - 1] * signal[t - 1];
        out.push(acc / window as f64);
    }
    // Tail: shrink the window so the output has the same length as input.
    for t in signal.len() - window + 1..signal.len() {
        let tail = &signal[t..];
        out.push(tail.iter().map(|x| x * x).sum::<f64>() / tail.len() as f64);
    }
    Ok(())
}

/// Segments a linear-acceleration axis into movements.
///
/// # Errors
///
/// Same conditions as [`power_levels`] plus config validation.
pub fn segment_movements(signal: &[f64], config: &SegmentConfig) -> Result<Vec<Segment>, ImuError> {
    let mut power = Vec::new();
    let mut out = Vec::new();
    segment_movements_into(signal, config, &mut power, &mut out)?;
    Ok(out)
}

/// Allocation-free form of [`segment_movements`]: the power trace and the
/// segment list live in caller-owned buffers. Output in `out` is
/// identical to [`segment_movements`].
///
/// # Errors
///
/// Same conditions as [`segment_movements`].
pub fn segment_movements_into(
    signal: &[f64],
    config: &SegmentConfig,
    power: &mut Vec<f64>,
    out: &mut Vec<Segment>,
) -> Result<(), ImuError> {
    config.validate()?;
    power_levels_into(signal, config.window, power)?;
    out.clear();
    // Candidates are emitted in ascending start order, so merging the
    // padding overlaps against the last accepted segment as we go is
    // equivalent to the collect-then-merge formulation.
    let push_merged = |out: &mut Vec<Segment>, s: Segment| {
        if let Some(last) = out.last_mut() {
            if s.start <= last.end {
                last.end = last.end.max(s.end);
                return;
            }
        }
        out.push(s);
    };
    let mut state_start: Option<usize> = None;
    let mut below = 0usize;
    for (i, &p) in power.iter().enumerate() {
        match state_start {
            None => {
                if p > config.threshold {
                    state_start = Some(i);
                    below = 0;
                }
            }
            Some(start) => {
                if p > config.threshold {
                    below = 0;
                } else {
                    below += 1;
                    if below >= config.hangover {
                        let end = i + 1 - below;
                        if end - start >= config.min_length {
                            push_merged(out, pad(start, end, config.padding, signal.len()));
                        }
                        state_start = None;
                        below = 0;
                    }
                }
            }
        }
    }
    if let Some(start) = state_start {
        let end = power.len() - below;
        if end.saturating_sub(start) >= config.min_length {
            push_merged(out, pad(start, end, config.padding, signal.len()));
        }
    }
    Ok(())
}

fn pad(start: usize, end: usize, padding: usize, len: usize) -> Segment {
    Segment {
        start: start.saturating_sub(padding),
        end: (end + padding).min(len),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_slide_signal() -> Vec<f64> {
        // 600 samples: quiet, a 100-sample burst at 200, quiet again.
        let mut s = vec![0.01; 600];
        for i in 0..50 {
            s[200 + i] = 2.0;
            s[250 + i] = -2.0;
        }
        s
    }

    #[test]
    fn power_of_constant_signal() {
        let p = power_levels(&[2.0; 10], 4).unwrap();
        assert_eq!(p.len(), 10);
        assert!(p.iter().all(|&v| (v - 4.0).abs() < 1e-12));
    }

    #[test]
    fn power_window_averages() {
        let p = power_levels(&[1.0, 0.0, 0.0, 0.0, 0.0], 4).unwrap();
        assert!((p[0] - 0.25).abs() < 1e-12);
        assert!(p[1].abs() < 1e-12);
    }

    #[test]
    fn detects_single_slide() {
        let segments = segment_movements(&one_slide_signal(), &SegmentConfig::default()).unwrap();
        assert_eq!(segments.len(), 1);
        let s = segments[0];
        assert!(s.start <= 200 && s.start >= 170, "start {}", s.start);
        assert!(s.end >= 300 && s.end <= 330, "end {}", s.end);
        assert!(!s.is_empty());
        assert!(s.len() >= 100);
    }

    #[test]
    fn detects_back_and_forth_slides_separately() {
        // Two bursts separated by 70 quiet samples (the inter-slide gap).
        let mut s = vec![0.0; 800];
        for i in 0..60 {
            s[100 + i] = 1.5;
            s[400 + i] = -1.5;
        }
        let segments = segment_movements(&s, &SegmentConfig::default()).unwrap();
        assert_eq!(segments.len(), 2);
        assert!(segments[0].end < segments[1].start);
    }

    #[test]
    fn hangover_bridges_zero_crossings() {
        // A slide's acceleration crosses zero mid-way (accelerate then
        // decelerate); the dip must not split the segment.
        let mut s = vec![0.0; 400];
        for i in 0..40 {
            s[100 + i] = 2.0;
        }
        // 5-sample dip below threshold (less than hangover = 8).
        for i in 0..40 {
            s[145 + i] = -2.0;
        }
        let segments = segment_movements(&s, &SegmentConfig::default()).unwrap();
        assert_eq!(segments.len(), 1);
    }

    #[test]
    fn quiet_trace_has_no_segments() {
        let s = vec![0.05; 500];
        let segments = segment_movements(&s, &SegmentConfig::default()).unwrap();
        assert!(segments.is_empty());
    }

    #[test]
    fn short_noise_pops_are_rejected() {
        let mut s = vec![0.0; 300];
        s[100] = 5.0; // single-sample spike
        let segments = segment_movements(&s, &SegmentConfig::default()).unwrap();
        assert!(segments.is_empty());
    }

    #[test]
    fn movement_running_to_trace_end_is_closed() {
        let mut s = vec![0.0; 200];
        for v in s.iter_mut().skip(150) {
            *v = 2.0;
        }
        let segments = segment_movements(&s, &SegmentConfig::default()).unwrap();
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].end, 200);
    }

    #[test]
    fn padding_does_not_escape_bounds() {
        let mut s = vec![0.0; 100];
        for v in s.iter_mut().take(30) {
            *v = 2.0;
        }
        let segments = segment_movements(&s, &SegmentConfig::default()).unwrap();
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].start, 0);
    }

    #[test]
    fn adjacent_padded_segments_merge() {
        let mut s = vec![0.0; 400];
        for i in 0..40 {
            s[100 + i] = 2.0;
            s[160 + i] = 2.0; // 20-sample gap < 2×padding
        }
        let segments = segment_movements(&s, &SegmentConfig::default()).unwrap();
        assert_eq!(segments.len(), 1);
    }

    #[test]
    fn into_variants_match_allocating_forms() {
        // Two bursts whose padded segments merge, plus a tail burst, so
        // the inline merge and the open-at-end close path are exercised.
        let mut s = vec![0.0; 500];
        for i in 0..40 {
            s[100 + i] = 2.0;
            s[160 + i] = 2.0;
        }
        for v in s.iter_mut().skip(450) {
            *v = 2.0;
        }
        let cfg = SegmentConfig::default();
        let reference = segment_movements(&s, &cfg).unwrap();
        let power_ref = power_levels(&s, cfg.window).unwrap();
        let (mut power, mut out) = (vec![9.0; 3], vec![Segment { start: 7, end: 8 }]);
        for _ in 0..2 {
            segment_movements_into(&s, &cfg, &mut power, &mut out).unwrap();
            assert_eq!(out, reference);
            assert_eq!(power, power_ref);
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(power_levels(&[], 4).is_err());
        assert!(power_levels(&[1.0; 2], 4).is_err());
        assert!(power_levels(&[1.0; 10], 0).is_err());
        let cfg = SegmentConfig {
            threshold: 0.0,
            ..SegmentConfig::default()
        };
        assert!(segment_movements(&[0.0; 100], &cfg).is_err());
        let cfg = SegmentConfig {
            window: 0,
            ..SegmentConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = SegmentConfig {
            hangover: 0,
            ..SegmentConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
