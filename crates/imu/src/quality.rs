//! The slide quality gate (paper Section VII-B).
//!
//! "In HyperEar, slides with an estimated distance over 50cm and z-axis
//! rotation angle less than 20° are automatically selected for use."

use crate::ImuError;

/// Acceptance thresholds for a slide.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityGate {
    /// Minimum absolute slide distance, metres.
    pub min_distance: f64,
    /// Maximum z-axis rotation during the slide, degrees.
    pub max_rotation_deg: f64,
}

impl Default for QualityGate {
    fn default() -> Self {
        QualityGate {
            min_distance: 0.5,
            max_rotation_deg: 20.0,
        }
    }
}

impl hyperear_util::ToJson for QualityGate {
    fn to_json(&self) -> hyperear_util::Json {
        use hyperear_util::Json;
        // A disabled gate has an infinite rotation bound; JSON has no
        // infinity, so that case is encoded as null.
        let rotation = if self.max_rotation_deg.is_finite() {
            Json::Number(self.max_rotation_deg)
        } else {
            Json::Null
        };
        Json::obj(vec![
            ("min_distance", Json::Number(self.min_distance)),
            ("max_rotation_deg", rotation),
        ])
    }
}

impl hyperear_util::FromJson for QualityGate {
    fn from_json(json: &hyperear_util::Json) -> Result<Self, hyperear_util::JsonError> {
        use hyperear_util::{Json, JsonError};
        let max_rotation_deg = match json.get("max_rotation_deg") {
            Some(Json::Null) => f64::INFINITY,
            Some(v) => v
                .as_f64()
                .ok_or_else(|| JsonError::schema("max_rotation_deg must be a number or null"))?,
            None => return Err(JsonError::schema("missing field max_rotation_deg")),
        };
        Ok(QualityGate {
            min_distance: json.field("min_distance")?,
            max_rotation_deg,
        })
    }
}

/// Why a slide was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rejection {
    /// The estimated distance was below the gate's minimum.
    TooShort {
        /// The estimated |distance| in metres.
        distance: f64,
    },
    /// The z-rotation exceeded the gate's maximum.
    TooMuchRotation {
        /// The measured rotation in degrees.
        rotation_deg: f64,
    },
}

impl QualityGate {
    /// A gate that accepts everything (for ablation experiments).
    #[must_use]
    pub fn disabled() -> Self {
        QualityGate {
            min_distance: 0.0,
            max_rotation_deg: f64::INFINITY,
        }
    }

    /// Validates the gate.
    ///
    /// # Errors
    ///
    /// Returns [`ImuError::InvalidParameter`] for negative thresholds.
    pub fn validate(&self) -> Result<(), ImuError> {
        if !(self.min_distance >= 0.0 && self.min_distance.is_finite()) {
            return Err(ImuError::invalid(
                "min_distance",
                format!("must be non-negative and finite, got {}", self.min_distance),
            ));
        }
        if self.max_rotation_deg.is_nan() || self.max_rotation_deg < 0.0 {
            return Err(ImuError::invalid(
                "max_rotation_deg",
                format!("must be non-negative, got {}", self.max_rotation_deg),
            ));
        }
        Ok(())
    }

    /// Checks a slide against the gate. `Ok(())` means accepted.
    ///
    /// # Errors
    ///
    /// This function does not error; it returns the rejection reason in
    /// the `Err` variant of a plain `Result` for ergonomic `?`-free
    /// filtering.
    #[allow(clippy::result_large_err)]
    pub fn check(&self, distance: f64, rotation_deg: f64) -> Result<(), Rejection> {
        if distance.abs() < self.min_distance {
            return Err(Rejection::TooShort {
                distance: distance.abs(),
            });
        }
        if rotation_deg > self.max_rotation_deg {
            return Err(Rejection::TooMuchRotation { rotation_deg });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_gate_values() {
        let g = QualityGate::default();
        assert_eq!(g.min_distance, 0.5);
        assert_eq!(g.max_rotation_deg, 20.0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn accepts_good_slides() {
        let g = QualityGate::default();
        assert!(g.check(0.55, 3.0).is_ok());
        assert!(g.check(-0.6, 19.9).is_ok());
    }

    #[test]
    fn rejects_short_slides() {
        let g = QualityGate::default();
        match g.check(0.3, 1.0) {
            Err(Rejection::TooShort { distance }) => assert!((distance - 0.3).abs() < 1e-12),
            other => panic!("expected TooShort, got {other:?}"),
        }
    }

    #[test]
    fn rejects_rotated_slides() {
        let g = QualityGate::default();
        match g.check(0.6, 25.0) {
            Err(Rejection::TooMuchRotation { rotation_deg }) => {
                assert_eq!(rotation_deg, 25.0);
            }
            other => panic!("expected TooMuchRotation, got {other:?}"),
        }
    }

    #[test]
    fn disabled_gate_accepts_anything() {
        let g = QualityGate::disabled();
        assert!(g.check(0.01, 180.0).is_ok());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn invalid_gate_rejected() {
        let g = QualityGate {
            min_distance: -1.0,
            max_rotation_deg: 20.0,
        };
        assert!(g.validate().is_err());
        let g = QualityGate {
            min_distance: 0.5,
            max_rotation_deg: -5.0,
        };
        assert!(g.validate().is_err());
    }
}
