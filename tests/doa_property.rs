//! DOA contract tier: property tests of both direction-finding
//! front-ends across random 3- and 4-microphone geometries.
//!
//! Each property round-trips a known bearing through one front-end's
//! full path — synthesize the observation (beacon arrival times, or raw
//! carrier samples), estimate, compare — so the pinned tolerances are
//! end-to-end accuracy claims, not solver-only ones. Geometries are
//! drawn at random and degenerate draws (coincident / collinear mics)
//! are discarded through the typed `GeomError`s, which doubles as a
//! check that random junk cannot reach the solvers.
//!
//! `scripts/verify.sh --doa` runs this binary with `--nocapture` and
//! greps the `doa-contract: … HELD` lines.

use hyperear::asp::BeaconArrival;
use hyperear::doa::{phase_tracking_bearing, planar_bearing_from_arrivals};
use hyperear_geom::doa::far_field_pair_delays;
use hyperear_geom::rotation::wrap_radians;
use hyperear_geom::{MicArray, Vec2, MAX_PAIRS};
use hyperear_util::prop::{self, f64_range, usize_range, vec_f64};
use hyperear_util::prop_assert;

const SOUND: f64 = 343.0;
const FS: f64 = 44_100.0;

/// Draws an N-mic array from 2(N−1) coordinates: mic 0 at the origin,
/// the rest inside a ±12 cm box. Returns `None` for draws the geometry
/// layer rejects (coincident or collinear placements).
fn draw_array(n: usize, coords: &[f64]) -> Option<MicArray> {
    let mut positions = [Vec2::ZERO; 4];
    for k in 1..n {
        positions[k] = Vec2::new(coords[2 * (k - 1)], coords[2 * (k - 1) + 1]);
    }
    let array = MicArray::from_positions(&positions[..n]).ok()?;
    array.validate_planar().ok()?;
    Some(array)
}

/// Per-channel arrival offsets consistent with a far-field plane wave
/// from `bearing` (channel 0 as the time reference).
fn channel_offsets(array: &MicArray, bearing: f64) -> Vec<f64> {
    let mut delays = [0.0f64; MAX_PAIRS];
    far_field_pair_delays(array, bearing, SOUND, &mut delays).unwrap();
    // pairs() enumerates (0,1), (0,2), …, (0,n−1) first, and
    // delay[k] = t_0 − t_k, so channel k starts at −delay[k−1].
    let mut offsets = vec![0.0f64; array.len()];
    for (k, slot) in offsets.iter_mut().enumerate().skip(1) {
        *slot = -delays[k - 1];
    }
    offsets
}

#[test]
fn arrival_doa_recovers_bearing_on_random_arrays() {
    let strat = (
        usize_range(3, 5),
        vec_f64(-0.12, 0.12, 6, 7),
        f64_range(-std::f64::consts::PI, std::f64::consts::PI),
        usize_range(1, 9),
    );
    prop::check(
        "arrival_doa_recovers_bearing_on_random_arrays",
        strat,
        |(n, coords, bearing, beacons)| {
            let (n, bearing, beacons) = (*n, *bearing, *beacons);
            let Some(array) = draw_array(n, coords) else {
                return prop::pass(); // degenerate draw, typed-rejected
            };
            let offsets = channel_offsets(&array, bearing);
            let arrivals: Vec<Vec<BeaconArrival>> = offsets
                .iter()
                .map(|&off| {
                    (0..beacons)
                        .map(|b| BeaconArrival {
                            time: 0.5 + b as f64 * 0.2 + off,
                            strength: 1.0,
                        })
                        .collect()
                })
                .collect();
            let refs: Vec<&[BeaconArrival]> = arrivals.iter().map(|a| a.as_slice()).collect();
            let prior = planar_bearing_from_arrivals(&array, &refs, SOUND).unwrap();
            let err = wrap_radians(prior.bearing - bearing).abs();
            prop_assert!(err < 1e-9, "bearing err {err} on {n}-mic array");
            prop_assert!(prior.confidence > 0.99);
            prop_assert!(prior.pairs_used == array.pair_count());
            prop::pass()
        },
    );
    println!("doa-contract: arrival front-end on random 3/4-mic arrays: HELD");
}

#[test]
fn phase_doa_recovers_bearing_on_random_arrays() {
    let strat = (
        usize_range(3, 5),
        vec_f64(-0.12, 0.12, 6, 7),
        f64_range(-std::f64::consts::PI, std::f64::consts::PI),
    );
    prop::check(
        "phase_doa_recovers_bearing_on_random_arrays",
        strat,
        |(n, coords, bearing)| {
            let (n, bearing) = (*n, *bearing);
            let Some(array) = draw_array(n, coords) else {
                return prop::pass();
            };
            // Probe safely inside the unambiguous regime, snapped onto a
            // Goertzel bin so windowing leakage cannot bias the phase.
            let len = 4096usize;
            let limit = SOUND / (2.0 * array.aperture());
            let bin = ((0.8 * limit) * len as f64 / FS).floor().max(1.0);
            let probe = bin * FS / len as f64;
            let offsets = channel_offsets(&array, bearing);
            let channels: Vec<Vec<f64>> = offsets
                .iter()
                .map(|&off| {
                    (0..len)
                        .map(|s| {
                            let t = s as f64 / FS;
                            (std::f64::consts::TAU * probe * (t - off)).sin()
                        })
                        .collect()
                })
                .collect();
            let refs: Vec<&[f64]> = channels.iter().map(|c| c.as_slice()).collect();
            let prior = phase_tracking_bearing(&array, &refs, FS, probe, SOUND).unwrap();
            let err = wrap_radians(prior.bearing - bearing).abs();
            // Phase reads through a finite window: allow a degree.
            prop_assert!(
                err < 2e-2,
                "bearing err {err} on {n}-mic array, probe {probe} Hz"
            );
            prop::pass()
        },
    );
    println!("doa-contract: phase-tracking front-end on random 3/4-mic arrays: HELD");
}
