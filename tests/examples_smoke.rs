//! Smoke tests mirroring the runnable examples: one quick 2D session per
//! example scenario, so `cargo test -q` exercises the exact public API
//! surface `examples/quickstart.rs` and `examples/find_keys.rs` drive.

use hyperear::config::HyperEarConfig;
use hyperear::pipeline::{HyperEar, SessionInput};
use hyperear::sdf::{find_crossings, guidance, Guidance, RollObservation};
use hyperear_sim::environment::Environment;
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::{rotation_sweep, Recording, ScenarioBuilder};
use hyperear_sim::volunteer::roster;

fn run_pipeline(recording: &Recording) -> hyperear::pipeline::SessionResult {
    let engine = HyperEar::new(HyperEarConfig::galaxy_s4()).expect("engine");
    engine
        .run(&SessionInput {
            audio_sample_rate: recording.audio.sample_rate,
            left: &recording.audio.left,
            right: &recording.audio.right,
            imu_sample_rate: recording.imu.sample_rate,
            accel: &recording.imu.accel,
            gyro: &recording.imu.gyro,
        })
        .expect("session")
}

/// The `quickstart` example scenario, shortened to two slides: a quiet
/// meeting room, ruler-grade motion, speaker 5 m away in-plane.
#[test]
fn quickstart_scenario_produces_an_estimate() {
    let recording = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::room_quiet())
        .speaker_range(5.0)
        .slides(2)
        .seed(2024)
        .render()
        .expect("render");
    assert!(!recording.audio.left.is_empty());
    assert_eq!(recording.audio.left.len(), recording.audio.right.len());
    assert!(!recording.imu.is_empty());

    let result = run_pipeline(&recording);
    assert!(result.beacons_left > 0, "no beacons detected on the left");
    assert!(result.beacons_right > 0, "no beacons detected on the right");
    let estimate = result.upper.expect("no aggregated estimate");
    let err = (estimate.range - recording.truth.slant_distance_upper).abs();
    assert!(
        err < 0.5,
        "quickstart range error {err:.3} m (estimate {:.2}, truth {:.2})",
        estimate.range,
        recording.truth.slant_distance_upper
    );
}

/// Phase 1 of the `find_keys` example: Speaker Direction Finding over a
/// roll sweep must issue a STOP near the in-direction posture and find
/// at least one zero-TDoA crossing.
#[test]
fn find_keys_direction_finding_guides_to_stop() {
    let phone = PhoneModel::galaxy_s4();
    let sweep = rotation_sweep(&phone, 4.0, 180, 0.2, 7).expect("sweep");
    let observations: Vec<RollObservation> = sweep
        .iter()
        .map(|s| RollObservation {
            roll_degrees: s.alpha_degrees,
            tdoa: s.tdoa_ms / 1_000.0,
        })
        .collect();
    let stopped = observations.iter().find_map(|obs| {
        match guidance(obs.tdoa, phone.mic_separation, 343.0, 0.05).expect("guidance") {
            Guidance::Stop => Some(obs.roll_degrees),
            Guidance::KeepRolling => None,
        }
    });
    assert!(
        stopped.is_some(),
        "guidance never said STOP over a full sweep"
    );
    let crossings = find_crossings(&observations).expect("crossings");
    assert!(!crossings.is_empty(), "no in-direction crossings found");
}

/// Phase 2 of the `find_keys` example, shortened to a single-stature 2D
/// session: in-hand motion by a roster volunteer, speaker 4 m away.
#[test]
fn find_keys_scenario_localizes_in_hand() {
    let user = &roster()[4];
    let recording = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::room_quiet())
        .speaker_range(4.0)
        .volunteer(user)
        .slides(2)
        .seed(4242)
        .render()
        .expect("render");
    let result = run_pipeline(&recording);
    let estimate = result.upper.expect("no aggregated estimate");
    let err = (estimate.range - recording.truth.slant_distance_upper).abs();
    assert!(
        err < 1.0,
        "find_keys range error {err:.3} m (estimate {:.2}, truth {:.2})",
        estimate.range,
        recording.truth.slant_distance_upper
    );
}
