//! Array conformance tier: the two-microphone compatibility contract.
//!
//! A [`MicArray::two_mic`] session with no DOA front-end — exactly what
//! [`HyperEarConfig::for_mic_separation`] / the device presets build —
//! must be **bit-identical** (`assert_eq!`, not a tolerance) to the
//! stereo path it replaced: same outcomes, same diagnostics, at any
//! thread count. The N-mic generalization is only allowed to *add*
//! behaviour behind `array.len() > 2` or an explicit front-end; the
//! paper's phone pipeline must not move by one ULP.

use hyperear::batch::BatchEngine;
use hyperear::config::{DoaFrontEnd, HyperEarConfig};
use hyperear::pipeline::{ArraySessionInput, SessionEngine, SessionInput, SessionOutcome};
use hyperear_geom::MicArray;
use hyperear_sim::environment::Environment;
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::{Recording, ScenarioBuilder};
use hyperear_util::pool::Pool;
use std::sync::Arc;

fn fleet() -> Vec<Recording> {
    let mut recs = Vec::new();
    for (i, env) in [
        Environment::anechoic(),
        Environment::room_quiet(),
        Environment::mall_busy(),
    ]
    .into_iter()
    .enumerate()
    {
        recs.push(
            ScenarioBuilder::new(PhoneModel::galaxy_s4())
                .environment(env)
                .speaker_range(2.0 + i as f64)
                .slides(2)
                .seed(9_000 + i as u64)
                .render()
                .unwrap(),
        );
    }
    recs
}

fn stereo_input(rec: &Recording) -> SessionInput<'_> {
    SessionInput {
        audio_sample_rate: rec.audio.sample_rate,
        left: &rec.audio.left,
        right: &rec.audio.right,
        imu_sample_rate: rec.imu.sample_rate,
        accel: &rec.imu.accel,
        gyro: &rec.imu.gyro,
    }
}

fn array_input<'a>(rec: &'a Recording, channels: &'a [&'a [f64]; 2]) -> ArraySessionInput<'a> {
    ArraySessionInput {
        audio_sample_rate: rec.audio.sample_rate,
        channels,
        imu_sample_rate: rec.imu.sample_rate,
        accel: &rec.imu.accel,
        gyro: &rec.imu.gyro,
    }
}

/// One-shot engines: `run_array_monitored` on the two-mic compatibility
/// preset is the stereo `run_monitored`, outcome and diagnostics alike.
#[test]
fn two_mic_array_sessions_match_stereo_bit_for_bit() {
    let config = HyperEarConfig::galaxy_s4();
    assert_eq!(config.array, MicArray::two_mic(0.1366));
    assert_eq!(config.doa_front_end, DoaFrontEnd::None);
    for rec in &fleet() {
        let stereo = SessionEngine::new(config.clone())
            .unwrap()
            .run_monitored(&stereo_input(rec));
        let chans: [&[f64]; 2] = [&rec.audio.left, &rec.audio.right];
        let array = SessionEngine::new(config.clone())
            .unwrap()
            .run_array_monitored(&array_input(rec, &chans));
        assert_eq!(array, stereo);
        assert_eq!(array.diagnostics(), stereo.diagnostics());
        let result = array.result().expect("usable outcome");
        assert!(result.pair_delays.is_empty(), "classic path adds no delays");
        assert!(result.bearing.is_none(), "classic path attaches no bearing");
    }
}

/// Batch engines: the array batch path equals the stereo batch path and
/// is itself invariant across pool widths (1 vs 4 threads), warm or
/// cold.
#[test]
fn two_mic_array_batches_match_stereo_at_any_thread_count() {
    let recs = fleet();
    let stereo_inputs: Vec<SessionInput<'_>> = recs.iter().map(stereo_input).collect();
    let chans: Vec<[&[f64]; 2]> = recs
        .iter()
        .map(|rec| {
            let pair: [&[f64]; 2] = [&rec.audio.left, &rec.audio.right];
            pair
        })
        .collect();
    let array_inputs: Vec<ArraySessionInput<'_>> = recs
        .iter()
        .zip(&chans)
        .map(|(rec, pair)| array_input(rec, pair))
        .collect();

    let config = HyperEarConfig::galaxy_s4();
    let mut reference: Option<Vec<SessionOutcome>> = None;
    for threads in [1usize, 4] {
        let pool = Arc::new(Pool::new(threads));
        let mut stereo = BatchEngine::new(config.clone(), Arc::clone(&pool)).unwrap();
        let stereo_out = stereo.run_batch(&stereo_inputs);

        let mut arrays = BatchEngine::new(config.clone(), pool).unwrap();
        arrays.warm_arrays(&array_inputs);
        let array_out = arrays.run_array_batch(&array_inputs);

        assert!(array_out.iter().all(SessionOutcome::is_usable));
        assert_eq!(
            array_out, stereo_out,
            "array vs stereo at {threads} threads"
        );
        match &reference {
            None => reference = Some(array_out),
            Some(first) => assert_eq!(&array_out, first, "thread-count invariance"),
        }
    }
}
