//! Estimator contract tier: property tests of the TDoA estimator bank.
//!
//! Two end-to-end accuracy claims, checked over randomized scenarios
//! rather than pinned seeds:
//!
//! 1. **Clean recovery.** On a clean randomized ruler scenario, every
//!    estimator in [`TdoaEstimator::ALL`] recovers the session range
//!    within the paper's working envelope, and — the sharp version — the
//!    weighting estimators reproduce plain xcorr's per-slide TDoA to
//!    within the pipeline's one-sample resolution floor (7.78 mm at
//!    44.1 kHz): timing always reads the plain matched-filter
//!    correlation, so the weighting may only change *which* peaks are
//!    found, never where a found peak sits.
//! 2. **Faulted no-worse.** Under seeded NLOS-multipath and
//!    impulsive-burst faults at matched intensity, GCC-PHAT and
//!    sub-band coherence weighting aggregate no worse than plain xcorr
//!    (median floor error over the drawn scenarios).
//!
//! `scripts/verify.sh --estimators` runs this binary with `--nocapture`
//! and greps the `estimator-contract: … HELD` lines.

use hyperear::config::{HyperEarConfig, TdoaEstimator};
use hyperear::pipeline::{SessionEngine, SessionInput, SessionResult};
use hyperear_bench::harness::{floor_error, SessionSpec};
use hyperear_sim::fault::{matrix, FaultPlan};
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::Recording;
use hyperear_util::prop::{self, f64_range, usize_range};
use hyperear_util::prop_assert;
use std::cell::RefCell;

/// One TDoA sample at 44.1 kHz: 343 m/s / 44100 Hz = 7.78 mm — the
/// resolution floor of the whole augmented-TDoA chain.
const TDOA_FLOOR_M: f64 = 343.0 / 44_100.0;

fn spec(range: f64) -> SessionSpec {
    SessionSpec {
        slides: 3,
        ..SessionSpec::ruler_2d(PhoneModel::galaxy_s4(), HyperEarConfig::galaxy_s4(), range)
    }
}

fn input(rec: &Recording) -> SessionInput<'_> {
    SessionInput {
        audio_sample_rate: rec.audio.sample_rate,
        left: &rec.audio.left,
        right: &rec.audio.right,
        imu_sample_rate: rec.imu.sample_rate,
        accel: &rec.imu.accel,
        gyro: &rec.imu.gyro,
    }
}

fn run_estimated(
    engine: &mut SessionEngine,
    rec: &Recording,
    est: TdoaEstimator,
) -> Option<SessionResult> {
    let mut out = SessionResult::empty();
    engine.run_estimated_into(&input(rec), est, &mut out).ok()?;
    Some(out)
}

/// Every estimator localizes random clean scenarios, and the weighting
/// estimators sit on plain xcorr's per-slide TDoA within the one-sample
/// resolution floor.
#[test]
fn every_estimator_recovers_clean_scenarios_within_the_floor() {
    let strat = (f64_range(2.0, 5.0), usize_range(0, 999));
    let engine = RefCell::new(SessionEngine::new(HyperEarConfig::galaxy_s4()).unwrap());
    prop::check(
        "every_estimator_recovers_clean_scenarios_within_the_floor",
        strat,
        |&(range, seed)| {
            let mut engine = engine.borrow_mut();
            let spec = spec(range);
            let rec = spec.render(70_000 + seed as u64).expect("render");
            // A small fraction of random draws defeats even the baseline
            // pipeline (degenerate slide geometry); the property is
            // conditional on the baseline succeeding.
            let Some(plain) = run_estimated(&mut engine, &rec, TdoaEstimator::PlainXcorr) else {
                return prop::pass();
            };
            let plain_err = floor_error(&rec, &plain).expect("plain estimate");
            prop_assert!(
                plain_err < 0.5,
                "plain floor error {plain_err:.3} m at range {range:.2}"
            );
            for est in TdoaEstimator::ALL {
                let result = run_estimated(&mut engine, &rec, est);
                prop_assert!(
                    result.is_some(),
                    "{est:?} failed where plain xcorr succeeded (seed {seed})"
                );
                let result = result.unwrap();
                prop_assert!(result.estimator == est, "result tags {est:?}");
                let err = floor_error(&rec, &result).expect("estimate");
                prop_assert!(
                    err < 0.5,
                    "{est:?} floor error {err:.3} m at range {range:.2}"
                );
                // The sharp per-slide claim: same slides, and where both
                // produced a TDoA, it moved less than one sample.
                prop_assert!(result.slides.len() == plain.slides.len());
                for (s, p) in result.slides.iter().zip(&plain.slides) {
                    let (Some(st), Some(pt)) = (&s.tdoa, &p.tdoa) else {
                        continue;
                    };
                    let d1 = (st.delta_d1 - pt.delta_d1).abs();
                    let d2 = (st.delta_d2 - pt.delta_d2).abs();
                    prop_assert!(
                        d1 <= TDOA_FLOOR_M && d2 <= TDOA_FLOOR_M,
                        "{est:?} moved a clean slide TDoA by ({d1:.4}, {d2:.4}) m"
                    );
                }
            }
            prop::pass()
        },
    );
    println!("estimator-contract: clean recovery within the 7.78 mm floor: HELD");
}

/// Under seeded NLOS-multipath and impulsive-burst faults, the
/// weighting estimators aggregate no worse than plain xcorr at the same
/// intensity (median floor error over the drawn scenarios).
#[test]
fn weighting_estimators_never_aggregate_worse_under_nlos_and_bursts() {
    // Fault classes by index in `matrix`: 2 = nlos-multipath,
    // 5 = impulsive-burst.
    for (class, name) in [(2usize, "nlos-multipath"), (5usize, "impulsive-burst")] {
        let errors: RefCell<[Vec<f64>; 3]> = RefCell::new([Vec::new(), Vec::new(), Vec::new()]);
        let contenders = [
            TdoaEstimator::PlainXcorr,
            TdoaEstimator::GccPhat,
            TdoaEstimator::SubbandCoherence,
        ];
        let strat = (
            f64_range(2.0, 4.0),
            f64_range(0.5, 1.0),
            usize_range(0, 999),
        );
        let engine = RefCell::new(SessionEngine::new(HyperEarConfig::galaxy_s4()).unwrap());
        prop::check(
            "weighting_estimators_never_aggregate_worse",
            strat,
            |&(range, intensity, seed)| {
                let mut engine = engine.borrow_mut();
                let spec = spec(range);
                let seed = 80_000 + class as u64 * 1_000 + seed as u64;
                let mut rec = spec.render(seed).expect("render");
                FaultPlan::new(seed ^ 0xE571)
                    .with(matrix(intensity)[class])
                    .apply(&mut rec)
                    .expect("fault plan");
                for (k, est) in contenders.iter().enumerate() {
                    let mut out = SessionResult::empty();
                    if engine
                        .run_estimated_into(&input(&rec), *est, &mut out)
                        .is_ok()
                    {
                        if let Some(e) = floor_error(&rec, &out) {
                            errors.borrow_mut()[k].push(e);
                        }
                    }
                }
                prop::pass()
            },
        );
        let errors = errors.into_inner();
        let median = |v: &[f64]| -> f64 {
            let mut s = v.to_vec();
            s.sort_by(f64::total_cmp);
            s[s.len() / 2]
        };
        let plain = median(&errors[0]);
        let phat = median(&errors[1]);
        let coherence = median(&errors[2]);
        // One TDoA sample of slack: medians of small aggregates jitter by
        // a quantization step even when the estimator is strictly better.
        assert!(
            phat <= plain + TDOA_FLOOR_M,
            "{name}: gcc-phat median {phat:.3} worse than plain {plain:.3}"
        );
        assert!(
            coherence <= plain + TDOA_FLOOR_M,
            "{name}: coherence median {coherence:.3} worse than plain {plain:.3}"
        );
        println!(
            "estimator-contract: {name} medians (plain {plain:.3} m, gcc-phat {phat:.3} m, \
             coherence {coherence:.3} m) no worse than plain: HELD"
        );
    }
}
