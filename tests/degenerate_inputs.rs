//! Degenerate-input audit tier: every panic-prone site on the session
//! path must surface as a typed error (`HyperEarError` / `ImuError` /
//! `SimError`) or a typed `SessionOutcome::Failed` — never a panic.
//!
//! These are the regression tests for the unwrap/panic audit: empty
//! beacon sets, zero-length traces, all-rejected slides, and invalid
//! fault plans all flow through the public API and come back as values.

use hyperear::asp::BeaconArrival;
use hyperear::config::{Aggregation, HyperEarConfig};
use hyperear::localize::{localize, LocalizeScratch};
use hyperear::metrics::Cdf;
use hyperear::pipeline::{SessionEngine, SessionInput, SessionOutcome};
use hyperear::sfo::estimate_period;
use hyperear::tdoa::augmented_tdoa;
use hyperear::HyperEarError;
use hyperear_geom::Vec3;
use hyperear_imu::analyze::{analyze_session, SessionConfig};
use hyperear_imu::displacement::segment_displacement;
use hyperear_imu::rotation::integrate_rate;
use hyperear_sim::environment::Environment;
use hyperear_sim::fault::{Fault, FaultPlan};
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::ScenarioBuilder;

const FS_AUDIO: f64 = 44_100.0;
const FS_IMU: f64 = 100.0;

fn input<'a>(
    left: &'a [f64],
    right: &'a [f64],
    accel: &'a [Vec3],
    gyro: &'a [Vec3],
) -> SessionInput<'a> {
    SessionInput {
        audio_sample_rate: FS_AUDIO,
        left,
        right,
        imu_sample_rate: FS_IMU,
        accel,
        gyro,
    }
}

/// A stationary phone's worth of plausible IMU data (gravity only).
fn resting_imu(n: usize) -> (Vec<Vec3>, Vec<Vec3>) {
    (vec![Vec3::new(0.0, 0.0, -9.806_65); n], vec![Vec3::ZERO; n])
}

#[test]
fn empty_and_mismatched_session_inputs_are_typed_errors() {
    let mut engine = SessionEngine::new(HyperEarConfig::galaxy_s4()).unwrap();
    let (accel, gyro) = resting_imu(600);
    let tone: Vec<f64> = (0..44_100).map(|i| (i as f64 * 0.3).sin()).collect();

    // Empty audio: the DSP chain must reject it, not index into it.
    let empty: Vec<f64> = Vec::new();
    assert!(engine.run(&input(&empty, &empty, &accel, &gyro)).is_err());

    // Mismatched channel lengths.
    let err = engine
        .run(&input(&tone, &tone[..100], &accel, &gyro))
        .unwrap_err();
    assert!(
        matches!(err, HyperEarError::InvalidParameter { .. }),
        "{err}"
    );

    // Zero-length IMU traces alongside valid audio.
    let no_imu: Vec<Vec3> = Vec::new();
    assert!(engine.run(&input(&tone, &tone, &no_imu, &no_imu)).is_err());

    // Mismatched accel/gyro lengths.
    assert!(engine
        .run(&input(&tone, &tone, &accel, &gyro[..10]))
        .is_err());

    // Non-positive sample rates.
    let mut bad = input(&tone, &tone, &accel, &gyro);
    bad.audio_sample_rate = 0.0;
    assert!(engine.run(&bad).is_err());
    let mut bad = input(&tone, &tone, &accel, &gyro);
    bad.imu_sample_rate = -1.0;
    assert!(engine.run(&bad).is_err());
}

#[test]
fn monitored_pipeline_fails_typed_on_every_degenerate_input() {
    let mut engine = SessionEngine::new(HyperEarConfig::galaxy_s4()).unwrap();
    let (accel, gyro) = resting_imu(600);
    let silence = vec![0.0; 88_200];
    let tone: Vec<f64> = (0..44_100).map(|i| (i as f64 * 0.3).sin()).collect();
    let empty_f: Vec<f64> = Vec::new();
    let empty_v: Vec<Vec3> = Vec::new();

    let cases: Vec<(&str, SessionInput<'_>)> = vec![
        ("empty audio", input(&empty_f, &empty_f, &accel, &gyro)),
        (
            "mismatched channels",
            input(&tone, &tone[..1_000], &accel, &gyro),
        ),
        (
            "silence (no beacons)",
            input(&silence, &silence, &accel, &gyro),
        ),
        ("tone (no beacons)", input(&tone, &tone, &accel, &gyro)),
        ("empty imu", input(&tone, &tone, &empty_v, &empty_v)),
        (
            "one imu sample",
            input(&tone, &tone, &accel[..1], &gyro[..1]),
        ),
    ];
    for (label, case) in cases {
        match engine.run_monitored(&case) {
            SessionOutcome::Failed { .. } => {}
            other => panic!("{label}: expected Failed, got {other:?}"),
        }
    }
}

#[test]
fn component_apis_reject_empty_inputs() {
    // Empty beacon sets at every acoustic stage.
    assert!(estimate_period(&[], &[(0.0, 1.0)], 0.2).is_err());
    assert!(augmented_tdoa(&[], &[], (0.0, 1.0), (2.0, 3.0), 0.2, 343.0, 3).is_err());
    let one = [BeaconArrival {
        time: 0.1,
        strength: 1.0,
    }];
    assert!(augmented_tdoa(&one, &one, (0.0, 1.0), (2.0, 3.0), 0.2, 343.0, 3).is_err());

    // Empty geometry sets at the solver, allocating and scratch forms.
    assert!(localize(&[], Aggregation::Median).is_err());
    assert!(hyperear::localize::localize_with(
        &[],
        Aggregation::Joint,
        &mut LocalizeScratch::new()
    )
    .is_err());

    // Zero-length and too-short inertial traces.
    assert!(analyze_session(&[], &[], FS_IMU, &SessionConfig::default()).is_err());
    assert!(segment_displacement(&[], FS_IMU).is_err());
    assert!(segment_displacement(&[1.0], FS_IMU).is_err());
    assert!(integrate_rate(&[], FS_IMU).is_err());
    assert!(integrate_rate(&[1.0, 2.0], 0.0).is_err());

    // Empty metric inputs.
    assert!(Cdf::new(&[]).is_err());
    assert!(hyperear::metrics::stats(&[]).is_err());
}

#[test]
fn invalid_fault_plans_are_typed_sim_errors() {
    let mut rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::anechoic())
        .speaker_range(2.0)
        .slides(1)
        .seed(7)
        .render()
        .unwrap();
    for fault in [
        Fault::BeaconDropout { probability: 1.5 },
        Fault::MicGainImbalance {
            right_gain_db: f64::NAN,
        },
        Fault::ImuSampleGaps {
            probability: 0.01,
            max_gap: 0,
        },
    ] {
        let plan = FaultPlan::new(1).with(fault);
        assert!(plan.apply(&mut rec).is_err(), "{fault:?} accepted");
    }
}
