//! Degenerate-input audit tier: every panic-prone site on the session
//! path must surface as a typed error (`HyperEarError` / `ImuError` /
//! `SimError`) or a typed `SessionOutcome::Failed` — never a panic.
//!
//! These are the regression tests for the unwrap/panic audit: empty
//! beacon sets, zero-length traces, all-rejected slides, and invalid
//! fault plans all flow through the public API and come back as values.

use hyperear::asp::BeaconArrival;
use hyperear::config::{Aggregation, HyperEarConfig};
use hyperear::localize::{localize, LocalizeScratch};
use hyperear::metrics::Cdf;
use hyperear::pipeline::{SessionEngine, SessionInput, SessionOutcome};
use hyperear::sfo::estimate_period;
use hyperear::stream::{StreamConfig, StreamError, StreamService};
use hyperear::tdoa::augmented_tdoa;
use hyperear::HyperEarError;
use hyperear_geom::Vec3;
use hyperear_imu::analyze::{analyze_session, SessionConfig};
use hyperear_imu::displacement::segment_displacement;
use hyperear_imu::rotation::integrate_rate;
use hyperear_sim::environment::Environment;
use hyperear_sim::fault::{Fault, FaultPlan};
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::ScenarioBuilder;
use hyperear_util::pool::Pool;
use std::sync::Arc;

const FS_AUDIO: f64 = 44_100.0;
const FS_IMU: f64 = 100.0;

fn input<'a>(
    left: &'a [f64],
    right: &'a [f64],
    accel: &'a [Vec3],
    gyro: &'a [Vec3],
) -> SessionInput<'a> {
    SessionInput {
        audio_sample_rate: FS_AUDIO,
        left,
        right,
        imu_sample_rate: FS_IMU,
        accel,
        gyro,
    }
}

/// A stationary phone's worth of plausible IMU data (gravity only).
fn resting_imu(n: usize) -> (Vec<Vec3>, Vec<Vec3>) {
    (vec![Vec3::new(0.0, 0.0, -9.806_65); n], vec![Vec3::ZERO; n])
}

#[test]
fn empty_and_mismatched_session_inputs_are_typed_errors() {
    let mut engine = SessionEngine::new(HyperEarConfig::galaxy_s4()).unwrap();
    let (accel, gyro) = resting_imu(600);
    let tone: Vec<f64> = (0..44_100).map(|i| (i as f64 * 0.3).sin()).collect();

    // Empty audio: the DSP chain must reject it, not index into it.
    let empty: Vec<f64> = Vec::new();
    assert!(engine.run(&input(&empty, &empty, &accel, &gyro)).is_err());

    // Mismatched channel lengths.
    let err = engine
        .run(&input(&tone, &tone[..100], &accel, &gyro))
        .unwrap_err();
    assert!(
        matches!(err, HyperEarError::InvalidParameter { .. }),
        "{err}"
    );

    // Zero-length IMU traces alongside valid audio.
    let no_imu: Vec<Vec3> = Vec::new();
    assert!(engine.run(&input(&tone, &tone, &no_imu, &no_imu)).is_err());

    // Mismatched accel/gyro lengths.
    assert!(engine
        .run(&input(&tone, &tone, &accel, &gyro[..10]))
        .is_err());

    // Non-positive sample rates.
    let mut bad = input(&tone, &tone, &accel, &gyro);
    bad.audio_sample_rate = 0.0;
    assert!(engine.run(&bad).is_err());
    let mut bad = input(&tone, &tone, &accel, &gyro);
    bad.imu_sample_rate = -1.0;
    assert!(engine.run(&bad).is_err());
}

#[test]
fn monitored_pipeline_fails_typed_on_every_degenerate_input() {
    let mut engine = SessionEngine::new(HyperEarConfig::galaxy_s4()).unwrap();
    let (accel, gyro) = resting_imu(600);
    let silence = vec![0.0; 88_200];
    let tone: Vec<f64> = (0..44_100).map(|i| (i as f64 * 0.3).sin()).collect();
    let empty_f: Vec<f64> = Vec::new();
    let empty_v: Vec<Vec3> = Vec::new();

    let cases: Vec<(&str, SessionInput<'_>)> = vec![
        ("empty audio", input(&empty_f, &empty_f, &accel, &gyro)),
        (
            "mismatched channels",
            input(&tone, &tone[..1_000], &accel, &gyro),
        ),
        (
            "silence (no beacons)",
            input(&silence, &silence, &accel, &gyro),
        ),
        ("tone (no beacons)", input(&tone, &tone, &accel, &gyro)),
        ("empty imu", input(&tone, &tone, &empty_v, &empty_v)),
        (
            "one imu sample",
            input(&tone, &tone, &accel[..1], &gyro[..1]),
        ),
    ];
    for (label, case) in cases {
        match engine.run_monitored(&case) {
            SessionOutcome::Failed { .. } => {}
            other => panic!("{label}: expected Failed, got {other:?}"),
        }
    }
}

#[test]
fn component_apis_reject_empty_inputs() {
    // Empty beacon sets at every acoustic stage.
    assert!(estimate_period(&[], &[(0.0, 1.0)], 0.2).is_err());
    assert!(augmented_tdoa(&[], &[], (0.0, 1.0), (2.0, 3.0), 0.2, 343.0, 3).is_err());
    let one = [BeaconArrival {
        time: 0.1,
        strength: 1.0,
    }];
    assert!(augmented_tdoa(&one, &one, (0.0, 1.0), (2.0, 3.0), 0.2, 343.0, 3).is_err());

    // Empty geometry sets at the solver, allocating and scratch forms.
    assert!(localize(&[], Aggregation::Median).is_err());
    assert!(hyperear::localize::localize_with(
        &[],
        Aggregation::Joint,
        &mut LocalizeScratch::new()
    )
    .is_err());

    // Zero-length and too-short inertial traces.
    assert!(analyze_session(&[], &[], FS_IMU, &SessionConfig::default()).is_err());
    assert!(segment_displacement(&[], FS_IMU).is_err());
    assert!(segment_displacement(&[1.0], FS_IMU).is_err());
    assert!(integrate_rate(&[], FS_IMU).is_err());
    assert!(integrate_rate(&[1.0, 2.0], 0.0).is_err());

    // Empty metric inputs.
    assert!(Cdf::new(&[]).is_err());
    assert!(hyperear::metrics::stats(&[]).is_err());
}

/// One-shot reference for a (possibly truncated) recording slice.
fn one_shot_outcome(
    rec: &hyperear_sim::scenario::Recording,
    audio_samples: usize,
) -> SessionOutcome {
    let mut engine = SessionEngine::new(HyperEarConfig::galaxy_s4()).unwrap();
    engine.run_monitored(&SessionInput {
        audio_sample_rate: rec.audio.sample_rate,
        left: &rec.audio.left[..audio_samples],
        right: &rec.audio.right[..audio_samples],
        imu_sample_rate: rec.imu.sample_rate,
        accel: &rec.imu.accel,
        gyro: &rec.imu.gyro,
    })
}

/// A streaming service sized for `rec` with one session slot.
fn stream_service(rec: &hyperear_sim::scenario::Recording) -> StreamService {
    StreamService::new(
        HyperEarConfig::galaxy_s4(),
        StreamConfig {
            max_sessions: 1,
            ring_capacity: 8_192,
            max_samples: rec.audio.left.len(),
            max_imu_samples: rec.imu.accel.len(),
        },
        Arc::new(Pool::new(1)),
    )
    .unwrap()
}

#[test]
fn streaming_degenerate_chunkings_match_one_shot() {
    let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::room_quiet())
        .speaker_range(2.5)
        .slides(2)
        .seed(31)
        .render()
        .unwrap();
    let mut svc = stream_service(&rec);

    // Zero-length chunks sprinkled through the stream, plus a chunk
    // straddling a slide boundary (one giant push covering the middle
    // of the capture, fed around two tiny edge pushes), must not
    // change the outcome.
    let reference = one_shot_outcome(&rec, rec.audio.left.len());
    assert!(reference.is_usable());
    let id = svc
        .open(rec.audio.sample_rate, rec.imu.sample_rate)
        .unwrap();
    svc.push_imu(id, &rec.imu.accel, &rec.imu.gyro).unwrap();
    svc.push_imu(id, &[], &[]).unwrap();
    let n = rec.audio.left.len();
    let cuts = [0usize, 3, n / 2, n - 5, n]; // windows of wildly uneven size
    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        svc.push_audio(id, &[], &[]).unwrap(); // zero-length chunk
        let mut pos = a;
        while pos < b {
            let len = (b - pos).min(8_192);
            match svc.push_audio(
                id,
                &rec.audio.left[pos..pos + len],
                &rec.audio.right[pos..pos + len],
            ) {
                Ok(()) => pos += len,
                Err(StreamError::Shed { .. }) => svc.pump(),
                Err(e) => panic!("unexpected: {e}"),
            }
        }
    }
    let mut out = SessionOutcome::idle();
    svc.finish(id, &mut out).unwrap();
    assert_eq!(out, reference);

    // A capture that ends mid-beacon (truncated just after the first
    // beacons) matches the one-shot engine on the same prefix —
    // typically a typed Failed(InsufficientBeacons), never a panic.
    let cut = rec.audio.left.len() / 6;
    let truncated_reference = one_shot_outcome(&rec, cut);
    let id = svc
        .open(rec.audio.sample_rate, rec.imu.sample_rate)
        .unwrap();
    svc.push_imu(id, &rec.imu.accel, &rec.imu.gyro).unwrap();
    let mut pos = 0;
    while pos < cut {
        let len = (cut - pos).min(1_000);
        match svc.push_audio(
            id,
            &rec.audio.left[pos..pos + len],
            &rec.audio.right[pos..pos + len],
        ) {
            Ok(()) => pos += len,
            Err(StreamError::Shed { .. }) => svc.pump(),
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    svc.finish(id, &mut out).unwrap();
    assert_eq!(out, truncated_reference);

    // An empty streamed capture fails typed like the one-shot engine.
    let id = svc
        .open(rec.audio.sample_rate, rec.imu.sample_rate)
        .unwrap();
    svc.finish(id, &mut out).unwrap();
    assert!(matches!(out, SessionOutcome::Failed { .. }));
}

#[test]
fn streaming_misuse_is_typed_never_a_panic() {
    let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::anechoic())
        .speaker_range(2.0)
        .slides(1)
        .seed(32)
        .render()
        .unwrap();
    let mut svc = stream_service(&rec);
    let mut out = SessionOutcome::idle();

    // Ingestion into a session that already failed (capacity overrun)
    // reports the sticky typed reason on every later call.
    let id = svc
        .open(rec.audio.sample_rate, rec.imu.sample_rate)
        .unwrap();
    let too_long = vec![0.0; rec.audio.left.len() + 1];
    match svc.push_audio(id, &too_long, &too_long) {
        Err(StreamError::SessionFailed(HyperEarError::CapacityExceeded { .. })) => {}
        other => panic!("expected sticky capacity failure, got {other:?}"),
    }
    assert!(matches!(
        svc.push_audio(id, &[0.0], &[0.0]),
        Err(StreamError::SessionFailed(_))
    ));
    svc.finish(id, &mut out).unwrap();
    match &out {
        SessionOutcome::Failed { reason, .. } => {
            assert!(matches!(reason, HyperEarError::CapacityExceeded { .. }));
        }
        other => panic!("expected Failed, got {other:?}"),
    }

    // The retired id is dead; a second session reuses the slot safely.
    assert_eq!(
        svc.push_audio(id, &[0.0], &[0.0]),
        Err(StreamError::UnknownSession)
    );
    assert_eq!(svc.request_finish(id), Err(StreamError::UnknownSession));
    let id2 = svc
        .open(rec.audio.sample_rate, rec.imu.sample_rate)
        .unwrap();
    assert!(svc
        .push_audio(id2, &rec.audio.left[..100], &rec.audio.right[..100])
        .is_ok());

    // Pushes after a finish request are refused typed; the finish
    // itself is idempotent.
    svc.request_finish(id2).unwrap();
    svc.request_finish(id2).unwrap();
    assert_eq!(
        svc.push_audio(id2, &[0.0], &[0.0]),
        Err(StreamError::FinishPending)
    );
    svc.pump();
    assert!(svc.try_take_outcome(id2, &mut out).unwrap());
    assert_eq!(
        svc.try_take_outcome(id2, &mut out),
        Err(StreamError::UnknownSession)
    );
}

/// Estimator bank: spectrally-degenerate inputs are graceful no-ops or
/// typed errors at the DSP layer, and typed session failures (or clean
/// fallbacks) at the pipeline layer — never NaN, never a panic.
#[test]
fn degenerate_estimator_inputs_are_typed_or_graceful() {
    use hyperear_dsp::estimator::{
        gcc_phat_with, mcci_fuse_channel_into, mcci_offsets_with, subband_coherence_with,
        EstimatorScratch,
    };

    let mut scratch = EstimatorScratch::new();

    // All-zero correlation under PHAT whitening: the division floor has
    // nothing to normalize against, so the sequence passes through
    // unchanged instead of turning into NaNs.
    let mut zeros = vec![0.0f64; 1_024];
    gcc_phat_with(&mut zeros, 0.15, &mut scratch).unwrap();
    assert!(
        zeros.iter().all(|&v| v == 0.0),
        "whitened silence is silence"
    );

    // Out-of-range whitening floors are typed parameter errors.
    let mut pulse = vec![0.0f64; 256];
    pulse[40] = 1.0;
    assert!(gcc_phat_with(&mut pulse.clone(), 0.0, &mut scratch).is_err());
    assert!(gcc_phat_with(&mut pulse.clone(), 1.0, &mut scratch).is_err());
    assert!(gcc_phat_with(&mut Vec::new(), 0.15, &mut scratch).is_err());

    // Single-band coherence collapses to a pure band-pass (the noise
    // reference degenerates to the band's own power) — finite output,
    // no NaN, and the all-zero case is again a no-op.
    let mut band = pulse.clone();
    subband_coherence_with(&mut band, FS_AUDIO, 1_000.0, 20_000.0, 1, &mut scratch).unwrap();
    assert!(band.iter().all(|v| v.is_finite()));
    let mut silent = vec![0.0f64; 512];
    subband_coherence_with(&mut silent, FS_AUDIO, 1_000.0, 20_000.0, 1, &mut scratch).unwrap();
    assert!(silent.iter().all(|&v| v == 0.0));
    // Inverted/over-Nyquist band edges and zero band count are typed.
    let mut b = pulse.clone();
    assert!(subband_coherence_with(&mut b, FS_AUDIO, 5_000.0, 1_000.0, 4, &mut scratch).is_err());
    assert!(subband_coherence_with(&mut b, FS_AUDIO, 1_000.0, 90_000.0, 4, &mut scratch).is_err());
    assert!(subband_coherence_with(&mut b, FS_AUDIO, 1_000.0, 20_000.0, 0, &mut scratch).is_err());

    // MCCI with a dead channel: the offset solver marks it dead and
    // reports too few live channels for fusion instead of aligning
    // against silence; fusing around the dead channel stays finite.
    let live_corr: Vec<f64> = (0..512).map(|i| if i == 100 { 1.0 } else { 0.0 }).collect();
    let dead_corr = vec![0.0f64; 512];
    let mut offsets = Vec::new();
    let mut live = Vec::new();
    let n_live = mcci_offsets_with(&[&live_corr, &dead_corr], 32, &mut offsets, &mut live).unwrap();
    assert_eq!(n_live, 1, "dead channel excluded from the solve");
    assert_eq!(live, [true, false]);
    let mut fused = Vec::new();
    mcci_fuse_channel_into(&[&live_corr, &dead_corr], &offsets, &live, 0, &mut fused).unwrap();
    assert!(fused.iter().all(|v| v.is_finite()));
}

/// Estimator bank at the session layer: silence and dead channels flow
/// through every estimator as typed failures or graceful fallbacks.
#[test]
fn degenerate_sessions_fail_typed_under_every_estimator() {
    use hyperear::config::TdoaEstimator;
    use hyperear::pipeline::SessionResult;

    let mut engine = SessionEngine::new(HyperEarConfig::galaxy_s4()).unwrap();
    let (accel, gyro) = resting_imu(600);
    let silence = vec![0.0f64; 88_200];

    // Silence (all-zero spectra end to end) under every estimator: the
    // beacon detector finds nothing and the session fails typed.
    for est in TdoaEstimator::ALL {
        let mut out = SessionResult::empty();
        let err = engine
            .run_estimated_into(&input(&silence, &silence, &accel, &gyro), est, &mut out)
            .unwrap_err();
        assert!(
            !matches!(err, HyperEarError::InvalidParameter { .. }),
            "{est:?} on silence: data-dependent failure, not a parameter error: {err}"
        );
    }

    // A real capture with one dead (all-zero) channel: MCCI cannot fuse
    // (one live channel) and falls back to per-channel extraction, which
    // fails typed on the silent side — never a panic.
    let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::anechoic())
        .speaker_range(2.0)
        .slides(1)
        .seed(33)
        .render()
        .unwrap();
    let dead = vec![0.0f64; rec.audio.right.len()];
    let mut session = input(&rec.audio.left, &dead, &rec.imu.accel, &rec.imu.gyro);
    session.audio_sample_rate = rec.audio.sample_rate;
    session.imu_sample_rate = rec.imu.sample_rate;
    for est in TdoaEstimator::ALL {
        let mut out = SessionResult::empty();
        assert!(
            engine.run_estimated_into(&session, est, &mut out).is_err(),
            "{est:?} with a dead channel must fail typed"
        );
    }

    // Single-band coherence at the policy level: a degenerate band count
    // of 1 is a pure band-pass, and a healthy session still localizes.
    let mut cfg = HyperEarConfig::galaxy_s4();
    cfg.estimator.coherence_bands = 1;
    let mut single_band = SessionEngine::new(cfg).unwrap();
    let healthy = input(
        &rec.audio.left,
        &rec.audio.right,
        &rec.imu.accel,
        &rec.imu.gyro,
    );
    let mut healthy_in = healthy;
    healthy_in.audio_sample_rate = rec.audio.sample_rate;
    healthy_in.imu_sample_rate = rec.imu.sample_rate;
    let mut out = SessionResult::empty();
    single_band
        .run_estimated_into(&healthy_in, TdoaEstimator::SubbandCoherence, &mut out)
        .expect("single-band coherence degrades to a band-pass, not an error");
    let upper = out.upper.expect("single-band session still localizes");
    assert!(upper.position.x.is_finite() && upper.position.y.is_finite());
}

#[test]
fn invalid_fault_plans_are_typed_sim_errors() {
    let mut rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::anechoic())
        .speaker_range(2.0)
        .slides(1)
        .seed(7)
        .render()
        .unwrap();
    for fault in [
        Fault::BeaconDropout { probability: 1.5 },
        Fault::MicGainImbalance {
            right_gain_db: f64::NAN,
        },
        Fault::ImuSampleGaps {
            probability: 0.01,
            max_gap: 0,
        },
    ] {
        let plan = FaultPlan::new(1).with(fault);
        assert!(plan.apply(&mut rec).is_err(), "{fault:?} accepted");
    }
}

/// Array sessions: config-level mismatches are typed errors, and
/// data-dependent DOA failures degrade softly — `bearing: None` on an
/// otherwise usable outcome, never a panic or a failed session.
#[test]
fn degenerate_array_inputs_are_typed_or_soft() {
    use hyperear::config::DoaFrontEnd;
    use hyperear::pipeline::ArraySessionInput;
    use hyperear_geom::{GeomError, MicArray, Vec2};

    // Geometry layer: coincident and collinear placements are typed.
    let stacked = MicArray::from_positions(&[Vec2::ZERO, Vec2::ZERO, Vec2::new(0.0, 0.1)]).unwrap();
    assert!(matches!(
        stacked.validate(),
        Err(GeomError::CoincidentMics { .. })
    ));
    let line = MicArray::from_positions(&[Vec2::ZERO, Vec2::new(0.0, 0.07), Vec2::new(0.0, 0.14)])
        .unwrap();
    assert!(matches!(
        line.validate_planar(),
        Err(GeomError::CollinearMics { .. })
    ));

    // Config layer: a planar front-end on a collinear array cannot even
    // build an engine.
    let mut collinear_cfg = HyperEarConfig::for_array(line);
    collinear_cfg.doa_front_end = DoaFrontEnd::Planar;
    assert!(matches!(
        SessionEngine::new(collinear_cfg),
        Err(HyperEarError::Geom(GeomError::CollinearMics { .. }))
    ));

    // Session layer: channel-count and channel-length mismatches are
    // typed errors through the array entry point.
    let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::anechoic())
        .speaker_range(2.0)
        .slides(1)
        .seed(11)
        .render()
        .unwrap();
    let mut engine = SessionEngine::new(HyperEarConfig::galaxy_s4()).unwrap();
    let three: [&[f64]; 3] = [&rec.audio.left, &rec.audio.right, &rec.audio.left];
    let base = ArraySessionInput {
        audio_sample_rate: rec.audio.sample_rate,
        channels: &three,
        imu_sample_rate: rec.imu.sample_rate,
        accel: &rec.imu.accel,
        gyro: &rec.imu.gyro,
    };
    assert!(matches!(
        engine.run_array(&base),
        Err(HyperEarError::InvalidParameter { .. })
    ));

    let array = MicArray::triangle(0.1366);
    let tri_rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::anechoic())
        .speaker_range(2.0)
        .slides(1)
        .seed(12)
        .render_array(&array)
        .unwrap();
    let mut tri_engine = SessionEngine::new(HyperEarConfig::for_array(array)).unwrap();
    let short: Vec<f64> = tri_rec.audio.channels[2][..1_000].to_vec();
    let ragged: [&[f64]; 3] = [
        &tri_rec.audio.channels[0],
        &tri_rec.audio.channels[1],
        &short,
    ];
    let mut ragged_input = base;
    ragged_input.channels = &ragged;
    assert!(matches!(
        tri_engine.run_array(&ragged_input),
        Err(HyperEarError::InvalidParameter { .. })
    ));

    // Data layer: a silent extra channel starves the planar front-end
    // of pair delays, but the session itself (which only needs the
    // primary pair) stays usable — the bearing prior is simply absent.
    let silent = vec![0.0f64; tri_rec.audio.channels[2].len()];
    let muted: [&[f64]; 3] = [
        &tri_rec.audio.channels[0],
        &tri_rec.audio.channels[1],
        &silent,
    ];
    let mut muted_input = base;
    muted_input.channels = &muted;
    let outcome = tri_engine.run_array_monitored(&muted_input);
    let result = outcome.result().expect("session survives a dead channel");
    assert!(result.bearing.is_none(), "no prior from starved front-end");
    assert!(result.pair_delays.is_empty());
}
