//! Integration tests for the future-work extensions: inaudible beacons
//! and non-line-of-sight operation.

use hyperear::config::HyperEarConfig;
use hyperear::pipeline::{HyperEar, SessionInput, SessionResult};
use hyperear::HyperEarError;
use hyperear_sim::environment::Environment;
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::{Recording, ScenarioBuilder};
use hyperear_sim::speaker::SpeakerModel;

fn run(rec: &Recording, config: HyperEarConfig) -> Result<SessionResult, HyperEarError> {
    HyperEar::new(config)?.run(&SessionInput {
        audio_sample_rate: rec.audio.sample_rate,
        left: &rec.audio.left,
        right: &rec.audio.right,
        imu_sample_rate: rec.imu.sample_rate,
        accel: &rec.imu.accel,
        gyro: &rec.imu.gyro,
    })
}

fn inaudible_config() -> HyperEarConfig {
    let speaker = SpeakerModel::inaudible();
    let mut config = HyperEarConfig::galaxy_s4();
    config.beacon.f0 = speaker.chirp_f0;
    config.beacon.f1 = speaker.chirp_f1;
    config.beacon.duration = speaker.chirp_duration;
    // High-band beacons need carrier-free peak detection.
    config.detection.envelope_detection = true;
    config
}

#[test]
fn inaudible_beacon_localizes_at_close_range() {
    // Under the 3 dB/kHz roll-off the near-ultrasonic beacon still works
    // at 2 m, just with degraded margins.
    let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::room_quiet())
        .speaker_model(SpeakerModel::inaudible())
        .speaker_range(2.0)
        .slides(5)
        .seed(6100)
        .render()
        .expect("render");
    let result = run(&rec, inaudible_config()).expect("session");
    let est = result.upper.expect("estimate");
    // Accuracy is an order of magnitude worse than the audible beacon's
    // (the HF roll-off narrows the effective bandwidth and widens the
    // envelope lobe), but the system still functions — the ext-inaudible
    // experiment quantifies the degradation properly over many sessions.
    assert!(
        (est.range - 2.0).abs() < 1.0,
        "inaudible estimate {:.2} m",
        est.range
    );
}

#[test]
fn audible_config_cannot_hear_inaudible_beacon() {
    // A pipeline configured for the 2-6.4 kHz band must not detect the
    // 16-19.5 kHz beacon (its band-pass removes it) — and must fail with
    // the insufficient-beacons error, not a wrong answer.
    let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::room_quiet())
        .speaker_model(SpeakerModel::inaudible())
        .speaker_range(2.0)
        .slides(2)
        .seed(6200)
        .render()
        .expect("render");
    match run(&rec, HyperEarConfig::galaxy_s4()) {
        Err(HyperEarError::InsufficientBeacons { .. }) => {}
        other => panic!("expected InsufficientBeacons, got {other:?}"),
    }
}

#[test]
fn obstruction_degrades_accuracy_and_strength() {
    let clear = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::room_quiet())
        .speaker_range(5.0)
        .slides(3)
        .seed(6300)
        .render()
        .expect("render");
    let blocked = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::room_quiet())
        .speaker_range(5.0)
        .slides(3)
        .direct_path_attenuation_db(30.0)
        .seed(6300)
        .render()
        .expect("render");
    let r_clear = run(&clear, HyperEarConfig::galaxy_s4()).expect("clear session");
    let r_blocked = run(&blocked, HyperEarConfig::galaxy_s4()).expect("blocked session");
    // Accuracy degrades...
    let e_clear = (r_clear.upper.expect("clear est").range - 5.0).abs();
    let e_blocked = (r_blocked.upper.expect("blocked est").range - 5.0).abs();
    assert!(
        e_blocked > e_clear,
        "blocked {e_blocked:.3} should exceed clear {e_clear:.3}"
    );
    // ...and the strength diagnostic flags the obstruction.
    assert!(
        r_blocked.mean_beacon_strength < 0.7 * r_clear.mean_beacon_strength,
        "strength {:.3} vs {:.3}",
        r_blocked.mean_beacon_strength,
        r_clear.mean_beacon_strength
    );
}

#[test]
fn mild_obstruction_is_tolerated() {
    // 6 dB of direct-path loss: detection margin shrinks but localization
    // stays centimetre-level (the direct path still dominates).
    let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::room_quiet())
        .speaker_range(4.0)
        .slides(3)
        .direct_path_attenuation_db(6.0)
        .seed(6400)
        .render()
        .expect("render");
    let result = run(&rec, HyperEarConfig::galaxy_s4()).expect("session");
    let est = result.upper.expect("estimate");
    assert!(
        (est.range - 4.0).abs() < 0.3,
        "estimate {:.2} under mild obstruction",
        est.range
    );
}
