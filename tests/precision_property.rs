//! Precision contract tier: property tests of the opt-in f32 pipeline
//! and the restructured (lane-friendly) f64 kernels.
//!
//! Three claims, checked over randomized scenarios rather than pinned
//! seeds:
//!
//! 1. **f64 restructuring is invisible.** The chunked/blocked kernel
//!    layouts introduced for autovectorization are bit-identical to the
//!    naive scalar loops they replaced — checked here for the zero-phase
//!    FIR over random designs and signals (the FFT/correlate layers pin
//!    the same property in their unit tests and conformance suites).
//! 2. **f32 clean sessions sit on the f64 reference.** On clean
//!    randomized ruler scenarios, a `Precision::F32` session reproduces
//!    the f64 session's per-slide TDoA within the pipeline's one-sample
//!    resolution floor (7.78 mm at 44.1 kHz).
//! 3. **f32 degrades no worse under faults.** Under seeded
//!    NLOS-multipath and impulsive-burst faults at matched intensity,
//!    the f32 pipeline's median floor error stays within two TDoA
//!    samples of the f64 pipeline's.
//!
//! `scripts/verify.sh --simd` runs this binary with `--nocapture` and
//! greps the `precision-contract: … HELD` lines.

use hyperear::config::{HyperEarConfig, Precision};
use hyperear::pipeline::{SessionEngine, SessionInput, SessionResult};
use hyperear_bench::harness::{floor_error, SessionSpec};
use hyperear_dsp::filter::FirFilter;
use hyperear_dsp::window::Window;
use hyperear_sim::fault::{matrix, FaultPlan};
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::Recording;
use hyperear_util::prop::{self, f64_range, usize_range};
use hyperear_util::prop_assert;
use std::cell::RefCell;

/// One TDoA sample at 44.1 kHz: 343 m/s / 44100 Hz = 7.78 mm — the
/// resolution floor of the whole augmented-TDoA chain, and the accuracy
/// envelope the f32 pipeline promises on clean sessions.
const TDOA_FLOOR_M: f64 = 343.0 / 44_100.0;

fn spec(range: f64) -> SessionSpec {
    SessionSpec {
        slides: 3,
        ..SessionSpec::ruler_2d(PhoneModel::galaxy_s4(), HyperEarConfig::galaxy_s4(), range)
    }
}

fn input(rec: &Recording) -> SessionInput<'_> {
    SessionInput {
        audio_sample_rate: rec.audio.sample_rate,
        left: &rec.audio.left,
        right: &rec.audio.right,
        imu_sample_rate: rec.imu.sample_rate,
        accel: &rec.imu.accel,
        gyro: &rec.imu.gyro,
    }
}

fn f32_config() -> HyperEarConfig {
    let mut c = HyperEarConfig::galaxy_s4();
    c.precision = Precision::F32;
    c
}

/// The blocked zero-phase FIR is bit-identical to the naive scalar loop
/// over random designs, signal lengths, and contents.
#[test]
fn blocked_fir_is_bit_identical_to_scalar_reference() {
    let strat = (
        usize_range(11, 201),
        usize_range(1, 3_000),
        usize_range(0, 999),
    );
    prop::check(
        "blocked_fir_is_bit_identical_to_scalar_reference",
        strat,
        |&(taps, n, seed)| {
            let taps = taps | 1; // FIR designs use odd tap counts
            let filter = FirFilter::band_pass(2_000.0, 6_400.0, 44_100.0, taps, Window::Hamming)
                .expect("design");
            let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (seed as u64) << 7;
            let signal: Vec<f64> = (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    2.0 * ((state >> 11) as f64 / (1u64 << 53) as f64) - 1.0
                })
                .collect();
            let blocked = filter.filter_zero_phase(&signal).expect("filter");
            // The historical scalar loop, verbatim: per-output sequential
            // accumulation over the taps with boundary checks.
            let t = filter.taps();
            let delay = (t.len() - 1) / 2;
            for (i, &b) in blocked.iter().enumerate() {
                let mut acc = 0.0;
                for (k, &tap) in t.iter().enumerate() {
                    if i + delay >= k && i + delay - k < n {
                        acc += tap * signal[i + delay - k];
                    }
                }
                prop_assert!(
                    acc.to_bits() == b.to_bits(),
                    "sample {i} differs: scalar {acc:e} vs blocked {b:e} \
                     (taps {taps}, n {n}, seed {seed})"
                );
            }
            prop::pass()
        },
    );
    println!("precision-contract: blocked f64 FIR bit-identical to the scalar loop: HELD");
}

/// On clean randomized scenarios, the f32 pipeline reproduces the f64
/// pipeline's per-slide TDoA within the one-sample resolution floor.
#[test]
fn f32_clean_sessions_stay_within_the_one_sample_floor() {
    let strat = (f64_range(2.0, 5.0), usize_range(0, 999));
    let engine64 = RefCell::new(SessionEngine::new(HyperEarConfig::galaxy_s4()).unwrap());
    let engine32 = RefCell::new(SessionEngine::new(f32_config()).unwrap());
    prop::check(
        "f32_clean_sessions_stay_within_the_one_sample_floor",
        strat,
        |&(range, seed)| {
            let spec = spec(range);
            let rec = spec.render(90_000 + seed as u64).expect("render");
            // A small fraction of random draws defeats even the f64
            // baseline (degenerate slide geometry); the property is
            // conditional on the baseline succeeding.
            let mut ref64 = SessionResult::empty();
            if engine64
                .borrow_mut()
                .run_into(&input(&rec), &mut ref64)
                .is_err()
            {
                return prop::pass();
            }
            let err64 = floor_error(&rec, &ref64).expect("f64 estimate");
            prop_assert!(
                err64 < 0.5,
                "f64 floor error {err64:.3} m at range {range:.2}"
            );
            let mut res32 = SessionResult::empty();
            let ran = engine32
                .borrow_mut()
                .run_into(&input(&rec), &mut res32)
                .is_ok();
            prop_assert!(ran, "f32 failed where f64 succeeded (seed {seed})");
            let err32 = floor_error(&rec, &res32).expect("f32 estimate");
            prop_assert!(
                err32 < 0.5,
                "f32 floor error {err32:.3} m at range {range:.2}"
            );
            // The sharp per-slide claim: same slides, and where both
            // produced a TDoA, single precision moved it by less than
            // one sample.
            prop_assert!(res32.slides.len() == ref64.slides.len());
            for (s, p) in res32.slides.iter().zip(&ref64.slides) {
                let (Some(st), Some(pt)) = (&s.tdoa, &p.tdoa) else {
                    continue;
                };
                let d1 = (st.delta_d1 - pt.delta_d1).abs();
                let d2 = (st.delta_d2 - pt.delta_d2).abs();
                prop_assert!(
                    d1 <= TDOA_FLOOR_M && d2 <= TDOA_FLOOR_M,
                    "f32 moved a clean slide TDoA by ({d1:.4}, {d2:.4}) m (seed {seed})"
                );
            }
            prop::pass()
        },
    );
    println!("precision-contract: f32 clean sessions within the 7.78 mm floor: HELD");
}

/// Under seeded NLOS-multipath and impulsive-burst faults, the f32
/// pipeline's aggregate accuracy stays within two TDoA samples of the
/// f64 pipeline's (median floor error over the drawn scenarios).
#[test]
fn f32_degrades_no_worse_than_f64_under_faults() {
    // Fault classes by index in `matrix`: 2 = nlos-multipath,
    // 5 = impulsive-burst.
    for (class, name) in [(2usize, "nlos-multipath"), (5usize, "impulsive-burst")] {
        let errors: RefCell<[Vec<f64>; 2]> = RefCell::new([Vec::new(), Vec::new()]);
        let strat = (
            f64_range(2.0, 4.0),
            f64_range(0.5, 1.0),
            usize_range(0, 999),
        );
        let engine64 = RefCell::new(SessionEngine::new(HyperEarConfig::galaxy_s4()).unwrap());
        let engine32 = RefCell::new(SessionEngine::new(f32_config()).unwrap());
        prop::check(
            "f32_degrades_no_worse_than_f64_under_faults",
            strat,
            |&(range, intensity, seed)| {
                let spec = spec(range);
                let seed = 95_000 + class as u64 * 1_000 + seed as u64;
                let mut rec = spec.render(seed).expect("render");
                FaultPlan::new(seed ^ 0xE571)
                    .with(matrix(intensity)[class])
                    .apply(&mut rec)
                    .expect("fault plan");
                for (k, engine) in [&engine64, &engine32].into_iter().enumerate() {
                    let mut out = SessionResult::empty();
                    if engine.borrow_mut().run_into(&input(&rec), &mut out).is_ok() {
                        if let Some(e) = floor_error(&rec, &out) {
                            errors.borrow_mut()[k].push(e);
                        }
                    }
                }
                prop::pass()
            },
        );
        let errors = errors.into_inner();
        let median = |v: &[f64]| -> f64 {
            let mut s = v.to_vec();
            s.sort_by(f64::total_cmp);
            s[s.len() / 2]
        };
        let m64 = median(&errors[0]);
        let m32 = median(&errors[1]);
        // Two TDoA samples of slack: one for the f32 path's own
        // quantization, one for median jitter over small aggregates.
        assert!(
            m32 <= m64 + 2.0 * TDOA_FLOOR_M,
            "{name}: f32 median {m32:.3} m worse than f64 median {m64:.3} m"
        );
        println!(
            "precision-contract: {name} medians (f64 {m64:.3} m, f32 {m32:.3} m) \
             within two samples: HELD"
        );
    }
}
