//! Ablation contrasts: disabling each signal-processing stage must hurt
//! in the way the paper's design narrative predicts.

use hyperear::config::{HyperEarConfig, Interpolation};
use hyperear::pipeline::{HyperEar, SessionInput, SessionResult};
use hyperear::HyperEarError;
use hyperear_sim::environment::Environment;
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::{Recording, ScenarioBuilder};

fn render(seed: u64) -> Recording {
    ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::room_quiet())
        .speaker_range(5.0)
        .slides(5)
        .seed(seed)
        .render()
        .expect("render")
}

fn run(rec: &Recording, config: HyperEarConfig) -> Result<SessionResult, HyperEarError> {
    HyperEar::new(config)?.run(&SessionInput {
        audio_sample_rate: rec.audio.sample_rate,
        left: &rec.audio.left,
        right: &rec.audio.right,
        imu_sample_rate: rec.imu.sample_rate,
        accel: &rec.imu.accel,
        gyro: &rec.imu.gyro,
    })
}

/// Ground truth expressed in the first slide's frame (x along the slide
/// axis from the midpoint of Mic1's travel, y the slant distance).
fn truth_position(rec: &Recording) -> hyperear_geom::Vec2 {
    let slide = rec.truth.motion.slides[0];
    let a = rec.truth.motion.mic1_position(slide.start_time);
    let b = rec.truth.motion.mic1_position(slide.end_time());
    let mid = (a + b) * 0.5;
    let axis = rec.truth.motion.axis;
    let d = rec.truth.speaker_position - mid;
    let along = d.x * axis.x + d.y * axis.y;
    let horiz_perp = -d.x * axis.y + d.y * axis.x;
    hyperear_geom::Vec2::new(along, (horiz_perp * horiz_perp + d.z * d.z).sqrt())
}

/// Mean 2D position error (the full Euclidean error the paper scores):
/// SFO bias is common to both microphones, so it cancels in the *range*
/// and shows up in the along-axis coordinate — range-only scoring would
/// hide it.
fn mean_error(config: &HyperEarConfig, seeds: &[u64]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0;
    for &seed in seeds {
        let rec = render(seed);
        if let Ok(result) = run(&rec, config.clone()) {
            if let Some(est) = result.upper {
                sum += (est.position - truth_position(&rec)).norm();
                n += 1;
            }
        }
    }
    assert!(n > 0, "no session succeeded for {config:?}");
    sum / n as f64
}

const SEEDS: [u64; 3] = [4101, 4102, 4103];

#[test]
fn sfo_correction_is_load_bearing() {
    // The speaker clock is ~23 ppm off and the ADC ~12 ppm: without the
    // estimated period, the augmented TDoA inherits n·T·ppm of error.
    let base = mean_error(&HyperEarConfig::galaxy_s4(), &SEEDS);
    let mut config = HyperEarConfig::galaxy_s4();
    config.sfo_correction = false;
    let without = mean_error(&config, &SEEDS);
    assert!(
        without > 3.0 * base,
        "sfo off should hurt: base {base:.3} vs without {without:.3}"
    );
}

#[test]
fn interpolation_improves_over_integer_peaks() {
    let base = mean_error(&HyperEarConfig::galaxy_s4(), &SEEDS);
    let mut config = HyperEarConfig::galaxy_s4();
    config.detection.interpolation = Interpolation::None;
    let without = mean_error(&config, &SEEDS);
    assert!(
        without > base,
        "integer peaks should be worse: base {base:.3} vs {without:.3}"
    );
}

#[test]
fn sinc_interpolation_is_at_least_as_good_as_parabolic_nearby() {
    let mut config = HyperEarConfig::galaxy_s4();
    config.detection.interpolation = Interpolation::Sinc;
    let sinc = mean_error(&config, &SEEDS);
    let parabolic = mean_error(&HyperEarConfig::galaxy_s4(), &SEEDS);
    // Not strictly ordered in noise; they must agree within the error
    // budget (both are sub-sample refiners).
    assert!(
        (sinc - parabolic).abs() < 0.2,
        "sinc {sinc:.3} vs parabolic {parabolic:.3}"
    );
}

#[test]
fn rotation_correction_matters_in_hand() {
    use hyperear_sim::volunteer::roster;
    let user = &roster()[4];
    let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::room_quiet())
        .speaker_range(5.0)
        .volunteer(user)
        .slides(5)
        .seed(4200)
        .render()
        .expect("render");
    let with = run(&rec, HyperEarConfig::galaxy_s4())
        .expect("with correction")
        .upper
        .expect("estimate")
        .range;
    let mut config = HyperEarConfig::galaxy_s4();
    config.rotation_correction = false;
    let err_with = (with - rec.truth.slant_distance_upper).abs();
    // A total failure, or no aggregated estimate at all, without the
    // correction also proves the point — only a *better* uncorrected
    // estimate would contradict it.
    if let Ok(result) = run(&rec, config) {
        if let Some(range) = result.upper.map(|e| e.range) {
            let err_without = (range - rec.truth.slant_distance_upper).abs();
            assert!(
                err_without > err_with,
                "correction should help: {err_with:.3} vs {err_without:.3}"
            );
        }
    }
    assert!(err_with < 0.5, "corrected error {err_with:.3}");
}

#[test]
fn band_pass_defends_against_voice_noise() {
    let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::room_chatting())
        .speaker_range(5.0)
        .slides(5)
        .seed(4300)
        .render()
        .expect("render");
    let with = run(&rec, HyperEarConfig::galaxy_s4()).expect("with band-pass");
    let est = with.upper.expect("estimate");
    assert!(
        (est.range - rec.truth.slant_distance_upper).abs() < 0.3,
        "chatting room estimate {:.3}",
        est.range
    );
}
