//! Plan/template-spectrum sharing gate for the multi-beacon template
//! bank (part of the `--multibeacon` verify tier).
//!
//! A K-template [`StreamingMatchedFilterBank`] must cost exactly **one**
//! forward-plan build (the process-shared [`plan`] registry) and **one**
//! template FFT per beacon — and *cloning* the bank across pool workers
//! must recompute neither: clones share the plan and every template
//! spectrum by `Arc`. Rebuilding a bank from scratch, by contrast, hits
//! the shared plan registry (no second plan build) but must re-run its
//! own K template FFTs — the observable difference between sharing and
//! rebuilding.
//!
//! One `#[test]` on purpose: the shared-plan hit/miss counters are
//! process-global and cumulative, so a concurrent test in this binary
//! would race the deltas. As its own integration-test binary this file
//! is its own process — the counters start at zero.

use hyperear_dsp::chirp::{Chirp, ChirpShape};
use hyperear_dsp::correlate::StreamingMatchedFilterBank;
use hyperear_dsp::plan::{shared_plan_hits, shared_plan_misses, DspScratch};
use hyperear_util::pool::Pool;

const BEACONS: usize = 4;
const FS: f64 = 44_100.0;

/// The K=4 half-overlapping signature chirps (hop 880 Hz, width 1760 Hz
/// over the 2000–6400 Hz band — mirrors
/// `MultiBeaconConfig::distinct_bands`).
fn templates() -> Vec<Chirp> {
    (0..BEACONS)
        .map(|k| {
            let f0 = 2_000.0 + k as f64 * 880.0;
            let shape = if k % 2 == 0 {
                ChirpShape::Up
            } else {
                ChirpShape::Down
            };
            Chirp::new(f0, f0 + 1_760.0, 0.04, FS, shape).unwrap()
        })
        .collect()
}

#[test]
fn bank_shares_one_plan_and_one_template_fft_per_beacon() {
    let chirps = templates();
    let refs: Vec<&[f64]> = chirps.iter().map(|c| c.samples()).collect();

    // A synthetic capture with every beacon present at a distinct lag.
    let mut signal = vec![0.0f64; 16_384];
    for (k, c) in chirps.iter().enumerate() {
        for (i, &s) in c.samples().iter().enumerate() {
            signal[1_000 + 2_500 * k + i] += 0.4 * s;
        }
    }

    // Building the K-template bank costs exactly one forward-plan
    // build and one template FFT per beacon.
    let (hits0, misses0) = (shared_plan_hits(), shared_plan_misses());
    let bank = StreamingMatchedFilterBank::new(&refs).unwrap();
    assert_eq!(
        shared_plan_misses() - misses0,
        1,
        "one bank == one forward-plan build"
    );
    assert_eq!(shared_plan_hits(), hits0, "first build cannot hit");
    assert_eq!(bank.template_fft_count(), BEACONS);

    // Reference correlation, serially.
    let mut scratch = DspScratch::new();
    let mut reference = vec![Vec::new(); BEACONS];
    bank.correlate_normalized_into(&signal, &mut scratch, &mut reference)
        .unwrap();

    // Fan the *same* bank across pool workers by clone: no plan-registry
    // traffic at all, no template FFT re-runs, bit-identical lanes.
    let (hits1, misses1) = (shared_plan_hits(), shared_plan_misses());
    let pool = Pool::new(BEACONS);
    let outputs = pool.parallel_map_with(
        BEACONS,
        || (bank.clone(), DspScratch::new(), vec![Vec::new(); BEACONS]),
        |(worker_bank, scratch, lanes), _i| {
            assert_eq!(worker_bank.template_fft_count(), BEACONS);
            worker_bank
                .correlate_normalized_into(&signal, scratch, lanes)
                .unwrap();
            lanes.clone()
        },
    );
    assert_eq!(shared_plan_misses(), misses1, "clones never build plans");
    assert_eq!(
        shared_plan_hits(),
        hits1,
        "clones never consult the registry"
    );
    for lanes in &outputs {
        assert_eq!(lanes, &reference, "cloned banks are bit-identical");
    }

    // Rebuilding from scratch *hits* the shared registry (the plan is
    // reused process-wide, no second build) but pays K fresh template
    // FFTs — which is exactly why the engine clones instead.
    let rebuilt = StreamingMatchedFilterBank::new(&refs).unwrap();
    assert_eq!(shared_plan_misses(), misses1, "plan is shared, not rebuilt");
    assert_eq!(
        shared_plan_hits() - hits1,
        1,
        "rebuild reuses the shared plan"
    );
    assert_eq!(rebuilt.template_fft_count(), BEACONS);

    println!("multibeacon-contract: one plan build + one template FFT per beacon HELD");
}
