//! Determinism, cross-environment robustness, and failure-injection
//! behaviour of the full stack.

use hyperear::config::HyperEarConfig;
use hyperear::pipeline::{HyperEar, SessionInput, SessionResult};
use hyperear::HyperEarError;
use hyperear_sim::environment::Environment;
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::{Recording, ScenarioBuilder};

fn run(rec: &Recording) -> Result<SessionResult, HyperEarError> {
    HyperEar::new(HyperEarConfig::galaxy_s4())?.run(&SessionInput {
        audio_sample_rate: rec.audio.sample_rate,
        left: &rec.audio.left,
        right: &rec.audio.right,
        imu_sample_rate: rec.imu.sample_rate,
        accel: &rec.imu.accel,
        gyro: &rec.imu.gyro,
    })
}

#[test]
fn identical_seeds_give_identical_results() {
    let build = || {
        ScenarioBuilder::new(PhoneModel::galaxy_s4())
            .environment(Environment::room_quiet())
            .speaker_range(4.0)
            .slides(3)
            .seed(5100)
            .render()
            .expect("render")
    };
    let a = build();
    let b = build();
    assert_eq!(a.audio.left, b.audio.left);
    assert_eq!(a.imu.accel, b.imu.accel);
    let ra = run(&a).expect("run a");
    let rb = run(&b).expect("run b");
    assert_eq!(ra.upper, rb.upper);
    assert_eq!(ra.period.period, rb.period.period);
}

#[test]
fn all_fig19_environments_complete_at_5m() {
    for (i, env) in Environment::fig19_set().into_iter().enumerate() {
        let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
            .environment(env.clone())
            .speaker_range(5.0)
            .slides(5)
            .seed(5200 + i as u64)
            .render()
            .expect("render");
        let result = run(&rec).unwrap_or_else(|e| panic!("{}: {e}", env.name));
        let est = result.upper.expect("estimate");
        assert!(
            (est.range - rec.truth.slant_distance_upper).abs() < 1.0,
            "{}: estimate {:.2}",
            env.name,
            est.range
        );
    }
}

#[test]
fn truncated_imu_is_rejected_cleanly() {
    let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::room_quiet())
        .speaker_range(3.0)
        .slides(2)
        .seed(5300)
        .render()
        .expect("render");
    let engine = HyperEar::new(HyperEarConfig::galaxy_s4()).expect("config");
    let result = engine.run(&SessionInput {
        audio_sample_rate: rec.audio.sample_rate,
        left: &rec.audio.left,
        right: &rec.audio.right,
        imu_sample_rate: rec.imu.sample_rate,
        accel: &rec.imu.accel[..10],
        gyro: &rec.imu.gyro[..10],
    });
    assert!(result.is_err(), "10-sample IMU trace must not succeed");
}

#[test]
fn wrong_beacon_config_fails_gracefully() {
    // The pipeline is told the beacon repeats every 150 ms while the
    // speaker actually uses 200 ms: SFO estimation must detect the
    // mismatch instead of producing a silently wrong answer.
    let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::room_quiet())
        .speaker_range(3.0)
        .slides(2)
        .seed(5400)
        .render()
        .expect("render");
    let mut config = HyperEarConfig::galaxy_s4();
    config.beacon.period = 0.15;
    let engine = HyperEar::new(config).expect("config");
    let outcome = engine.run(&SessionInput {
        audio_sample_rate: rec.audio.sample_rate,
        left: &rec.audio.left,
        right: &rec.audio.right,
        imu_sample_rate: rec.imu.sample_rate,
        accel: &rec.imu.accel,
        gyro: &rec.imu.gyro,
    });
    match outcome {
        Err(_) => {}
        Ok(result) => {
            // If it survives (beacon indexing can alias), the estimate
            // must at least be flagged implausible by its magnitude.
            let range = result.best_range().unwrap_or(f64::INFINITY);
            assert!(
                (range - 3.0).abs() > 0.5,
                "a mis-configured period must not produce a confident correct answer by luck"
            );
        }
    }
}

#[test]
fn stereo_recording_round_trips_through_pcm() {
    // The byte-level codec path a real app would use.
    use hyperear_dsp::quantize::{
        decode_pcm16, deinterleave_stereo, dequantize_i16, encode_pcm16, interleave_stereo,
        quantize_i16,
    };
    let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::room_quiet())
        .speaker_range(3.0)
        .slides(2)
        .seed(5500)
        .render()
        .expect("render");
    let left = quantize_i16(&rec.audio.left);
    let right = quantize_i16(&rec.audio.right);
    let bytes = encode_pcm16(&interleave_stereo(&left, &right).expect("interleave"));
    let (l2, r2) = deinterleave_stereo(&decode_pcm16(&bytes).expect("decode")).expect("split");
    let left_back = dequantize_i16(&l2);
    let right_back = dequantize_i16(&r2);
    // Recording samples are already on the 16-bit grid, so the round
    // trip is exact and the pipeline result is identical.
    let result = HyperEar::new(HyperEarConfig::galaxy_s4())
        .expect("config")
        .run(&SessionInput {
            audio_sample_rate: rec.audio.sample_rate,
            left: &left_back,
            right: &right_back,
            imu_sample_rate: rec.imu.sample_rate,
            accel: &rec.imu.accel,
            gyro: &rec.imu.gyro,
        })
        .expect("session");
    let direct = run(&rec).expect("direct");
    assert_eq!(result.upper, direct.upper);
}
