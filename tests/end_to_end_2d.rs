//! End-to-end 2D localization across crates: simulator → pipeline →
//! metrics, with error budgets tied to the paper's ruler experiments.

use hyperear::config::{Aggregation, HyperEarConfig};
use hyperear::metrics::stats;
use hyperear::pipeline::{HyperEar, SessionInput};
use hyperear_sim::environment::Environment;
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::{Recording, ScenarioBuilder};

fn run(rec: &Recording, config: HyperEarConfig) -> hyperear::pipeline::SessionResult {
    HyperEar::new(config)
        .expect("valid config")
        .run(&SessionInput {
            audio_sample_rate: rec.audio.sample_rate,
            left: &rec.audio.left,
            right: &rec.audio.right,
            imu_sample_rate: rec.imu.sample_rate,
            accel: &rec.imu.accel,
            gyro: &rec.imu.gyro,
        })
        .expect("session succeeds")
}

#[test]
fn ruler_sessions_stay_centimetre_accurate_to_5m() {
    for (range, budget_m) in [(1.0, 0.05), (3.0, 0.15), (5.0, 0.15)] {
        let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
            .environment(Environment::room_quiet())
            .speaker_range(range)
            .slides(5)
            .seed(500 + range as u64)
            .render()
            .expect("render");
        let result = run(&rec, HyperEarConfig::galaxy_s4());
        let est = result.upper.expect("estimate");
        let err = (est.range - rec.truth.slant_distance_upper).abs();
        assert!(
            err < budget_m,
            "range {range}: error {err:.3} m exceeds budget {budget_m}"
        );
    }
}

#[test]
fn seven_metre_error_matches_paper_band() {
    // Paper (S4 ruler @ 7 m): mean 14.4 cm. Allow 3x headroom per session.
    let mut errors = Vec::new();
    for seed in 0..4u64 {
        let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
            .environment(Environment::room_quiet())
            .speaker_range(7.0)
            .slides(5)
            .seed(600 + seed)
            .render()
            .expect("render");
        let result = run(&rec, HyperEarConfig::galaxy_s4());
        let est = result.upper.expect("estimate");
        errors.push((est.range - rec.truth.slant_distance_upper).abs());
    }
    let s = stats(&errors).expect("stats");
    assert!(s.mean < 0.45, "mean error {:.3} m at 7 m", s.mean);
}

#[test]
fn note3_works_like_s4() {
    let rec = ScenarioBuilder::new(PhoneModel::galaxy_note3())
        .environment(Environment::room_quiet())
        .speaker_range(5.0)
        .slides(5)
        .seed(700)
        .render()
        .expect("render");
    let result = run(&rec, HyperEarConfig::galaxy_note3());
    let est = result.upper.expect("estimate");
    assert!(
        (est.range - 5.0).abs() < 0.2,
        "note3 estimate {:.3}",
        est.range
    );
}

#[test]
fn joint_aggregation_agrees_with_median() {
    let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::room_quiet())
        .speaker_range(4.0)
        .slides(5)
        .seed(800)
        .render()
        .expect("render");
    let median = run(&rec, HyperEarConfig::galaxy_s4())
        .upper
        .expect("median estimate");
    let mut config = HyperEarConfig::galaxy_s4();
    config.aggregation = Aggregation::Joint;
    let joint = run(&rec, config).upper.expect("joint estimate");
    assert!(
        (median.range - joint.range).abs() < 0.2,
        "median {:.3} vs joint {:.3}",
        median.range,
        joint.range
    );
}

#[test]
fn per_slide_reports_are_complete() {
    let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::room_quiet())
        .speaker_range(3.0)
        .slides(4)
        .seed(900)
        .render()
        .expect("render");
    let result = run(&rec, HyperEarConfig::galaxy_s4());
    assert_eq!(result.slides.len(), 4);
    for (i, report) in result.slides.iter().enumerate() {
        assert!(report.accepted, "slide {i} should pass the gate");
        assert!(report.tdoa.is_some(), "slide {i} has TDoA");
        assert!(report.fix.is_some(), "slide {i} has a fix");
        // Back-and-forth directions alternate.
        let expected_sign = if i % 2 == 0 { 1.0 } else { -1.0 };
        assert!(report.inertial.distance * expected_sign > 0.0);
    }
    assert!(result.beacons_left > 10);
    assert!(result.beacons_right > 10);
}
