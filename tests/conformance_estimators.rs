//! Estimator conformance tier: `PlainXcorr` pins today's pipeline.
//!
//! The estimator bank is only allowed to *add* behaviour. The default
//! policy (`PlainXcorr`, no escalation) must be **bit-identical**
//! (`assert_eq!`, not a tolerance) to the pre-bank pipeline: same
//! results one-shot, same outcomes in a batch at any thread count, same
//! arrivals from a streaming finish. Enabling escalation must change
//! nothing on clean input, because a cleanly-`Ok` session never enters
//! the retry ladder.

use hyperear::batch::BatchEngine;
use hyperear::config::{EstimatorPolicy, HyperEarConfig, TdoaEstimator};
use hyperear::pipeline::{SessionEngine, SessionInput, SessionOutcome, SessionResult};
use hyperear::stream::{StreamConfig, StreamService};
use hyperear_sim::environment::Environment;
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::{Recording, ScenarioBuilder};
use hyperear_util::pool::Pool;
use std::sync::Arc;

fn fleet() -> Vec<Recording> {
    [Environment::anechoic(), Environment::room_quiet()]
        .into_iter()
        .enumerate()
        .map(|(i, env)| {
            ScenarioBuilder::new(PhoneModel::galaxy_s4())
                .environment(env)
                .speaker_range(2.5 + i as f64)
                .slides(2)
                .seed(61_000 + i as u64)
                .render()
                .unwrap()
        })
        .collect()
}

fn input(rec: &Recording) -> SessionInput<'_> {
    SessionInput {
        audio_sample_rate: rec.audio.sample_rate,
        left: &rec.audio.left,
        right: &rec.audio.right,
        imu_sample_rate: rec.imu.sample_rate,
        accel: &rec.imu.accel,
        gyro: &rec.imu.gyro,
    }
}

fn escalating() -> HyperEarConfig {
    let mut config = HyperEarConfig::galaxy_s4();
    config.estimator.escalation = true;
    config
}

/// The default estimator policy IS the pre-bank pipeline: plain xcorr,
/// no escalation, and an explicit `PlainXcorr` run is the same code
/// path as `run`.
#[test]
fn default_policy_is_plain_xcorr_and_pins_run() {
    let config = HyperEarConfig::galaxy_s4();
    assert_eq!(config.estimator, EstimatorPolicy::default());
    assert_eq!(config.estimator.initial, TdoaEstimator::PlainXcorr);
    assert!(!config.estimator.escalation);

    for rec in &fleet() {
        let mut engine = SessionEngine::new(config.clone()).unwrap();
        let default_run = engine.run(&input(rec)).unwrap();
        let mut explicit = SessionResult::empty();
        engine
            .run_estimated_into(&input(rec), TdoaEstimator::PlainXcorr, &mut explicit)
            .unwrap();
        assert_eq!(explicit, default_run);
        assert_eq!(default_run.estimator, TdoaEstimator::PlainXcorr);
    }
}

/// Enabling escalation changes nothing on clean input: every fleet
/// session grades `Ok`, never enters the retry ladder, and the outcome
/// (result and absence of diagnostics) is bit-equal to the default
/// engine's.
#[test]
fn escalation_is_inert_on_clean_sessions() {
    for rec in &fleet() {
        let baseline = SessionEngine::new(HyperEarConfig::galaxy_s4())
            .unwrap()
            .run_monitored(&input(rec));
        let esc = SessionEngine::new(escalating())
            .unwrap()
            .run_monitored(&input(rec));
        assert!(
            matches!(baseline, SessionOutcome::Ok(_)),
            "clean fleet is Ok"
        );
        assert_eq!(esc, baseline);
        let result = esc.result().expect("usable");
        assert_eq!(result.estimator, TdoaEstimator::PlainXcorr);
    }
}

/// Batch engines: the default and escalation-enabled configurations
/// produce bit-equal outcome vectors on clean input, at 1 and 4 pool
/// threads, and the vectors are thread-count invariant.
#[test]
fn clean_batches_are_identical_with_escalation_at_any_thread_count() {
    let recs = fleet();
    let inputs: Vec<SessionInput<'_>> = recs.iter().map(input).collect();
    let mut reference: Option<Vec<SessionOutcome>> = None;
    for threads in [1usize, 4] {
        let pool = Arc::new(Pool::new(threads));
        let mut default_engine =
            BatchEngine::new(HyperEarConfig::galaxy_s4(), Arc::clone(&pool)).unwrap();
        let default_out = default_engine.run_batch(&inputs);

        let mut esc_engine = BatchEngine::new(escalating(), pool).unwrap();
        let esc_out = esc_engine.run_batch(&inputs);

        assert!(default_out.iter().all(SessionOutcome::is_usable));
        assert_eq!(
            esc_out, default_out,
            "escalating batch at {threads} threads"
        );
        match &reference {
            None => reference = Some(default_out),
            Some(first) => assert_eq!(&default_out, first, "thread-count invariance"),
        }
    }
}

/// Streaming finish under the default policy equals the one-shot
/// engine, and the streamed result reports `PlainXcorr`.
#[test]
fn streaming_finish_matches_one_shot_under_default_policy() {
    let rec = &fleet()[1];
    let reference = SessionEngine::new(HyperEarConfig::galaxy_s4())
        .unwrap()
        .run_monitored(&input(rec));

    let mut svc = StreamService::new(
        HyperEarConfig::galaxy_s4(),
        StreamConfig {
            max_sessions: 1,
            ring_capacity: 8_192,
            max_samples: rec.audio.left.len(),
            max_imu_samples: rec.imu.accel.len(),
        },
        Arc::new(Pool::new(1)),
    )
    .unwrap();
    let id = svc
        .open(rec.audio.sample_rate, rec.imu.sample_rate)
        .unwrap();
    svc.push_imu(id, &rec.imu.accel, &rec.imu.gyro).unwrap();
    let n = rec.audio.left.len();
    let mut pos = 0;
    while pos < n {
        let len = (n - pos).min(4_096);
        match svc.push_audio(
            id,
            &rec.audio.left[pos..pos + len],
            &rec.audio.right[pos..pos + len],
        ) {
            Ok(()) => pos += len,
            Err(hyperear::stream::StreamError::Shed { .. }) => svc.pump(),
            Err(e) => panic!("unexpected stream error: {e}"),
        }
    }
    let mut out = SessionOutcome::idle();
    svc.finish(id, &mut out).unwrap();
    assert_eq!(out, reference);
    let result = out.result().expect("usable");
    assert_eq!(result.estimator, TdoaEstimator::PlainXcorr);
}
