//! Golden conformance tier: pins the headline numbers that
//! EXPERIMENTS.md records for `repro restrictions` and `repro fig03`.
//!
//! These experiments are analytic (no sampled noise), so the pins are
//! tight: a drift here means the hardware model, the quantizer, or the
//! naive baseline changed behaviour — which invalidates the published
//! comparison tables and must be a conscious, documented decision.

use hyperear::baseline::{naive_two_position_error, NaiveConfig};
use hyperear_bench::experiments::{self, Scale};
use hyperear_geom::tdoa_regions::TdoaQuantizer;
use hyperear_geom::Vec2;

const FS: f64 = 44_100.0;
const SOUND: f64 = 343.0;
const D_S4: f64 = 0.1366;

fn s4_quantizer(separation: f64) -> TdoaQuantizer {
    TdoaQuantizer::new(
        Vec2::new(-separation / 2.0, 0.0),
        Vec2::new(separation / 2.0, 0.0),
        FS,
        SOUND,
    )
    .expect("valid quantizer")
}

/// §II-C: TDoA resolution 0.0227 ms, Δd resolution 7.78 mm, 35
/// distinguishable hyperbolas (EXPERIMENTS.md "Restrictions" table).
#[test]
fn restrictions_hardware_limits_pinned() {
    let tdoa_res_ms = 1_000.0 / FS;
    assert!(
        (tdoa_res_ms - 0.0227).abs() < 5e-4,
        "TDoA resolution {tdoa_res_ms} ms"
    );
    let q = s4_quantizer(D_S4);
    let dd_mm = q.resolution() * 1_000.0;
    assert!((dd_mm - 7.78).abs() < 0.01, "Δd resolution {dd_mm} mm");
    assert_eq!(q.distinguishable_hyperbolas(), 35);
}

/// §II-C: the naive-scheme error sweep behind EXPERIMENTS.md's
/// "mean 15.4 cm / worst 85.5 cm @ 1 m, mean 3.88 m / worst 5.00 m @ 5 m".
#[test]
fn restrictions_naive_error_sweep_pinned() {
    let config = NaiveConfig::galaxy_s4();
    let sweep = |range: f64| {
        let mut worst = 0.0f64;
        let mut sum = 0.0;
        let mut n = 0usize;
        for i in 0..81 {
            let dx = -0.4 + i as f64 * 0.01;
            if let Ok(e) = naive_two_position_error(Vec2::new(dx, range), &config) {
                worst = worst.max(e);
                sum += e;
                n += 1;
            }
        }
        assert!(n > 0, "sweep at {range} m produced no solutions");
        (sum / n as f64, worst)
    };
    let (mean_1m, worst_1m) = sweep(1.0);
    assert!((mean_1m - 0.154).abs() < 0.005, "mean @1m {mean_1m}");
    assert!((worst_1m - 0.855).abs() < 0.01, "worst @1m {worst_1m}");
    let (mean_5m, worst_5m) = sweep(5.0);
    assert!((mean_5m - 3.88).abs() < 0.05, "mean @5m {mean_5m}");
    assert!((worst_5m - 5.00).abs() < 0.05, "worst @5m {worst_5m}");
}

/// Fig. 3: ambiguity-region widths 2.8 cm @ 0.5 m → 45.6 cm @ 8 m for
/// the S4 baseline, shrinking ~4× for the 55 cm slide baseline.
#[test]
fn fig03_ambiguity_widths_pinned() {
    let phone = s4_quantizer(D_S4);
    let slide = s4_quantizer(0.55);
    let w_near = phone.broadside_region_width(0.5).expect("positive range");
    let w_far = phone.broadside_region_width(8.0).expect("positive range");
    assert!((w_near - 0.028).abs() < 0.001, "width @0.5m {w_near}");
    assert!((w_far - 0.456).abs() < 0.005, "width @8m {w_far}");
    // Linear growth with range and ~4x shrink with the longer baseline.
    assert!((w_far / w_near - 16.0).abs() < 0.5, "linearity in range");
    let w_far_slide = slide.broadside_region_width(8.0).expect("positive range");
    let shrink = w_far / w_far_slide;
    assert!((shrink - 4.0).abs() < 0.3, "baseline shrink {shrink}");
}

/// The rendered reports themselves carry the pinned figures, exactly as
/// EXPERIMENTS.md quotes them.
#[test]
fn rendered_reports_quote_headline_numbers() {
    let scale = Scale::fast();
    let restrictions = experiments::run("restrictions", &scale)
        .expect("known id")
        .render();
    for needle in [
        "0.0227 ms",
        "7.78 mm",
        "35",
        "15.4cm",
        "85.5cm",
        "3.88m",
        "5.00m",
    ] {
        assert!(
            restrictions.contains(needle),
            "restrictions report lost {needle:?}:\n{restrictions}"
        );
    }
    let fig03 = experiments::run("fig03", &scale)
        .expect("known id")
        .render();
    for needle in ["2.8cm", "45.6cm", "11.4cm"] {
        assert!(
            fig03.contains(needle),
            "fig03 report lost {needle:?}:\n{fig03}"
        );
    }
}
