//! End-to-end 3D (two-stature) localization: the full projected-location
//! protocol against ground truth, in hand.

use hyperear::config::HyperEarConfig;
use hyperear::pipeline::{HyperEar, SessionInput};
use hyperear_sim::environment::Environment;
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::ScenarioBuilder;
use hyperear_sim::volunteer::roster;

#[test]
fn projected_location_recovers_floor_distance() {
    let user = &roster()[0];
    let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::room_quiet())
        .speaker_range(5.0)
        .speaker_stature(0.5)
        .volunteer(user)
        .slides(5)
        .slides_low(5)
        .stature_drop(0.4)
        .seed(3100)
        .render()
        .expect("render");
    let result = HyperEar::new(HyperEarConfig::galaxy_s4())
        .expect("config")
        .run(&SessionInput {
            audio_sample_rate: rec.audio.sample_rate,
            left: &rec.audio.left,
            right: &rec.audio.right,
            imu_sample_rate: rec.imu.sample_rate,
            accel: &rec.imu.accel,
            gyro: &rec.imu.gyro,
        })
        .expect("session");

    // Both stature phases produced estimates.
    let upper = result.upper.expect("upper");
    let lower = result.lower.expect("lower");
    assert!((upper.range - rec.truth.slant_distance_upper).abs() < 0.4);
    assert!((lower.range - rec.truth.slant_distance_lower).abs() < 0.4);

    // The stature change was measured from the z-axis accelerometer.
    let h = result.stature_drop.expect("stature drop");
    assert!((h - 0.4).abs() < 0.05, "measured H = {h}");

    // The projection lands near the true floor distance.
    let projected = result.projected.expect("projection");
    assert!(
        (projected.l_star - rec.truth.ground_distance).abs() < 0.4,
        "L* {:.3} truth {:.3}",
        projected.l_star,
        rec.truth.ground_distance
    );
    assert_eq!(result.best_range(), Some(projected.l_star));
}

#[test]
fn every_volunteer_completes_a_session() {
    // All ten hand profiles — including the shaky ones — must produce a
    // usable session at 3 m (some slides may be gate-rejected).
    for (i, user) in roster().iter().enumerate() {
        let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
            .environment(Environment::room_quiet())
            .speaker_range(3.0)
            .speaker_stature(0.5)
            .volunteer(user)
            .slides(3)
            .slides_low(3)
            .stature_drop(0.4)
            .seed(3200 + i as u64)
            .render()
            .expect("render");
        let result = HyperEar::new(HyperEarConfig::galaxy_s4())
            .expect("config")
            .run(&SessionInput {
                audio_sample_rate: rec.audio.sample_rate,
                left: &rec.audio.left,
                right: &rec.audio.right,
                imu_sample_rate: rec.imu.sample_rate,
                accel: &rec.imu.accel,
                gyro: &rec.imu.gyro,
            });
        let result = match result {
            Ok(r) => r,
            Err(e) => panic!("{}: session failed: {e}", user.name),
        };
        let range = result.best_range().expect("range");
        assert!(
            (range - 3.0).abs() < 1.0,
            "{}: estimate {range:.2} m",
            user.name
        );
    }
}

#[test]
fn shaky_hands_reject_more_slides_than_the_ruler() {
    let shaky = &roster()[5]; // M2, shaky profile
    let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::room_quiet())
        .speaker_range(3.0)
        .volunteer(shaky)
        .slides(6)
        .seed(3300)
        .render()
        .expect("render");
    let result = HyperEar::new(HyperEarConfig::galaxy_s4())
        .expect("config")
        .run(&SessionInput {
            audio_sample_rate: rec.audio.sample_rate,
            left: &rec.audio.left,
            right: &rec.audio.right,
            imu_sample_rate: rec.imu.sample_rate,
            accel: &rec.imu.accel,
            gyro: &rec.imu.gyro,
        })
        .expect("session");
    // The shaky profile (12° typical yaw) must trip the 20° gate at least
    // occasionally across six slides... or at minimum report rotations
    // far above ruler level.
    let max_rotation = result
        .slides
        .iter()
        .map(|s| s.inertial.rotation_deg)
        .fold(0.0f64, f64::max);
    assert!(
        max_rotation > 2.0,
        "shaky session max rotation {max_rotation}°"
    );
}
