//! Multi-beacon conformance (tier 9): K concurrent beacons through the
//! shared-spectrum template bank, end to end.
//!
//! Pins the three contracts the `--multibeacon` verify tier greps for:
//! per-beacon sessions recover every speaker's range from one shared
//! capture; outcomes are **bit-identical** at any `HYPEREAR_THREADS`;
//! and cross-beacon interference (a rogue full-band chirp) degrades a
//! session into a typed outcome, never a panic, deterministically.

use hyperear::batch::MultiBeaconEngine;
use hyperear::config::{HyperEarConfig, MultiBeaconConfig};
use hyperear::pipeline::{SessionInput, SessionOutcome};
use hyperear_sim::environment::Environment;
use hyperear_sim::fault::{Fault, FaultPlan};
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::{Recording, ScenarioBuilder};
use hyperear_sim::speaker::SpeakerModel;
use hyperear_util::pool::Pool;
use std::sync::Arc;

const BEACONS: usize = 4;
/// Primary speaker at 3 m, co-speakers at their own broadside ranges.
const CO_RANGES: [f64; 3] = [2.0, 4.0, 5.5];

/// Renders one capture containing all four beacons: the primary speaker
/// and three co-speakers, each playing its `with_signature` sub-band —
/// the simulator-side mirror of `MultiBeaconConfig::distinct_bands`.
fn render(seed: u64) -> Recording {
    let mut builder = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::anechoic())
        .speaker_model(SpeakerModel::new().with_signature(0, BEACONS))
        .speaker_range(3.0)
        .slides(5)
        .seed(seed);
    for (k, range) in CO_RANGES.iter().enumerate() {
        builder = builder.co_speaker(SpeakerModel::new().with_signature(k + 1, BEACONS), *range);
    }
    builder.render().unwrap()
}

fn input(rec: &Recording) -> SessionInput<'_> {
    SessionInput {
        audio_sample_rate: rec.audio.sample_rate,
        left: &rec.audio.left,
        right: &rec.audio.right,
        imu_sample_rate: rec.imu.sample_rate,
        accel: &rec.imu.accel,
        gyro: &rec.imu.gyro,
    }
}

fn run(rec: &Recording, threads: usize) -> Vec<SessionOutcome> {
    let config = MultiBeaconConfig::distinct_bands(HyperEarConfig::galaxy_s4(), BEACONS);
    let mut engine = MultiBeaconEngine::new(config, Arc::new(Pool::new(threads))).unwrap();
    engine.run_session(&input(rec))
}

#[test]
fn every_beacon_recovers_its_own_speaker_range() {
    let rec = render(910);
    let outcomes = run(&rec, 2);
    assert_eq!(outcomes.len(), BEACONS);
    // Anechoic same-plane setup: each beacon's slant range equals its
    // configured broadside range.
    let truths = [3.0, CO_RANGES[0], CO_RANGES[1], CO_RANGES[2]];
    for (k, (outcome, truth)) in outcomes.iter().zip(&truths).enumerate() {
        assert!(outcome.is_usable(), "beacon {k}: {outcome:?}");
        let est = outcome
            .result()
            .and_then(|r| r.upper.as_ref())
            .unwrap_or_else(|| panic!("beacon {k} has no estimate"));
        let err = (est.range - truth).abs();
        // Sub-band chirps carry a quarter of the full time-bandwidth
        // product, so the budget is looser than the single-beacon tier's.
        assert!(
            err < 0.35,
            "beacon {k}: estimated {:.3} m vs true {truth} m",
            est.range
        );
    }
    println!("multibeacon-contract: k={BEACONS} per-beacon range recovery HELD");
}

#[test]
fn outcomes_are_bit_identical_at_every_thread_count() {
    let rec = render(911);
    let reference = run(&rec, 1);
    assert!(reference.iter().any(SessionOutcome::is_usable));
    for threads in [2, 4] {
        let got = run(&rec, threads);
        assert_eq!(got, reference, "threads = {threads}");
    }
    // A warm engine re-running the same session is also bit-stable.
    let config = MultiBeaconConfig::distinct_bands(HyperEarConfig::galaxy_s4(), BEACONS);
    let mut engine = MultiBeaconEngine::new(config, Arc::new(Pool::new(2))).unwrap();
    let mut out = Vec::new();
    for round in 0..2 {
        engine.run_session_into(&input(&rec), &mut out);
        assert_eq!(out, reference, "round {round}");
    }
    println!("multibeacon-contract: outcomes bit-identical at threads 1/2/4 HELD");
}

#[test]
fn cross_beacon_interference_degrades_into_typed_outcomes() {
    let clean = render(912);
    let mut faulted = clean.clone();
    let plan = FaultPlan::new(77).with(Fault::CrossBeaconInterference {
        probability: 0.8,
        f0: 2_000.0,
        f1: 6_400.0,
        amplitude: 0.35,
    });
    let log = plan.apply(&mut faulted).unwrap();
    assert!(log.rogue_chirps > 5, "{log:?}");
    let a = run(&faulted, 2);
    let b = run(&faulted, 4);
    assert_eq!(a, b, "faulted outcomes must stay deterministic");
    assert_eq!(a.len(), BEACONS);
    // Typed grades, never a panic: an interference-swamped beacon may
    // fail, but it must say so through the outcome. The distinct-band
    // signatures keep at least one beacon usable under a full-band
    // rogue sweep.
    assert!(a.iter().any(SessionOutcome::is_usable), "{a:?}");
    for (k, outcome) in a.iter().enumerate() {
        if let SessionOutcome::Failed { reason, .. } = outcome {
            let _ = format!("beacon {k}: {reason}"); // typed, displayable
        }
    }
    println!("multibeacon-contract: cross-beacon interference graded typed HELD");
}
