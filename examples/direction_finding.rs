//! Direction finding: the Fig. 6–7 rotation procedure as a live demo.
//!
//! ```text
//! cargo run --release --example direction_finding
//! ```
//!
//! Prints the TDoA staircase a rolling phone measures (quantized to the
//! 44.1 kHz grid), the live guidance a user would see, and the recovered
//! in-direction angles.

use hyperear::sdf::{find_crossings, guidance, Guidance, RollObservation};
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::rotation_sweep;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let phone = PhoneModel::galaxy_s4();
    let sweep = rotation_sweep(&phone, 5.0, 72, 0.2, 11)?;

    println!("Rolling the phone with the speaker 5 m away:\n");
    println!("  roll   TDoA        bar                                guidance");
    let max_tdoa_ms = phone.mic_separation / 343.0 * 1_000.0;
    for sample in sweep.iter().step_by(3) {
        let g = guidance(sample.tdoa_ms / 1_000.0, phone.mic_separation, 343.0, 0.05)?;
        let bar_pos = ((sample.tdoa_ms / max_tdoa_ms + 1.0) * 16.0) as usize;
        let mut bar = [' '; 33];
        bar[16] = '|';
        bar[bar_pos.min(32)] = '*';
        println!(
            "  {:>4.0}°  {:>7.3} ms  {}  {}",
            sample.alpha_degrees,
            sample.tdoa_ms,
            bar.iter().collect::<String>(),
            match g {
                Guidance::Stop => "STOP — in direction!",
                Guidance::KeepRolling => "keep rolling",
            }
        );
    }

    let observations: Vec<RollObservation> = sweep
        .iter()
        .map(|s| RollObservation {
            roll_degrees: s.alpha_degrees,
            tdoa: s.tdoa_ms / 1_000.0,
        })
        .collect();
    let crossings = find_crossings(&observations)?;
    println!("\nIn-direction positions found:");
    for c in &crossings {
        println!(
            "  roll {:.1}° — speaker on the {:?} side",
            c.roll_degrees, c.side
        );
    }
    Ok(())
}
