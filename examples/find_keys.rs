//! Find-my-keys: the paper's motivating scenario, end to end in 3D.
//!
//! ```text
//! cargo run --release --example find_keys
//! ```
//!
//! A beacon tag on a key ring lies on a 0.5 m-high shelf somewhere in a
//! meeting room. The user first *rolls* the phone to find the tag's
//! direction (Speaker Direction Finding), then runs the two-stature slide
//! protocol; the pipeline reports where on the floor map the keys are.

use hyperear::config::HyperEarConfig;
use hyperear::pipeline::{HyperEar, SessionInput, SessionResult};
use hyperear::sdf::{find_crossings, guidance, Guidance, RollObservation};
use hyperear_sim::environment::Environment;
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::{rotation_sweep, ScenarioBuilder};
use hyperear_sim::volunteer::roster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let phone = PhoneModel::galaxy_s4();
    let keys_range = 4.0; // the keys are 4 m away (unknown to the user)

    // --- Phase 1: Speaker Direction Finding. ---------------------------
    println!("Phase 1: roll the phone to find the tag's direction...");
    let sweep = rotation_sweep(&phone, keys_range, 360, 0.2, 7)?;
    let observations: Vec<RollObservation> = sweep
        .iter()
        .map(|s| RollObservation {
            roll_degrees: s.alpha_degrees,
            tdoa: s.tdoa_ms / 1_000.0,
        })
        .collect();
    // Live guidance as the user rolls.
    let mut stopped_at = None;
    for obs in &observations {
        match guidance(obs.tdoa, phone.mic_separation, 343.0, 0.05)? {
            Guidance::Stop => {
                stopped_at = Some(obs.roll_degrees);
                break;
            }
            Guidance::KeepRolling => {}
        }
    }
    println!(
        "  guidance said STOP at roll ~{:.0}° (in-direction)",
        stopped_at.unwrap_or(f64::NAN)
    );
    let crossings = find_crossings(&observations)?;
    println!(
        "  offline analysis finds in-direction crossings at: {}",
        crossings
            .iter()
            .map(|c| format!("{:.1}° ({:?} side)", c.roll_degrees, c.side))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // --- Phase 2: two-stature slides and localization. ------------------
    println!("Phase 2: slide five times at two statures...");
    let user = &roster()[4]; // an average-handed volunteer
    let recording = ScenarioBuilder::new(phone)
        .environment(Environment::room_quiet())
        .speaker_range(keys_range)
        .speaker_stature(0.5) // the shelf height (unknown to the pipeline)
        .volunteer(user)
        .slides(5)
        .slides_low(5)
        .stature_drop(0.4)
        .seed(4242)
        .render()?;
    let mut engine = HyperEar::new(HyperEarConfig::galaxy_s4())?.engine();
    let mut result = SessionResult::empty();
    engine.run_into(
        &SessionInput {
            audio_sample_rate: recording.audio.sample_rate,
            left: &recording.audio.left,
            right: &recording.audio.right,
            imu_sample_rate: recording.imu.sample_rate,
            accel: &recording.imu.accel,
            gyro: &recording.imu.gyro,
        },
        &mut result,
    )?;

    let projected = result.projected.ok_or("no projected estimate")?;
    println!(
        "  measured stature change H = {:.2} m, elevation beta = {:.1} deg",
        result.stature_drop.unwrap_or(f64::NAN),
        projected.beta.to_degrees()
    );
    println!(
        "Your keys are ~{:.2} m ahead on the floor map (truth: {:.2} m, error {:.1} cm).",
        projected.l_star,
        recording.truth.ground_distance,
        (projected.l_star - recording.truth.ground_distance).abs() * 100.0
    );
    Ok(())
}
