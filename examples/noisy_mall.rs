//! Noisy-mall robustness: localize the same tag across the paper's four
//! acoustic environments (Fig. 19's scenario as a runnable demo).
//!
//! ```text
//! cargo run --release --example noisy_mall
//! ```
//!
//! The band-pass front end shrugs off chatting (voice sits below the
//! 2 kHz chirp-band edge); overlapping mall music and busy-hour crowd
//! noise progressively erode accuracy.

use hyperear::config::HyperEarConfig;
use hyperear::pipeline::{HyperEar, SessionInput, SessionResult};
use hyperear_sim::environment::Environment;
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::ScenarioBuilder;
use hyperear_sim::volunteer::roster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One warm engine across all four environments, processing into a
    // reused result whose slide storage is scavenged between sessions.
    let mut engine = HyperEar::new(HyperEarConfig::galaxy_s4())?.engine();
    let mut result = SessionResult::empty();
    let user = &roster()[0];
    println!("Localizing a tag 7 m away across environments (3D, in hand):\n");
    for (i, environment) in Environment::fig19_set().into_iter().enumerate() {
        let recording = ScenarioBuilder::new(PhoneModel::galaxy_s4())
            .environment(environment.clone())
            .speaker_range(7.0)
            .speaker_stature(0.5)
            .volunteer(user)
            .slides(5)
            .slides_low(5)
            .stature_drop(0.4)
            .seed(9_000 + i as u64)
            .render()?;
        let outcome = engine.run_into(
            &SessionInput {
                audio_sample_rate: recording.audio.sample_rate,
                left: &recording.audio.left,
                right: &recording.audio.right,
                imu_sample_rate: recording.imu.sample_rate,
                accel: &recording.imu.accel,
                gyro: &recording.imu.gyro,
            },
            &mut result,
        );
        match outcome {
            Ok(()) => {
                let range = result.best_range().unwrap_or(f64::NAN);
                let usable = result.slides.iter().filter(|s| s.fix.is_some()).count();
                println!(
                    "  {:<36} estimate {:>5.2} m (err {:>5.1} cm), {:>2}/{} slides usable, {} beacons",
                    environment.name,
                    range,
                    (range - recording.truth.ground_distance).abs() * 100.0,
                    usable,
                    result.slides.len(),
                    result.beacons_left.min(result.beacons_right),
                );
            }
            Err(e) => println!("  {:<36} session failed: {e}", environment.name),
        }
    }
    println!("\nGround truth: 7.00 m.");
    Ok(())
}
