//! Beacon spectrogram: render a session, export it as a WAV file, and
//! print an ASCII spectrogram of one beacon — the up-down chirp shape of
//! paper Fig. 5's input signal, as the phone actually records it.
//!
//! ```text
//! cargo run --release --example beacon_spectrogram
//! ```

use hyperear_dsp::stft::stft;
use hyperear_dsp::wav::WavFile;
use hyperear_sim::environment::Environment;
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::ScenarioBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rec = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::room_chatting())
        .speaker_range(3.0)
        .slides(1)
        .seed(314)
        .render()?;

    // Export what the phone recorded.
    let path = std::env::temp_dir().join("hyperear_session.wav");
    WavFile::stereo(
        rec.audio.left.clone(),
        rec.audio.right.clone(),
        rec.audio.sample_rate as u32,
    )?
    .save(&path)?;
    println!("Exported the stereo session to {}", path.display());

    // Find the loudest 60 ms window (a beacon) and draw its spectrogram.
    let fs = rec.audio.sample_rate;
    let win = (0.06 * fs) as usize;
    let (mut best_start, mut best_energy) = (0usize, 0.0f64);
    let mut start = 0;
    while start + win < rec.audio.left.len() {
        let e: f64 = rec.audio.left[start..start + win]
            .iter()
            .map(|x| x * x)
            .sum();
        if e > best_energy {
            best_energy = e;
            best_start = start;
        }
        start += win / 2;
    }
    let beacon = &rec.audio.left[best_start..best_start + win];
    let spec = stft(beacon, 256, 64, fs)?;

    println!(
        "\nSpectrogram of the loudest beacon (t = {:.2} s), 0-8 kHz:",
        best_start as f64 / fs
    );
    let max_bin = spec.bin_of(8_000.0);
    let peak = spec
        .frames
        .iter()
        .flat_map(|f| f.iter().take(max_bin))
        .cloned()
        .fold(0.0f64, f64::max);
    // Rows = frequency (top = high), columns = time.
    let rows = 24;
    for row in (0..rows).rev() {
        let k_lo = row * max_bin / rows;
        let k_hi = ((row + 1) * max_bin / rows).max(k_lo + 1);
        let freq = spec.freq_of(k_hi);
        let mut line = format!("{:>6.1} kHz |", freq / 1_000.0);
        for frame in &spec.frames {
            let level = frame[k_lo..k_hi].iter().cloned().fold(0.0f64, f64::max) / peak;
            line.push(match level {
                l if l > 0.5 => '#',
                l if l > 0.2 => '+',
                l if l > 0.05 => '.',
                _ => ' ',
            });
        }
        println!("{line}");
    }
    println!("           +{}", "-".repeat(spec.frames.len()));
    println!("            0 ms {:>28} 60 ms", "time ->");
    println!("\nThe '^' shape is the up-down chirp: 2 kHz -> 6.4 kHz -> 2 kHz.");
    let _ = std::fs::remove_file(&path);
    Ok(())
}
