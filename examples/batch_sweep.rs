//! Batch sweep: many seeded sessions rendered and processed in parallel.
//!
//! ```text
//! cargo run --release --example batch_sweep
//! HYPEREAR_THREADS=4 cargo run --release --example batch_sweep
//! ```
//!
//! Demonstrates the serving-style path built in the concurrency PR: the
//! simulator renders a seed sweep across the work-stealing pool
//! (`ScenarioBuilder::render_seeds`), and a `BatchEngine` — one warm
//! `SessionEngine` pinned per pool participant, detector tables shared —
//! processes the whole batch with `run_monitored` semantics per item.
//! The output is bit-identical at any `HYPEREAR_THREADS`; the knob only
//! changes how fast the batch finishes.

use hyperear::batch::BatchEngine;
use hyperear::config::HyperEarConfig;
use hyperear::pipeline::{SessionInput, SessionOutcome};
use hyperear_sim::environment::Environment;
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::{Recording, ScenarioBuilder};
use hyperear_util::pool::Pool;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pool = Pool::global();
    println!(
        "pool: {} participant(s) (set HYPEREAR_THREADS to change)\n",
        pool.threads()
    );

    // Render an eight-seed sweep of the same 4 m scenario in parallel,
    // one warm RenderContext per pool participant. Slot i always holds
    // seed i's recording, so the sweep is reproducible at any thread
    // count.
    let seeds: Vec<u64> = (0..8).map(|i| 4_100 + i).collect();
    let builder = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::room_quiet())
        .speaker_range(4.0)
        .slides(3);
    let render_start = Instant::now();
    let recordings: Vec<Recording> = builder
        .render_seeds(&seeds, pool)
        .into_iter()
        .collect::<Result<_, _>>()?;
    let render_time = render_start.elapsed();

    let inputs: Vec<SessionInput<'_>> = recordings
        .iter()
        .map(|rec| SessionInput {
            audio_sample_rate: rec.audio.sample_rate,
            left: &rec.audio.left,
            right: &rec.audio.right,
            imu_sample_rate: rec.imu.sample_rate,
            accel: &rec.imu.accel,
            gyro: &rec.imu.gyro,
        })
        .collect();

    // One warm engine per participant; warm() pre-grows every scratch
    // buffer so the timed batch below runs allocation-free.
    let mut batch = BatchEngine::from_env(HyperEarConfig::galaxy_s4())?;
    batch.warm(&inputs[..1]);
    let mut outcomes = Vec::new();
    let batch_start = Instant::now();
    batch.run_batch_into(&inputs, &mut outcomes);
    let batch_time = batch_start.elapsed();

    println!("seed   outcome    estimated range   true slant    error");
    for ((seed, rec), outcome) in seeds.iter().zip(&recordings).zip(&outcomes) {
        let label = match outcome {
            SessionOutcome::Ok(_) => "ok",
            SessionOutcome::Degraded { .. } => "degraded",
            SessionOutcome::Failed { reason, .. } => {
                println!("{seed}   failed: {reason}");
                continue;
            }
        };
        match outcome.result().and_then(|r| r.upper.as_ref()) {
            Some(est) => {
                let err = (est.range - rec.truth.slant_distance_upper).abs();
                println!(
                    "{seed}   {label:<8}   {:>10.2} m   {:>7.2} m   {:>5.1} cm",
                    est.range,
                    rec.truth.slant_distance_upper,
                    err * 100.0
                );
            }
            None => println!("{seed}   {label:<8}   no fix"),
        }
    }

    let stats = batch.pool_stats();
    println!(
        "\nrendered {} sessions in {render_time:.2?}, processed in {batch_time:.2?}",
        recordings.len()
    );
    println!(
        "pool telemetry: {} worker task(s) executed, {} steal(s); warm working set {:.1} MiB",
        stats.tasks_executed,
        stats.steals,
        batch.working_set_bytes() as f64 / (1024.0 * 1024.0)
    );
    Ok(())
}
