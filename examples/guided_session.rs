//! Guided session: the app-side protocol driver ([`hyperear::guide`])
//! running against live-style measurements, exactly as a phone UI would.
//!
//! ```text
//! cargo run --release --example guided_session
//! ```
//!
//! Shows the instruction stream a user would see — roll, stop, hold
//! still, slide 1/3 ... — with a deliberately sloppy slide thrown in to
//! exercise the "slide again" path, then runs the pipeline on the
//! recorded session.

use hyperear::config::HyperEarConfig;
use hyperear::guide::{Instruction, SessionGuide};
use hyperear::imu::analyze::{analyze_session, SessionConfig, SlideEstimate};
use hyperear::imu::segment::Segment;
use hyperear::pipeline::{HyperEar, SessionInput, SessionResult};
use hyperear_sim::environment::Environment;
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::{rotation_sweep, ScenarioBuilder};

fn show(step: &mut usize, instruction: Instruction) {
    *step += 1;
    let text = match instruction {
        Instruction::RollPhone => "Roll the phone slowly...".to_string(),
        Instruction::StopRolling => "STOP — the tag is straight ahead.".to_string(),
        Instruction::HoldStill { remaining } => {
            format!("Hold still ({remaining:.1} s left)...")
        }
        Instruction::Slide { done, target } => {
            format!("Slide the phone ({}/{} done).", done, target)
        }
        Instruction::SlideAgain { reason } => {
            format!("That slide was no good ({reason:?}) — again.")
        }
        Instruction::LowerPhone => "Lower the phone ~40 cm.".to_string(),
        Instruction::Done => "Done! Computing the location...".to_string(),
    };
    println!("  [{step:>2}] {text}");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let phone = PhoneModel::galaxy_s4();
    let mut guide = SessionGuide::new(phone.mic_separation, 343.0, 3, false)?;
    let mut step = 0;
    println!("HyperEar guided session:\n");
    show(&mut step, guide.current());

    // --- Rolling phase, fed by simulated TDoAs. -------------------------
    let sweep = rotation_sweep(&phone, 4.0, 120, 0.2, 5)?;
    for sample in &sweep {
        guide.observe_tdoa(sample.tdoa_ms / 1_000.0)?;
        if guide.current() == Instruction::StopRolling {
            show(&mut step, guide.current());
            break;
        }
    }

    // --- Calibration hold. ------------------------------------------------
    guide.observe_stillness(0.6)?;
    show(&mut step, guide.current());
    guide.observe_stillness(0.7)?;
    show(&mut step, guide.current());

    // --- A sloppy slide first (too short), then real ones from the sim. --
    let sloppy = SlideEstimate {
        segment: Segment { start: 0, end: 60 },
        start_time: 0.0,
        end_time: 0.6,
        distance: 0.31,
        rotation_deg: 4.0,
        end_velocity_residual: 0.0,
    };
    guide.observe_slide(&sloppy)?;
    show(&mut step, guide.current());

    let rec = ScenarioBuilder::new(phone)
        .environment(Environment::room_quiet())
        .speaker_range(4.0)
        .slides(3)
        .seed(808)
        .render()?;
    let analysis = analyze_session(
        &rec.imu.accel,
        &rec.imu.gyro,
        rec.imu.sample_rate,
        &SessionConfig::default(),
    )?;
    for slide in &analysis.slides {
        guide.observe_slide(slide)?;
        show(&mut step, guide.current());
        if guide.is_complete() {
            break;
        }
    }

    // --- The pipeline crunches the recording. ------------------------------
    let mut engine = HyperEar::new(HyperEarConfig::galaxy_s4())?.engine();
    let mut result = SessionResult::empty();
    engine.run_into(
        &SessionInput {
            audio_sample_rate: rec.audio.sample_rate,
            left: &rec.audio.left,
            right: &rec.audio.right,
            imu_sample_rate: rec.imu.sample_rate,
            accel: &rec.imu.accel,
            gyro: &rec.imu.gyro,
        },
        &mut result,
    )?;
    let estimate = result.upper.ok_or("no estimate")?;
    println!(
        "\nTag located {:.2} m ahead (truth {:.2} m, error {:.1} cm).",
        estimate.range,
        rec.truth.slant_distance_upper,
        (estimate.range - rec.truth.slant_distance_upper).abs() * 100.0
    );
    Ok(())
}
