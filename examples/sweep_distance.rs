//! Distance sweep: HyperEar versus the naive §II-C baseline, 1–7 m.
//!
//! ```text
//! cargo run --release --example sweep_distance
//! ```
//!
//! Reproduces the core comparison of the paper in one table: the naive
//! fixed-baseline two-position scheme collapses past a couple of metres,
//! while the slide-augmented scheme keeps centimetre-level accuracy.

use hyperear::baseline::{naive_two_position_error, NaiveConfig};
use hyperear::config::HyperEarConfig;
use hyperear::pipeline::{HyperEar, SessionInput, SessionResult};
use hyperear_geom::Vec2;
use hyperear_sim::environment::Environment;
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::ScenarioBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One warm engine for the whole sweep: detector tables, FFT plans
    // and scratch buffers are built once, and the reused result's slide
    // storage is scavenged between sessions.
    let mut engine = HyperEar::new(HyperEarConfig::galaxy_s4())?.engine();
    let mut result = SessionResult::empty();
    let naive_config = NaiveConfig::galaxy_s4();
    println!("range    naive scheme (quantized)    HyperEar (5 slides, ruler)");
    for range in [1.0, 2.0, 3.0, 5.0, 7.0] {
        // Naive baseline: mean quantization error over lateral offsets.
        let mut naive_sum = 0.0;
        let mut naive_n = 0;
        for i in 0..21 {
            let dx = -0.2 + i as f64 * 0.02;
            if let Ok(e) = naive_two_position_error(Vec2::new(dx, range), &naive_config) {
                naive_sum += e;
                naive_n += 1;
            }
        }
        let naive_mean = naive_sum / naive_n as f64;

        // HyperEar pipeline on a simulated ruler session.
        let recording = ScenarioBuilder::new(PhoneModel::galaxy_s4())
            .environment(Environment::room_quiet())
            .speaker_range(range)
            .slides(5)
            .seed(7_000 + range as u64)
            .render()?;
        engine.run_into(
            &SessionInput {
                audio_sample_rate: recording.audio.sample_rate,
                left: &recording.audio.left,
                right: &recording.audio.right,
                imu_sample_rate: recording.imu.sample_rate,
                accel: &recording.imu.accel,
                gyro: &recording.imu.gyro,
            },
            &mut result,
        )?;
        let estimate = result.upper.ok_or("no estimate")?;
        let hyperear_err = (estimate.range - recording.truth.slant_distance_upper).abs();
        println!(
            "{range:>4.0} m   {:>10.1} cm               {:>8.1} cm",
            naive_mean * 100.0,
            hyperear_err * 100.0
        );
    }
    println!("\n(The paper quotes naive errors of 18.6 cm @ 1 m and 266.7 cm @ 5 m.)");
    Ok(())
}
