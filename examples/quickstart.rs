//! Quickstart: simulate one HyperEar session and localize the speaker.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! A chirp-beacon speaker sits 5 m from the user in a quiet meeting room.
//! The user holds the phone in-direction and slides it back and forth
//! five times; the pipeline recovers the speaker's distance from the
//! stereo recording and the IMU traces alone — no synchronization, no
//! infrastructure.

use hyperear::config::HyperEarConfig;
use hyperear::pipeline::{HyperEar, SessionInput, SessionResult};
use hyperear_sim::environment::Environment;
use hyperear_sim::phone::PhoneModel;
use hyperear_sim::scenario::ScenarioBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate the physical session (stand-in for real hardware).
    let recording = ScenarioBuilder::new(PhoneModel::galaxy_s4())
        .environment(Environment::room_quiet())
        .speaker_range(5.0)
        .slides(5)
        .seed(2024)
        .render()?;
    println!(
        "Rendered {:.1} s of stereo audio and {} IMU samples.",
        recording.audio.left.len() as f64 / recording.audio.sample_rate,
        recording.imu.len()
    );

    // 2. Run the HyperEar pipeline exactly as a phone app would: build
    //    a reusable engine once, then process sessions into a caller-
    //    owned result (the allocation-free steady state of a real app).
    let mut engine = HyperEar::new(HyperEarConfig::galaxy_s4())?.engine();
    let mut result = SessionResult::empty();
    engine.run_into(
        &SessionInput {
            audio_sample_rate: recording.audio.sample_rate,
            left: &recording.audio.left,
            right: &recording.audio.right,
            imu_sample_rate: recording.imu.sample_rate,
            accel: &recording.imu.accel,
            gyro: &recording.imu.gyro,
        },
        &mut result,
    )?;

    // 3. Report.
    println!(
        "Detected {} + {} beacons; recovered beacon period {:.6} s ({:+.1} ppm vs nominal).",
        result.beacons_left, result.beacons_right, result.period.period, result.period.offset_ppm
    );
    for (i, slide) in result.slides.iter().enumerate() {
        println!(
            "  slide {}: distance {:+.3} m, rotation {:.1} deg, {}",
            i + 1,
            slide.inertial.distance,
            slide.inertial.rotation_deg,
            if slide.fix.is_some() {
                "localized"
            } else {
                "no fix"
            }
        );
    }
    let estimate = result.upper.ok_or("no aggregated estimate")?;
    println!(
        "Estimated speaker distance: {:.2} m (ground truth {:.2} m, error {:.1} cm)",
        estimate.range,
        recording.truth.slant_distance_upper,
        (estimate.range - recording.truth.slant_distance_upper).abs() * 100.0
    );
    Ok(())
}
