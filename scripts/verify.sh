#!/usr/bin/env bash
# Tier-1 verification gate: hermetic build + full test suite, plus lint
# and formatting when the components are installed. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q (root package) =="
cargo test -q

echo "== cargo test --workspace -q =="
cargo test --workspace -q

# Experiment smoke: the cheapest analytic reproduction plus one figure
# sweep, in --fast mode, so a pipeline regression that unit tests miss
# (e.g. a planned-FFT path diverging from the one-shot results) still
# fails the gate.
echo "== repro smoke (--fast restrictions fig03) =="
cargo run --release -p hyperear-bench --bin repro -- --fast restrictions fig03

# Clippy and rustfmt are optional toolchain components; gate on their
# availability so the script still passes on a minimal offline toolchain.
if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy --workspace --all-targets =="
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "== clippy unavailable; skipping lint =="
fi

if cargo fmt --version >/dev/null 2>&1; then
    echo "== cargo fmt --check =="
    cargo fmt --all -- --check
else
    echo "== rustfmt unavailable; skipping format check =="
fi

echo "== verify OK =="
