#!/usr/bin/env bash
# Tier-1 verification gate: hermetic build + full test suite, plus lint
# and formatting when the components are installed. Run from anywhere.
#
#   scripts/verify.sh              # tier-1 gate
#   scripts/verify.sh --faults     # tier-1 gate + seeded fault-matrix sweep
#   scripts/verify.sh --bench      # tier-1 gate + bench smoke (alloc gate)
#   scripts/verify.sh --stream     # tier-1 gate + streaming soak smoke
#   scripts/verify.sh --doa        # tier-1 gate + DOA contract property sweep
#   scripts/verify.sh --estimators # tier-1 gate + estimator-bank contract sweep
#   scripts/verify.sh --simd       # tier-1 gate + SIMD/precision matrix
#   scripts/verify.sh --multibeacon # tier-1 gate + K-beacon bank contracts
#
# The --faults tier drives the full fault-injection matrix through the
# monitored pipeline (`repro faults --fast`): every corrupted session
# must come back as a typed Ok/Degraded/Failed outcome — a panic or a
# sim-layer error fails the gate.
#
# The --bench tier smoke-runs the DSP kernel and batch-session bench
# suites with a minimal sample budget. Timings on a shared machine are
# noise at this budget, but the suites' counting allocator makes them a
# *steady-state allocation* gate: any bench registered as
# allocation-free that allocates per iteration panics in
# `Suite::finish`, failing this script. On hosts with >= 4 CPUs the
# batch suite additionally asserts > 1.3x multi-thread speedup.
#
# The --stream tier runs a short deterministic soak (a small phone
# fleet through the StreamService) and greps the `stream-contract:`
# line: every streamed session must be bit-identical to its one-shot
# reference and the shed/busy schedule identical across thread counts.
#
# The --doa tier runs the direction-finding property sweep (random 3-
# and 4-microphone geometries through both DOA front-ends) and greps
# the `doa-contract: ... HELD` lines: both front-ends must recover the
# bearing within their pinned tolerances on every drawn geometry.
#
# The --estimators tier runs the TDoA-estimator property sweep (clean
# recovery within the 7.78 mm resolution floor, weighting estimators no
# worse than plain xcorr under seeded NLOS/burst faults) plus the fast
# fault-matrix accuracy-vs-cost sweep (`repro --fast estimators`), and
# greps the `estimator-contract: ... HELD` lines from both.
#
# The --simd tier builds and tests the DSP crate with and without the
# `simd` feature (runtime-detected x86_64 intrinsic kernels), then runs
# the precision property sweep (f32 pipeline vs the f64 reference) under
# both feature states at HYPEREAR_THREADS=1 and =4, grepping the
# `precision-contract: ... HELD` lines: vectorized f64 kernels must stay
# bit-identical to the scalar loops, and the f32 pipeline must sit
# within the 7.78 mm one-sample floor on clean sessions and within two
# samples of f64 under the fault matrix.
#
# The --multibeacon tier runs the K-concurrent-beacon contracts: the
# multi-beacon conformance suite (per-beacon range recovery from one
# shared capture, outcome bit-identity across thread counts, typed
# degradation under cross-beacon interference), the plan/template-
# spectrum sharing gate (one forward-plan build and one template FFT
# per beacon, clones recompute neither), and the warm MultiBeaconEngine
# zero-allocation gate. It then smoke-runs the multibeacon bench, whose
# banked K=4 detector must (a) produce the same arrivals as 4
# independent detectors and (b) on hosts with >= 2 CPUs beat them by
# >= 1.8x (on one shared CPU the ratio is still printed but not
# asserted — timings there swing too much to gate on).
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_FAULTS=0
RUN_BENCH=0
RUN_STREAM=0
RUN_DOA=0
RUN_ESTIMATORS=0
RUN_SIMD=0
RUN_MULTIBEACON=0
for arg in "$@"; do
    case "$arg" in
        --faults) RUN_FAULTS=1 ;;
        --bench) RUN_BENCH=1 ;;
        --stream) RUN_STREAM=1 ;;
        --doa) RUN_DOA=1 ;;
        --estimators) RUN_ESTIMATORS=1 ;;
        --simd) RUN_SIMD=1 ;;
        --multibeacon) RUN_MULTIBEACON=1 ;;
        *) echo "unknown option: $arg (supported: --faults, --bench, --stream, --doa, --estimators, --simd, --multibeacon)" >&2; exit 2 ;;
    esac
done

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q (root package) =="
cargo test -q

# The workspace suite runs under both a forced-sequential and a forced-
# parallel pool so the determinism pins (batch output bit-identical to
# sequential execution) are exercised on both code paths even when the
# host has one core.
echo "== cargo test --workspace -q (HYPEREAR_THREADS=1) =="
HYPEREAR_THREADS=1 cargo test --workspace -q

echo "== cargo test --workspace -q (HYPEREAR_THREADS=4) =="
HYPEREAR_THREADS=4 cargo test --workspace -q

# Experiment smoke: the cheapest analytic reproduction plus one figure
# sweep, in --fast mode, so a pipeline regression that unit tests miss
# (e.g. a planned-FFT path diverging from the one-shot results) still
# fails the gate.
echo "== repro smoke (--fast restrictions fig03) =="
cargo run --release -p hyperear-bench --bin repro -- --fast restrictions fig03

if [ "$RUN_BENCH" -eq 1 ]; then
    echo "== bench smoke (dsp kernels, 3 samples, allocation gate) =="
    HYPEREAR_BENCH_SAMPLES=3 HYPEREAR_BENCH_SAMPLE_MS=5 HYPEREAR_BENCH_WARMUP_MS=20 \
        cargo bench -p hyperear-bench --bench dsp_kernels

    # Batch smoke: the suite's allocation gate verifies a warm
    # BatchEngine batch allocates nothing at any thread count; when the
    # host actually has >= 4 CPUs, additionally assert the N-thread batch
    # beats the 1-thread batch by > 1.3x (on fewer cores the multi-thread
    # rows measure scheduling overhead, and a speedup assertion would be
    # asserting on noise).
    echo "== bench smoke (batch sessions, allocation gate) =="
    BATCH_JSON_DIR="$(mktemp -d)"
    HYPEREAR_BENCH_JSON_DIR="$BATCH_JSON_DIR" \
    HYPEREAR_BENCH_SAMPLES=5 HYPEREAR_BENCH_SAMPLE_MS=20 HYPEREAR_BENCH_WARMUP_MS=50 \
        cargo bench -p hyperear-bench --bench batch_session
    NPROC="$( (command -v nproc >/dev/null 2>&1 && nproc) || echo 1 )"
    if [ "$NPROC" -ge 4 ]; then
        # Result order in the report is threads_1, threads_2, threads_N.
        read -r T1 TN <<<"$(grep -o '"median_ns":[0-9.]*' "$BATCH_JSON_DIR/batch_session.json" \
            | cut -d: -f2 | awk 'NR==1{a=$1} NR==3{print a, $1}')"
        SPEEDUP="$(awk -v a="$T1" -v b="$TN" 'BEGIN{printf "%.2f", a/b}')"
        echo "batch speedup at ${NPROC} threads: ${SPEEDUP}x"
        if ! awk -v a="$T1" -v b="$TN" 'BEGIN{exit !(a/b > 1.3)}'; then
            echo "BENCH TIER FAILED: batch speedup ${SPEEDUP}x <= 1.3x at ${NPROC} threads" >&2
            exit 1
        fi
    else
        echo "host has ${NPROC} CPU(s) < 4; skipping multi-thread speedup assertion"
    fi
    rm -rf "$BATCH_JSON_DIR"

    # Streaming smoke rides along with --bench: a tiny fleet exercises
    # the service's allocation gate (the suite panics on a warm cycle
    # that allocates).
    echo "== bench smoke (stream soak, allocation gate) =="
    HYPEREAR_SOAK_PHONES=8 \
    HYPEREAR_BENCH_SAMPLES=3 HYPEREAR_BENCH_SAMPLE_MS=20 HYPEREAR_BENCH_WARMUP_MS=50 \
        cargo bench -p hyperear-bench --bench stream_soak

    # The counting-allocator test gates ride along with --bench: warm
    # stereo batches, warm N-microphone array sessions (both DOA
    # front-ends), and warm streaming cycles must allocate nothing.
    echo "== allocation gates (batch, array, stream) =="
    cargo test -p hyperear --test alloc_batch --test alloc_array --test alloc_stream -q
fi

if [ "$RUN_STREAM" -eq 1 ]; then
    echo "== stream soak (deterministic load, contract grep) =="
    OUT="$(HYPEREAR_SOAK_PHONES=24 \
        HYPEREAR_BENCH_SAMPLES=3 HYPEREAR_BENCH_SAMPLE_MS=20 HYPEREAR_BENCH_WARMUP_MS=50 \
        cargo bench -p hyperear-bench --bench stream_soak)"
    echo "$OUT"
    if ! grep -q "stream-contract:.*HELD" <<<"$OUT"; then
        echo "STREAM TIER FAILED: streaming contract not held" >&2
        exit 1
    fi
    NPROC="$( (command -v nproc >/dev/null 2>&1 && nproc) || echo 1 )"
    if [ "$NPROC" -ge 4 ]; then
        # With real cores the N-thread soak must beat 1 thread on
        # throughput (nproc-gated: on fewer cores extra threads
        # time-share one CPU and the comparison would be noise).
        read -r S1 SN <<<"$(grep -o 'sessions_per_sec=[0-9.]*' <<<"$OUT" \
            | cut -d= -f2 | awk 'NR==1{a=$1} NR==2{print a, $1}')"
        if [ -n "${SN:-}" ] && ! awk -v a="$S1" -v b="$SN" 'BEGIN{exit !(b > a)}'; then
            echo "STREAM TIER FAILED: ${NPROC}-core soak throughput ${SN}/s <= 1-thread ${S1}/s" >&2
            exit 1
        fi
    else
        echo "host has ${NPROC} CPU(s) < 4; skipping soak throughput comparison"
    fi
fi

if [ "$RUN_DOA" -eq 1 ]; then
    echo "== doa property sweep (random arrays, both front-ends, contract grep) =="
    OUT="$(cargo test --release --test doa_property -- --nocapture)"
    echo "$OUT"
    if [ "$(grep -c "doa-contract:.*HELD" <<<"$OUT")" -lt 2 ]; then
        echo "DOA TIER FAILED: direction-finding contract not held" >&2
        exit 1
    fi
fi

if [ "$RUN_ESTIMATORS" -eq 1 ]; then
    echo "== estimator property sweep (clean floor + faulted no-worse, contract grep) =="
    OUT="$(cargo test --release --test estimator_property -- --nocapture)"
    echo "$OUT"
    if [ "$(grep -c "estimator-contract:.*HELD" <<<"$OUT")" -lt 3 ]; then
        echo "ESTIMATORS TIER FAILED: estimator property contract not held" >&2
        exit 1
    fi

    echo "== repro estimators (--fast, fault-matrix accuracy-vs-cost sweep) =="
    OUT="$(cargo run --release -p hyperear-bench --bin repro -- --fast estimators)"
    echo "$OUT"
    if ! grep -q "estimator-contract:.*HELD" <<<"$OUT"; then
        echo "ESTIMATORS TIER FAILED: estimator bank contract not held" >&2
        exit 1
    fi
fi

if [ "$RUN_SIMD" -eq 1 ]; then
    echo "== dsp tests with the simd feature (runtime-detected intrinsics) =="
    cargo test -p hyperear-dsp --features simd -q

    # The precision matrix: the property sweep under both feature states
    # (portable chunked kernels vs intrinsic dispatch) and both pool
    # shapes, so f64 bit-identity and the f32 accuracy envelope are
    # pinned on every combination a deployment can select.
    for FEATURES in "" "--features simd"; do
        for THREADS in 1 4; do
            LABEL="features='${FEATURES:-none}' threads=${THREADS}"
            echo "== precision property sweep (${LABEL}) =="
            # shellcheck disable=SC2086
            OUT="$(HYPEREAR_THREADS=$THREADS \
                cargo test --release $FEATURES --test precision_property -- --nocapture 2>&1)"
            echo "$OUT"
            if [ "$(grep -c "precision-contract:.*HELD" <<<"$OUT")" -lt 4 ]; then
                echo "SIMD TIER FAILED: precision contract not held (${LABEL})" >&2
                exit 1
            fi
        done
    done
fi

if [ "$RUN_MULTIBEACON" -eq 1 ]; then
    echo "== multibeacon conformance + plan sharing (contract grep) =="
    OUT="$(cargo test --release --test conformance_multibeacon --test plan_sharing_multibeacon -- --nocapture)"
    echo "$OUT"
    if [ "$(grep -c "multibeacon-contract:.*HELD" <<<"$OUT")" -lt 4 ]; then
        echo "MULTIBEACON TIER FAILED: bank contract not held" >&2
        exit 1
    fi

    echo "== allocation gate (warm MultiBeaconEngine) =="
    cargo test -p hyperear --test alloc_multibeacon -q

    # Bench smoke: the banked K=4 detector vs 4 independent detectors.
    # The bench binary itself asserts arrival equivalence and the
    # allocation gate; the speedup assertion is nproc-gated because a
    # single shared CPU swings timings beyond the 1.8x margin.
    echo "== bench smoke (multibeacon, K=4 bank vs independent) =="
    OUT="$(HYPEREAR_BENCH_SAMPLES=5 HYPEREAR_BENCH_SAMPLE_MS=20 HYPEREAR_BENCH_WARMUP_MS=50 \
        cargo bench -p hyperear-bench --bench multibeacon)"
    echo "$OUT"
    if ! grep -q "multibeacon-contract: k=4 banked arrivals match" <<<"$OUT"; then
        echo "MULTIBEACON TIER FAILED: banked arrivals diverge from independent detectors" >&2
        exit 1
    fi
    SPEEDUP="$(grep -o 'multibeacon_speedup_x [0-9.]*' <<<"$OUT" | awk '{print $2}')"
    NPROC="$( (command -v nproc >/dev/null 2>&1 && nproc) || echo 1 )"
    if [ "$NPROC" -ge 2 ]; then
        if ! awk -v s="$SPEEDUP" 'BEGIN{exit !(s >= 1.8)}'; then
            echo "MULTIBEACON TIER FAILED: bank speedup ${SPEEDUP}x < 1.8x over 4 independent detectors" >&2
            exit 1
        fi
        echo "bank speedup ${SPEEDUP}x >= 1.8x over 4 independent detectors"
    else
        echo "host has ${NPROC} CPU(s) < 2; bank speedup ${SPEEDUP}x reported, not asserted"
    fi
fi

if [ "$RUN_FAULTS" -eq 1 ]; then
    echo "== repro faults (--fast, seeded fault-matrix sweep) =="
    OUT="$(cargo run --release -p hyperear-bench --bin repro -- --fast faults)"
    echo "$OUT"
    if ! grep -q "typed outcome): HELD" <<<"$OUT"; then
        echo "FAULTS TIER FAILED: degradation contract not held" >&2
        exit 1
    fi
fi

# Clippy and rustfmt are optional toolchain components; gate on their
# availability so the script still passes on a minimal offline toolchain.
if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy --workspace --all-targets =="
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "== clippy unavailable; skipping lint =="
fi

if cargo fmt --version >/dev/null 2>&1; then
    echo "== cargo fmt --check =="
    cargo fmt --all -- --check
else
    echo "== rustfmt unavailable; skipping format check =="
fi

echo "== verify OK =="
