#!/usr/bin/env bash
# Tier-1 verification gate: hermetic build + full test suite, plus lint
# and formatting when the components are installed. Run from anywhere.
#
#   scripts/verify.sh            # tier-1 gate
#   scripts/verify.sh --faults   # tier-1 gate + seeded fault-matrix sweep
#   scripts/verify.sh --bench    # tier-1 gate + bench smoke (alloc gate)
#
# The --faults tier drives the full fault-injection matrix through the
# monitored pipeline (`repro faults --fast`): every corrupted session
# must come back as a typed Ok/Degraded/Failed outcome — a panic or a
# sim-layer error fails the gate.
#
# The --bench tier smoke-runs the DSP kernel bench suite with a minimal
# sample budget. It is not a performance gate — timings on a shared
# machine are noise at 3 samples — but the suite's counting allocator
# makes it a *steady-state allocation* gate: any bench registered as
# allocation-free that allocates per iteration panics in
# `Suite::finish`, failing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_FAULTS=0
RUN_BENCH=0
for arg in "$@"; do
    case "$arg" in
        --faults) RUN_FAULTS=1 ;;
        --bench) RUN_BENCH=1 ;;
        *) echo "unknown option: $arg (supported: --faults, --bench)" >&2; exit 2 ;;
    esac
done

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q (root package) =="
cargo test -q

echo "== cargo test --workspace -q =="
cargo test --workspace -q

# Experiment smoke: the cheapest analytic reproduction plus one figure
# sweep, in --fast mode, so a pipeline regression that unit tests miss
# (e.g. a planned-FFT path diverging from the one-shot results) still
# fails the gate.
echo "== repro smoke (--fast restrictions fig03) =="
cargo run --release -p hyperear-bench --bin repro -- --fast restrictions fig03

if [ "$RUN_BENCH" -eq 1 ]; then
    echo "== bench smoke (dsp kernels, 3 samples, allocation gate) =="
    HYPEREAR_BENCH_SAMPLES=3 HYPEREAR_BENCH_SAMPLE_MS=5 HYPEREAR_BENCH_WARMUP_MS=20 \
        cargo bench -p hyperear-bench --bench dsp_kernels
fi

if [ "$RUN_FAULTS" -eq 1 ]; then
    echo "== repro faults (--fast, seeded fault-matrix sweep) =="
    OUT="$(cargo run --release -p hyperear-bench --bin repro -- --fast faults)"
    echo "$OUT"
    if ! grep -q "typed outcome): HELD" <<<"$OUT"; then
        echo "FAULTS TIER FAILED: degradation contract not held" >&2
        exit 1
    fi
fi

# Clippy and rustfmt are optional toolchain components; gate on their
# availability so the script still passes on a minimal offline toolchain.
if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy --workspace --all-targets =="
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "== clippy unavailable; skipping lint =="
fi

if cargo fmt --version >/dev/null 2>&1; then
    echo "== cargo fmt --check =="
    cargo fmt --all -- --check
else
    echo "== rustfmt unavailable; skipping format check =="
fi

echo "== verify OK =="
