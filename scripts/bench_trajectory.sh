#!/usr/bin/env bash
# Per-kernel performance trajectory across the PR sequence.
#
#   scripts/bench_trajectory.sh            # table of every kernel
#   scripts/bench_trajectory.sh matched    # only rows whose name matches
#
# Merges every BENCH_pr*.json at the repo root into one table: each row
# is a benchmark (suite/name), each column a PR that measured it, each
# cell the PR's "after" median. A kernel's row therefore reads as its
# optimisation history — PR-to-PR cells were measured on different days
# of a shared host, so read them as a trajectory, not a ledger (the
# per-PR files' "method"/"note" fields state each measurement's
# conditions). Needs python3 (stdlib only).
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER="${1:-}"

python3 - "$FILTER" <<'EOF'
import glob, json, re, sys

flt = sys.argv[1].lower() if len(sys.argv) > 1 else ""

def fmt_ns(ns):
    if ns is None:
        return "-"
    if ns < 1e3:
        return f"{ns:.0f}ns"
    if ns < 1e6:
        return f"{ns/1e3:.1f}us"
    if ns < 1e9:
        return f"{ns/1e6:.2f}ms"
    return f"{ns/1e9:.2f}s"

files = sorted(glob.glob("BENCH_pr*.json"),
               key=lambda p: int(re.search(r"pr(\d+)", p).group(1)))
if not files:
    sys.exit("no BENCH_pr*.json files at the repo root")

prs = []            # [(pr_number, title)]
rows = {}           # (suite, name) -> {pr_number: median_ns}
for path in files:
    with open(path) as f:
        doc = json.load(f)
    pr = doc["pr"]
    prs.append((pr, doc.get("title", "")))
    for suite, entries in doc.get("suites", {}).items():
        for e in entries:
            after = e.get("after") or {}
            median = after.get("median_ns")
            if median is None:
                continue
            rows.setdefault((suite, e["name"]), {})[pr] = median

keys = sorted(k for k in rows if not flt or flt in f"{k[0]}/{k[1]}".lower())
if not keys:
    sys.exit(f"no benchmarks match filter {flt!r}")

name_w = max(len(f"{s}/{n}") for s, n in keys)
header = "kernel".ljust(name_w) + "".join(f"  {'pr' + str(p):>10}" for p, _ in prs)
print(header)
print("-" * len(header))
for suite, name in keys:
    cells = rows[(suite, name)]
    line = f"{suite}/{name}".ljust(name_w)
    for p, _ in prs:
        line += f"  {fmt_ns(cells.get(p)):>10}"
    # Trajectory summary: first measured -> last measured.
    measured = [cells[p] for p, _ in prs if p in cells]
    if len(measured) >= 2 and measured[-1] > 0:
        line += f"   ({measured[0] / measured[-1]:.2f}x)"
    print(line)
print()
print("columns: per-PR 'after' medians from BENCH_pr*.json; (Nx) = first/last ratio")
for p, title in prs:
    print(f"  pr{p}: {title}")
EOF
