//! Shared helpers for the HyperEar workspace integration tests and examples.
pub use hyperear as core_api;
